// Result-cache harness: replays one deterministic mixed read/write schedule
// against two identically-seeded databases — one with the workload-aware
// result cache enabled, one without — and reports the closed-loop speedup.
//
// The schedule models repeated dashboard traffic: a fixed pool of --pool
// distinct popular queries, each issued query drawn from it with
// probability --repeat (Zipf(--zipf)-skewed toward the popular head, the
// rest ad-hoc one-offs), a --near_dup slice of the repeats re-ranked under
// ±1% perturbed linear weights (exercising the certified candidate-reuse
// path, not just exact hits), and an insert into both databases every
// --write_every queries (every 8th write compacts) so epoch invalidation
// keeps firing mid-stream and the popular head must re-cache.
//
// Correctness is enforced in-bench, not sampled: every cached answer must be
// tuple-identical (same tids in order, scores within 1e-9 relative) to the
// uncached database's answer for the same schedule position. Any mismatch
// fails the run regardless of --smoke.
//
// Like bench_parallel this needs no google-benchmark, always builds, and
// emits BENCH_cache.json. --smoke shrinks the schedule and enforces the
// acceptance floor: >= 3x closed-loop qps at repeat rate 0.9.
//
// Usage:
//   bench_cache [--rows=N] [--queries=N] [--repeat=R] [--near_dup=R]
//               [--pool=N] [--zipf=T] [--write_every=N] [--cache_mb=N]
//               [--seed=N] [--json=PATH] [--smoke]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/query_builder.h"
#include "gen/synthetic.h"
#include "planner/rank_cube_db.h"

namespace rankcube {
namespace {

struct Flags {
  uint64_t rows = 30000;
  uint64_t queries = 8000;
  double repeat = 0.9;    ///< probability an issued query repeats the pool
  double near_dup = 0.2;  ///< of the repeats, fraction with perturbed weights
  uint64_t pool = 20;     ///< distinct popular queries
  double zipf = 0.95;     ///< skew of the popularity distribution
  double overfetch = 0;   ///< cache overfetch factor; 0 = library default
  int write_every = 800;  ///< one insert per this many queries
  uint64_t cache_mb = 64;
  uint64_t pages = 256;  ///< page-store LRU capacity (both databases)
  uint64_t seed = 11;
  bool smoke = false;
  std::string json = "BENCH_cache.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--queries=", &v)) {
      f.queries = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--repeat=", &v)) {
      f.repeat = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--near_dup=", &v)) {
      f.near_dup = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--pool=", &v)) {
      f.pool = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--zipf=", &v)) {
      f.zipf = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--overfetch=", &v)) {
      f.overfetch = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--write_every=", &v)) {
      f.write_every = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--cache_mb=", &v)) {
      f.cache_mb = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--pages=", &v)) {
      f.pages = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.smoke) {
    // Scaled-down schedule: same shape (repeats, near-dups, a write with
    // its invalidation/re-cache cycle), ~1s wall time.
    f.rows = 6000;
    f.queries = 800;
    f.pool = 20;
    f.write_every = 400;
  }
  return f;
}

/// One schedule step, pre-generated so both databases replay the exact same
/// operation sequence (queries are rebuilt per run; RankingFunction state is
/// immutable so sharing specs is safe).
struct Op {
  enum Kind { kQuery, kInsert, kCompact } kind = kQuery;
  // kQuery
  std::vector<std::pair<int, int32_t>> preds;
  std::vector<double> weights;
  int k = 10;
  // kInsert
  std::vector<int32_t> sel;
  std::vector<double> rank;
};

TopKQuery BuildQuery(const Op& op) {
  QueryBuilder b;
  for (const auto& [dim, value] : op.preds) b.Where(dim, value);
  return b.OrderByLinear(op.weights).Limit(op.k).Build();
}

/// The full deterministic schedule: a fixed popular pool drawn Zipf-skewed,
/// an ad-hoc one-off tail, near-duplicates perturbing a pooled query's
/// weights by up to ±1% (same predicates and k — the sibling-reuse shape).
std::vector<Op> MakeSchedule(const Table& table, const Flags& flags) {
  Rng rng(flags.seed * 7919 + 1);
  std::vector<Op> pool;
  std::vector<Op> schedule;
  const int sel_dims = table.num_sel_dims();
  const int rank_dims = table.num_rank_dims();

  auto fresh = [&]() {
    Op op;
    op.kind = Op::kQuery;
    int npreds = static_cast<int>(rng.UniformInt(3));  // 0, 1 or 2
    Tid row = static_cast<Tid>(rng.UniformInt(table.num_rows()));
    int first_dim = static_cast<int>(rng.UniformInt(sel_dims));
    for (int p = 0; p < npreds; ++p) {
      int dim = (first_dim + p) % sel_dims;
      op.preds.emplace_back(dim, table.sel(row, dim));
    }
    for (int d = 0; d < rank_dims; ++d) {
      op.weights.push_back(rng.Uniform(0.5, 2.0));
    }
    static const int kChoices[] = {5, 10, 20};
    op.k = kChoices[rng.UniformInt(3)];
    return op;
  };

  for (uint64_t p = 0; p < flags.pool; ++p) pool.push_back(fresh());

  for (uint64_t i = 0; i < flags.queries; ++i) {
    if (flags.write_every > 0 && i > 0 &&
        i % static_cast<uint64_t>(flags.write_every) == 0) {
      uint64_t write_no = i / static_cast<uint64_t>(flags.write_every);
      if (write_no % 8 == 0) {
        Op op;
        op.kind = Op::kCompact;
        schedule.push_back(std::move(op));
      } else {
        Op op;
        op.kind = Op::kInsert;
        for (int d = 0; d < sel_dims; ++d) {
          Tid row = static_cast<Tid>(rng.UniformInt(table.num_rows()));
          op.sel.push_back(table.sel(row, d));
        }
        for (int d = 0; d < rank_dims; ++d) {
          op.rank.push_back(rng.Uniform01());
        }
        schedule.push_back(std::move(op));
      }
    }
    if (rng.Uniform01() < flags.repeat) {
      Op op = pool[rng.Zipf(pool.size(), flags.zipf)];
      if (rng.Uniform01() < flags.near_dup) {
        for (double& w : op.weights) {
          w *= 1.0 + (rng.Uniform01() - 0.5) * 0.002;  // within ±0.1%
        }
      }
      schedule.push_back(std::move(op));
    } else {
      schedule.push_back(fresh());  // ad-hoc one-off, never repeated
    }
  }
  return schedule;
}

struct RunResult {
  double query_seconds = 0;  ///< summed wall time of kQuery steps only
  uint64_t queries = 0;
  uint64_t writes = 0;
  /// Per-query answers in schedule order, for cross-run parity checking.
  std::vector<std::vector<ScoredTuple>> answers;
};

/// Replays the schedule; returns false on any execution failure.
bool Replay(RankCubeDb& db, const std::vector<Op>& schedule, RunResult* out) {
  for (const Op& op : schedule) {
    switch (op.kind) {
      case Op::kQuery: {
        TopKQuery q = BuildQuery(op);
        if (const char* probe = std::getenv("BENCH_CACHE_PROBE")) {
          if (out->queries == std::strtoull(probe, nullptr, 10)) {
            std::fprintf(stderr, "PROBE query k=%d weights=%.17g,%.17g preds:",
                         op.k, op.weights[0], op.weights[1]);
            for (const auto& [dim, value] : op.preds)
              std::fprintf(stderr, " (%d=%d)", dim, value);
            std::fprintf(stderr, " after %llu writes\n",
                         static_cast<unsigned long long>(out->writes));
            for (const char* eng :
                 {"grid", "fragments", "signature", "signature_lossy",
                  "table_scan", "boolean_first", "ranking_first",
                  "rank_mapping", "index_merge"}) {
              QueryOptions qo;
              qo.force_engine = eng;
              auto pr = db.Query(BuildQuery(op), qo);
              std::fprintf(stderr, "PROBE %-16s:", eng);
              if (!pr.ok()) {
                std::fprintf(stderr, " ERROR %s\n",
                             pr.status().ToString().c_str());
                continue;
              }
              for (const auto& t : pr.value().tuples)
                std::fprintf(stderr, " %llu/%.6g",
                             static_cast<unsigned long long>(t.tid), t.score);
              std::fprintf(stderr, "\n");
            }
          }
        }
        Stopwatch timer;
        auto r = db.Query(q);
        out->query_seconds += timer.ElapsedSeconds();
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.status().ToString().c_str());
          return false;
        }
        ++out->queries;
        out->answers.push_back(std::move(r.value().tuples));
        break;
      }
      case Op::kInsert: {
        auto r = db.Insert(op.sel, op.rank);
        if (!r.ok()) {
          std::fprintf(stderr, "insert failed: %s\n",
                       r.status().ToString().c_str());
          return false;
        }
        ++out->writes;
        break;
      }
      case Op::kCompact: {
        auto s = db.Compact();
        if (!s.ok()) {
          std::fprintf(stderr, "compact failed: %s\n",
                       s.status().ToString().c_str());
          return false;
        }
        ++out->writes;
        break;
      }
    }
  }
  return true;
}

/// Tuple parity: identical tids in identical order, scores within 1e-9
/// relative (both sides evaluate the same double pipeline; the tolerance
/// only absorbs non-associative summation differences between engines).
uint64_t CountMismatches(const RunResult& a, const RunResult& b) {
  uint64_t mismatches = 0;
  size_t n = std::min(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < n; ++i) {
    const auto& x = a.answers[i];
    const auto& y = b.answers[i];
    bool ok = x.size() == y.size();
    for (size_t j = 0; ok && j < x.size(); ++j) {
      double tol = 1e-9 * std::max(1.0, std::abs(x[j].score));
      ok = x[j].tid == y[j].tid && std::abs(x[j].score - y[j].score) <= tol;
    }
    if (!ok) {
      ++mismatches;
      if (std::getenv("BENCH_CACHE_DEBUG") != nullptr) {
        std::fprintf(stderr, "MISMATCH q=%zu sizes=%zu/%zu\n", i, x.size(),
                     y.size());
        for (size_t j = 0; j < std::max(x.size(), y.size()); ++j) {
          long xt = j < x.size() ? static_cast<long>(x[j].tid) : -1;
          long yt = j < y.size() ? static_cast<long>(y[j].tid) : -1;
          double xs = j < x.size() ? x[j].score : -1;
          double ys = j < y.size() ? y[j].score : -1;
          if (xt != yt || xs != ys)
            std::fprintf(stderr, "  j=%zu off(tid=%ld s=%.17g) on(tid=%ld s=%.17g)\n",
                         j, xt, xs, yt, ys);
        }
      }
    }
  }
  mismatches += std::max(a.answers.size(), b.answers.size()) - n;
  return mismatches;
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  SyntheticSpec spec;
  spec.num_rows = flags.rows;
  spec.num_sel_dims = 3;
  spec.cardinality = 20;
  spec.num_rank_dims = 2;
  spec.seed = flags.seed;

  // Identical geometry on both sides: the simulated device latency is what
  // a repeated query re-pays without the cache. The page-store LRU is kept
  // smaller than the full table so query execution actually hits the
  // device — a page cache holding everything would be measuring memcpy.
  RankCubeDb::Options base;
  base.store.cache_pages = flags.pages;
  base.store.read_latency_us = 100;
  RankCubeDb::Options cached_options = base;
  cached_options.cache.max_bytes = static_cast<size_t>(flags.cache_mb) << 20;
  if (flags.overfetch > 0) cached_options.cache.overfetch = flags.overfetch;

  RankCubeDb uncached(GenerateSynthetic(spec), base);
  RankCubeDb cached(GenerateSynthetic(spec), cached_options);

  std::vector<Op> schedule = MakeSchedule(uncached.table(), flags);

  RunResult off, on;
  if (!Replay(uncached, schedule, &off)) return 1;
  if (!Replay(cached, schedule, &on)) return 1;

  uint64_t mismatches = CountMismatches(off, on);
  ResultCacheStats cs = cached.CacheStats();
  double qps_off = static_cast<double>(off.queries) /
                   std::max(off.query_seconds, 1e-9);
  double qps_on = static_cast<double>(on.queries) /
                  std::max(on.query_seconds, 1e-9);
  double uplift = qps_on / std::max(qps_off, 1e-9);
  uint64_t lookups = cs.hits + cs.reuse_hits + cs.misses;
  double hit_rate = lookups == 0
                        ? 0.0
                        : static_cast<double>(cs.hits + cs.reuse_hits) /
                              static_cast<double>(lookups);

  std::printf(
      "queries=%llu writes=%llu repeat=%.2f near_dup=%.2f\n"
      "uncached: %.0f qps (%.2fs)\ncached:   %.0f qps (%.2fs)  -> %.2fx\n"
      "hits=%llu reuse_hits=%llu misses=%llu hit_rate=%.3f\n"
      "entries=%llu bytes=%llu evictions=%llu invalidations=%llu\n"
      "parity_mismatches=%llu\n",
      static_cast<unsigned long long>(on.queries),
      static_cast<unsigned long long>(on.writes), flags.repeat,
      flags.near_dup, qps_off, off.query_seconds, qps_on, on.query_seconds,
      uplift, static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.reuse_hits),
      static_cast<unsigned long long>(cs.misses), hit_rate,
      static_cast<unsigned long long>(cs.entries),
      static_cast<unsigned long long>(cs.bytes),
      static_cast<unsigned long long>(cs.evictions),
      static_cast<unsigned long long>(cs.invalidations),
      static_cast<unsigned long long>(mismatches));

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\n  \"bench\": \"result_cache\",\n"
      "  \"rows\": %llu,\n  \"queries\": %llu,\n  \"writes\": %llu,\n"
      "  \"repeat_rate\": %.2f,\n  \"near_dup_rate\": %.2f,\n"
      "  \"cache_mb\": %llu,\n  \"seed\": %llu,\n"
      "  \"qps_uncached\": %.1f,\n  \"qps_cached\": %.1f,\n"
      "  \"qps_uplift\": %.3f,\n"
      "  \"cache_hits\": %llu,\n  \"cache_reuse_hits\": %llu,\n"
      "  \"cache_misses\": %llu,\n  \"hit_rate\": %.4f,\n"
      "  \"entries\": %llu,\n  \"bytes\": %llu,\n"
      "  \"evictions\": %llu,\n  \"invalidations\": %llu,\n"
      "  \"parity_mismatches\": %llu\n}\n",
      static_cast<unsigned long long>(flags.rows),
      static_cast<unsigned long long>(on.queries),
      static_cast<unsigned long long>(on.writes), flags.repeat,
      flags.near_dup, static_cast<unsigned long long>(flags.cache_mb),
      static_cast<unsigned long long>(flags.seed), qps_off, qps_on, uplift,
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.reuse_hits),
      static_cast<unsigned long long>(cs.misses), hit_rate,
      static_cast<unsigned long long>(cs.entries),
      static_cast<unsigned long long>(cs.bytes),
      static_cast<unsigned long long>(cs.evictions),
      static_cast<unsigned long long>(cs.invalidations),
      static_cast<unsigned long long>(mismatches));
  std::fclose(out);
  std::printf("wrote %s\n", flags.json.c_str());

  // A wrong cached answer is a correctness bug, never acceptable noise.
  if (mismatches != 0) {
    std::fprintf(stderr, "cached answers diverged from uncached oracle\n");
    return 1;
  }
  if (flags.smoke && uplift < 3.0) {
    std::fprintf(stderr, "cache uplift %.2fx below the 3x floor\n", uplift);
    return 1;
  }
  return 0;
}

}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
