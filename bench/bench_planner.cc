// Planner-quality harness: runs one mixed workload (needle lookups, broad
// selections, multi-fragment conjunctions, no-predicate top-k, full
// sweeps, distance queries) through
//   * the RankCubeDb cost-based planner (one db.Query per query, no hints),
//   * every static engine choice (the same query force_engine'd), and
// compares physical pages. A static engine that cannot answer a query
// (grid without a covering cuboid, index_merge under predicates) is
// charged the sequential-scan cost for it — the fallback a production
// deployment hard-coded to that engine would take.
//
// Reported figures:
//   * per_query_best: sum over queries of the cheapest static engine —
//     the routing oracle the planner tries to approximate;
//   * best/worst single static engine totals;
//   * planner total + chosen-engine distribution + estimate accuracy,
//     globally and per engine family (CostFeedback::Family);
//   * the same workload re-run after the true-cost feedback loop has
//     observed one training pass — the post-feedback estimate accuracy.
// The acceptance bar (ISSUE 4): planner within 15% of per_query_best and
// cheaper than the best single static engine. ISSUE 10 adds: the
// post-feedback estimate geomean ratio must land in [0.85, 1.15].
//
// signature_lossy (a strictly space-for-time variant of signature) and
// rank_mapping (runs on an oracle-provided k-th score, §3.5.1) are not
// static-choice candidates; both remain force_engine-able.
//
// Like bench_parallel this needs no google-benchmark, always builds, and
// emits BENCH_planner.json. --smoke shrinks the workload for CI.
//
// Usage:
//   bench_planner [--rows=N] [--per_class=N] [--seed=N] [--json=PATH]
//                 [--smoke]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/feedback.h"
#include "common/rng.h"
#include "engine/query_builder.h"
#include "gen/synthetic.h"
#include "planner/rank_cube_db.h"

namespace rankcube {
namespace {

struct Flags {
  uint64_t rows = 30000;
  int per_class = 25;  ///< queries per workload class
  uint64_t seed = 7;   ///< data-generator seed (recorded in the JSON)
  bool smoke = false;
  std::string json = "BENCH_planner.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--per_class=", &v)) {
      f.per_class = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.smoke) {
    f.rows = 6000;
    f.per_class = 4;
  }
  return f;
}

/// The engines a deployment could statically hard-code (see header note).
const std::vector<std::string>& StaticEngines() {
  static const std::vector<std::string> kStatic = {
      "grid",       "fragments",     "signature",  "table_scan",
      "boolean_first", "ranking_first", "index_merge"};
  return kStatic;
}

struct ClassSpec {
  std::string name;
  std::vector<TopKQuery> queries;
};

/// Mixed workload over an 8-boolean-dim relation with cardinalities from
/// needle ids (2000) down to binary flags; each class exercises a regime
/// where a different physical structure should win.
std::vector<ClassSpec> MakeWorkload(const Table& table, int per_class,
                                    uint64_t seed) {
  Rng rng(seed);
  auto value_of = [&](int dim) {
    // Anchor on an existing row so selections are non-empty.
    Tid row = static_cast<Tid>(rng.UniformInt(table.num_rows()));
    return table.sel(row, dim);
  };
  std::vector<ClassSpec> classes;

  ClassSpec needle{"needle_1pred", {}};
  for (int i = 0; i < per_class; ++i) {
    needle.queries.push_back(QueryBuilder()
                                 .Where(0, value_of(0))
                                 .OrderByLinear({1.0, 1.0})
                                 .Limit(10)
                                 .Build());
  }
  classes.push_back(std::move(needle));

  ClassSpec needle2{"needle_2pred", {}};
  for (int i = 0; i < per_class; ++i) {
    Tid row = static_cast<Tid>(rng.UniformInt(table.num_rows()));
    needle2.queries.push_back(QueryBuilder()
                                  .Where(1, table.sel(row, 1))
                                  .Where(2, table.sel(row, 2))
                                  .OrderByLinear({2.0, 1.0})
                                  .Limit(10)
                                  .Build());
  }
  classes.push_back(std::move(needle2));

  ClassSpec pair{"selective_pair", {}};
  for (int i = 0; i < per_class; ++i) {
    Tid row = static_cast<Tid>(rng.UniformInt(table.num_rows()));
    pair.queries.push_back(QueryBuilder()
                               .Where(2, table.sel(row, 2))
                               .Where(3, table.sel(row, 3))
                               .OrderByLinear({1.0, 3.0})
                               .Limit(10)
                               .Build());
  }
  classes.push_back(std::move(pair));

  ClassSpec cross{"cross_fragment", {}};
  for (int i = 0; i < per_class; ++i) {
    Tid row = static_cast<Tid>(rng.UniformInt(table.num_rows()));
    cross.queries.push_back(QueryBuilder()
                                .Where(3, table.sel(row, 3))
                                .Where(5, table.sel(row, 5))
                                .Where(6, table.sel(row, 6))
                                .OrderByLinear({1.0, 1.0})
                                .Limit(10)
                                .Build());
  }
  classes.push_back(std::move(cross));

  ClassSpec broad{"broad_1pred", {}};
  for (int i = 0; i < per_class; ++i) {
    broad.queries.push_back(QueryBuilder()
                                .Where(6, value_of(6))
                                .OrderByLinear({1.0, 2.0})
                                .Limit(10)
                                .Build());
  }
  classes.push_back(std::move(broad));

  ClassSpec distance{"distance_1pred", {}};
  for (int i = 0; i < per_class; ++i) {
    distance.queries.push_back(
        QueryBuilder()
            .Where(4, value_of(4))
            .OrderByDistance({1.0, 1.0},
                             {rng.Uniform01(), rng.Uniform01()})
            .Limit(10)
            .Build());
  }
  classes.push_back(std::move(distance));

  ClassSpec nopred{"nopred_smallk", {}};
  for (int i = 0; i < per_class; ++i) {
    nopred.queries.push_back(
        QueryBuilder()
            .OrderByLinear({1.0 + rng.Uniform01(), 1.0})
            .Limit(10)
            .Build());
  }
  classes.push_back(std::move(nopred));

  ClassSpec sweep{"nopred_bigk", {}};
  int big_k = static_cast<int>(table.num_rows() / 6);
  for (int i = 0; i < per_class; ++i) {
    sweep.queries.push_back(QueryBuilder()
                                .OrderByLinear({1.0, 1.0 + rng.Uniform01()})
                                .Limit(big_k)
                                .Build());
  }
  classes.push_back(std::move(sweep));

  ClassSpec bigk_pred{"bigk_pred", {}};
  for (int i = 0; i < per_class; ++i) {
    bigk_pred.queries.push_back(QueryBuilder()
                                    .Where(7, value_of(7))
                                    .OrderByLinear({1.0, 1.0})
                                    .Limit(big_k / 2)
                                    .Build());
  }
  classes.push_back(std::move(bigk_pred));

  return classes;
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  SyntheticSpec spec;
  spec.num_rows = flags.rows;
  spec.num_sel_dims = 8;
  spec.sel_cardinalities = {2000, 200, 20, 12, 8, 4, 2, 2};
  spec.num_rank_dims = 2;
  spec.seed = flags.seed;
  Table table = GenerateSynthetic(spec);

  RankCubeDb::Options options;
  // Production-style semi-materialization: the full 2^8-1 cube is too
  // expensive, so the grid materializes the hot low-dim subsets (all
  // subsets of the first four dims) and fragments (F=2) cover the rest.
  for (int a = 0; a < 4; ++a) {
    options.build.grid.cuboid_dim_sets.push_back({a});
    for (int b = a + 1; b < 4; ++b) {
      options.build.grid.cuboid_dim_sets.push_back({a, b});
    }
  }
  options.build.grid.cuboid_dim_sets.push_back({0, 1, 2});
  options.build.grid.cuboid_dim_sets.push_back({1, 2, 3});
  RankCubeDb db(std::move(table), options);
  // The baseline passes measure the RAW cost model (the historical
  // estimate_geomean_ratio); feedback is re-enabled afterwards for the
  // post-feedback passes.
  db.SetFeedbackEnabled(false);

  std::vector<ClassSpec> classes =
      MakeWorkload(db.table(), flags.per_class, /*seed=*/4242);

  // Measured physical pages: pages[engine][i] for query i (flattened over
  // classes), with infeasible combinations charged the scan fallback.
  size_t total_queries = 0;
  for (const auto& c : classes) total_queries += c.queries.size();
  std::map<std::string, std::vector<double>> static_pages;
  std::vector<double> planner_pages;
  std::vector<double> planner_estimates;
  std::vector<std::string> planner_choice;
  std::map<std::string, size_t> fallbacks;

  // Scan pages first: the fallback charge for engines that cannot answer.
  std::vector<double> scan_pages;
  for (const auto& c : classes) {
    for (const auto& q : c.queries) {
      QueryOptions force;
      force.force_engine = "table_scan";
      auto r = db.Query(q, force);
      if (!r.ok()) {
        std::fprintf(stderr, "table_scan failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      scan_pages.push_back(static_cast<double>(r.value().stats.pages_read));
    }
  }

  for (const std::string& engine : StaticEngines()) {
    auto& pages = static_pages[engine];
    size_t i = 0;
    for (const auto& c : classes) {
      for (const auto& q : c.queries) {
        QueryOptions force;
        force.force_engine = engine;
        auto r = db.Query(q, force);
        if (r.ok()) {
          pages.push_back(static_cast<double>(r.value().stats.pages_read));
        } else {
          pages.push_back(scan_pages[i]);  // deployment falls back to a scan
          ++fallbacks[engine];
        }
        ++i;
      }
    }
  }

  for (const auto& c : classes) {
    for (const auto& q : c.queries) {
      auto r = db.Query(q);
      if (!r.ok()) {
        std::fprintf(stderr, "planner failed on %s: %s\n",
                     q.ToString().c_str(), r.status().ToString().c_str());
        return 1;
      }
      planner_pages.push_back(static_cast<double>(r.value().stats.pages_read));
      planner_estimates.push_back(r.value().plan->estimated_pages);
      planner_choice.push_back(r.value().plan->chosen_engine);
    }
  }

  // Totals.
  auto total = [](const std::vector<double>& v) {
    double t = 0;
    for (double x : v) t += x;
    return t;
  };
  double planner_total = total(planner_pages);
  double best_total = 0, worst_total = 0;
  std::string best_engine, worst_engine;
  for (const auto& [engine, pages] : static_pages) {
    double t = total(pages);
    if (best_engine.empty() || t < best_total) {
      best_total = t;
      best_engine = engine;
    }
    if (worst_engine.empty() || t > worst_total) {
      worst_total = t;
      worst_engine = engine;
    }
  }
  double oracle_total = 0;
  for (size_t i = 0; i < total_queries; ++i) {
    double best = scan_pages[i];
    for (const auto& [engine, pages] : static_pages) {
      (void)engine;
      best = std::min(best, pages[i]);
    }
    oracle_total += best;
  }

  // Per-class report.
  std::printf("%-16s %10s %10s %10s  planner routes\n", "class", "planner",
              "best", "worst");
  size_t idx = 0;
  std::vector<std::string> class_lines;
  for (const auto& c : classes) {
    double p = 0, best_c = 0, worst_c = 0;
    std::map<std::string, int> routes;
    std::map<std::string, double> engine_c;
    for (size_t j = 0; j < c.queries.size(); ++j, ++idx) {
      p += planner_pages[idx];
      ++routes[planner_choice[idx]];
      for (const auto& [engine, pages] : static_pages) {
        engine_c[engine] += pages[idx];
      }
    }
    best_c = 1e300;
    for (const auto& [engine, t] : engine_c) {
      (void)engine;
      best_c = std::min(best_c, t);
      worst_c = std::max(worst_c, t);
    }
    std::string route_str;
    for (const auto& [engine, n] : routes) {
      route_str += engine + ":" + std::to_string(n) + " ";
    }
    std::printf("%-16s %10.0f %10.0f %10.0f  %s\n", c.name.c_str(), p,
                best_c, worst_c, route_str.c_str());
    std::printf("%-16s ", "");
    for (const auto& [engine, t] : engine_c) {
      std::printf(" %s:%.0f", engine.c_str(), t);
    }
    std::printf("\n");
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"class\": \"%s\", \"planner_pages\": %.0f, "
                  "\"best_static_pages\": %.0f, \"worst_static_pages\": "
                  "%.0f}",
                  c.name.c_str(), p, best_c, worst_c);
    class_lines.push_back(buf);
  }

  // Estimate accuracy: geometric mean of max(est,1)/max(measured,1),
  // globally and grouped by the feedback family of the chosen engine.
  auto geomean = [](const std::vector<double>& est,
                    const std::vector<double>& measured) {
    double log_ratio = 0;
    for (size_t i = 0; i < est.size(); ++i) {
      log_ratio +=
          std::log(std::max(est[i], 1.0) / std::max(measured[i], 1.0));
    }
    return std::exp(log_ratio / std::max<size_t>(1, est.size()));
  };
  auto geomean_by_family = [&](const std::vector<double>& est,
                               const std::vector<double>& measured,
                               const std::vector<std::string>& choice) {
    std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
        grouped;
    for (size_t i = 0; i < est.size(); ++i) {
      auto& g = grouped[CostFeedback::Family(choice[i])];
      g.first.push_back(est[i]);
      g.second.push_back(measured[i]);
    }
    std::map<std::string, double> out;
    for (const auto& [family, g] : grouped) {
      out[family] = geomean(g.first, g.second);
    }
    return out;
  };
  double est_geo_ratio = geomean(planner_estimates, planner_pages);
  std::map<std::string, double> est_geo_by_family =
      geomean_by_family(planner_estimates, planner_pages, planner_choice);

  // Post-feedback accuracy: let the correction loop observe one training
  // pass over the workload, then measure the same queries again with the
  // learned per-family factors applied.
  db.SetFeedbackEnabled(true);
  db.ResetFeedback();
  for (const auto& c : classes) {
    for (const auto& q : c.queries) {
      auto r = db.Query(q);
      if (!r.ok()) {
        std::fprintf(stderr, "feedback training failed on %s: %s\n",
                     q.ToString().c_str(), r.status().ToString().c_str());
        return 1;
      }
    }
  }
  std::vector<double> post_pages, post_estimates;
  std::vector<std::string> post_choice;
  for (const auto& c : classes) {
    for (const auto& q : c.queries) {
      auto r = db.Query(q);
      if (!r.ok()) {
        std::fprintf(stderr, "post-feedback pass failed on %s: %s\n",
                     q.ToString().c_str(), r.status().ToString().c_str());
        return 1;
      }
      post_pages.push_back(static_cast<double>(r.value().stats.pages_read));
      post_estimates.push_back(r.value().plan->estimated_pages);
      post_choice.push_back(r.value().plan->chosen_engine);
    }
  }
  double post_geo_ratio = geomean(post_estimates, post_pages);
  std::map<std::string, double> post_geo_by_family =
      geomean_by_family(post_estimates, post_pages, post_choice);
  double post_total = total(post_pages);

  double vs_oracle = planner_total / std::max(oracle_total, 1.0);
  bool within_15 = vs_oracle <= 1.15;
  bool beats_best_static = planner_total < best_total;
  bool post_calibrated = post_geo_ratio >= 0.85 && post_geo_ratio <= 1.15;
  std::printf(
      "\nqueries=%zu\nplanner_total=%.0f  per_query_best=%.0f "
      "(%.3fx)\nbest_static=%s (%.0f)  worst_static=%s (%.0f)\n"
      "estimate_geomean_ratio=%.2f  post_feedback=%.2f (total %.0f)\n"
      "within_15pct_of_oracle=%s  beats_best_static=%s  "
      "post_feedback_calibrated=%s\n",
      total_queries, planner_total, oracle_total, vs_oracle,
      best_engine.c_str(), best_total, worst_engine.c_str(), worst_total,
      est_geo_ratio, post_geo_ratio, post_total, within_15 ? "yes" : "NO",
      beats_best_static ? "yes" : "NO", post_calibrated ? "yes" : "NO");
  for (const auto& [family, ratio] : est_geo_by_family) {
    double post = post_geo_by_family.count(family)
                      ? post_geo_by_family[family]
                      : 0.0;
    std::printf("  family %-14s estimate_ratio=%.2f post_feedback=%.2f\n",
                family.c_str(), ratio, post);
  }

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"planner_routing\",\n"
               "  \"rows\": %llu,\n  \"seed\": %llu,\n  \"queries\": %zu,\n"
               "  \"planner_total_pages\": %.0f,\n"
               "  \"per_query_best_pages\": %.0f,\n"
               "  \"planner_vs_best_ratio\": %.4f,\n"
               "  \"within_15pct_of_per_query_best\": %s,\n"
               "  \"beats_best_static\": %s,\n"
               "  \"best_static\": {\"engine\": \"%s\", \"pages\": %.0f},\n"
               "  \"worst_static\": {\"engine\": \"%s\", \"pages\": %.0f},\n"
               "  \"estimate_geomean_ratio\": %.3f,\n",
               static_cast<unsigned long long>(flags.rows),
               static_cast<unsigned long long>(flags.seed), total_queries,
               planner_total, oracle_total, vs_oracle,
               within_15 ? "true" : "false",
               beats_best_static ? "true" : "false", best_engine.c_str(),
               best_total, worst_engine.c_str(), worst_total, est_geo_ratio);
  auto emit_family_map = [&](const char* key,
                             const std::map<std::string, double>& m) {
    std::fprintf(out, "  \"%s\": {", key);
    bool first_f = true;
    for (const auto& [family, ratio] : m) {
      std::fprintf(out, "%s\"%s\": %.3f", first_f ? "" : ", ", family.c_str(),
                   ratio);
      first_f = false;
    }
    std::fprintf(out, "},\n");
  };
  emit_family_map("estimate_geomean_ratio_by_family", est_geo_by_family);
  std::fprintf(out,
               "  \"post_feedback_estimate_geomean_ratio\": %.3f,\n"
               "  \"post_feedback_planner_total_pages\": %.0f,\n"
               "  \"post_feedback_calibrated\": %s,\n",
               post_geo_ratio, post_total, post_calibrated ? "true" : "false");
  emit_family_map("post_feedback_estimate_geomean_ratio_by_family",
                  post_geo_by_family);
  std::fprintf(out, "  \"static_totals\": {");
  bool first = true;
  for (const auto& [engine, pages] : static_pages) {
    std::fprintf(out, "%s\"%s\": %.0f", first ? "" : ", ", engine.c_str(),
                 total(pages));
    first = false;
  }
  std::fprintf(out, "},\n  \"fallback_queries\": {");
  first = true;
  for (const auto& [engine, n] : fallbacks) {
    std::fprintf(out, "%s\"%s\": %zu", first ? "" : ", ", engine.c_str(), n);
    first = false;
  }
  std::fprintf(out, "},\n  \"planner_routes\": {");
  std::map<std::string, int> routes;
  for (const auto& engine : planner_choice) ++routes[engine];
  first = true;
  for (const auto& [engine, n] : routes) {
    std::fprintf(out, "%s\"%s\": %d", first ? "" : ", ", engine.c_str(), n);
    first = false;
  }
  std::fprintf(out, "},\n  \"classes\": [\n");
  for (size_t i = 0; i < class_lines.size(); ++i) {
    std::fprintf(out, "%s%s\n", class_lines[i].c_str(),
                 i + 1 < class_lines.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", flags.json.c_str());

  // --smoke doubles as a CI health check: the planner must stay within
  // the acceptance envelope even on the shrunken workload.
  if (flags.smoke && (!within_15 || !beats_best_static)) {
    std::fprintf(stderr, "planner outside acceptance envelope\n");
    return 1;
  }
  if (flags.smoke && !post_calibrated) {
    std::fprintf(stderr,
                 "post-feedback estimate ratio %.3f outside [0.85, 1.15]\n",
                 post_geo_ratio);
    return 1;
  }
  return 0;
}

}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
