// Reproduces Table 5.1 and Figures 5.7-5.22: index-merge configurations
// TS / BL / PE / PE+SIG over B+-tree and R-tree indices (§5.4). All modes
// run through RankingEngine adapters (the engines share each context's
// cached B+-trees / R-trees; wrapping is free).
#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "engine/builtin_engines.h"
#include "merge/index_merge.h"

namespace rankcube::bench {
namespace {

// Fanout 64 keeps the BL baseline's full-expansion state count tractable at
// laptop scale while preserving every reported shape (DESIGN.md).
constexpr int kFanout = 64;

Table MakeData(uint64_t rows, int rank_dims, uint64_t seed = 9) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = 1;
  spec.cardinality = 2;
  spec.num_rank_dims = rank_dims;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

/// m B+-trees over the first m ranking dims, plus signatures.
struct BtreeCtx {
  Table table;
  PageStore store;
  IoSession io{&store};
  std::vector<std::unique_ptr<BTree>> btrees;
  std::vector<std::unique_ptr<MergeIndex>> owned;
  std::vector<const MergeIndex*> indices;
  std::unique_ptr<JoinSignature> full_sig;
  std::vector<std::unique_ptr<JoinSignature>> pair_sigs;
  std::vector<std::vector<int>> pair_positions;

  BtreeCtx(uint64_t rows, int m, int fanout = kFanout)
      : table(MakeData(rows, m)) {
    for (int d = 0; d < m; ++d) {
      btrees.push_back(std::make_unique<BTree>(
          table, d, io, BTreeOptions{.fanout = fanout}));
      owned.push_back(
          std::make_unique<BTreeMergeIndex>(btrees.back().get(), d));
      indices.push_back(owned.back().get());
    }
    full_sig = std::make_unique<JoinSignature>(indices);
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        pair_sigs.push_back(std::make_unique<JoinSignature>(
            std::vector<const MergeIndex*>{indices[i], indices[j]}));
        pair_positions.push_back({i, j});
      }
    }
  }
};

std::shared_ptr<BtreeCtx> GetBtreeCtx(uint64_t rows, int m,
                                      int fanout = kFanout) {
  std::string key = "ch5b:" + std::to_string(Rows(rows)) + ":" +
                    std::to_string(m) + ":" + std::to_string(fanout);
  return Cached<BtreeCtx>(key, [&] {
    return std::make_shared<BtreeCtx>(Rows(rows), m, fanout);
  });
}

RankingFunctionPtr MakeF(const std::string& kind, int dims, Rng* rng) {
  if (kind == "fs") {  // semi-monotone nearest-neighbor
    std::vector<double> w(dims, 1.0), t(dims);
    for (auto& v : t) v = rng->Uniform01();
    return std::make_shared<QuadraticDistance>(std::move(w), std::move(t));
  }
  if (kind == "fg") return std::make_shared<GeneralAB>(dims, 0, 1);
  // fc: constrained
  double lo = 0.3 * rng->Uniform01();
  return std::make_shared<ConstrainedSum>(dims, 0, 1, lo,
                                          std::min(1.0, lo + 0.3));
}

enum class Mode { kTS, kBL, kPE, kPESig, kPE2dSig, kPE3dSig };

const char* Name(Mode m) {
  switch (m) {
    case Mode::kTS: return "TS";
    case Mode::kBL: return "BL";
    case Mode::kPE: return "PE";
    case Mode::kPESig: return "PE_SIG";
    case Mode::kPE2dSig: return "PE_2dSIG";
    case Mode::kPE3dSig: return "PE_3dSIG";
  }
  return "?";
}

WorkloadResult RunMode(BtreeCtx& ctx, const std::string& kind, int k,
                       Mode mode, int nq = 10) {
  Rng rng(11);
  std::vector<TopKQuery> qs;
  for (int i = 0; i < nq; ++i) {
    TopKQuery q;
    q.function = MakeF(kind, ctx.table.num_rank_dims(), &rng);
    q.k = k;
    qs.push_back(std::move(q));
  }
  std::unique_ptr<RankingEngine> engine;
  if (mode == Mode::kTS) {
    engine = MakeTableScanEngine(ctx.table);
  } else {
    MergeOptions opt;
    opt.mode = (mode == Mode::kBL) ? MergeOptions::Mode::kBaseline
                                   : MergeOptions::Mode::kProgressive;
    if (mode == Mode::kPESig || mode == Mode::kPE3dSig) {
      opt.signatures = {ctx.full_sig.get()};
      std::vector<int> all;
      for (size_t i = 0; i < ctx.indices.size(); ++i) {
        all.push_back(static_cast<int>(i));
      }
      opt.signature_positions = {all};
    } else if (mode == Mode::kPE2dSig) {
      for (size_t g = 0; g < ctx.pair_sigs.size(); ++g) {
        opt.signatures.push_back(ctx.pair_sigs[g].get());
        opt.signature_positions.push_back(ctx.pair_positions[g]);
      }
    }
    engine = MakeIndexMergeEngine(ctx.table, ctx.indices, std::move(opt));
  }
  return RunWorkload(qs, &ctx.io, *engine);
}

void RegisterAll() {
  // Table 5.1: basic vs improved index-merge, f = fg, top-100.
  for (const char* variant : {"basic", "improved"}) {
    Reg(
        std::string("Tab5.1/") + variant, [variant](benchmark::State& state) {
          auto ctx = GetBtreeCtx(200000, 2);
          Mode mode =
              std::string(variant) == "basic" ? Mode::kBL : Mode::kPESig;
          for (auto _ : state) Publish(state, RunMode(*ctx, "fg", 100, mode));
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }

  // Figs 5.7-5.9: time w.r.t. K for fs / fg / fc.
  struct FigF { const char* fig; const char* kind; };
  for (FigF ff : {FigF{"Fig5.7", "fs"}, FigF{"Fig5.8", "fg"},
                  FigF{"Fig5.9", "fc"}}) {
    for (Mode m : {Mode::kTS, Mode::kBL, Mode::kPE, Mode::kPESig}) {
      for (int k : {10, 20, 50, 100}) {
        Reg(
            std::string(ff.fig) + "/" + Name(m) + "/K:" + std::to_string(k),
            [ff, m, k](benchmark::State& state) {
              auto ctx = GetBtreeCtx(200000, 2);
              for (auto _ : state) Publish(state, RunMode(*ctx, ff.kind, k, m));
            })
            ->Unit(benchmark::kMillisecond)->Iterations(1);
      }
    }
  }

  // Figs 5.10-5.12: disk accesses / states / peak heap w.r.t. f, k = 100.
  for (Mode m : {Mode::kBL, Mode::kPE, Mode::kPESig}) {
    for (const char* kind : {"fs", "fg", "fc"}) {
      Reg(
          std::string("Fig5.10_5.11_5.12/") + Name(m) + "/f:" + kind,
          [m, kind](benchmark::State& state) {
            auto ctx = GetBtreeCtx(200000, 2);
            for (auto _ : state) {
              ctx->io.ResetStats();
              auto res = RunMode(*ctx, kind, 100, m);
              Publish(state, res);
              state.counters["index_pages"] = static_cast<double>(
                  ctx->io.stats(IoCategory::kBTree).physical);
              state.counters["joinsig_pages"] = static_cast<double>(
                  ctx->io.stats(IoCategory::kJoinSignature).physical);
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }

  // Fig 5.13: real-data-like (6 quantitative attrs, 2 R-trees of 3 dims).
  for (Mode m : {Mode::kTS, Mode::kPE, Mode::kPESig}) {
    for (int k : {10, 20, 50, 100}) {
      Reg(
          std::string("Fig5.13/") + Name(m) + "/K:" + std::to_string(k),
          [m, k](benchmark::State& state) {
            struct RtreeCtx {
              Table table;
              PageStore store;
  IoSession io{&store};
              RTree r1, r2;
              std::unique_ptr<RTreeMergeIndex> m1, m2;
              std::vector<const MergeIndex*> indices;
              std::unique_ptr<JoinSignature> sig;
              RtreeCtx()
                  : table(MakeData(Rows(100000), 6, 31)),
                    r1(3, io, {.max_entries = kFanout}),
                    r2(3, io, {.max_entries = kFanout}) {
                std::vector<int> a{0, 1, 2}, b{3, 4, 5};
                r1.BulkLoadSTR(table, &a);
                r2.BulkLoadSTR(table, &b);
                m1 = std::make_unique<RTreeMergeIndex>(&r1, a);
                m2 = std::make_unique<RTreeMergeIndex>(&r2, b);
                indices = {m1.get(), m2.get()};
                sig = std::make_unique<JoinSignature>(indices);
              }
            };
            auto ctx = Cached<RtreeCtx>(
                "ch5rt6", [] { return std::make_shared<RtreeCtx>(); });
            Rng rng(21);
            std::vector<TopKQuery> qs;
            for (int i = 0; i < 10; ++i) {
              TopKQuery q;
              q.function = MakeF("fs", 6, &rng);
              q.k = k;
              qs.push_back(std::move(q));
            }
            std::unique_ptr<RankingEngine> engine;
            if (m == Mode::kTS) {
              engine = MakeTableScanEngine(ctx->table);
            } else {
              MergeOptions opt;
              if (m == Mode::kPESig) {
                opt.signatures = {ctx->sig.get()};
                opt.signature_positions = {{0, 1}};
              }
              engine = MakeIndexMergeEngine(ctx->table, ctx->indices,
                                            std::move(opt));
            }
            for (auto _ : state) {
              Publish(state, RunWorkload(qs, &ctx->io, *engine));
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }

  // Fig 5.14: R-tree dimensionality (2 R-trees of d dims each).
  for (int d : {1, 2, 3, 4}) {
    Reg(
        "Fig5.14/PE_SIG/rtree_dims:" + std::to_string(d),
        [d](benchmark::State& state) {
          struct DimCtx {
            Table table;
            PageStore store;
  IoSession io{&store};
            RTree r1, r2;
            std::unique_ptr<RTreeMergeIndex> m1, m2;
            std::vector<const MergeIndex*> indices;
            std::unique_ptr<JoinSignature> sig;
            explicit DimCtx(int d)
                : table(MakeData(Rows(100000), 2 * d, 37)),
                  r1(d, io, {.max_entries = kFanout}),
                  r2(d, io, {.max_entries = kFanout}) {
              std::vector<int> a, b;
              for (int i = 0; i < d; ++i) a.push_back(i);
              for (int i = d; i < 2 * d; ++i) b.push_back(i);
              r1.BulkLoadSTR(table, &a);
              r2.BulkLoadSTR(table, &b);
              m1 = std::make_unique<RTreeMergeIndex>(&r1, a);
              m2 = std::make_unique<RTreeMergeIndex>(&r2, b);
              indices = {m1.get(), m2.get()};
              sig = std::make_unique<JoinSignature>(indices);
            }
          };
          auto ctx = Cached<DimCtx>("ch5dim:" + std::to_string(d), [d] {
            return std::make_shared<DimCtx>(d);
          });
          Rng rng(41);
          std::vector<TopKQuery> qs;
          for (int i = 0; i < 10; ++i) {
            TopKQuery q;
            q.function = MakeF("fs", 2 * d, &rng);
            q.k = 100;
            qs.push_back(std::move(q));
          }
          MergeOptions opt;
          opt.signatures = {ctx->sig.get()};
          opt.signature_positions = {{0, 1}};
          auto engine =
              MakeIndexMergeEngine(ctx->table, ctx->indices, std::move(opt));
          for (auto _ : state) {
            Publish(state, RunWorkload(qs, &ctx->io, *engine));
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }

  // Figs 5.15-5.17: 3-way merge, time / heap / disk w.r.t. K.
  for (Mode m : {Mode::kTS, Mode::kPE, Mode::kPE2dSig, Mode::kPE3dSig}) {
    for (int k : {10, 20, 50, 100}) {
      Reg(
          std::string("Fig5.15_5.16_5.17/") + Name(m) +
              "/K:" + std::to_string(k),
          [m, k](benchmark::State& state) {
            auto ctx = GetBtreeCtx(100000, 3);
            for (auto _ : state) {
              ctx->io.ResetStats();
              auto res = RunMode(*ctx, "fs", k, m);
              Publish(state, res);
              state.counters["index_pages"] = static_cast<double>(
                  ctx->io.stats(IoCategory::kBTree).physical);
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }

  // Fig 5.18: only a subset of indexed attributes participate in ranking.
  for (int used : {1, 2}) {
    Reg(
        "Fig5.18/PE_SIG/attrs_used:" + std::to_string(used),
        [used](benchmark::State& state) {
          auto ctx = GetBtreeCtx(200000, 2);
          std::vector<double> w(2, 0.0);
          for (int d = 0; d < used; ++d) w[d] = 1.0;
          auto f = std::make_shared<LinearFunction>(w);
          std::vector<TopKQuery> qs(10);
          for (auto& q : qs) {
            q.function = f;
            q.k = 100;
          }
          MergeOptions opt;
          opt.signatures = {ctx->full_sig.get()};
          opt.signature_positions = {{0, 1}};
          auto engine =
              MakeIndexMergeEngine(ctx->table, ctx->indices, std::move(opt));
          for (auto _ : state) {
            Publish(state, RunWorkload(qs, &ctx->io, *engine));
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }

  // Fig 5.19: node size (fanout as page-size proxy).
  for (int fanout : {16, 32, 64, 128}) {
    Reg(
        "Fig5.19/PE_SIG/fanout:" + std::to_string(fanout),
        [fanout](benchmark::State& state) {
          auto ctx = GetBtreeCtx(200000, 2, fanout);
          for (auto _ : state) {
            Publish(state, RunMode(*ctx, "fs", 100, Mode::kPESig));
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }

  // Fig 5.20: time w.r.t. T.  Figs 5.21/5.22: join-signature construction
  // time and size w.r.t. T.
  for (uint64_t t : {uint64_t{100000}, uint64_t{200000}, uint64_t{500000}}) {
    Reg(
        "Fig5.20/PE_SIG/T:" + std::to_string(t),
        [t](benchmark::State& state) {
          auto ctx = GetBtreeCtx(t, 2);
          for (auto _ : state) {
            Publish(state, RunMode(*ctx, "fs", 100, Mode::kPESig));
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
    Reg(
        "Fig5.21_5.22/joinsig/T:" + std::to_string(t),
        [t](benchmark::State& state) {
          auto ctx = GetBtreeCtx(t, 2);
          for (auto _ : state) {
            JoinSignature sig(ctx->indices);
            state.counters["construction_ms"] = sig.construction_ms();
            state.counters["bytes"] = static_cast<double>(sig.SizeBytes());
            state.counters["states"] = static_cast<double>(sig.num_states());
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

}  // namespace
}  // namespace rankcube::bench

int main(int argc, char** argv) {
  rankcube::bench::ParseScale(&argc, argv);
  rankcube::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
