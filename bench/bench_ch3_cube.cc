// Reproduces Figures 3.4-3.10: grid ranking cube vs rank-mapping vs the
// SQL-style baseline on synthetic data (Tables 3.8/3.9 defaults, sizes
// scaled per DESIGN.md: paper 3M -> 200k default). Every method is created
// from the EngineRegistry and runs through RankingEngine::Execute.
#include "bench/bench_common.h"
#include "engine/registry.h"

namespace rankcube::bench {
namespace {

struct Ctx {
  Table table;
  PageStore store;
  IoSession io{&store};
  std::unique_ptr<RankingEngine> cube;
  std::unique_ptr<RankingEngine> boolean_first;
  std::unique_ptr<RankingEngine> rank_mapping;

  Ctx(const SyntheticSpec& spec, int block_size)
      : table(GenerateSynthetic(spec)) {
    EngineBuildOptions options;
    options.grid.block_size = block_size;
    auto& registry = EngineRegistry::Global();
    cube = MustEngine(registry.Create("grid", table, io, options));
    boolean_first =
        MustEngine(registry.Create("boolean_first", table, io));
    rank_mapping = MustEngine(registry.Create("rank_mapping", table, io));
  }
};

std::shared_ptr<Ctx> GetCtx(uint64_t rows, int s, int c, int r,
                            int block = 300) {
  SyntheticSpec spec;
  spec.num_rows = Rows(rows);
  spec.num_sel_dims = s;
  spec.cardinality = c;
  spec.num_rank_dims = r;
  std::string key = "ch3:" + std::to_string(spec.num_rows) + ":" +
                    std::to_string(s) + ":" + std::to_string(c) + ":" +
                    std::to_string(r) + ":" + std::to_string(block);
  return Cached<Ctx>(key, [&] { return std::make_shared<Ctx>(spec, block); });
}

std::vector<TopKQuery> Queries(const Table& t, int k, double skew, int s,
                               int r) {
  QueryWorkloadSpec q;
  q.num_queries = 20;
  q.k = k;
  q.skew = skew;
  q.num_predicates = s;
  q.num_rank_used = r;
  return GenerateQueries(t, q);
}

enum class Method { kCube, kRankMapping, kBaseline };

WorkloadResult RunMethod(Ctx& ctx, const std::vector<TopKQuery>& queries,
                         Method m) {
  switch (m) {
    case Method::kCube:
      return RunWorkload(queries, &ctx.io, *ctx.cube);
    case Method::kRankMapping:
      // The engine feeds rank-mapping the *optimal* bound values, as the
      // thesis does for this competitor.
      return RunWorkload(queries, &ctx.io, *ctx.rank_mapping);
    case Method::kBaseline:
      return RunWorkload(queries, &ctx.io, *ctx.boolean_first);
  }
  return {};
}

const char* Name(Method m) {
  switch (m) {
    case Method::kCube:
      return "ranking_cube";
    case Method::kRankMapping:
      return "rank_mapping";
    default:
      return "baseline";
  }
}

void RegisterAll() {
  constexpr Method kMethods[] = {Method::kCube, Method::kRankMapping,
                                 Method::kBaseline};
  // Fig 3.4: execution time w.r.t. k.
  for (Method m : kMethods) {
    for (int k : {5, 10, 15, 20}) {
      Reg(
          std::string("Fig3.4/") + Name(m) + "/k:" + std::to_string(k),
          [m, k](benchmark::State& state) {
            auto ctx = GetCtx(200000, 3, 20, 2);
            auto qs = Queries(ctx->table, k, 1.0, 2, 2);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 3.5: query skewness u.
  for (Method m : kMethods) {
    for (int u : {1, 2, 3, 4, 5}) {
      Reg(
          std::string("Fig3.5/") + Name(m) + "/u:" + std::to_string(u),
          [m, u](benchmark::State& state) {
            auto ctx = GetCtx(200000, 3, 20, 2);
            auto qs = Queries(ctx->table, 10, u, 2, 2);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 3.6: dimensions in the ranking function (R = 4 data).
  for (Method m : kMethods) {
    for (int r : {2, 3, 4}) {
      Reg(
          std::string("Fig3.6/") + Name(m) + "/r:" + std::to_string(r),
          [m, r](benchmark::State& state) {
            auto ctx = GetCtx(200000, 3, 20, 4);
            auto qs = Queries(ctx->table, 10, 1.0, 2, r);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 3.7: database size (paper 1M..10M -> scaled).
  for (Method m : kMethods) {
    for (uint64_t t : {100000, 200000, 300000, 500000, 1000000}) {
      Reg(
          std::string("Fig3.7/") + Name(m) + "/T:" + std::to_string(t),
          [m, t](benchmark::State& state) {
            auto ctx = GetCtx(t, 3, 20, 2);
            auto qs = Queries(ctx->table, 10, 1.0, 2, 2);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 3.8: cardinality.
  for (Method m : kMethods) {
    for (int c : {10, 20, 50, 100}) {
      Reg(
          std::string("Fig3.8/") + Name(m) + "/C:" + std::to_string(c),
          [m, c](benchmark::State& state) {
            auto ctx = GetCtx(200000, 3, c, 2);
            auto qs = Queries(ctx->table, 10, 1.0, 2, 2);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 3.9: number of selection conditions (S = 4 data).
  for (Method m : kMethods) {
    for (int s : {2, 3, 4}) {
      Reg(
          std::string("Fig3.9/") + Name(m) + "/s:" + std::to_string(s),
          [m, s](benchmark::State& state) {
            auto ctx = GetCtx(200000, 4, 20, 2);
            auto qs = Queries(ctx->table, 10, 1.0, s, 2);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 3.10: base block size sensitivity (ranking cube only).
  for (int b : {100, 200, 500, 1000}) {
    Reg(
        std::string("Fig3.10/ranking_cube/B:") + std::to_string(b),
        [b](benchmark::State& state) {
          auto ctx = GetCtx(200000, 3, 20, 2, b);
          auto qs = Queries(ctx->table, 10, 1.0, 2, 2);
          for (auto _ : state) {
            Publish(state, RunMethod(*ctx, qs, Method::kCube));
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

}  // namespace
}  // namespace rankcube::bench

int main(int argc, char** argv) {
  rankcube::bench::ParseScale(&argc, argv);
  rankcube::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
