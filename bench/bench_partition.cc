// Partitioned ranking cubes: the pruning payoff and its safety proof.
//
// Models the deployment partitioning exists for — a time-windowed relation
// (dimension 0 is the arrival window, rank values drift so recent rows
// score best) managed as one partition per window. Two workloads:
//
//  * windowed: top-k with an equality predicate on a recent window (the
//    dashboard query). Partition pruning reduces the working set to one
//    partition; the headline series is pages/query, partitioned-16 vs one
//    unpartitioned database over the identical rows.
//  * scatter: no predicate — every partition is a candidate, and the
//    merge's S_k threshold prunes the cold ones (pruned_by_bound).
//
// Every query's answer is checked tuple-identical against the
// unpartitioned oracle (global tid = concatenation order), so the reported
// speedup can never come from a wrong answer. Results land in
// BENCH_partition.json. --smoke shrinks the dataset for CI and exits
// nonzero unless the pruning envelope held (>= 3x pages cut on windowed
// queries) and every parity check passed.
//
//   bench_partition [--rows=N] [--windows=N] [--queries=N] [--seed=N]
//                   [--json=PATH] [--smoke]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/query_builder.h"
#include "partition/partitioned_db.h"
#include "planner/rank_cube_db.h"

namespace rankcube {
namespace {

struct Flags {
  uint64_t rows = 64000;
  int windows = 16;
  int queries = 80;
  uint64_t seed = 7;  ///< data-generator seed (recorded in the JSON)
  std::string json = "BENCH_partition.json";
  bool smoke = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--windows=", &v)) {
      f.windows = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--queries=", &v)) {
      f.queries = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.smoke) {
    f.rows = std::min<uint64_t>(f.rows, 16000);
    f.queries = std::min(f.queries, 24);
  }
  if (f.windows < 2) f.windows = 2;
  return f;
}

struct Harness {
  std::unique_ptr<PartitionedDb> pdb;
  std::unique_ptr<RankCubeDb> oracle;
  /// (partition name, local tid) -> oracle tid (concatenation order).
  std::map<std::pair<std::string, Tid>, Tid> to_global;
};

/// Time-windowed relation: window w holds rows/windows rows whose rank
/// values drift downward with recency (recent windows score best under the
/// ascending top-k), the rank-cube shape a retention deployment sees.
Harness Build(const Flags& flags) {
  TableSchema schema;
  schema.sel_cardinality = {flags.windows, 8, 4};
  schema.num_rank_dims = 2;

  PartitionedDb::Options popts;
  popts.schema = schema;
  popts.partition_dim = 0;
  Harness h;
  h.pdb = PartitionedDb::Open(std::move(popts)).value();

  Table oracle_table(schema);
  Rng rng(flags.seed);
  const uint64_t per_window = flags.rows / flags.windows;
  for (int w = 0; w < flags.windows; ++w) {
    std::string name = "w" + std::to_string(w);
    Table seed(schema);
    // Recency drift: window w's scores center on (windows-1-w)/windows.
    double base = static_cast<double>(flags.windows - 1 - w) / flags.windows;
    for (uint64_t i = 0; i < per_window; ++i) {
      std::vector<int32_t> sel = {w, static_cast<int32_t>(rng.UniformInt(8)),
                                  static_cast<int32_t>(rng.UniformInt(4))};
      auto drift = [&] {
        double v = 0.8 * base + 0.25 * rng.Uniform01();
        return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
      };
      std::vector<double> rank = {drift(), drift()};
      h.to_global[{name, static_cast<Tid>(seed.num_rows())}] =
          static_cast<Tid>(oracle_table.num_rows());
      (void)seed.AddRow(sel, rank);
      (void)oracle_table.AddRow(sel, rank);
    }
    Status s = h.pdb->CreatePartition(name, {w, w + 1}, std::move(seed));
    if (!s.ok()) {
      std::fprintf(stderr, "create %s: %s\n", name.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
  }
  h.oracle = std::make_unique<RankCubeDb>(std::move(oracle_table));
  return h;
}

/// True iff the scatter answer maps exactly onto the oracle answer.
bool Identical(const Harness& h, const PartitionedTopK& got,
               const std::vector<ScoredTuple>& want) {
  if (got.tuples.size() != want.size()) return false;
  for (size_t i = 0; i < want.size(); ++i) {
    auto it = h.to_global.find({got.tuples[i].partition, got.tuples[i].tid});
    if (it == h.to_global.end()) return false;
    if (it->second != want[i].tid || got.tuples[i].score != want[i].score) {
      return false;
    }
  }
  return true;
}

struct Series {
  uint64_t queries = 0;
  uint64_t pages_partitioned = 0;
  uint64_t pages_unpartitioned = 0;
  uint64_t pruned_by_bound = 0;
  uint64_t pruned_by_predicate = 0;
  bool parity_ok = true;
};

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  std::fprintf(stderr,
               "bench_partition: %llu rows, %d windows, %d queries, "
               "seed=%llu\n",
               static_cast<unsigned long long>(flags.rows), flags.windows,
               flags.queries,
               static_cast<unsigned long long>(flags.seed));
  Harness h = Build(flags);
  Rng rng(flags.seed * 1000 + 99);

  auto run = [&](const TopKQuery& q, Series* s) {
    auto part = h.pdb->Query(q);
    auto whole = h.oracle->Query(q);
    if (!part.ok() || !whole.ok()) {
      std::fprintf(stderr, "query failed: %s / %s\n",
                   part.status().ToString().c_str(),
                   whole.status().ToString().c_str());
      std::exit(1);
    }
    s->queries++;
    s->pages_partitioned += part.value().stats.pages_read;
    s->pages_unpartitioned += whole.value().stats.pages_read;
    s->pruned_by_bound += part.value().scatter.pruned_by_bound;
    s->pruned_by_predicate += part.value().scatter.pruned_by_predicate;
    if (!Identical(h, part.value(), whole.value().tuples)) {
      s->parity_ok = false;
      std::fprintf(stderr, "PARITY FAILURE: query #%llu in series\n",
                   static_cast<unsigned long long>(s->queries));
    }
  };

  // Workload A: the dashboard query — top-k inside one recent window,
  // sometimes refined by a second predicate.
  Series windowed;
  for (int i = 0; i < flags.queries; ++i) {
    int w = flags.windows - 1 - static_cast<int>(rng.UniformInt(4));
    QueryBuilder qb;
    qb.Where(0, w);
    if (i % 2 == 0) qb.Where(1, static_cast<int32_t>(rng.UniformInt(8)));
    run(qb.OrderByLinear({1.0, 0.5}).Limit(10).Build(), &windowed);
  }

  // Workload B: no predicate — the scatter sweeps every partition and the
  // S_k threshold prunes the cold (old, high-scoring) windows.
  Series scatter;
  for (int i = 0; i < std::max(flags.queries / 4, 4); ++i) {
    run(QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(10).Build(),
        &scatter);
  }

  double pq_part =
      static_cast<double>(windowed.pages_partitioned) / windowed.queries;
  double pq_whole =
      static_cast<double>(windowed.pages_unpartitioned) / windowed.queries;
  double ratio = pq_part > 0 ? pq_whole / pq_part : 0.0;
  double bound_avg =
      static_cast<double>(scatter.pruned_by_bound) / scatter.queries;

  std::printf(
      "windowed: %.1f pages/query partitioned vs %.1f unpartitioned "
      "(%.2fx cut), parity %s\n",
      pq_part, pq_whole, ratio, windowed.parity_ok ? "ok" : "FAILED");
  std::printf(
      "scatter:  %.1f partitions/query pruned by S_k bound, parity %s\n",
      bound_avg, scatter.parity_ok ? "ok" : "FAILED");

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\n  \"bench\": \"partition_pruning\",\n"
      "  \"rows\": %llu,\n  \"windows\": %d,\n  \"seed\": %llu,\n"
      "  \"windowed\": {\"queries\": %llu,\n"
      "    \"pages_per_query_partitioned\": %.2f,\n"
      "    \"pages_per_query_unpartitioned\": %.2f,\n"
      "    \"pages_cut_ratio\": %.3f,\n"
      "    \"pruned_by_predicate_per_query\": %.2f,\n"
      "    \"tuple_identical\": %s},\n"
      "  \"scatter\": {\"queries\": %llu,\n"
      "    \"pruned_by_bound_per_query\": %.2f,\n"
      "    \"tuple_identical\": %s}\n}\n",
      static_cast<unsigned long long>(flags.rows), flags.windows,
      static_cast<unsigned long long>(flags.seed),
      static_cast<unsigned long long>(windowed.queries), pq_part, pq_whole,
      ratio,
      static_cast<double>(windowed.pruned_by_predicate) / windowed.queries,
      windowed.parity_ok ? "true" : "false",
      static_cast<unsigned long long>(scatter.queries), bound_avg,
      scatter.parity_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", flags.json.c_str());

  if (flags.smoke) {
    // The CI envelope: partition pruning must cut windowed pages >= 3x and
    // never change an answer.
    if (!windowed.parity_ok || !scatter.parity_ok) {
      std::fprintf(stderr, "SMOKE FAILURE: scatter answers diverged\n");
      return 1;
    }
    if (ratio < 3.0) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: pages cut %.2fx < 3x envelope\n", ratio);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
