// End-to-end serving benchmark: drives a RankCubeServer over loopback TCP
// with N tenants issuing mixed read/write traffic, in two disciplines:
//
//  * closed loop — each connection issues its next request the moment the
//    previous response lands; measures the server's sustainable throughput
//    and the per-request service latency.
//  * open loop — requests arrive on a fixed global schedule (--qps)
//    regardless of completions, and latency is measured from the scheduled
//    arrival time, so queueing delay is charged honestly (no coordinated
//    omission).
//
// Tenants are quota-limited (--max_inflight per tenant); with more
// connections per tenant than in-flight slots the bench deliberately drives
// admission control and reports the typed rejection counts next to the
// latency percentiles — QUOTA_EXCEEDED responses are the admission design
// working, not failures.
//
// Usage:
//   bench_serve [--rows=N] [--tenants=N] [--conns=N] [--duration_ms=N]
//               [--qps=N] [--write_pct=N] [--max_inflight=N]
//               [--cache_pages=N] [--latency_us=N] [--seed=N] [--json=PATH]
//               [--smoke]
//
// --smoke shrinks everything for CI (2s total) and exits nonzero unless
// both disciplines completed requests successfully.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "planner/rank_cube_db.h"
#include "server/client.h"
#include "server/server.h"

namespace rankcube {
namespace {

using Clock = std::chrono::steady_clock;

struct Flags {
  uint64_t rows = 20000;
  int tenants = 4;
  int conns = 4;  ///< connections per tenant
  int duration_ms = 2000;
  int qps = 2000;       ///< open-loop total arrival rate
  int write_pct = 10;   ///< % of requests that are INSERT/DELETE
  uint32_t max_inflight = 2;  ///< per-tenant quota (conns > this => rejections)
  size_t cache_pages = 4096;
  uint32_t latency_us = 20;
  uint64_t seed = 7;  ///< data-generator seed (recorded in the JSON)
  std::string json = "BENCH_serve.json";
  bool smoke = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--tenants=", &v)) {
      f.tenants = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--conns=", &v)) {
      f.conns = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--duration_ms=", &v)) {
      f.duration_ms = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--qps=", &v)) {
      f.qps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--write_pct=", &v)) {
      f.write_pct = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--max_inflight=", &v)) {
      f.max_inflight = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--cache_pages=", &v)) {
      f.cache_pages = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--latency_us=", &v)) {
      f.latency_us = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.smoke) {
    f.rows = std::min<uint64_t>(f.rows, 4000);
    f.duration_ms = std::min(f.duration_ms, 500);
    f.qps = std::min(f.qps, 500);
  }
  if (f.tenants < 1) f.tenants = 1;
  if (f.conns < 1) f.conns = 1;
  return f;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Per-worker tally, merged after the run.
struct Tally {
  std::vector<double> latencies_ms;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t err_quota = 0;
  uint64_t err_budget = 0;
  uint64_t err_deadline = 0;
  uint64_t err_other = 0;
  uint64_t transport_errors = 0;

  void Count(const Result<Response>& resp) {
    ++requests;
    if (!resp.ok()) {
      ++transport_errors;
      return;
    }
    switch (resp.value().code) {
      case WireCode::kOk:
        ++ok;
        break;
      case WireCode::kQuotaExceeded:
        ++err_quota;
        break;
      case WireCode::kBudgetExceeded:
        ++err_budget;
        break;
      case WireCode::kDeadlineExceeded:
        ++err_deadline;
        break;
      default:
        ++err_other;
        break;
    }
  }

  void Merge(const Tally& o) {
    latencies_ms.insert(latencies_ms.end(), o.latencies_ms.begin(),
                        o.latencies_ms.end());
    requests += o.requests;
    ok += o.ok;
    err_quota += o.err_quota;
    err_budget += o.err_budget;
    err_deadline += o.err_deadline;
    err_other += o.err_other;
    transport_errors += o.transport_errors;
  }
};

/// One request generator per connection: mixed reads (random top-k queries
/// over the synthetic schema) and writes (INSERT, occasionally DELETE of a
/// tid this worker inserted).
class RequestGen {
 public:
  RequestGen(const TableSchema& schema, int write_pct, uint64_t seed)
      : schema_(schema), write_pct_(write_pct), rng_(seed) {}

  /// Issues one request on `client` and returns the response.
  Result<Response> Issue(RankCubeClient& client) {
    if (static_cast<int>(rng_() % 100) < write_pct_) return IssueWrite(client);
    return client.Query(RandomQuery());
  }

 private:
  WireQuerySpec RandomQuery() {
    WireQuerySpec spec;
    spec.k = 10;
    spec.order = "linear:";
    for (int d = 0; d < schema_.num_rank_dims; ++d) {
      if (d > 0) spec.order += ',';
      spec.order += std::to_string(1 + rng_() % 4);
    }
    // 0..2 predicates on distinct dimensions (duplicate dims would be
    // rejected by query validation).
    int npreds = static_cast<int>(rng_() % 3);
    int32_t dim = static_cast<int32_t>(rng_() % schema_.num_sel_dims());
    for (int i = 0; i < npreds && i < schema_.num_sel_dims(); ++i) {
      int32_t val =
          static_cast<int32_t>(rng_() % schema_.sel_cardinality[dim]);
      spec.where.emplace_back(dim, val);
      dim = (dim + 1) % schema_.num_sel_dims();
    }
    return spec;
  }

  Result<Response> IssueWrite(RankCubeClient& client) {
    if (!inserted_.empty() && rng_() % 4 == 0) {
      // Swap-remove so a tid is deleted at most once (tids are worker-
      // private, so no other connection can have tombstoned it first).
      size_t idx = rng_() % inserted_.size();
      uint32_t tid = inserted_[idx];
      inserted_[idx] = inserted_.back();
      inserted_.pop_back();
      return client.Delete(tid);
    }
    std::vector<int32_t> sel(schema_.num_sel_dims());
    for (int d = 0; d < schema_.num_sel_dims(); ++d) {
      sel[d] = static_cast<int32_t>(rng_() % schema_.sel_cardinality[d]);
    }
    std::vector<double> rank(schema_.num_rank_dims);
    for (int d = 0; d < schema_.num_rank_dims; ++d) {
      rank[d] = static_cast<double>(rng_() % 1000) / 1000.0;
    }
    Result<Response> resp = client.Insert(sel, rank);
    if (resp.ok() && resp.value().ok() && !resp.value().lines.empty()) {
      // "tid=N"
      const std::string& line = resp.value().lines[0];
      if (line.rfind("tid=", 0) == 0) {
        inserted_.push_back(
            static_cast<uint32_t>(std::strtoul(line.c_str() + 4, nullptr, 10)));
      }
    }
    return resp;
  }

  TableSchema schema_;
  int write_pct_;
  std::mt19937_64 rng_;
  std::vector<uint32_t> inserted_;
};

struct LoopResult {
  Tally tally;
  double wall_s = 0.0;

  double Qps() const {
    return wall_s > 0 ? static_cast<double>(tally.requests) / wall_s : 0.0;
  }
};

/// Closed loop: every connection keeps exactly one request in flight.
LoopResult RunClosedLoop(const Flags& flags, const TableSchema& schema,
                         uint16_t port) {
  int workers = flags.tenants * flags.conns;
  std::vector<Tally> tallies(workers);
  std::vector<std::thread> threads;
  auto start = Clock::now();
  auto end = start + std::chrono::milliseconds(flags.duration_ms);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto client = RankCubeClient::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      std::string tenant = "t" + std::to_string(w % flags.tenants);
      if (!client.value().Hello(tenant).ok()) return;
      RequestGen gen(schema, flags.write_pct, 1000 + w);
      while (Clock::now() < end) {
        auto t0 = Clock::now();
        Result<Response> resp = gen.Issue(client.value());
        auto t1 = Clock::now();
        tallies[w].Count(resp);
        if (!resp.ok()) break;  // connection torn down
        tallies[w].latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  LoopResult result;
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (const Tally& t : tallies) result.tally.Merge(t);
  return result;
}

/// Open loop: arrivals on a fixed global schedule; latency includes the
/// queueing delay behind slow responses (measured from scheduled arrival).
LoopResult RunOpenLoop(const Flags& flags, const TableSchema& schema,
                       uint16_t port) {
  int workers = flags.tenants * flags.conns;
  std::vector<Tally> tallies(workers);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> next_arrival{0};
  double interval_ns = 1e9 / std::max(1, flags.qps);
  auto start = Clock::now();
  auto deadline = start + std::chrono::milliseconds(flags.duration_ms);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto client = RankCubeClient::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      std::string tenant = "t" + std::to_string(w % flags.tenants);
      if (!client.value().Hello(tenant).ok()) return;
      RequestGen gen(schema, flags.write_pct, 2000 + w);
      while (true) {
        uint64_t i = next_arrival.fetch_add(1, std::memory_order_relaxed);
        auto arrival =
            start + std::chrono::nanoseconds(
                        static_cast<int64_t>(static_cast<double>(i) *
                                             interval_ns));
        if (arrival >= deadline) break;
        std::this_thread::sleep_until(arrival);
        Result<Response> resp = gen.Issue(client.value());
        auto done = Clock::now();
        tallies[w].Count(resp);
        if (!resp.ok()) break;
        tallies[w].latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(done - arrival).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  LoopResult result;
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (const Tally& t : tallies) result.tally.Merge(t);
  return result;
}

void PrintLoop(const char* name, const LoopResult& r) {
  std::printf(
      "%-11s qps=%9.1f  reqs=%-7llu ok=%-7llu quota=%-6llu budget=%-5llu "
      "deadline=%-5llu other=%-4llu p50=%7.3fms p99=%7.3fms p999=%7.3fms\n",
      name, r.Qps(), static_cast<unsigned long long>(r.tally.requests),
      static_cast<unsigned long long>(r.tally.ok),
      static_cast<unsigned long long>(r.tally.err_quota),
      static_cast<unsigned long long>(r.tally.err_budget),
      static_cast<unsigned long long>(r.tally.err_deadline),
      static_cast<unsigned long long>(r.tally.err_other),
      Percentile(r.tally.latencies_ms, 0.50),
      Percentile(r.tally.latencies_ms, 0.99),
      Percentile(r.tally.latencies_ms, 0.999));
}

void WriteLoopJson(std::FILE* out, const char* name, const LoopResult& r) {
  std::fprintf(
      out,
      "  \"%s\": {\"qps\": %.1f, \"requests\": %llu, \"ok\": %llu, "
      "\"rejected_quota\": %llu, \"rejected_budget\": %llu, "
      "\"rejected_deadline\": %llu, \"err_other\": %llu, "
      "\"transport_errors\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"p999_ms\": %.3f}",
      name, r.Qps(), static_cast<unsigned long long>(r.tally.requests),
      static_cast<unsigned long long>(r.tally.ok),
      static_cast<unsigned long long>(r.tally.err_quota),
      static_cast<unsigned long long>(r.tally.err_budget),
      static_cast<unsigned long long>(r.tally.err_deadline),
      static_cast<unsigned long long>(r.tally.err_other),
      static_cast<unsigned long long>(r.tally.transport_errors),
      Percentile(r.tally.latencies_ms, 0.50),
      Percentile(r.tally.latencies_ms, 0.99),
      Percentile(r.tally.latencies_ms, 0.999));
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  SyntheticSpec spec;
  spec.num_rows = flags.rows;
  spec.num_sel_dims = 3;
  spec.cardinality = 8;
  spec.num_rank_dims = 2;
  spec.seed = flags.seed;

  RankCubeDb::Options db_options;
  db_options.store.cache_pages = flags.cache_pages;
  db_options.store.read_latency_us = flags.latency_us;
  RankCubeDb db(GenerateSynthetic(spec), db_options);

  RankCubeServer::Options server_options;
  server_options.port = 0;  // ephemeral
  for (int t = 0; t < flags.tenants; ++t) {
    server_options.tenant_quotas["t" + std::to_string(t)] =
        TenantQuota{flags.max_inflight, /*page_budget=*/0, /*deadline_ms=*/0};
  }
  RankCubeServer server(&db, server_options);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "bench_serve: rows=%llu tenants=%d conns/tenant=%d write_pct=%d "
      "max_inflight=%u duration=%dms port=%u\n",
      static_cast<unsigned long long>(flags.rows), flags.tenants, flags.conns,
      flags.write_pct, flags.max_inflight, flags.duration_ms,
      static_cast<unsigned>(server.port()));

  const TableSchema& schema = db.table().schema();

  // Warm the routed engines once so neither loop pays lazy-build I/O on its
  // first request.
  {
    auto client = RankCubeClient::Connect("127.0.0.1", server.port());
    if (client.ok()) {
      RequestGen gen(schema, /*write_pct=*/0, 1);
      for (int i = 0; i < 10; ++i) (void)gen.Issue(client.value());
    }
  }

  LoopResult closed = RunClosedLoop(flags, schema, server.port());
  PrintLoop("closed-loop", closed);
  LoopResult open = RunOpenLoop(flags, schema, server.port());
  PrintLoop("open-loop", open);

  server.Stop();

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"config\": {\"rows\": %llu, \"tenants\": %d, "
               "\"conns_per_tenant\": %d, \"duration_ms\": %d, "
               "\"open_loop_qps_target\": %d, \"write_pct\": %d, "
               "\"max_inflight\": %u, \"cache_pages\": %zu, "
               "\"latency_us\": %u, \"seed\": %llu},\n",
               static_cast<unsigned long long>(flags.rows), flags.tenants,
               flags.conns, flags.duration_ms, flags.qps, flags.write_pct,
               flags.max_inflight, flags.cache_pages, flags.latency_us,
               static_cast<unsigned long long>(flags.seed));
  WriteLoopJson(out, "closed_loop", closed);
  std::fprintf(out, ",\n");
  WriteLoopJson(out, "open_loop", open);
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", flags.json.c_str());

  if (flags.smoke) {
    bool healthy = closed.tally.ok > 0 && open.tally.ok > 0 &&
                   closed.tally.transport_errors == 0 &&
                   open.tally.transport_errors == 0 &&
                   closed.tally.err_other == 0 && open.tally.err_other == 0;
    if (!healthy) {
      std::fprintf(stderr, "smoke check FAILED\n");
      return 1;
    }
    std::printf("smoke check passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
