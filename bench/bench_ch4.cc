// Reproduces Figures 4.8-4.13: signature-cube construction / size /
// compression / incremental maintenance, and query time + disk accesses
// against the Boolean and Ranking configurations (§4.4).
#include "bench/bench_common.h"

#include "common/stopwatch.h"
#include "core/signature_cube.h"
#include "engine/builtin_engines.h"
#include "index/btree.h"

namespace rankcube::bench {
namespace {

Table MakeData(uint64_t rows, int c) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = 3;  // Db = 3
  spec.cardinality = c;   // C = 100 default
  spec.num_rank_dims = 3; // Dp = 3
  return GenerateSynthetic(spec);
}

struct Ctx {
  Table table;
  PageStore store;
  IoSession io{&store};
  std::shared_ptr<SignatureCube> cube;  ///< size/compression figures
  std::unique_ptr<RankingEngine> signature;
  std::unique_ptr<RankingEngine> boolean_first;
  std::unique_ptr<RankingEngine> ranking_first;

  Ctx(uint64_t rows, int c) : table(MakeData(rows, c)) {
    cube = std::make_shared<SignatureCube>(table, io);
    signature = MakeSignatureCubeEngine(table, cube);
    boolean_first =
        MakeBooleanFirstEngine(table, std::make_shared<BooleanFirst>(table));
    // Ranking-first shares the cube's R-tree partition (aliasing pointer
    // keeps the cube alive).
    ranking_first = MakeRankingFirstEngine(
        table, std::shared_ptr<const RTree>(cube, &cube->rtree()));
  }

  const RankingEngine& Engine(const std::string& method) const {
    if (method == "boolean") return *boolean_first;
    if (method == "ranking") return *ranking_first;
    return *signature;
  }
};

std::shared_ptr<Ctx> GetCtx(uint64_t rows, int c = 100) {
  std::string key =
      "ch4:" + std::to_string(Rows(rows)) + ":" + std::to_string(c);
  return Cached<Ctx>(key,
                     [&] { return std::make_shared<Ctx>(Rows(rows), c); });
}

RankingFunctionPtr Function(const std::string& kind, Rng* rng) {
  if (kind == "linear") {
    return std::make_shared<LinearFunction>(std::vector<double>{
        1 + rng->Uniform01(), 1 + rng->Uniform01(), 1 + rng->Uniform01()});
  }
  if (kind == "distance") {
    return std::make_shared<QuadraticDistance>(
        std::vector<double>{1, 1, 1},
        std::vector<double>{rng->Uniform01(), rng->Uniform01(),
                            rng->Uniform01()});
  }
  return std::make_shared<SquaredLinear>(std::vector<double>{2, -1, -1});
}

std::vector<TopKQuery> Queries(const Table& t, int k,
                               const std::string& kind) {
  Rng rng(77);
  std::vector<TopKQuery> out;
  for (int i = 0; i < 20; ++i) {
    TopKQuery q;
    Tid anchor = static_cast<Tid>(rng.UniformInt(t.num_rows()));
    q.predicates = {{0, t.sel(anchor, 0)}, {1, t.sel(anchor, 1)}};
    q.function = Function(kind, &rng);
    q.k = k;
    out.push_back(std::move(q));
  }
  return out;
}

void RegisterAll() {
  const std::vector<uint64_t> kSizes = {100000, 200000, 500000};

  // Fig 4.8 / 4.9: construction time and materialized size w.r.t. T for
  // P-Cube (signature cubing), R-tree (tuple-at-a-time), B-trees.
  for (uint64_t t : kSizes) {
    Reg(
        "Fig4.8_4.9/build/T:" + std::to_string(t),
        [t](benchmark::State& state) {
          Table table = MakeData(Rows(t), 100);
          PageStore store;
  IoSession io{&store};
          for (auto _ : state) {
            SignatureCubeOptions opt;
            opt.bulk_load = false;  // the 2007 system inserts tuple by tuple
            SignatureCube cube(table, io, opt);
            state.counters["pcube_ms"] = cube.construction_ms();
            state.counters["rtree_ms"] = cube.rtree_build_ms();
            state.counters["pcube_bytes"] =
                static_cast<double>(cube.CompressedBytes());
            state.counters["rtree_bytes"] =
                static_cast<double>(cube.rtree().SizeBytes());
            Stopwatch watch;
            std::vector<std::unique_ptr<BTree>> btrees;
            size_t bbytes = 0;
            for (int d = 0; d < table.num_rank_dims(); ++d) {
              btrees.push_back(std::make_unique<BTree>(table, d, io));
              bbytes += btrees.back()->SizeBytes();
            }
            state.counters["btree_ms"] = watch.ElapsedMs();
            state.counters["btree_bytes"] = static_cast<double>(bbytes);
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }

  // Fig 4.10: signature size, baseline coding vs adaptive compression.
  for (int c : {10, 100, 1000}) {
    Reg(
        "Fig4.10/compression/C:" + std::to_string(c),
        [c](benchmark::State& state) {
          auto ctx = GetCtx(200000, c);
          for (auto _ : state) {
            state.counters["baseline_bytes"] =
                static_cast<double>(ctx->cube->BaselineBytes());
            state.counters["compressed_bytes"] =
                static_cast<double>(ctx->cube->CompressedBytes());
          }
        })
        ->Iterations(1);
  }

  // Fig 4.11: incremental update cost w.r.t. batch size and T.
  for (uint64_t t : {uint64_t{100000}, uint64_t{200000}}) {
    for (int batch : {1, 10, 100}) {
      Reg(
          "Fig4.11/incremental/T:" + std::to_string(t) +
              "/batch:" + std::to_string(batch),
          [t, batch](benchmark::State& state) {
            // Fresh cube per run (inserts mutate it).
            Table table = MakeData(Rows(t), 100);
            PageStore store;
  IoSession io{&store};
            SignatureCube cube(table, io);
            Rng rng(3);
            for (auto _ : state) {
              std::vector<Tid> fresh;
              for (int i = 0; i < batch; ++i) {
                std::vector<int32_t> sel(3);
                std::vector<double> rank(3);
                for (int d = 0; d < 3; ++d) {
                  sel[d] = static_cast<int32_t>(rng.UniformInt(100));
                  rank[d] = rng.Uniform01();
                }
                Status st = table.AddRow(sel, rank);
                (void)st;
                fresh.push_back(static_cast<Tid>(table.num_rows() - 1));
              }
              Stopwatch watch;
              cube.InsertBatch(fresh, &io);
              state.counters["ms_per_tuple"] = watch.ElapsedMs() / batch;
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }

  // Fig 4.12: execution time w.r.t. k (linear function).
  for (const char* method : {"boolean", "ranking", "signature"}) {
    for (int k : {10, 20, 50, 100}) {
      Reg(
          std::string("Fig4.12/") + method + "/k:" + std::to_string(k),
          [method, k](benchmark::State& state) {
            auto ctx = GetCtx(200000, 20);  // moderate selectivity: k <= matches
            auto qs = Queries(ctx->table, k, "linear");
            for (auto _ : state) {
              Publish(state,
                      RunWorkload(qs, &ctx->io, ctx->Engine(method)));
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }

  // Fig 4.13: R-tree block accesses w.r.t. function kind, k = 100.
  for (const char* method : {"ranking", "signature"}) {
    for (const char* kind : {"linear", "distance", "general"}) {
      Reg(
          std::string("Fig4.13/") + method + "/f:" + kind,
          [method, kind](benchmark::State& state) {
            auto ctx = GetCtx(200000, 20);
            auto qs = Queries(ctx->table, 100, kind);
            for (auto _ : state) {
              ctx->io.ResetStats();
              auto res = RunWorkload(qs, &ctx->io, ctx->Engine(method));
              Publish(state, res);
              state.counters["rtree_pages"] = static_cast<double>(
                  ctx->io.stats(IoCategory::kRTree).physical /
                  qs.size());
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace rankcube::bench

int main(int argc, char** argv) {
  rankcube::bench::ParseScale(&argc, argv);
  rankcube::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
