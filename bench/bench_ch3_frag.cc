// Reproduces Figures 3.11-3.15: ranking fragments on high-dimensional data
// (12 selection dimensions) plus the CoverType-like real-data experiment.
// Every method is created from the EngineRegistry and runs through
// RankingEngine::Execute.
#include "bench/bench_common.h"
#include "cube/fragments.h"
#include "engine/registry.h"

namespace rankcube::bench {
namespace {

struct Ctx {
  Table table;
  PageStore store;
  IoSession io{&store};
  std::unique_ptr<RankingEngine> fragments;
  std::unique_ptr<RankingEngine> boolean_first;
  std::unique_ptr<RankingEngine> rank_mapping;  // one composite per fragment

  Ctx(Table&& t, int fragment_size) : table(std::move(t)) {
    EngineBuildOptions options;
    options.fragments.block_size = 300;
    options.fragments.fragment_size = fragment_size;
    options.rank_mapping_groups =
        GroupDimensions(table.num_sel_dims(), fragment_size);
    auto& registry = EngineRegistry::Global();
    fragments =
        MustEngine(registry.Create("fragments", table, io, options));
    boolean_first =
        MustEngine(registry.Create("boolean_first", table, io));
    rank_mapping =
        MustEngine(registry.Create("rank_mapping", table, io, options));
  }
};

std::shared_ptr<Ctx> SynthCtx(uint64_t rows, int s, int f) {
  std::string key = "frag:" + std::to_string(Rows(rows)) + ":" +
                    std::to_string(s) + ":" + std::to_string(f);
  return Cached<Ctx>(key, [&] {
    SyntheticSpec spec;
    spec.num_rows = Rows(rows);
    spec.num_sel_dims = s;
    spec.cardinality = 20;
    spec.num_rank_dims = 2;
    return std::make_shared<Ctx>(GenerateSynthetic(spec), f);
  });
}

std::shared_ptr<Ctx> CovtypeCtx() {
  return Cached<Ctx>("frag:covtype", [&] {
    CovtypeSpec spec;
    spec.base_rows = Rows(60000);
    return std::make_shared<Ctx>(GenerateCovtypeLike(spec),
                                 /*fragment_size=*/3);
  });
}

std::vector<TopKQuery> Queries(const Table& t, int s, int k, int r = 2,
                               uint64_t seed = 1234) {
  QueryWorkloadSpec q;
  q.num_queries = 20;
  q.num_predicates = s;
  q.num_rank_used = r;
  q.k = k;
  q.seed = seed;
  return GenerateQueries(t, q);
}

enum class Method { kFragments, kRankMapping, kBaseline };

WorkloadResult RunMethod(Ctx& ctx, const std::vector<TopKQuery>& queries,
                         Method m) {
  switch (m) {
    case Method::kFragments:
      return RunWorkload(queries, &ctx.io, *ctx.fragments);
    case Method::kRankMapping:
      return RunWorkload(queries, &ctx.io, *ctx.rank_mapping);
    case Method::kBaseline:
      return RunWorkload(queries, &ctx.io, *ctx.boolean_first);
  }
  return {};
}

const char* Name(Method m) {
  switch (m) {
    case Method::kFragments:
      return "ranking_fragments";
    case Method::kRankMapping:
      return "rank_mapping";
    default:
      return "baseline";
  }
}

void RegisterAll() {
  constexpr Method kMethods[] = {Method::kFragments, Method::kRankMapping,
                                 Method::kBaseline};
  // Fig 3.11: space usage w.r.t. number of selection dimensions.
  for (int s : {3, 6, 9, 12}) {
    Reg(
        "Fig3.11/space/S:" + std::to_string(s),
        [s](benchmark::State& state) {
          auto ctx = SynthCtx(100000, s, 2);
          for (auto _ : state) {
            state.counters["rf_bytes"] =
                static_cast<double>(ctx->fragments->SizeBytes());
            state.counters["rm_bytes"] =
                static_cast<double>(ctx->rank_mapping->SizeBytes());
            state.counters["bl_bytes"] =
                static_cast<double>(ctx->boolean_first->SizeBytes());
          }
        })
        ->Iterations(1);
  }
  // Fig 3.12: time w.r.t. number of covering fragments (crafted queries).
  for (int cover : {1, 2, 3}) {
    Reg(
        "Fig3.12/ranking_fragments/cover:" + std::to_string(cover),
        [cover](benchmark::State& state) {
          auto ctx = SynthCtx(200000, 12, 2);
          // Fragment grouping is {0,1},{2,3},...: queries on dims from
          // `cover` distinct fragments.
          std::vector<int> dims;
          if (cover == 1) dims = {0, 1};
          if (cover == 2) dims = {0, 2};
          if (cover == 3) dims = {0, 2, 4};
          std::vector<TopKQuery> qs;
          Rng rng(5);
          for (int i = 0; i < 20; ++i) {
            TopKQuery q;
            Tid anchor =
                static_cast<Tid>(rng.UniformInt(ctx->table.num_rows()));
            for (int d : dims) {
              q.predicates.push_back({d, ctx->table.sel(anchor, d)});
            }
            q.function = std::make_shared<LinearFunction>(
                std::vector<double>{1.0, 1.0});
            q.k = 10;
            qs.push_back(std::move(q));
          }
          for (auto _ : state) {
            Publish(state, RunMethod(*ctx, qs, Method::kFragments));
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  // Fig 3.13: fragment size.
  for (int f : {1, 2, 3}) {
    Reg(
        "Fig3.13/ranking_fragments/F:" + std::to_string(f),
        [f](benchmark::State& state) {
          auto ctx = SynthCtx(200000, 12, f);
          auto qs = Queries(ctx->table, 3, 10);
          for (auto _ : state) {
            Publish(state, RunMethod(*ctx, qs, Method::kFragments));
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  // Fig 3.14: number of selection dimensions (s = 3 queries).
  for (Method m : kMethods) {
    for (int s : {3, 6, 9, 12}) {
      Reg(
          std::string("Fig3.14/") + Name(m) + "/S:" + std::to_string(s),
          [m, s](benchmark::State& state) {
            auto ctx = SynthCtx(200000, s, 2);
            auto qs = Queries(ctx->table, 3, 10);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 3.15: CoverType-like data, time w.r.t. k (F = 3, s = 3, r = 3).
  for (Method m : kMethods) {
    for (int k : {5, 10, 15, 20}) {
      Reg(
          std::string("Fig3.15/") + Name(m) + "/k:" + std::to_string(k),
          [m, k](benchmark::State& state) {
            auto ctx = CovtypeCtx();
            auto qs = Queries(ctx->table, 3, k, 3);
            for (auto _ : state) Publish(state, RunMethod(*ctx, qs, m));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace rankcube::bench

int main(int argc, char** argv) {
  rankcube::bench::ParseScale(&argc, argv);
  rankcube::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
