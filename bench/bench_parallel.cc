// Parallel-scaling harness: runs one synthetic workload through every
// registered engine on 1..N worker threads via BatchExecutor::ExecuteParallel
// and reports queries/sec, pages/query and latency percentiles. Unlike the
// figure-reproduction benches this binary does not need google-benchmark; it
// always builds, and it emits a machine-readable JSON report so the perf
// trajectory of the engine can be tracked commit over commit.
//
// Usage:
//   bench_parallel [--threads=N] [--rows=N] [--queries=N] [--k=N]
//                  [--cache_pages=N] [--engines=a,b,c] [--seed=N]
//                  [--json=PATH]
//
// --threads gives the maximum worker count; the harness sweeps
// {1, 2, 4, ...} powers of two up to it. Output goes to stdout (one line
// per configuration) and to --json (default BENCH_parallel.json).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/registry.h"
#include "gen/queries.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

struct Flags {
  int threads = 4;
  uint64_t rows = 20000;
  int queries = 200;
  int k = 10;
  size_t cache_pages = 0;
  /// Simulated device latency per missed page; the default matches the
  /// 0.1 ms/page disk-weighted cost bench_common has always reported.
  uint32_t latency_us = 100;
  std::string engines;  // comma-separated; empty = all registered
  uint64_t seed = 7;    ///< data-generator seed (recorded in the JSON)
  std::string json = "BENCH_parallel.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--threads=", &v)) {
      f.threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--queries=", &v)) {
      f.queries = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--k=", &v)) {
      f.k = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--cache_pages=", &v)) {
      f.cache_pages = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--latency_us=", &v)) {
      f.latency_us = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--engines=", &v)) {
      f.engines = v;
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.threads < 1) f.threads = 1;
  return f;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct Row {
  std::string engine;
  int threads = 0;
  size_t queries = 0;
  double qps = 0.0;
  double pages_per_query = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double speedup_vs_1 = 0.0;
  uint64_t construction_pages = 0;
};

}  // namespace

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  SyntheticSpec spec;
  spec.num_rows = flags.rows;
  spec.num_sel_dims = 3;
  spec.cardinality = 8;
  spec.num_rank_dims = 2;
  spec.seed = flags.seed;
  Table table = GenerateSynthetic(spec);

  PageStore store({.page_size = 4096,
                   .cache_pages = flags.cache_pages,
                   .read_latency_us = flags.latency_us});

  auto& registry = EngineRegistry::Global();
  std::vector<std::string> names = flags.engines.empty()
                                       ? registry.Names()
                                       : SplitCsv(flags.engines);

  std::vector<int> thread_counts;
  for (int t = 1; t < flags.threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(flags.threads);

  std::vector<Row> rows;
  for (const std::string& name : names) {
    // Build under a dedicated construction session so the figures include
    // honest construction I/O next to construction time.
    IoSession build_io(&store);
    auto engine = registry.Create(name, table, build_io);
    if (!engine.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", name.c_str(),
                   engine.status().ToString().c_str());
      continue;
    }

    QueryWorkloadSpec qspec;
    qspec.num_queries = flags.queries;
    qspec.num_predicates = (*engine)->SupportsPredicates() ? 2 : 0;
    qspec.num_rank_used = 2;
    qspec.k = flags.k;
    qspec.seed = 4242;
    std::vector<TopKQuery> workload = GenerateQueries(table, qspec);

    BatchExecutor batch(engine->get(), {.record_latencies = true});
    // Short untimed warmup (code paths, allocator); with simulated latency
    // on, timing is dominated by deterministic device waits anyway.
    std::vector<TopKQuery> warmup(
        workload.begin(),
        workload.begin() + std::min<size_t>(10, workload.size()));
    (void)batch.ExecuteAll(warmup, store);

    double qps_at_1 = 0.0;
    for (int t : thread_counts) {
      auto report = batch.ExecuteParallel(workload, store, t);
      if (!report.ok() || report.value().failed > 0) {
        const Status& s = report.ok() ? report.value().first_error
                                      : report.status();
        std::fprintf(stderr, "workload failed on %s (t=%d): %s\n",
                     name.c_str(), t, s.ToString().c_str());
        std::exit(1);
      }
      const BatchReport& r = report.value();
      Row row;
      row.engine = name;
      row.threads = t;
      row.queries = r.succeeded();
      row.qps = r.Qps();
      row.pages_per_query = r.AvgPhysicalPages();
      row.p50_ms = Percentile(r.latencies_ms, 0.50);
      row.p99_ms = Percentile(r.latencies_ms, 0.99);
      row.construction_pages = build_io.TotalPhysical();
      if (t == 1) qps_at_1 = row.qps;
      row.speedup_vs_1 = qps_at_1 > 0.0 ? row.qps / qps_at_1 : 0.0;
      rows.push_back(row);
      std::printf(
          "%-16s threads=%-2d qps=%10.1f  pages/q=%8.1f  p50=%7.3fms  "
          "p99=%7.3fms  speedup=%5.2fx  build_pages=%llu\n",
          name.c_str(), t, row.qps, row.pages_per_query, row.p50_ms,
          row.p99_ms, row.speedup_vs_1,
          static_cast<unsigned long long>(row.construction_pages));
    }
  }

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"parallel_scaling\",\n"
               "  \"scoring\": \"batch\",\n"
               "  \"rows\": %llu,\n  \"seed\": %llu,\n"
               "  \"queries\": %d,\n  \"k\": %d,\n"
               "  \"cache_pages\": %llu,\n  \"read_latency_us\": %u,\n"
               "  \"max_threads\": %d,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(flags.rows),
               static_cast<unsigned long long>(flags.seed), flags.queries,
               flags.k, static_cast<unsigned long long>(flags.cache_pages),
               flags.latency_us, flags.threads);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"engine\": \"%s\", \"threads\": %d, \"queries\": %zu, "
        "\"qps\": %.1f, \"pages_per_query\": %.2f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"speedup_vs_1\": %.3f, "
        "\"construction_pages\": %llu}%s\n",
        r.engine.c_str(), r.threads, r.queries, r.qps, r.pages_per_query,
        r.p50_ms, r.p99_ms, r.speedup_vs_1,
        static_cast<unsigned long long>(r.construction_pages),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", flags.json.c_str());
  return 0;
}

}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
