// Reproduces Figures 7.3-7.14: skyline queries with boolean predicates —
// Boolean / Ranking / Signature configurations, dynamic skylines, the
// signature-loading breakdown, and drill-down / roll-up heap reuse (§7.3).
#include "bench/bench_common.h"
#include "skyline/olap_session.h"
#include "skyline/skyline_cube.h"

namespace rankcube::bench {
namespace {

struct Ctx {
  Table table;
  PageStore store;
  IoSession io{&store};
  std::unique_ptr<SkylineEngine> engine;

  Ctx(uint64_t rows, int dp, int c, RankDistribution dist, double zipf)
      : table(Make(rows, dp, c, dist, zipf)) {
    engine = std::make_unique<SkylineEngine>(table, io);
  }

  static Table Make(uint64_t rows, int dp, int c, RankDistribution dist,
                    double zipf) {
    SyntheticSpec spec;
    spec.num_rows = rows;
    spec.num_sel_dims = 3;
    spec.cardinality = c;
    spec.num_rank_dims = dp;
    spec.distribution = dist;
    spec.sel_zipf_theta = zipf;
    spec.seed = 83;
    return GenerateSynthetic(spec);
  }
};

std::shared_ptr<Ctx> GetCtx(uint64_t rows, int dp = 3, int c = 10,
                            RankDistribution dist = RankDistribution::kUniform,
                            double zipf = 0.0) {
  std::string key = "ch7:" + std::to_string(Rows(rows)) + ":" +
                    std::to_string(dp) + ":" + std::to_string(c) + ":" +
                    std::to_string(static_cast<int>(dist)) + ":" +
                    std::to_string(zipf);
  return Cached<Ctx>(key, [&] {
    return std::make_shared<Ctx>(Rows(rows), dp, c, dist, zipf);
  });
}

enum class Method { kBoolean, kRanking, kSignature };
const char* Name(Method m) {
  switch (m) {
    case Method::kBoolean: return "Boolean";
    case Method::kRanking: return "Ranking";
    default: return "Signature";
  }
}

struct SkyResult {
  double ms = 0, io = 0, heap = 0, sig_ms = 0, sig_pages = 0;
};

SkyResult RunMethod(Ctx& ctx, Method m, int num_preds,
                    bool dynamic = false, int nq = 10) {
  Rng rng(91);
  SkyResult out;
  for (int i = 0; i < nq; ++i) {
    std::vector<Predicate> preds;
    Tid anchor = static_cast<Tid>(rng.UniformInt(ctx.table.num_rows()));
    for (int d = 0; d < num_preds; ++d) {
      preds.push_back({d, ctx.table.sel(anchor, d)});
    }
    SkylineTransform tf =
        dynamic ? SkylineTransform::Dynamic([&] {
            std::vector<double> q(ctx.table.num_rank_dims());
            for (auto& v : q) v = rng.Uniform01();
            return q;
          }())
                : SkylineTransform::Static(ctx.table.num_rank_dims());
    ExecStats stats;
    uint64_t before = ctx.io.TotalPhysical();
    switch (m) {
      case Method::kBoolean: {
        auto r = ctx.engine->BooleanFirst(preds, tf, &ctx.io, &stats);
        benchmark::DoNotOptimize(r);
        break;
      }
      case Method::kRanking: {
        auto r = ctx.engine->RankingFirst(preds, tf, &ctx.io, &stats);
        benchmark::DoNotOptimize(r);
        break;
      }
      case Method::kSignature: {
        auto r = ctx.engine->Signature(preds, tf, &ctx.io, &stats);
        benchmark::DoNotOptimize(r);
        break;
      }
    }
    out.ms += stats.time_ms;
    out.io += static_cast<double>(ctx.io.TotalPhysical() - before);
    out.heap += static_cast<double>(stats.peak_heap);
    out.sig_ms += stats.signature_ms;
    out.sig_pages += static_cast<double>(stats.signature_pages);
  }
  out.ms /= nq;
  out.io /= nq;
  out.heap /= nq;
  out.sig_ms /= nq;
  out.sig_pages /= nq;
  return out;
}

void Publish7(benchmark::State& state, const SkyResult& r) {
  state.counters["ms_per_query"] = r.ms;
  state.counters["io_pages"] = r.io;
  state.counters["peak_heap"] = r.heap;
  state.counters["sig_ms"] = r.sig_ms;
  state.counters["sig_pages"] = r.sig_pages;
  state.counters["sim_cost_ms"] = r.ms + 0.1 * r.io;
}

void RegisterAll() {
  constexpr Method kAll[] = {Method::kBoolean, Method::kRanking,
                             Method::kSignature};
  // Figs 7.3-7.5: time / disk accesses / peak heap w.r.t. T.
  for (Method m : kAll) {
    for (uint64_t t : {uint64_t{50000}, uint64_t{100000}, uint64_t{200000},
                       uint64_t{400000}}) {
      Reg(
          std::string("Fig7.3_7.4_7.5/") + Name(m) + "/T:" + std::to_string(t),
          [m, t](benchmark::State& state) {
            auto ctx = GetCtx(t);
            for (auto _ : state) Publish7(state, RunMethod(*ctx, m, 1));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 7.6: cardinality of boolean dimensions.
  for (Method m : kAll) {
    for (int c : {10, 100, 1000}) {
      Reg(
          std::string("Fig7.6/") + Name(m) + "/C:" + std::to_string(c),
          [m, c](benchmark::State& state) {
            auto ctx = GetCtx(100000, 3, c);
            for (auto _ : state) Publish7(state, RunMethod(*ctx, m, 1));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 7.7: data distribution E / C / A.
  for (Method m : kAll) {
    for (auto dist : {RankDistribution::kUniform, RankDistribution::kCorrelated,
                      RankDistribution::kAntiCorrelated}) {
      const char* dn = dist == RankDistribution::kUniform       ? "E"
                       : dist == RankDistribution::kCorrelated ? "C"
                                                                : "A";
      Reg(
          std::string("Fig7.7/") + Name(m) + "/S:" + dn,
          [m, dist](benchmark::State& state) {
            auto ctx = GetCtx(50000, 3, 10, dist);
            for (auto _ : state) Publish7(state, RunMethod(*ctx, m, 1));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 7.8: number of preference dimensions Dp.
  for (Method m : kAll) {
    for (int dp : {2, 3, 4}) {
      Reg(
          std::string("Fig7.8/") + Name(m) + "/Dp:" + std::to_string(dp),
          [m, dp](benchmark::State& state) {
            auto ctx = GetCtx(50000, dp);
            for (auto _ : state) Publish7(state, RunMethod(*ctx, m, 1));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 7.9: number of boolean predicates m.
  for (Method m : kAll) {
    for (int preds : {1, 2, 3}) {
      Reg(
          std::string("Fig7.9/") + Name(m) + "/m:" + std::to_string(preds),
          [m, preds](benchmark::State& state) {
            auto ctx = GetCtx(100000);
            for (auto _ : state) Publish7(state, RunMethod(*ctx, m, preds));
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 7.10: hardness — predicate selectivity via zipf value frequency.
  for (Method m : kAll) {
    for (int rank : {0, 3, 9}) {  // frequent .. rare predicate value
      Reg(
          std::string("Fig7.10/") + Name(m) + "/value_rank:" +
              std::to_string(rank),
          [m, rank](benchmark::State& state) {
            auto ctx =
                GetCtx(100000, 3, 10, RankDistribution::kUniform, 0.9);
            std::vector<Predicate> preds = {{0, rank}};
            SkylineTransform tf = SkylineTransform::Static(3);
            for (auto _ : state) {
              ExecStats stats;
              uint64_t before = ctx->io.TotalPhysical();
              switch (m) {
                case Method::kBoolean: {
                  auto r = ctx->engine->BooleanFirst(preds, tf, &ctx->io,
                                                     &stats);
                  benchmark::DoNotOptimize(r);
                  break;
                }
                case Method::kRanking: {
                  auto r = ctx->engine->RankingFirst(preds, tf, &ctx->io,
                                                     &stats);
                  benchmark::DoNotOptimize(r);
                  break;
                }
                case Method::kSignature: {
                  auto r =
                      ctx->engine->Signature(preds, tf, &ctx->io, &stats);
                  benchmark::DoNotOptimize(r);
                  break;
                }
              }
              state.counters["ms_per_query"] = stats.time_ms;
              state.counters["io_pages"] = static_cast<double>(
                  ctx->io.TotalPhysical() - before);
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 7.11: static vs dynamic skylines with boolean predicates.
  for (Method m : kAll) {
    for (const char* kind : {"static", "dynamic"}) {
      Reg(
          std::string("Fig7.11/") + Name(m) + "/" + kind,
          [m, kind](benchmark::State& state) {
            auto ctx = GetCtx(100000);
            bool dynamic = std::string(kind) == "dynamic";
            for (auto _ : state) {
              Publish7(state, RunMethod(*ctx, m, 1, dynamic));
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 7.12: signature loading time vs query time.
  for (uint64_t t : {uint64_t{50000}, uint64_t{100000}, uint64_t{200000}}) {
    Reg(
        "Fig7.12/Signature/T:" + std::to_string(t),
        [t](benchmark::State& state) {
          auto ctx = GetCtx(t);
          for (auto _ : state) {
            auto r = RunMethod(*ctx, Method::kSignature, 2);
            state.counters["total_ms"] = r.ms;
            state.counters["sig_load_ms"] = r.sig_ms;
            state.counters["sig_pages"] = r.sig_pages;
          }
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  // Fig 7.13 / 7.14: drill-down / roll-up vs a fresh query.
  for (const char* op : {"drill_down", "roll_up"}) {
    for (const char* mode : {"session", "fresh"}) {
      Reg(
          std::string(op[0] == 'd' ? "Fig7.13/" : "Fig7.14/") + op + "/" +
              mode,
          [op, mode](benchmark::State& state) {
            auto ctx = GetCtx(200000);
            bool drill = std::string(op) == "drill_down";
            bool session = std::string(mode) == "session";
            SkylineTransform tf = SkylineTransform::Static(3);
            Rng rng(97);
            for (auto _ : state) {
              double ms = 0, io = 0;
              const int nq = 5;
              for (int i = 0; i < nq; ++i) {
                Tid anchor =
                    static_cast<Tid>(rng.UniformInt(ctx->table.num_rows()));
                Predicate p0{0, ctx->table.sel(anchor, 0)};
                Predicate p1{1, ctx->table.sel(anchor, 1)};
                std::vector<Predicate> initial =
                    drill ? std::vector<Predicate>{p0}
                          : std::vector<Predicate>{p0, p1};
                std::vector<Predicate> target =
                    drill ? std::vector<Predicate>{p0, p1}
                          : std::vector<Predicate>{p0};
                SkylineSession sess(ctx->engine.get());
                ExecStats warm;
                auto w = sess.Query(initial, tf, &ctx->io, &warm);
                benchmark::DoNotOptimize(w);
                ExecStats stats;
                uint64_t before = ctx->io.TotalPhysical();
                if (session) {
                  auto r = drill
                               ? sess.DrillDown({p1}, &ctx->io, &stats)
                               : sess.RollUp({1}, &ctx->io, &stats);
                  benchmark::DoNotOptimize(r);
                } else {
                  SkylineSession fresh2(ctx->engine.get());
                  auto r = fresh2.Query(target, tf, &ctx->io, &stats);
                  benchmark::DoNotOptimize(r);
                }
                ms += stats.time_ms;
                io += static_cast<double>(ctx->io.TotalPhysical() -
                                          before);
              }
              state.counters["ms_per_query"] = ms / nq;
              state.counters["io_pages"] = io / nq;
            }
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace rankcube::bench

int main(int argc, char** argv) {
  rankcube::bench::ParseScale(&argc, argv);
  rankcube::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
