// Shared plumbing for the figure-reproduction benchmarks. Each bench binary
// registers google-benchmark entries named after the thesis figure they
// regenerate (e.g. "Fig3.4/ranking_cube/k:10"); counters carry the paper's
// y-axes (ms per query, page accesses, states, heap sizes, bytes).
//
// Sizes are scaled to laptop defaults (DESIGN.md documents the scaling);
// override with --rows_scale=N (multiplies every T) if you want the paper's
// original sizes.
#ifndef RANKCUBE_BENCH_BENCH_COMMON_H_
#define RANKCUBE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/topk_query.h"
#include "engine/batch_executor.h"
#include "engine/engine.h"
#include "gen/covtype.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "storage/io_session.h"

namespace rankcube::bench {

/// Global scale knob (1.0 = laptop defaults).
inline double& RowsScale() {
  static double scale = 1.0;
  return scale;
}

inline uint64_t Rows(uint64_t base) {
  return static_cast<uint64_t>(base * RowsScale());
}

/// Build-once cache shared across benchmark registrations.
template <typename T>
std::shared_ptr<T> Cached(const std::string& key,
                          const std::function<std::shared_ptr<T>()>& build) {
  static std::map<std::string, std::shared_ptr<void>> cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, build()).first;
  }
  return std::static_pointer_cast<T>(it->second);
}

/// Unwraps an engine-build Result; a bench cannot run without its engine.
inline std::unique_ptr<RankingEngine> MustEngine(
    Result<std::unique_ptr<RankingEngine>> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// Average per-query results of running a workload through one engine.
struct WorkloadResult {
  double ms_per_query = 0.0;
  double io_per_query = 0.0;
  double sig_io_per_query = 0.0;
  double states_per_query = 0.0;
  double heap_per_query = 0.0;
  double evaluated_per_query = 0.0;
};

/// Per-query averages from accumulated totals (ExecStats::operator+= does
/// the summing; this divides once).
inline WorkloadResult AverageOver(const ExecStats& total,
                                  uint64_t physical_pages, size_t queries) {
  double n = std::max<size_t>(1, queries);
  WorkloadResult out;
  out.ms_per_query = total.time_ms / n;
  out.io_per_query = static_cast<double>(physical_pages) / n;
  out.sig_io_per_query = static_cast<double>(total.signature_pages) / n;
  out.states_per_query = static_cast<double>(total.states_generated) / n;
  out.heap_per_query = static_cast<double>(total.peak_heap) / n;
  out.evaluated_per_query = static_cast<double>(total.tuples_evaluated) / n;
  return out;
}

/// `run(query, io, stats)` executes one query charging `io`. (Legacy
/// shim for harnesses not yet on RankingEngine; prefer the engine overload.)
inline WorkloadResult RunWorkload(
    const std::vector<TopKQuery>& queries, IoSession* io,
    const std::function<void(const TopKQuery&, IoSession*, ExecStats*)>& run) {
  ExecStats total;
  uint64_t before = io->TotalPhysical();
  for (const auto& q : queries) {
    ExecStats stats;
    run(q, io, &stats);
    total += stats;
  }
  return AverageOver(total, io->TotalPhysical() - before, queries.size());
}

/// Engine path: the whole workload goes through BatchExecutor / the unified
/// Execute interface. Aborts on the first error — a benchmark measuring a
/// failing engine would publish garbage.
inline WorkloadResult RunWorkload(const std::vector<TopKQuery>& queries,
                                  IoSession* io, const RankingEngine& engine) {
  ExecContext ctx;
  ctx.io = io;
  BatchExecutor executor(&engine, {.stop_on_error = true});
  auto report = executor.Run(queries, ctx);
  if (!report.ok() || report.value().failed > 0) {
    const Status& s =
        report.ok() ? report.value().first_error : report.status();
    std::fprintf(stderr, "workload failed on engine '%s': %s\n",
                 engine.name().c_str(), s.ToString().c_str());
    std::abort();
  }
  return AverageOver(report.value().total, report.value().physical_pages,
                     report.value().num_queries);
}

/// Publishes a WorkloadResult on a benchmark's counters.
inline void Publish(benchmark::State& state, const WorkloadResult& r) {
  state.counters["ms_per_query"] = r.ms_per_query;
  state.counters["io_pages"] = r.io_per_query;
  state.counters["sig_pages"] = r.sig_io_per_query;
  state.counters["states"] = r.states_per_query;
  state.counters["peak_heap"] = r.heap_per_query;
  state.counters["evaluated"] = r.evaluated_per_query;
  // CPU time plus a nominal 0.1 ms per page read: the disk-weighted cost a
  // 2007-era system would observe (the thesis's time axis is I/O-bound).
  state.counters["sim_cost_ms"] = r.ms_per_query + 0.1 * r.io_per_query;
}

/// RegisterBenchmark shim accepting std::string names (older benchmark
/// releases only take const char*; the library copies the name).
template <typename Lambda>
inline ::benchmark::internal::Benchmark* Reg(const std::string& name,
                                             Lambda fn) {
  return ::benchmark::RegisterBenchmark(name.c_str(), fn);
}

/// Parses --rows_scale=N out of argv (before benchmark::Initialize).
inline void ParseScale(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--rows_scale=", 0) == 0) {
      char* end = nullptr;
      double scale = std::strtod(a.c_str() + 13, &end);
      if (end == a.c_str() + 13 || *end != '\0' || !(scale > 0.0)) {
        std::fprintf(stderr, "invalid --rows_scale value: '%s'\n",
                     a.c_str() + 13);
        std::exit(1);
      }
      RowsScale() = scale;
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return;
    }
  }
}

#define RANKCUBE_BENCH_MAIN()                         \
  int main(int argc, char** argv) {                   \
    ::rankcube::bench::ParseScale(&argc, argv);       \
    ::benchmark::Initialize(&argc, argv);             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();            \
    ::benchmark::Shutdown();                          \
    return 0;                                         \
  }

}  // namespace rankcube::bench

#endif  // RANKCUBE_BENCH_BENCH_COMMON_H_
