// Shared plumbing for the figure-reproduction benchmarks. Each bench binary
// registers google-benchmark entries named after the thesis figure they
// regenerate (e.g. "Fig3.4/ranking_cube/k:10"); counters carry the paper's
// y-axes (ms per query, page accesses, states, heap sizes, bytes).
//
// Sizes are scaled to laptop defaults (DESIGN.md documents the scaling);
// override with --rows_scale=N (multiplies every T) if you want the paper's
// original sizes.
#ifndef RANKCUBE_BENCH_BENCH_COMMON_H_
#define RANKCUBE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/topk_query.h"
#include "gen/covtype.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "storage/pager.h"

namespace rankcube::bench {

/// Global scale knob (1.0 = laptop defaults).
inline double& RowsScale() {
  static double scale = 1.0;
  return scale;
}

inline uint64_t Rows(uint64_t base) {
  return static_cast<uint64_t>(base * RowsScale());
}

/// Build-once cache shared across benchmark registrations.
template <typename T>
std::shared_ptr<T> Cached(const std::string& key,
                          const std::function<std::shared_ptr<T>()>& build) {
  static std::map<std::string, std::shared_ptr<void>> cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, build()).first;
  }
  return std::static_pointer_cast<T>(it->second);
}

/// Average per-query results of running `run` over a workload.
struct WorkloadResult {
  double ms_per_query = 0.0;
  double io_per_query = 0.0;
  double sig_io_per_query = 0.0;
  double states_per_query = 0.0;
  double heap_per_query = 0.0;
  double evaluated_per_query = 0.0;
};

/// `run(query, pager, stats)` executes one query charging `pager`.
inline WorkloadResult RunWorkload(
    const std::vector<TopKQuery>& queries, Pager* pager,
    const std::function<void(const TopKQuery&, Pager*, ExecStats*)>& run) {
  WorkloadResult out;
  for (const auto& q : queries) {
    ExecStats stats;
    uint64_t before = pager->TotalPhysical();
    run(q, pager, &stats);
    out.ms_per_query += stats.time_ms;
    out.io_per_query +=
        static_cast<double>(pager->TotalPhysical() - before);
    out.sig_io_per_query += static_cast<double>(stats.signature_pages);
    out.states_per_query += static_cast<double>(stats.states_generated);
    out.heap_per_query += static_cast<double>(stats.peak_heap);
    out.evaluated_per_query += static_cast<double>(stats.tuples_evaluated);
  }
  double n = std::max<size_t>(1, queries.size());
  out.ms_per_query /= n;
  out.io_per_query /= n;
  out.sig_io_per_query /= n;
  out.states_per_query /= n;
  out.heap_per_query /= n;
  out.evaluated_per_query /= n;
  return out;
}

/// Publishes a WorkloadResult on a benchmark's counters.
inline void Publish(benchmark::State& state, const WorkloadResult& r) {
  state.counters["ms_per_query"] = r.ms_per_query;
  state.counters["io_pages"] = r.io_per_query;
  state.counters["sig_pages"] = r.sig_io_per_query;
  state.counters["states"] = r.states_per_query;
  state.counters["peak_heap"] = r.heap_per_query;
  state.counters["evaluated"] = r.evaluated_per_query;
  // CPU time plus a nominal 0.1 ms per page read: the disk-weighted cost a
  // 2007-era system would observe (the thesis's time axis is I/O-bound).
  state.counters["sim_cost_ms"] = r.ms_per_query + 0.1 * r.io_per_query;
}

/// RegisterBenchmark shim accepting std::string names (older benchmark
/// releases only take const char*; the library copies the name).
template <typename Lambda>
inline ::benchmark::internal::Benchmark* Reg(const std::string& name,
                                             Lambda fn) {
  return ::benchmark::RegisterBenchmark(name.c_str(), fn);
}

/// Parses --rows_scale=N out of argv (before benchmark::Initialize).
inline void ParseScale(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--rows_scale=", 0) == 0) {
      RowsScale() = std::stod(a.substr(13));
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return;
    }
  }
}

#define RANKCUBE_BENCH_MAIN()                         \
  int main(int argc, char** argv) {                   \
    ::rankcube::bench::ParseScale(&argc, argv);       \
    ::benchmark::Initialize(&argc, argv);             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();            \
    ::benchmark::Shutdown();                          \
    return 0;                                         \
  }

}  // namespace rankcube::bench

#endif  // RANKCUBE_BENCH_BENCH_COMMON_H_
