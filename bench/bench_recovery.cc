// Durability benchmark + crash-loop driver.
//
// Default mode (real disk, PosixFs under --workdir):
//  * insert throughput under --fsync=always vs batch vs off — the price of
//    the no-acked-write-lost guarantee, reported as a qps penalty;
//  * recovery time as a function of WAL length — write N records, reopen
//    the directory, report RecoveryInfo::recovery_ms and replay rate.
// Results land in BENCH_recovery.json. --smoke shrinks everything for CI
// and exits nonzero unless every invariant held (recovery replayed exactly
// what was written, fsync=always acked everything it reported).
//
// Harness modes for tools/crash_recovery_loop.sh (no measurement, just
// deterministic load + invariant checks against a live rankcubed):
//  * --hammer --port=P --journal=F : issue INSERTs as fast as the server
//    acks them, appending each acked tid to the journal; exits cleanly
//    when the server dies mid-conversation (that is the point: the loop
//    kill -9s the daemon underneath us).
//  * --verify --port=P --journal=F : after the daemon restarts, assert the
//    durability invariant — tids are dense and never reused, so every
//    acked tid must be < the recovered row count — and that queries work.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "planner/rank_cube_db.h"
#include "server/client.h"
#include "storage/fs.h"

namespace rankcube {
namespace {

using Clock = std::chrono::steady_clock;

struct Flags {
  std::string workdir = "/tmp/rankcube_bench_recovery";
  uint64_t seed_rows = 2000;
  uint64_t seed = 7;        ///< data-generator seed (recorded in the JSON)
  uint64_t inserts = 3000;  ///< throughput-phase mutations per policy
  std::vector<uint64_t> wal_lengths = {500, 2000, 8000};
  std::string json = "BENCH_recovery.json";
  bool smoke = false;
  // harness modes
  bool hammer = false;
  bool verify = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string journal;
  int sel_dims = 3;       ///< must match the daemon's schema (--hammer)
  int32_t cardinality = 20;
  int rank_dims = 2;
  uint64_t max_ops = 0;  ///< optional hammer cap (0 = until the server dies)
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

std::vector<uint64_t> ParseU64List(const std::string& v) {
  std::vector<uint64_t> out;
  const char* p = v.c_str();
  char* end = nullptr;
  while (*p != '\0') {
    out.push_back(std::strtoull(p, &end, 10));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--workdir=", &v)) {
      f.workdir = v;
    } else if (ParseFlag(argv[i], "--seed_rows=", &v)) {
      f.seed_rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--inserts=", &v)) {
      f.inserts = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--wal_lengths=", &v)) {
      f.wal_lengths = ParseU64List(v);
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else if (ParseFlag(argv[i], "--host=", &v)) {
      f.host = v;
    } else if (ParseFlag(argv[i], "--port=", &v)) {
      f.port = static_cast<uint16_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--journal=", &v)) {
      f.journal = v;
    } else if (ParseFlag(argv[i], "--sel_dims=", &v)) {
      f.sel_dims = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--cardinality=", &v)) {
      f.cardinality = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--rank_dims=", &v)) {
      f.rank_dims = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--max_ops=", &v)) {
      f.max_ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else if (std::strcmp(argv[i], "--hammer") == 0) {
      f.hammer = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      f.verify = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.smoke) {
    f.seed_rows = std::min<uint64_t>(f.seed_rows, 500);
    f.inserts = std::min<uint64_t>(f.inserts, 400);
    f.wal_lengths = {100, 400};
  }
  return f;
}

Table MakeSeed(uint64_t rows, uint64_t seed) {
  TableSchema schema;
  schema.sel_cardinality = {8, 8, 8};
  schema.num_rank_dims = 2;
  Table table(schema);
  Rng rng(seed);
  for (uint64_t i = 0; i < rows; ++i) {
    (void)table.AddRow({static_cast<int32_t>(rng.UniformInt(8)),
                        static_cast<int32_t>(rng.UniformInt(8)),
                        static_cast<int32_t>(rng.UniformInt(8))},
                       {rng.Uniform01(), rng.Uniform01()});
  }
  return table;
}

/// Removes every file in `dir` so RankCubeDb::Open sees a fresh directory.
void WipeDir(const std::string& dir) {
  Fs* fs = Fs::Posix();
  auto names = fs->ListDir(dir);
  if (!names.ok()) return;  // does not exist yet
  for (const std::string& name : names.value()) {
    (void)fs->RemoveFile(JoinPath(dir, name));
  }
}

RankCubeDb::Options DurableOptions(const std::string& dir,
                                   FsyncPolicy fsync) {
  RankCubeDb::Options options;
  options.engines = {"table_scan"};  // writes only; skip structure builds
  options.durability.data_dir = dir;
  options.durability.fsync = fsync;
  return options;
}

struct PolicyResult {
  const char* name;
  double insert_qps = 0.0;
  bool ok = false;
};

/// Times `inserts` durable writes under one fsync policy on a fresh dir.
PolicyResult BenchPolicy(const Flags& flags, FsyncPolicy fsync) {
  PolicyResult r;
  r.name = FsyncPolicyName(fsync);
  const std::string dir = flags.workdir + "/policy_" + r.name;
  WipeDir(dir);
  auto db = RankCubeDb::Open(MakeSeed(flags.seed_rows, flags.seed),
                             DurableOptions(dir, fsync));
  if (!db.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 db.status().ToString().c_str());
    return r;
  }
  Rng rng(13);
  auto t0 = Clock::now();
  for (uint64_t i = 0; i < flags.inserts; ++i) {
    auto tid = db.value()->Insert({static_cast<int32_t>(rng.UniformInt(8)),
                                   static_cast<int32_t>(rng.UniformInt(8)),
                                   static_cast<int32_t>(rng.UniformInt(8))},
                                  {rng.Uniform01(), rng.Uniform01()});
    if (!tid.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   tid.status().ToString().c_str());
      return r;
    }
  }
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  r.insert_qps = secs > 0 ? static_cast<double>(flags.inserts) / secs : 0.0;
  r.ok = db.value()->table().epoch() == flags.inserts;
  return r;
}

struct RecoveryPoint {
  uint64_t wal_records = 0;
  double recovery_ms = 0.0;
  uint64_t replayed = 0;
  bool ok = false;
};

/// Writes `wal_records` mutations (fsync=off: WAL length is what matters,
/// not commit latency), closes, reopens, and reports the replay cost.
RecoveryPoint BenchRecovery(const Flags& flags, uint64_t wal_records) {
  RecoveryPoint point;
  point.wal_records = wal_records;
  const std::string dir =
      flags.workdir + "/recovery_" + std::to_string(wal_records);
  WipeDir(dir);
  {
    auto db = RankCubeDb::Open(MakeSeed(flags.seed_rows, flags.seed),
                               DurableOptions(dir, FsyncPolicy::kOff));
    if (!db.ok()) return point;
    Rng rng(17);
    for (uint64_t i = 0; i < wal_records; ++i) {
      auto tid =
          db.value()->Insert({static_cast<int32_t>(rng.UniformInt(8)),
                              static_cast<int32_t>(rng.UniformInt(8)),
                              static_cast<int32_t>(rng.UniformInt(8))},
                             {rng.Uniform01(), rng.Uniform01()});
      if (!tid.ok()) return point;
    }
  }  // clean process exit, dirty WAL: the whole log replays at open
  auto db = RankCubeDb::Open(MakeSeed(flags.seed_rows, flags.seed),
                             DurableOptions(dir, FsyncPolicy::kOff));
  if (!db.ok()) {
    std::fprintf(stderr, "recover %s: %s\n", dir.c_str(),
                 db.status().ToString().c_str());
    return point;
  }
  const RecoveryInfo& info = db.value()->recovery();
  point.recovery_ms = info.recovery_ms;
  point.replayed = info.replayed;
  point.ok = info.recovered && !info.read_only &&
             info.replayed == wal_records &&
             db.value()->table().epoch() == wal_records;
  return point;
}

int RunBench(const Flags& flags) {
  (void)Fs::Posix()->CreateDir(flags.workdir);

  std::vector<PolicyResult> policies;
  for (FsyncPolicy p :
       {FsyncPolicy::kAlways, FsyncPolicy::kBatch, FsyncPolicy::kOff}) {
    PolicyResult r = BenchPolicy(flags, p);
    std::printf("fsync=%-7s insert_qps=%10.1f %s\n", r.name, r.insert_qps,
                r.ok ? "" : "FAILED");
    policies.push_back(r);
  }

  std::vector<RecoveryPoint> points;
  for (uint64_t n : flags.wal_lengths) {
    RecoveryPoint point = BenchRecovery(flags, n);
    std::printf("wal_records=%-8llu recovery_ms=%9.2f replayed=%llu %s\n",
                static_cast<unsigned long long>(point.wal_records),
                point.recovery_ms,
                static_cast<unsigned long long>(point.replayed),
                point.ok ? "" : "FAILED");
    points.push_back(point);
  }

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"seed\": %llu,\n  \"fsync_policies\": {",
                 static_cast<unsigned long long>(flags.seed));
    for (size_t i = 0; i < policies.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": {\"insert_qps\": %.1f}",
                   i > 0 ? "," : "", policies[i].name,
                   policies[i].insert_qps);
    }
    double always = policies[0].insert_qps;
    double batch = policies[1].insert_qps;
    std::fprintf(out,
                 "\n  },\n  \"fsync_always_penalty_vs_batch\": %.3f,\n"
                 "  \"recovery\": [",
                 batch > 0 ? always / batch : 0.0);
    for (size_t i = 0; i < points.size(); ++i) {
      std::fprintf(out,
                   "%s\n    {\"wal_records\": %llu, \"recovery_ms\": %.2f, "
                   "\"replay_per_s\": %.0f}",
                   i > 0 ? "," : "",
                   static_cast<unsigned long long>(points[i].wal_records),
                   points[i].recovery_ms,
                   points[i].recovery_ms > 0
                       ? 1000.0 * static_cast<double>(points[i].replayed) /
                             points[i].recovery_ms
                       : 0.0);
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", flags.json.c_str());
  }

  for (const PolicyResult& r : policies) {
    if (!r.ok) return 1;
  }
  for (const RecoveryPoint& p : points) {
    if (!p.ok) return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Crash-loop harness modes

int RunHammer(const Flags& flags) {
  if (flags.port == 0 || flags.journal.empty()) {
    std::fprintf(stderr, "--hammer needs --port and --journal\n");
    return 2;
  }
  auto client = RankCubeClient::Connect(flags.host, flags.port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 2;
  }
  std::FILE* journal = std::fopen(flags.journal.c_str(), "a");
  if (journal == nullptr) {
    std::fprintf(stderr, "cannot open journal %s\n", flags.journal.c_str());
    return 2;
  }
  Rng rng(static_cast<uint64_t>(flags.port));
  uint64_t acked = 0;
  while (flags.max_ops == 0 || acked < flags.max_ops) {
    std::vector<int32_t> sel;
    for (int d = 0; d < flags.sel_dims; ++d) {
      sel.push_back(static_cast<int32_t>(
          rng.UniformInt(static_cast<uint64_t>(flags.cardinality))));
    }
    std::vector<double> rank;
    for (int d = 0; d < flags.rank_dims; ++d) rank.push_back(rng.Uniform01());
    auto resp = client.value().Insert(sel, rank);
    if (!resp.ok()) break;  // server died under us — the loop's kill -9
    if (!resp.value().ok()) {
      // Typed rejection (e.g. read-only after degradation): record nothing.
      break;
    }
    // "tid=N": only what the server ACKED goes in the journal.
    for (const std::string& line : resp.value().lines) {
      if (line.rfind("tid=", 0) == 0) {
        std::fprintf(journal, "%s\n", line.c_str() + 4);
        ++acked;
      }
    }
    std::fflush(journal);
  }
  std::fclose(journal);
  std::printf("hammer: %llu acked inserts journaled\n",
              static_cast<unsigned long long>(acked));
  return 0;
}

int RunVerify(const Flags& flags) {
  if (flags.port == 0 || flags.journal.empty()) {
    std::fprintf(stderr, "--verify needs --port and --journal\n");
    return 2;
  }
  // Highest acked tid across all hammer runs.
  uint64_t max_tid = 0;
  uint64_t acked = 0;
  std::FILE* journal = std::fopen(flags.journal.c_str(), "r");
  if (journal != nullptr) {
    char line[64];
    while (std::fgets(line, sizeof(line), journal) != nullptr) {
      uint64_t tid = std::strtoull(line, nullptr, 10);
      max_tid = std::max(max_tid, tid);
      ++acked;
    }
    std::fclose(journal);
  }

  auto client = RankCubeClient::Connect(flags.host, flags.port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 2;
  }
  auto stats = client.value().Stats();
  if (!stats.ok() || !stats.value().ok()) {
    std::fprintf(stderr, "STATS failed\n");
    return 1;
  }
  uint64_t rows = 0;
  bool read_only = false;
  for (const std::string& line : stats.value().lines) {
    if (line.rfind("rows=", 0) == 0) {
      rows = std::strtoull(line.c_str() + 5, nullptr, 10);
    } else if (line == "read_only=1") {
      read_only = true;
    }
  }
  // Tids are dense and never reused: an acked tid that did not survive
  // recovery would leave rows <= max_tid.
  if (acked > 0 && rows <= max_tid) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATED: max acked tid %llu but only %llu rows "
                 "after recovery\n",
                 static_cast<unsigned long long>(max_tid),
                 static_cast<unsigned long long>(rows));
    return 1;
  }
  WireQuerySpec spec;
  spec.k = 5;
  spec.order = "linear:1,1";
  auto tuples = client.value().QueryTuples(spec);
  if (!tuples.ok()) {
    std::fprintf(stderr, "post-recovery query failed: %s\n",
                 tuples.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "verify: OK (acked=%llu max_tid=%llu rows=%llu read_only=%d)\n",
      static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(max_tid),
      static_cast<unsigned long long>(rows), read_only ? 1 : 0);
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.hammer) return RunHammer(flags);
  if (flags.verify) return RunVerify(flags);
  return RunBench(flags);
}

}  // namespace
}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
