// Scoring hot-path microbenchmark: per RankingFunction class and per block
// size, compares the scalar inner loop every engine used to run (gather a
// point vector + one virtual Evaluate per tuple) against the column-direct
// EvaluateBatch path (one virtual call per block reading rank_col()
// directly), plus the OfferBatch threshold filter against per-tuple Offer.
// Like bench_parallel it needs no google-benchmark, always builds, and
// emits a machine-readable JSON report (BENCH_hotpath.json) so the scoring
// throughput trajectory is tracked commit over commit.
//
// Usage:
//   bench_hotpath [--rows=N] [--reps=N] [--json=PATH] [--smoke]
//
// The default --rows matches the repository's laptop-scale bench convention
// (bench_parallel uses the same 20k-row synthetic relation): columns stay
// cache-resident, so the figures isolate scoring *compute* throughput —
// the gather + virtual-dispatch overhead the batch path removes. Larger
// --rows shifts both paths toward memory-bound random column gathers and
// compresses the gap; both regimes are real, this benchmark reports the
// compute one.
//
// --smoke shrinks rows/reps to a few milliseconds of work; CI runs it to
// make sure the benchmark binary and the batch paths stay healthy under an
// optimized build.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/topk_query.h"
#include "func/ranking_function.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

constexpr int kRankDims = 4;

struct Flags {
  uint64_t rows = 20000;
  int reps = 10;       ///< passes over the tid stream per trial
  int trials = 5;      ///< best-of-N trials per cell (noise robustness)
  bool smoke = false;  ///< tiny sizes for CI health checks
  std::string json = "BENCH_hotpath.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--reps=", &v)) {
      f.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--trials=", &v)) {
      f.trials = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.smoke) {
    f.rows = std::min<uint64_t>(f.rows, 10000);
    f.reps = std::min(f.reps, 3);
    f.trials = std::min(f.trials, 1);
  }
  return f;
}

/// The pre-batch inner loop, kept verbatim as the baseline: per tuple, a
/// gather into a point vector and one virtual Evaluate call. The point
/// buffer is caller-provided scratch, hoisted out of the timed per-block
/// calls exactly as the engines hoisted it out of their scan loops.
void ScalarScore(const Table& table, const RankingFunction& f,
                 const Tid* tids, size_t n, std::vector<double>* point,
                 double* out) {
  point->resize(table.num_rank_dims());
  for (size_t i = 0; i < n; ++i) {
    for (int d = 0; d < table.num_rank_dims(); ++d) {
      (*point)[d] = table.rank(tids[i], d);
    }
    out[i] = f.Evaluate(point->data());
  }
}

struct Row {
  std::string function;
  size_t block_size = 0;
  double scalar_mtps = 0.0;  ///< million tuples scored / second
  double batch_mtps = 0.0;
  double speedup = 0.0;
};

struct OfferRow {
  int k = 0;
  double offer_mtps = 0.0;
  double offer_batch_mtps = 0.0;
  double speedup = 0.0;
};

}  // namespace

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  SyntheticSpec spec;
  spec.num_rows = flags.rows;
  spec.num_sel_dims = 2;
  spec.cardinality = 8;
  spec.num_rank_dims = kRankDims;
  spec.seed = 7;
  Table table = GenerateSynthetic(spec);

  // Tuple stream: every tid once, scrambled, so block starts are not
  // cache-aligned runs — the access pattern of a real retrieve step.
  Rng rng(31);
  std::vector<Tid> tids(table.num_rows());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) tids[t] = t;
  for (size_t i = tids.size() - 1; i > 0; --i) {
    std::swap(tids[i], tids[rng.UniformInt(i + 1)]);
  }

  std::vector<std::pair<std::string, RankingFunctionPtr>> funcs;
  funcs.emplace_back("linear", std::make_shared<LinearFunction>(
                                   std::vector<double>{0.4, 0.3, 0.2, 0.1}));
  funcs.emplace_back("quadratic",
                     std::make_shared<QuadraticDistance>(
                         std::vector<double>{1.0, 1.0, 1.0, 1.0},
                         std::vector<double>{0.2, 0.4, 0.6, 0.8}));
  funcs.emplace_back("l1", std::make_shared<L1Distance>(
                               std::vector<double>{1.0, 0.5, 0.25, 0.125},
                               std::vector<double>{0.5, 0.5, 0.5, 0.5}));
  funcs.emplace_back("squared_linear",
                     std::make_shared<SquaredLinear>(
                         std::vector<double>{2.0, -1.0, -1.0, 0.5}));
  funcs.emplace_back("general_ab",
                     std::make_shared<GeneralAB>(kRankDims, 0, 1));
  funcs.emplace_back("constrained_sum", std::make_shared<ConstrainedSum>(
                                            kRankDims, 0, 1, 0.25, 0.75));

  const size_t block_sizes[] = {64, 256, 1024, 4096};
  std::vector<Row> rows;
  std::vector<double> scalar_out(tids.size());
  std::vector<double> batch_out(tids.size());
  std::vector<double> point;
  double sink = 0.0;

  for (const auto& [name, f] : funcs) {
    for (size_t block : block_sizes) {
      // One warm pass each, also used as a correctness check: the batch
      // path must reproduce the scalar scores bit for bit.
      ScalarScore(table, *f, tids.data(), tids.size(), &point,
                  scalar_out.data());
      for (size_t off = 0; off < tids.size(); off += block) {
        size_t n = std::min(block, tids.size() - off);
        f->EvaluateBatch(table, tids.data() + off, n, batch_out.data() + off);
      }
      for (size_t i = 0; i < tids.size(); ++i) {
        if (scalar_out[i] != batch_out[i]) {
          std::fprintf(stderr,
                       "PARITY FAILURE: %s block=%zu tid=%u scalar=%.17g "
                       "batch=%.17g\n",
                       name.c_str(), block, tids[i], scalar_out[i],
                       batch_out[i]);
          return 1;
        }
      }

      // Best of N trials per path: the minimum is the least-disturbed
      // measurement on a shared machine.
      double scalar_ms = kInfScore;
      double batch_ms = kInfScore;
      for (int trial = 0; trial < flags.trials; ++trial) {
        Stopwatch watch;
        for (int rep = 0; rep < flags.reps; ++rep) {
          for (size_t off = 0; off < tids.size(); off += block) {
            size_t n = std::min(block, tids.size() - off);
            ScalarScore(table, *f, tids.data() + off, n, &point,
                        scalar_out.data() + off);
          }
          sink += scalar_out[0];
        }
        scalar_ms = std::min(scalar_ms, watch.ElapsedMs());

        watch.Restart();
        for (int rep = 0; rep < flags.reps; ++rep) {
          for (size_t off = 0; off < tids.size(); off += block) {
            size_t n = std::min(block, tids.size() - off);
            f->EvaluateBatch(table, tids.data() + off, n,
                             batch_out.data() + off);
          }
          sink += batch_out[0];
        }
        batch_ms = std::min(batch_ms, watch.ElapsedMs());
      }

      const double scored =
          static_cast<double>(tids.size()) * flags.reps / 1e6;
      Row row;
      row.function = name;
      row.block_size = block;
      row.scalar_mtps = scored / (scalar_ms / 1000.0);
      row.batch_mtps = scored / (batch_ms / 1000.0);
      row.speedup = scalar_ms / batch_ms;
      rows.push_back(row);
      std::printf(
          "%-16s block=%-5zu scalar=%8.1f Mt/s  batch=%8.1f Mt/s  "
          "speedup=%5.2fx\n",
          name.c_str(), block, row.scalar_mtps, row.batch_mtps, row.speedup);
    }
  }

  // Threshold-aware OfferBatch vs per-tuple Offer, on linear scores: once
  // the heap saturates, whole blocks fail the S_k bound with n compares.
  std::vector<OfferRow> offer_rows;
  {
    const auto& f = *funcs.front().second;
    f.EvaluateBatch(table, tids.data(), tids.size(), batch_out.data());
    for (int k : {10, 100}) {
      double offer_ms = kInfScore;
      double batch_ms = kInfScore;
      double kth = 0.0;
      double kth_batch = 0.0;
      for (int trial = 0; trial < flags.trials; ++trial) {
        Stopwatch watch;
        for (int rep = 0; rep < flags.reps; ++rep) {
          TopKHeap heap(k);
          for (size_t i = 0; i < tids.size(); ++i) {
            heap.Offer(tids[i], batch_out[i]);
          }
          kth = heap.KthScore();
        }
        offer_ms = std::min(offer_ms, watch.ElapsedMs());

        watch.Restart();
        for (int rep = 0; rep < flags.reps; ++rep) {
          TopKHeap heap(k);
          for (size_t off = 0; off < tids.size(); off += 1024) {
            size_t n = std::min<size_t>(1024, tids.size() - off);
            heap.OfferBatch(tids.data() + off, batch_out.data() + off, n);
          }
          kth_batch = heap.KthScore();
        }
        batch_ms = std::min(batch_ms, watch.ElapsedMs());
      }
      if (kth != kth_batch) {
        std::fprintf(stderr, "PARITY FAILURE: OfferBatch k=%d\n", k);
        return 1;
      }

      const double offered =
          static_cast<double>(tids.size()) * flags.reps / 1e6;
      OfferRow row;
      row.k = k;
      row.offer_mtps = offered / (offer_ms / 1000.0);
      row.offer_batch_mtps = offered / (batch_ms / 1000.0);
      row.speedup = offer_ms / batch_ms;
      offer_rows.push_back(row);
      std::printf(
          "offer k=%-4d       scalar=%8.1f Mt/s  batch=%8.1f Mt/s  "
          "speedup=%5.2fx\n",
          k, row.offer_mtps, row.offer_batch_mtps, row.speedup);
    }
  }

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"scoring_hotpath\",\n"
               "  \"rows\": %llu,\n  \"reps\": %d,\n"
               "  \"trials\": %d,\n"
               "  \"rank_dims\": %d,\n  \"results\": [\n",
               static_cast<unsigned long long>(flags.rows), flags.reps,
               flags.trials, kRankDims);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"function\": \"%s\", \"block_size\": %zu, "
                 "\"scalar_mtuples_per_s\": %.1f, "
                 "\"batch_mtuples_per_s\": %.1f, \"speedup\": %.3f}%s\n",
                 r.function.c_str(), r.block_size, r.scalar_mtps,
                 r.batch_mtps, r.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"offer\": [\n");
  for (size_t i = 0; i < offer_rows.size(); ++i) {
    const OfferRow& r = offer_rows[i];
    std::fprintf(out,
                 "    {\"k\": %d, \"offer_mtuples_per_s\": %.1f, "
                 "\"offer_batch_mtuples_per_s\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 r.k, r.offer_mtps, r.offer_batch_mtps, r.speedup,
                 i + 1 < offer_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (sink=%g)\n", flags.json.c_str(), sink);
  return 0;
}

}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
