// Scoring hot-path microbenchmark: per RankingFunction class and per block
// size, compares three generations of the scoring inner loop —
//   scalar  the pre-batch loop (gather a point vector + one virtual
//           Evaluate per tuple),
//   batch   the column-direct EvaluateBatch path (one virtual call per
//           block reading rank_col() directly) on a scrambled tid stream,
//           the access pattern of a random retrieve step,
//   fused   the specialized kernel layer (func/kernels/) on a scan-order
//           stream, where every block is a consecutive tid run and takes
//           the vectorized dense loop — the pattern every scan call site
//           (table scan, delta overlay, grid blocks) feeds it,
// plus the OfferBatch threshold filter against per-tuple Offer and a
// whole-pipeline section (predicate filter + score + threshold offer,
// fused vs the row-at-a-time loop the engines used to run). Like
// bench_parallel it needs no google-benchmark, always builds, and emits a
// machine-readable JSON report (BENCH_hotpath.json) so the scoring
// throughput trajectory is tracked commit over commit.
//
// Usage:
//   bench_hotpath [--rows=N] [--reps=N] [--seed=N] [--json=PATH] [--smoke]
//
// The default --rows matches the repository's laptop-scale bench convention
// (bench_parallel uses the same 20k-row synthetic relation): columns stay
// cache-resident, so the figures isolate scoring *compute* throughput —
// the gather + virtual-dispatch overhead the batch path removes. Larger
// --rows shifts the scrambled paths toward memory-bound random column
// gathers and compresses that gap; the dense fused loop reads columns
// sequentially and keeps vectorizing in either regime.
//
// --smoke shrinks rows/reps to a few milliseconds of work AND enforces
// floor ratios on the fused-vs-batch speedups; CI runs it so a change that
// silently knocks a kernel off its specialized loop fails the build.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/topk_query.h"
#include "func/kernels/kernels.h"
#include "func/ranking_function.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

constexpr int kRankDims = 4;

struct Flags {
  uint64_t rows = 20000;
  int reps = 10;       ///< passes over the tid stream per trial
  int trials = 5;      ///< best-of-N trials per cell (noise robustness)
  bool smoke = false;  ///< tiny sizes for CI health checks
  uint64_t seed = 7;   ///< data-generator seed (recorded in the JSON)
  std::string json = "BENCH_hotpath.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--reps=", &v)) {
      f.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--trials=", &v)) {
      f.trials = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  if (f.smoke) {
    f.rows = std::min<uint64_t>(f.rows, 10000);
    f.reps = std::min(f.reps, 3);
    f.trials = std::min(f.trials, 1);
  }
  return f;
}

/// The pre-batch inner loop, kept verbatim as the baseline: per tuple, a
/// gather into a point vector and one virtual Evaluate call. The point
/// buffer is caller-provided scratch, hoisted out of the timed per-block
/// calls exactly as the engines hoisted it out of their scan loops.
void ScalarScore(const Table& table, const RankingFunction& f,
                 const Tid* tids, size_t n, std::vector<double>* point,
                 double* out) {
  point->resize(table.num_rank_dims());
  for (size_t i = 0; i < n; ++i) {
    for (int d = 0; d < table.num_rank_dims(); ++d) {
      (*point)[d] = table.rank(tids[i], d);
    }
    out[i] = f.Evaluate(point->data());
  }
}

struct Row {
  std::string function;
  size_t block_size = 0;
  double scalar_mtps = 0.0;  ///< million tuples scored / second
  double batch_mtps = 0.0;
  double fused_mtps = 0.0;  ///< specialized kernel, scan-order stream
  double speedup = 0.0;     ///< batch vs scalar (the historical column)
  double fused_vs_batch = 0.0;
};

struct OfferRow {
  int k = 0;
  double offer_mtps = 0.0;
  double offer_batch_mtps = 0.0;
  double speedup = 0.0;
};

struct PipelineRow {
  std::string function;
  double legacy_mtps = 0.0;  ///< row-at-a-time predicate + batch score
  double fused_mtps = 0.0;   ///< FusedScorer: filter/score/threshold fused
  double speedup = 0.0;
};

/// Floor on fused-vs-batch speedup at block 1024, enforced under --smoke.
/// Generous (roughly half the measured steady-state ratios) so shared CI
/// runners pass, but tight enough that losing a dense kernel to a codegen
/// or dispatch regression fails loudly.
double SmokeFloor(const std::string& function) {
  if (function == "constrained_sum") return 2.0;
  return 1.5;
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  SyntheticSpec spec;
  spec.num_rows = flags.rows;
  spec.num_sel_dims = 2;
  spec.cardinality = 8;
  spec.num_rank_dims = kRankDims;
  spec.seed = flags.seed;
  Table table = GenerateSynthetic(spec);

  // Tuple stream: every tid once, scrambled, so block starts are not
  // cache-aligned runs — the access pattern of a real retrieve step.
  Rng rng(31);
  std::vector<Tid> tids(table.num_rows());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) tids[t] = t;
  for (size_t i = tids.size() - 1; i > 0; --i) {
    std::swap(tids[i], tids[rng.UniformInt(i + 1)]);
  }

  // Scan-order stream for the fused column: every scan call site feeds the
  // kernels consecutive tid runs, which is what unlocks the dense
  // (vectorized) loops.
  std::vector<Tid> scan_tids(table.num_rows());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    scan_tids[t] = t;
  }

  std::vector<std::pair<std::string, RankingFunctionPtr>> funcs;
  funcs.emplace_back("linear", std::make_shared<LinearFunction>(
                                   std::vector<double>{0.4, 0.3, 0.2, 0.1}));
  funcs.emplace_back("quadratic",
                     std::make_shared<QuadraticDistance>(
                         std::vector<double>{1.0, 1.0, 1.0, 1.0},
                         std::vector<double>{0.2, 0.4, 0.6, 0.8}));
  funcs.emplace_back("l1", std::make_shared<L1Distance>(
                               std::vector<double>{1.0, 0.5, 0.25, 0.125},
                               std::vector<double>{0.5, 0.5, 0.5, 0.5}));
  funcs.emplace_back("squared_linear",
                     std::make_shared<SquaredLinear>(
                         std::vector<double>{2.0, -1.0, -1.0, 0.5}));
  funcs.emplace_back("general_ab",
                     std::make_shared<GeneralAB>(kRankDims, 0, 1));
  funcs.emplace_back("constrained_sum", std::make_shared<ConstrainedSum>(
                                            kRankDims, 0, 1, 0.25, 0.75));

  const size_t block_sizes[] = {64, 256, 1024, 4096};
  std::vector<Row> rows;
  std::vector<double> scalar_out(tids.size());
  std::vector<double> batch_out(tids.size());
  std::vector<double> fused_out(tids.size());
  std::vector<double> point;
  double sink = 0.0;
  bool smoke_failed = false;

  for (const auto& [name, f] : funcs) {
    kernels::BlockEvaluator eval(table, *f);
    if (!eval.fused()) {
      std::fprintf(stderr, "DISPATCH FAILURE: %s has no fused kernel\n",
                   name.c_str());
      return 1;
    }
    for (size_t block : block_sizes) {
      // One warm pass each, also used as a correctness check: the batch
      // path must reproduce the scalar scores bit for bit, and so must the
      // fused kernel on the scan-order stream.
      ScalarScore(table, *f, tids.data(), tids.size(), &point,
                  scalar_out.data());
      for (size_t off = 0; off < tids.size(); off += block) {
        size_t n = std::min(block, tids.size() - off);
        f->EvaluateBatch(table, tids.data() + off, n, batch_out.data() + off);
      }
      for (size_t i = 0; i < tids.size(); ++i) {
        if (scalar_out[i] != batch_out[i]) {
          std::fprintf(stderr,
                       "PARITY FAILURE: %s block=%zu tid=%u scalar=%.17g "
                       "batch=%.17g\n",
                       name.c_str(), block, tids[i], scalar_out[i],
                       batch_out[i]);
          return 1;
        }
      }
      ScalarScore(table, *f, scan_tids.data(), scan_tids.size(), &point,
                  scalar_out.data());
      for (size_t off = 0; off < scan_tids.size(); off += block) {
        size_t n = std::min(block, scan_tids.size() - off);
        eval.Score(scan_tids.data() + off, n, fused_out.data() + off);
      }
      for (size_t i = 0; i < scan_tids.size(); ++i) {
        if (scalar_out[i] != fused_out[i]) {
          std::fprintf(stderr,
                       "PARITY FAILURE: %s block=%zu tid=%u scalar=%.17g "
                       "fused=%.17g\n",
                       name.c_str(), block, scan_tids[i], scalar_out[i],
                       fused_out[i]);
          return 1;
        }
      }

      // Best of N trials per path: the minimum is the least-disturbed
      // measurement on a shared machine.
      double scalar_ms = kInfScore;
      double batch_ms = kInfScore;
      double fused_ms = kInfScore;
      for (int trial = 0; trial < flags.trials; ++trial) {
        Stopwatch watch;
        for (int rep = 0; rep < flags.reps; ++rep) {
          for (size_t off = 0; off < tids.size(); off += block) {
            size_t n = std::min(block, tids.size() - off);
            ScalarScore(table, *f, tids.data() + off, n, &point,
                        scalar_out.data() + off);
          }
          sink += scalar_out[0];
        }
        scalar_ms = std::min(scalar_ms, watch.ElapsedMs());

        watch.Restart();
        for (int rep = 0; rep < flags.reps; ++rep) {
          for (size_t off = 0; off < tids.size(); off += block) {
            size_t n = std::min(block, tids.size() - off);
            f->EvaluateBatch(table, tids.data() + off, n,
                             batch_out.data() + off);
          }
          sink += batch_out[0];
        }
        batch_ms = std::min(batch_ms, watch.ElapsedMs());

        watch.Restart();
        for (int rep = 0; rep < flags.reps; ++rep) {
          for (size_t off = 0; off < scan_tids.size(); off += block) {
            size_t n = std::min(block, scan_tids.size() - off);
            eval.Score(scan_tids.data() + off, n, fused_out.data() + off);
          }
          sink += fused_out[0];
        }
        fused_ms = std::min(fused_ms, watch.ElapsedMs());
      }

      const double scored =
          static_cast<double>(tids.size()) * flags.reps / 1e6;
      Row row;
      row.function = name;
      row.block_size = block;
      row.scalar_mtps = scored / (scalar_ms / 1000.0);
      row.batch_mtps = scored / (batch_ms / 1000.0);
      row.fused_mtps = scored / (fused_ms / 1000.0);
      row.speedup = scalar_ms / batch_ms;
      row.fused_vs_batch = batch_ms / fused_ms;
      rows.push_back(row);
      std::printf(
          "%-16s block=%-5zu scalar=%8.1f Mt/s  batch=%8.1f Mt/s  "
          "fused=%8.1f Mt/s  fused/batch=%5.2fx\n",
          name.c_str(), block, row.scalar_mtps, row.batch_mtps,
          row.fused_mtps, row.fused_vs_batch);

      if (flags.smoke && block == 1024 &&
          row.fused_vs_batch < SmokeFloor(name)) {
        std::fprintf(stderr,
                     "SMOKE FAILURE: %s fused/batch %.2fx below floor "
                     "%.2fx at block 1024\n",
                     name.c_str(), row.fused_vs_batch, SmokeFloor(name));
        smoke_failed = true;
      }
    }
  }

  // Threshold-aware OfferBatch vs per-tuple Offer, on linear scores: once
  // the heap saturates, whole blocks fail the S_k bound with n compares.
  std::vector<OfferRow> offer_rows;
  {
    const auto& f = *funcs.front().second;
    f.EvaluateBatch(table, tids.data(), tids.size(), batch_out.data());
    for (int k : {10, 100}) {
      double offer_ms = kInfScore;
      double batch_ms = kInfScore;
      double kth = 0.0;
      double kth_batch = 0.0;
      for (int trial = 0; trial < flags.trials; ++trial) {
        Stopwatch watch;
        for (int rep = 0; rep < flags.reps; ++rep) {
          TopKHeap heap(k);
          for (size_t i = 0; i < tids.size(); ++i) {
            heap.Offer(tids[i], batch_out[i]);
          }
          kth = heap.KthScore();
        }
        offer_ms = std::min(offer_ms, watch.ElapsedMs());

        watch.Restart();
        for (int rep = 0; rep < flags.reps; ++rep) {
          TopKHeap heap(k);
          for (size_t off = 0; off < tids.size(); off += 1024) {
            size_t n = std::min<size_t>(1024, tids.size() - off);
            heap.OfferBatch(tids.data() + off, batch_out.data() + off, n);
          }
          kth_batch = heap.KthScore();
        }
        batch_ms = std::min(batch_ms, watch.ElapsedMs());
      }
      if (kth != kth_batch) {
        std::fprintf(stderr, "PARITY FAILURE: OfferBatch k=%d\n", k);
        return 1;
      }

      const double offered =
          static_cast<double>(tids.size()) * flags.reps / 1e6;
      OfferRow row;
      row.k = k;
      row.offer_mtps = offered / (offer_ms / 1000.0);
      row.offer_batch_mtps = offered / (batch_ms / 1000.0);
      row.speedup = offer_ms / batch_ms;
      offer_rows.push_back(row);
      std::printf(
          "offer k=%-4d       scalar=%8.1f Mt/s  batch=%8.1f Mt/s  "
          "speedup=%5.2fx\n",
          k, row.offer_mtps, row.offer_batch_mtps, row.speedup);
    }
  }

  // Whole-pipeline section: predicate filter + score + threshold offer over
  // the full relation (the table-scan shape), fused vs the row-at-a-time
  // loop the engines ran before the kernel layer. One equality predicate at
  // ~1/8 selectivity; k=10.
  std::vector<PipelineRow> pipeline_rows;
  {
    const std::vector<Predicate> preds = {{0, 3}};
    const int k = 10;
    const size_t n_rows = table.num_rows();
    std::vector<Tid> block_tids;
    std::vector<double> block_scores;
    ExecStats pipe_stats;
    for (const auto& [name, f] : funcs) {
      double legacy_ms = kInfScore;
      double fused_ms = kInfScore;
      std::vector<ScoredTuple> legacy_top, fused_top;
      for (int trial = 0; trial < flags.trials; ++trial) {
        Stopwatch watch;
        for (int rep = 0; rep < flags.reps; ++rep) {
          TopKHeap heap(k);
          block_tids.clear();
          for (Tid t = 0; t < static_cast<Tid>(n_rows); ++t) {
            bool ok = true;
            for (const auto& p : preds) {
              if (table.sel(t, p.dim) != p.value) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
            block_tids.push_back(t);
            if (block_tids.size() >= 1024) {
              block_scores.resize(block_tids.size());
              f->EvaluateBatch(table, block_tids.data(), block_tids.size(),
                               block_scores.data());
              heap.OfferBatch(block_tids.data(), block_scores.data(),
                              block_tids.size());
              block_tids.clear();
            }
          }
          if (!block_tids.empty()) {
            block_scores.resize(block_tids.size());
            f->EvaluateBatch(table, block_tids.data(), block_tids.size(),
                             block_scores.data());
            heap.OfferBatch(block_tids.data(), block_scores.data(),
                            block_tids.size());
            block_tids.clear();
          }
          legacy_top = heap.Sorted();
        }
        legacy_ms = std::min(legacy_ms, watch.ElapsedMs());

        watch.Restart();
        for (int rep = 0; rep < flags.reps; ++rep) {
          TopKHeap heap(k);
          kernels::FusedScorer scorer(table, *f, preds, &heap, &pipe_stats);
          for (Tid t = 0; t < static_cast<Tid>(n_rows); ++t) scorer.Add(t);
          scorer.Flush();
          fused_top = heap.Sorted();
        }
        fused_ms = std::min(fused_ms, watch.ElapsedMs());
      }
      if (legacy_top != fused_top) {
        std::fprintf(stderr, "PARITY FAILURE: pipeline %s\n", name.c_str());
        return 1;
      }

      const double processed = static_cast<double>(n_rows) * flags.reps / 1e6;
      PipelineRow row;
      row.function = name;
      row.legacy_mtps = processed / (legacy_ms / 1000.0);
      row.fused_mtps = processed / (fused_ms / 1000.0);
      row.speedup = legacy_ms / fused_ms;
      pipeline_rows.push_back(row);
      std::printf(
          "pipeline %-16s legacy=%8.1f Mt/s  fused=%8.1f Mt/s  "
          "speedup=%5.2fx\n",
          name.c_str(), row.legacy_mtps, row.fused_mtps, row.speedup);
    }
  }

  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"scoring_hotpath\",\n"
               "  \"rows\": %llu,\n  \"seed\": %llu,\n  \"reps\": %d,\n"
               "  \"trials\": %d,\n"
               "  \"rank_dims\": %d,\n  \"results\": [\n",
               static_cast<unsigned long long>(flags.rows),
               static_cast<unsigned long long>(flags.seed), flags.reps,
               flags.trials, kRankDims);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"function\": \"%s\", \"block_size\": %zu, "
                 "\"scalar_mtuples_per_s\": %.1f, "
                 "\"batch_mtuples_per_s\": %.1f, "
                 "\"fused_mtuples_per_s\": %.1f, \"speedup\": %.3f, "
                 "\"fused_vs_batch\": %.3f}%s\n",
                 r.function.c_str(), r.block_size, r.scalar_mtps,
                 r.batch_mtps, r.fused_mtps, r.speedup, r.fused_vs_batch,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"offer\": [\n");
  for (size_t i = 0; i < offer_rows.size(); ++i) {
    const OfferRow& r = offer_rows[i];
    std::fprintf(out,
                 "    {\"k\": %d, \"offer_mtuples_per_s\": %.1f, "
                 "\"offer_batch_mtuples_per_s\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 r.k, r.offer_mtps, r.offer_batch_mtps, r.speedup,
                 i + 1 < offer_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"pipeline\": [\n");
  for (size_t i = 0; i < pipeline_rows.size(); ++i) {
    const PipelineRow& r = pipeline_rows[i];
    std::fprintf(out,
                 "    {\"function\": \"%s\", "
                 "\"legacy_mtuples_per_s\": %.1f, "
                 "\"fused_mtuples_per_s\": %.1f, \"speedup\": %.3f}%s\n",
                 r.function.c_str(), r.legacy_mtps, r.fused_mtps, r.speedup,
                 i + 1 < pipeline_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (sink=%g)\n", flags.json.c_str(), sink);
  if (smoke_failed) {
    std::fprintf(stderr, "smoke thresholds not met\n");
    return 1;
  }
  return 0;
}

}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
