// Mutable-cube harness: what does it cost to keep the access structures
// fresh under a live write feed, and what do stale structures cost per
// query before compaction?
//
// Part A — maintenance vs rebuild. Every maintainable engine (grid,
// fragments, signature, ranking_first) is built over the base relation; a
// 1% live feed is applied to the table; each engine then absorbs it via
// RankingEngine::Maintain (physical pages measured) and is separately
// rebuilt from scratch on the mutated table (pages measured). The feed is
// *clustered* — a handful of hot selection combinations with rank values
// concentrated around a trend point — which is the regime the paper's
// locality argument targets: each arriving tuple lands in one base block,
// one cell per cuboid, one R-tree leaf, so a batch touches few distinct
// pages while a rebuild rescans the whole relation per cuboid. The
// acceptance gate (ISSUE 5) requires maintenance to be at least 5x
// cheaper in pages than the rebuild for every maintainable engine.
//
// Part B — query overhead vs staleness. A RankCubeDb with pre-built
// structures serves a fixed mixed workload at delta fractions 0%, 1% and
// 10% (writes applied through db.Insert/db.Delete, structures left
// stale), then once more after Compact(). Stale queries pay the exact
// delta overlay (tail scan + deeper inner search); compaction removes it.
//
// Like bench_parallel this needs no google-benchmark, always builds, and
// emits BENCH_update.json. --smoke shrinks the dataset for CI and exits
// non-zero if the 5x maintenance gate fails.
//
// Usage:
//   bench_update [--rows=N] [--seed=N] [--json=PATH] [--smoke]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/query_builder.h"
#include "engine/registry.h"
#include "gen/synthetic.h"
#include "planner/rank_cube_db.h"

namespace rankcube {
namespace {

struct Flags {
  uint64_t rows = 60000;
  double delta_fraction = 0.01;
  uint64_t seed = 11;  ///< data-generator seed (recorded in the JSON)
  bool smoke = false;
  std::string json = "BENCH_update.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--json=", &v)) {
      f.json = v;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      f.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  // Maintenance pages are roughly constant in the relation size (the feed
  // touches the same hot cells) while rebuild pages scale with it, so the
  // smoke dataset must stay large enough for the 5x gate to be meaningful.
  if (f.smoke) f.rows = 20000;
  return f;
}

Table MakeBase(uint64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = 3;
  spec.sel_cardinalities = {8, 6, 4};
  spec.num_rank_dims = 2;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

/// Clustered live feed: hot selection combos, rank values tight around a
/// trend point (new arrivals resemble each other — the locality regime).
struct Feed {
  Rng rng{271828};
  std::vector<std::vector<int32_t>> hot;
  std::vector<double> center = {0.35, 0.55};

  Feed() {
    for (int i = 0; i < 6; ++i) {
      hot.push_back({static_cast<int32_t>(rng.UniformInt(8)),
                     static_cast<int32_t>(rng.UniformInt(6)),
                     static_cast<int32_t>(rng.UniformInt(4))});
    }
  }

  std::vector<int32_t> Sel() { return hot[rng.UniformInt(hot.size())]; }
  std::vector<double> Rank() {
    std::vector<double> r(center.size());
    for (size_t d = 0; d < center.size(); ++d) {
      r[d] = std::min(1.0, std::max(0.0, center[d] + rng.Gaussian(0.0, 0.05)));
    }
    return r;
  }
};

const std::vector<std::string>& MaintainableEngines() {
  static const std::vector<std::string> kEngines = {
      "grid", "fragments", "signature", "ranking_first"};
  return kEngines;
}

struct MaintRow {
  std::string engine;
  uint64_t build_pages = 0;
  uint64_t maintain_pages = 0;
  uint64_t rebuild_pages = 0;
  double ratio = 0.0;  ///< rebuild / maintain
  double maintain_pages_per_insert = 0.0;
};

std::vector<TopKQuery> MakeWorkload(const Table& table, int per_class,
                                    uint64_t seed) {
  Rng rng(seed);
  auto anchor = [&](int dim) {
    Tid row = static_cast<Tid>(rng.UniformInt(table.num_rows()));
    return table.sel(row, dim);
  };
  std::vector<TopKQuery> queries;
  for (int i = 0; i < per_class; ++i) {
    queries.push_back(
        QueryBuilder().OrderByLinear({1.0, 2.0}).Limit(10).Build());
    queries.push_back(QueryBuilder()
                          .Where(0, anchor(0))
                          .OrderByLinear({1.0, 1.0})
                          .Limit(10)
                          .Build());
    queries.push_back(QueryBuilder()
                          .Where(1, anchor(1))
                          .Where(2, anchor(2))
                          .OrderByLinear({2.0, 1.0})
                          .Limit(10)
                          .Build());
  }
  return queries;
}

/// Average physical pages per query, all queries forced to `engine`
/// (empty = planner-routed).
double AvgPages(RankCubeDb* db, const std::vector<TopKQuery>& workload,
                const std::string& engine) {
  QueryOptions opts;
  opts.force_engine = engine;
  auto report = db->QueryAll(workload, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "workload failed on '%s': %s\n", engine.c_str(),
                 report.status().ToString().c_str());
    std::exit(1);
  }
  if (report.value().failed > 0) {
    std::fprintf(stderr, "%zu queries failed on '%s': %s\n",
                 report.value().failed, engine.c_str(),
                 report.value().first_error.ToString().c_str());
    std::exit(1);
  }
  return static_cast<double>(report.value().physical_pages) /
         static_cast<double>(workload.size());
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  const size_t num_inserts =
      static_cast<size_t>(static_cast<double>(flags.rows) *
                          flags.delta_fraction);

  // ---- Part A: maintain vs rebuild --------------------------------------
  Table table = MakeBase(flags.rows, flags.seed);
  PageStore store;
  std::map<std::string, std::unique_ptr<RankingEngine>> engines;
  std::vector<MaintRow> rows;
  for (const std::string& name : MaintainableEngines()) {
    IoSession build_io(&store);
    auto engine = EngineRegistry::Global().Create(name, table, build_io);
    if (!engine.ok()) {
      std::fprintf(stderr, "build %s: %s\n", name.c_str(),
                   engine.status().ToString().c_str());
      return 1;
    }
    MaintRow row;
    row.engine = name;
    row.build_pages = build_io.TotalPhysical();
    rows.push_back(row);
    engines.emplace(name, std::move(engine).value());
  }

  Feed feed;
  for (size_t i = 0; i < num_inserts; ++i) {
    Status s = table.Insert(feed.Sel(), feed.Rank()).status();
    if (!s.ok()) {
      std::fprintf(stderr, "insert: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  double min_ratio = 1e300;
  for (MaintRow& row : rows) {
    RankingEngine* engine = engines.at(row.engine).get();
    IoSession maintain_io(&store);
    Status maintained = engine->Maintain(&maintain_io);
    if (!maintained.ok()) {
      std::fprintf(stderr, "maintain %s: %s\n", row.engine.c_str(),
                   maintained.ToString().c_str());
      return 1;
    }
    row.maintain_pages = maintain_io.TotalPhysical();
    row.maintain_pages_per_insert =
        static_cast<double>(row.maintain_pages) /
        static_cast<double>(num_inserts);

    IoSession rebuild_io(&store);
    auto rebuilt = EngineRegistry::Global().Create(row.engine, table,
                                                   rebuild_io);
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "rebuild %s: %s\n", row.engine.c_str(),
                   rebuilt.status().ToString().c_str());
      return 1;
    }
    row.rebuild_pages = rebuild_io.TotalPhysical();
    row.ratio = static_cast<double>(row.rebuild_pages) /
                static_cast<double>(std::max<uint64_t>(1, row.maintain_pages));
    min_ratio = std::min(min_ratio, row.ratio);
  }

  std::printf("%-14s %12s %14s %13s %8s\n", "engine", "build_pages",
              "maintain_pages", "rebuild_pages", "ratio");
  for (const MaintRow& row : rows) {
    std::printf("%-14s %12llu %14llu %13llu %7.1fx\n", row.engine.c_str(),
                static_cast<unsigned long long>(row.build_pages),
                static_cast<unsigned long long>(row.maintain_pages),
                static_cast<unsigned long long>(row.rebuild_pages),
                row.ratio);
  }
  std::printf("1%% delta = %zu inserts; min rebuild/maintain = %.1fx\n\n",
              num_inserts, min_ratio);

  // ---- Part B: query overhead vs delta fraction --------------------------
  RankCubeDb db(MakeBase(flags.rows, flags.seed), RankCubeDb::Options());
  const std::vector<std::string> query_engines = {"grid", "fragments",
                                                  "signature", "table_scan"};
  for (const std::string& name : query_engines) {
    auto built = db.Engine(name);
    if (!built.ok()) {
      std::fprintf(stderr, "db build %s: %s\n", name.c_str(),
                   built.status().ToString().c_str());
      return 1;
    }
  }
  std::vector<TopKQuery> workload =
      MakeWorkload(db.table(), flags.smoke ? 3 : 8, /*seed=*/4242);

  struct OverheadRow {
    std::string phase;
    std::map<std::string, double> avg_pages;
  };
  std::vector<OverheadRow> overhead;
  Feed db_feed;
  Rng delete_rng(5150);
  auto measure = [&](const std::string& phase) {
    OverheadRow row;
    row.phase = phase;
    for (const std::string& name : query_engines) {
      row.avg_pages[name] = AvgPages(&db, workload, name);
    }
    row.avg_pages["planner"] = AvgPages(&db, workload, "");
    overhead.push_back(row);
  };
  auto apply_fraction = [&](double target_fraction) {
    size_t target = static_cast<size_t>(static_cast<double>(flags.rows) *
                                        target_fraction);
    size_t current = db.table().delta().InsertsSince(0);
    for (size_t i = current; i < target; ++i) {
      Status s = db.Insert(db_feed.Sel(), db_feed.Rank()).status();
      if (!s.ok()) std::exit(1);
      // One delete per 10 inserts: top-k members occasionally vanish, so
      // the overlay's deeper inner search is exercised too.
      if (i % 10 == 0) {
        Tid victim = static_cast<Tid>(delete_rng.UniformInt(flags.rows));
        (void)db.Delete(victim);  // may already be tombstoned: fine
      }
    }
  };

  measure("fresh");
  apply_fraction(0.01);
  measure("stale_1pct");
  apply_fraction(0.10);
  measure("stale_10pct");
  auto compacted = db.Compact();
  if (!compacted.ok()) {
    std::fprintf(stderr, "compact: %s\n",
                 compacted.status().ToString().c_str());
    return 1;
  }
  measure("post_compact");

  std::printf("%-12s", "phase");
  for (const std::string& name : query_engines) {
    std::printf(" %12s", name.c_str());
  }
  std::printf(" %12s\n", "planner");
  for (const OverheadRow& row : overhead) {
    std::printf("%-12s", row.phase.c_str());
    for (const std::string& name : query_engines) {
      std::printf(" %12.1f", row.avg_pages.at(name));
    }
    std::printf(" %12.1f\n", row.avg_pages.at("planner"));
  }
  std::printf("compaction: %zu maintained, %zu rebuilt, %llu pages\n",
              compacted.value().maintained, compacted.value().rebuilt,
              static_cast<unsigned long long>(compacted.value().pages));

  // ---- JSON ---------------------------------------------------------------
  std::FILE* out = std::fopen(flags.json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"update_maintenance\",\n"
               "  \"rows\": %llu,\n  \"seed\": %llu,\n"
               "  \"delta_fraction\": %.3f,\n"
               "  \"delta_inserts\": %zu,\n"
               "  \"min_rebuild_over_maintain\": %.2f,\n"
               "  \"maintenance\": [\n",
               static_cast<unsigned long long>(flags.rows),
               static_cast<unsigned long long>(flags.seed),
               flags.delta_fraction, num_inserts, min_ratio);
  for (size_t i = 0; i < rows.size(); ++i) {
    const MaintRow& row = rows[i];
    std::fprintf(out,
                 "    {\"engine\": \"%s\", \"build_pages\": %llu, "
                 "\"maintain_pages\": %llu, \"rebuild_pages\": %llu, "
                 "\"rebuild_over_maintain\": %.2f, "
                 "\"maintain_pages_per_insert\": %.3f}%s\n",
                 row.engine.c_str(),
                 static_cast<unsigned long long>(row.build_pages),
                 static_cast<unsigned long long>(row.maintain_pages),
                 static_cast<unsigned long long>(row.rebuild_pages),
                 row.ratio, row.maintain_pages_per_insert,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"query_overhead_avg_pages\": [\n");
  for (size_t i = 0; i < overhead.size(); ++i) {
    std::fprintf(out, "    {\"phase\": \"%s\"", overhead[i].phase.c_str());
    for (const auto& [name, pages] : overhead[i].avg_pages) {
      std::fprintf(out, ", \"%s\": %.1f", name.c_str(), pages);
    }
    std::fprintf(out, "}%s\n", i + 1 < overhead.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"compaction\": {\"maintained\": %zu, \"rebuilt\": "
               "%zu, \"pages\": %llu}\n}\n",
               compacted.value().maintained, compacted.value().rebuilt,
               static_cast<unsigned long long>(compacted.value().pages));
  std::fclose(out);
  std::printf("wrote %s\n", flags.json.c_str());

  // The acceptance gate (and the CI smoke check): incremental maintenance
  // must beat a from-scratch rebuild by at least 5x in pages for a 1%
  // delta, for every maintainable engine.
  if (min_ratio < 5.0) {
    std::fprintf(stderr,
                 "maintenance gate failed: min rebuild/maintain %.2fx < 5x\n",
                 min_ratio);
    return 1;
  }
  return 0;
}

}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
