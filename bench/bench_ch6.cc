// Reproduces Figures 6.3-6.4: SPJR queries over two relations — the
// ranking-cube system (rank-aware selection + multi-way rank join) against
// the conventional filter/join/sort baseline (§6.4).
#include "bench/bench_common.h"
#include "join/spjr_system.h"

namespace rankcube::bench {
namespace {

struct Ctx {
  Table r1, r2;
  PageStore store;
  IoSession io{&store};
  std::unique_ptr<SpjrSystem> sys;

  Ctx(uint64_t rows, int32_t join_card)
      : r1(Make(rows, join_card, 61)), r2(Make(rows, join_card, 62)) {
    sys = std::make_unique<SpjrSystem>(store);
    sys->AddRelation(r1);
    sys->AddRelation(r2);
  }

  static Table Make(uint64_t rows, int32_t join_card, uint64_t seed) {
    SyntheticSpec spec;
    spec.num_rows = rows;
    spec.num_sel_dims = 3;
    spec.sel_cardinalities = {join_card, 10, 10};
    spec.num_rank_dims = 2;
    spec.seed = seed;
    return GenerateSynthetic(spec);
  }
};

std::shared_ptr<Ctx> GetCtx(uint64_t rows, int32_t card) {
  std::string key =
      "ch6:" + std::to_string(Rows(rows)) + ":" + std::to_string(card);
  return Cached<Ctx>(key,
                     [&] { return std::make_shared<Ctx>(Rows(rows), card); });
}

SpjrQuery MakeQuery(const Ctx& ctx, Rng* rng, int k) {
  SpjrQuery q;
  q.k = k;
  q.relations.resize(2);
  for (int r = 0; r < 2; ++r) {
    q.relations[r].join_dim = 0;
    q.relations[r].function = std::make_shared<LinearFunction>(
        std::vector<double>{1 + rng->Uniform01(), 1 + rng->Uniform01()});
  }
  // One local predicate on relation 1 (anchored to existing data).
  const Table& t = ctx.r1;
  Tid anchor = static_cast<Tid>(rng->UniformInt(t.num_rows()));
  q.relations[0].predicates = {{1, t.sel(anchor, 1)}};
  return q;
}

void Run(Ctx& ctx, bool baseline, int k, benchmark::State& state) {
  Rng rng(71);
  double ms = 0, io = 0;
  const int nq = 10;
  for (int i = 0; i < nq; ++i) {
    SpjrQuery q = MakeQuery(ctx, &rng, k);
    ExecStats stats;
    uint64_t before = ctx.io.TotalPhysical();
    if (baseline) {
      auto r = ctx.sys->BaselineTopK(q, &ctx.io, &stats);
      benchmark::DoNotOptimize(r);
    } else {
      auto r = ctx.sys->TopK(q, &ctx.io, &stats);
      benchmark::DoNotOptimize(r);
    }
    ms += stats.time_ms;
    io += static_cast<double>(ctx.io.TotalPhysical() - before);
  }
  state.counters["ms_per_query"] = ms / nq;
  state.counters["io_pages"] = io / nq;
  state.counters["sim_cost_ms"] = (ms + 0.1 * io) / nq;
}

void RegisterAll() {
  // Fig 6.3: execution time w.r.t. join-attribute cardinality.
  for (const char* method : {"ranking_cube", "baseline"}) {
    for (int32_t card : {10, 100, 1000, 10000}) {
      Reg(
          std::string("Fig6.3/") + method + "/card:" + std::to_string(card),
          [method, card](benchmark::State& state) {
            auto ctx = GetCtx(100000, card);
            bool baseline = std::string(method) == "baseline";
            for (auto _ : state) Run(*ctx, baseline, 10, state);
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  // Fig 6.4: execution time w.r.t. database size.
  for (const char* method : {"ranking_cube", "baseline"}) {
    for (uint64_t t : {uint64_t{50000}, uint64_t{100000}, uint64_t{200000},
                       uint64_t{400000}}) {
      Reg(
          std::string("Fig6.4/") + method + "/T:" + std::to_string(t),
          [method, t](benchmark::State& state) {
            auto ctx = GetCtx(t, 100);
            bool baseline = std::string(method) == "baseline";
            for (auto _ : state) Run(*ctx, baseline, 10, state);
          })
          ->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace rankcube::bench

int main(int argc, char** argv) {
  rankcube::bench::ParseScale(&argc, argv);
  rankcube::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
