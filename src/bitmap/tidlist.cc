#include "bitmap/tidlist.h"

namespace rankcube {

namespace {

void PutVarint(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

int VarintSize(uint32_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

std::vector<uint8_t> EncodeTidList(const std::vector<Tid>& tids) {
  std::vector<uint8_t> out;
  Tid prev = 0;
  for (size_t i = 0; i < tids.size(); ++i) {
    uint32_t delta = i == 0 ? tids[0] : tids[i] - prev;
    PutVarint(delta, &out);
    prev = tids[i];
  }
  return out;
}

std::vector<Tid> DecodeTidList(const std::vector<uint8_t>& bytes) {
  std::vector<Tid> out;
  Tid prev = 0;
  size_t pos = 0;
  bool first = true;
  while (pos < bytes.size()) {
    uint32_t v = 0;
    int shift = 0;
    while (pos < bytes.size()) {
      uint8_t b = bytes[pos++];
      v |= static_cast<uint32_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    Tid tid = first ? v : prev + v;
    out.push_back(tid);
    prev = tid;
    first = false;
  }
  return out;
}

size_t TidListEncodedSize(const std::vector<Tid>& tids) {
  size_t bytes = 0;
  Tid prev = 0;
  for (size_t i = 0; i < tids.size(); ++i) {
    bytes += VarintSize(i == 0 ? tids[0] : tids[i] - prev);
    prev = tids[i];
  }
  return bytes;
}

}  // namespace rankcube
