// Node-level lossless signature compression (§4.2.2).
//
// A signature node is a bit array of at most M bits (M = R-tree fanout).
// Each node is encoded with the unified structure of Fig 4.4:
//     CS (3 bits) | Len (len_bits) | coding region
// where CS selects the scheme:
//     000 BL  baseline: zero-truncated raw bits
//     01s PI  position index (positions of 1s, or of 0s in the dense variant)
//     10s RL  run-length (gamma-coded runs)
//     11s PC  prefix compression (grouped position index)
// and s = 0 sparse (code 1s) / 1 dense (code 0s). The Len field stores the
// coding-region length using the one-less principle. Dense variants prepend
// the original array length (log2ceil(M) bits) so trailing 1s are
// recoverable; the encoder appends the artificial trailing 0 required by the
// dense run-length scheme (§4.2.2).
#ifndef RANKCUBE_BITMAP_CODEC_H_
#define RANKCUBE_BITMAP_CODEC_H_

#include <cstdint>

#include "bitmap/bitvector.h"
#include "common/status.h"

namespace rankcube {

/// Coding scheme selector (3-bit CS field).
enum class CodecScheme : uint8_t {
  kBaseline = 0b000,
  kPiSparse = 0b010,
  kPiDense = 0b011,
  kRlSparse = 0b100,
  kRlDense = 0b101,
  kPcSparse = 0b110,
  kPcDense = 0b111,
};

/// Number of bits of ceil(log2(x)) for x >= 1.
int Log2Ceil(uint64_t x);

/// Encodes `arr` (semantic length arr.size() <= M) with the given scheme and
/// appends the unified node structure to `out`. Returns the number of bits
/// appended.
size_t EncodeNodeWith(const BitVector& arr, int M, CodecScheme scheme,
                      BitVector* out);

/// Encodes `arr` with whichever scheme is smallest (adaptive coding).
size_t EncodeNodeAdaptive(const BitVector& arr, int M, BitVector* out);

/// Decodes one node starting at reader position; the result always has M
/// bits (semantic trailing bits are zero-padded). Returns non-OK on a
/// malformed stream.
Status DecodeNode(BitReader* reader, int M, BitVector* out);

/// Bits the unified header occupies for fanout M (CS + Len fields).
size_t NodeHeaderBits(int M);

}  // namespace rankcube

#endif  // RANKCUBE_BITMAP_CODEC_H_
