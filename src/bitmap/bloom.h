// Bloom filter used to compress oversized state-signatures in the
// join-signature of Ch5 (§5.3.1) and discussed as a lossy signature
// compressor in §4.5. No false negatives; false-positive rate controlled by
// the bits-per-key budget.
#ifndef RANKCUBE_BITMAP_BLOOM_H_
#define RANKCUBE_BITMAP_BLOOM_H_

#include <cstdint>

#include "bitmap/bitvector.h"

namespace rankcube {

/// Standard bloom filter over 64-bit keys with double hashing.
class BloomFilter {
 public:
  /// `bits` is the array size b; `num_hashes` is k (§5.3.1 derives the
  /// optimal k = b/ne * ln 2, capped by a max; callers pass the result).
  BloomFilter(size_t bits, int num_hashes);

  void Insert(uint64_t key);
  bool MayContain(uint64_t key) const;

  size_t bits() const { return bits_.size(); }
  size_t SizeBytes() const { return bits_.SizeBytes(); }
  int num_hashes() const { return k_; }

  /// Optimal k for `bits` budget and `num_entries` keys, capped at `max_k`.
  static int OptimalHashes(size_t bits, size_t num_entries, int max_k = 8);

 private:
  static uint64_t Mix(uint64_t x);

  BitVector bits_;
  int k_;
};

}  // namespace rankcube

#endif  // RANKCUBE_BITMAP_BLOOM_H_
