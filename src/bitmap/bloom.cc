#include "bitmap/bloom.h"

#include <algorithm>
#include <cmath>

namespace rankcube {

BloomFilter::BloomFilter(size_t bits, int num_hashes)
    : bits_(std::max<size_t>(8, bits), false), k_(std::max(1, num_hashes)) {}

uint64_t BloomFilter::Mix(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void BloomFilter::Insert(uint64_t key) {
  uint64_t h1 = Mix(key);
  uint64_t h2 = Mix(key ^ 0xFEEDFACECAFEBEEFull) | 1;
  for (int i = 0; i < k_; ++i) {
    bits_.Set((h1 + static_cast<uint64_t>(i) * h2) % bits_.size(), true);
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  uint64_t h1 = Mix(key);
  uint64_t h2 = Mix(key ^ 0xFEEDFACECAFEBEEFull) | 1;
  for (int i = 0; i < k_; ++i) {
    if (!bits_.Get((h1 + static_cast<uint64_t>(i) * h2) % bits_.size())) {
      return false;
    }
  }
  return true;
}

int BloomFilter::OptimalHashes(size_t bits, size_t num_entries, int max_k) {
  if (num_entries == 0) return 1;
  double k = static_cast<double>(bits) / num_entries * std::log(2.0);
  return std::min(max_k, std::max(1, static_cast<int>(std::lround(k))));
}

}  // namespace rankcube
