#include "bitmap/bitvector.h"

#include <bit>
#include <cassert>

namespace rankcube {

BitVector::BitVector(size_t nbits, bool value) : size_(nbits) {
  words_.assign((nbits + 63) / 64, value ? ~0ull : 0ull);
  if (value && (nbits & 63)) {
    words_.back() &= (1ull << (nbits & 63)) - 1;
  }
}

void BitVector::Set(size_t i, bool v) {
  assert(i < size_);
  if (v) {
    words_[i >> 6] |= 1ull << (i & 63);
  } else {
    words_[i >> 6] &= ~(1ull << (i & 63));
  }
}

void BitVector::PushBit(bool v) {
  if ((size_ & 63) == 0) words_.push_back(0);
  if (v) words_[size_ >> 6] |= 1ull << (size_ & 63);
  ++size_;
}

void BitVector::AppendBits(uint64_t value, int nbits) {
  for (int b = nbits - 1; b >= 0; --b) PushBit((value >> b) & 1ull);
}

void BitVector::AppendVector(const BitVector& other) {
  for (size_t i = 0; i < other.size(); ++i) PushBit(other.Get(i));
}

uint64_t BitVector::ReadBits(size_t pos, int nbits) const {
  uint64_t v = 0;
  for (int b = 0; b < nbits; ++b) {
    v = (v << 1) | static_cast<uint64_t>(Get(pos + b));
  }
  return v;
}

size_t BitVector::PopCount() const {
  size_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

size_t BitVector::LastOnePlusOne() const {
  for (size_t i = size_; i > 0; --i) {
    if (Get(i - 1)) return i;
  }
  return 0;
}

size_t BitVector::SelectOne(size_t i) const {
  size_t seen = 0;
  for (size_t p = 0; p < size_; ++p) {
    if (Get(p) && seen++ == i) return p;
  }
  return size_;
}

bool BitVector::operator==(const BitVector& o) const {
  if (size_ != o.size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    if (Get(i) != o.Get(i)) return false;
  }
  return true;
}

std::string BitVector::ToString() const {
  std::string s;
  s.reserve(size_);
  for (size_t i = 0; i < size_; ++i) s.push_back(Get(i) ? '1' : '0');
  return s;
}

}  // namespace rankcube
