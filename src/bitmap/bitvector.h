// Append-oriented bit array used for signature node bit-arrays and their
// serialized encodings (§4.2.1-§4.2.2).
#ifndef RANKCUBE_BITMAP_BITVECTOR_H_
#define RANKCUBE_BITMAP_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rankcube {

/// Growable bit vector with MSB-first multi-bit append/read helpers.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t nbits, bool value = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t SizeBytes() const { return (size_ + 7) / 8; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }
  void Set(size_t i, bool v);

  void PushBit(bool v);
  /// Appends the low `nbits` of `value`, most-significant bit first.
  void AppendBits(uint64_t value, int nbits);
  void AppendVector(const BitVector& other);

  /// Reads `nbits` starting at `pos`, most-significant bit first.
  uint64_t ReadBits(size_t pos, int nbits) const;

  /// Number of set bits.
  size_t PopCount() const;
  /// Index one past the last set bit (0 when none are set).
  size_t LastOnePlusOne() const;

  /// Position of the i-th (0-based) set bit, or size() when absent.
  size_t SelectOne(size_t i) const;

  bool operator==(const BitVector& o) const;
  std::string ToString() const;  // e.g. "0110"

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Sequential reader over a BitVector.
class BitReader {
 public:
  explicit BitReader(const BitVector& bv, size_t pos = 0)
      : bv_(bv), pos_(pos) {}

  bool ReadBit() { return bv_.Get(pos_++); }
  uint64_t Read(int nbits) {
    uint64_t v = bv_.ReadBits(pos_, nbits);
    pos_ += nbits;
    return v;
  }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= bv_.size(); }

 private:
  const BitVector& bv_;
  size_t pos_;
};

}  // namespace rankcube

#endif  // RANKCUBE_BITMAP_BITVECTOR_H_
