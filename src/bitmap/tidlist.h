// ID-list compression (§3.6.3): tid lists in cuboid cells are stored in
// ascending order, so delta + varint coding bounds most gaps well below 32
// bits. Used to report the compressed footprint of Ch3 cuboids (and usable
// as a storage codec by any tid-list owner).
#ifndef RANKCUBE_BITMAP_TIDLIST_H_
#define RANKCUBE_BITMAP_TIDLIST_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace rankcube {

/// Encodes an ascending tid list as delta-varints.
std::vector<uint8_t> EncodeTidList(const std::vector<Tid>& tids);

/// Inverse of EncodeTidList.
std::vector<Tid> DecodeTidList(const std::vector<uint8_t>& bytes);

/// Encoded size without materializing the buffer.
size_t TidListEncodedSize(const std::vector<Tid>& tids);

}  // namespace rankcube

#endif  // RANKCUBE_BITMAP_TIDLIST_H_
