#include "bitmap/codec.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rankcube {

namespace {

// Bits needed to represent integer i (>= 1 bit).
int GammaValueBits(uint64_t i) { return std::max(1, Log2Ceil(i + 1)); }

// Gamma-style run code (§4.2.2): (bits-1) ones, a zero, then i in `bits`.
void AppendGamma(uint64_t i, BitVector* out) {
  int bits = GammaValueBits(i);
  for (int b = 0; b < bits - 1; ++b) out->PushBit(true);
  out->PushBit(false);
  out->AppendBits(i, bits);
}

uint64_t ReadGamma(BitReader* reader) {
  int bits = 1;
  while (reader->ReadBit()) ++bits;
  return reader->Read(bits);
}

int PosBits(int M) { return std::max(1, Log2Ceil(static_cast<uint64_t>(M))); }

int LenBits(int M) {
  return Log2Ceil(static_cast<uint64_t>(2 * M + 2));
}

// Positions of bits with value `v` in arr.
std::vector<uint32_t> Positions(const BitVector& arr, bool v) {
  std::vector<uint32_t> pos;
  for (size_t i = 0; i < arr.size(); ++i) {
    if (arr.Get(i) == v) pos.push_back(static_cast<uint32_t>(i));
  }
  return pos;
}

// Optimal prefix length for PC coding: p = log2(2^n / (n ln 2)) (§4.2.2).
int PcPrefixLen(int n) {
  double p = std::log2(std::pow(2.0, n) / (n * std::log(2.0)));
  int pi = static_cast<int>(std::lround(p));
  return std::min(n - 1, std::max(1, pi));
}

// Builds only the coding region for `scheme`; returns false when the scheme
// cannot represent the array (e.g. PI-sparse of an all-zero array).
bool BuildRegion(const BitVector& arr, int M, CodecScheme scheme,
                 BitVector* region) {
  const int pos_bits = PosBits(M);
  const size_t L = arr.size();
  switch (scheme) {
    case CodecScheme::kBaseline: {
      size_t keep = std::max<size_t>(1, arr.LastOnePlusOne());
      keep = std::min(keep, L == 0 ? size_t{1} : L);
      if (L == 0) {
        region->PushBit(false);
        return true;
      }
      for (size_t i = 0; i < keep; ++i) region->PushBit(arr.Get(i));
      return true;
    }
    case CodecScheme::kPiSparse: {
      auto pos = Positions(arr, true);
      if (pos.empty()) return false;
      for (uint32_t p : pos) region->AppendBits(p, pos_bits);
      return true;
    }
    case CodecScheme::kPiDense: {
      if (L == 0) return false;
      auto pos = Positions(arr, false);
      region->AppendBits(L - 1, pos_bits);  // original length (one-less)
      for (uint32_t p : pos) region->AppendBits(p, pos_bits);
      return true;
    }
    case CodecScheme::kRlSparse: {
      auto pos = Positions(arr, true);
      if (pos.empty()) return false;
      uint64_t prev = 0;
      for (uint32_t p : pos) {
        AppendGamma(p - prev, region);  // i zeros then a one
        prev = p + 1;
      }
      return true;
    }
    case CodecScheme::kRlDense: {
      if (L == 0) return false;
      region->AppendBits(L - 1, pos_bits);
      // Runs of (i ones, then a zero) over arr + one artificial trailing 0.
      size_t i = 0;
      uint64_t ones = 0;
      for (; i < L; ++i) {
        if (arr.Get(i)) {
          ++ones;
        } else {
          AppendGamma(ones, region);
          ones = 0;
        }
      }
      AppendGamma(ones, region);  // run terminated by the artificial 0
      return true;
    }
    case CodecScheme::kPcSparse:
    case CodecScheme::kPcDense: {
      bool dense = scheme == CodecScheme::kPcDense;
      auto pos = Positions(arr, !dense);
      if (dense) {
        if (L == 0) return false;
        region->AppendBits(L - 1, pos_bits);
      } else if (pos.empty()) {
        return false;
      }
      const int n = pos_bits;
      const int p = PcPrefixLen(n);
      const int suffix_bits = n - p;
      size_t i = 0;
      while (i < pos.size()) {
        uint32_t prefix = pos[i] >> suffix_bits;
        size_t j = i;
        while (j < pos.size() && (pos[j] >> suffix_bits) == prefix) ++j;
        size_t count = j - i;
        // A group can hold at most 2^suffix_bits suffixes (one-less coded);
        // split oversized groups.
        size_t cap = size_t{1} << suffix_bits;
        size_t take = std::min(count, cap);
        region->AppendBits(prefix, p);
        region->AppendBits(take - 1, suffix_bits);
        for (size_t t = 0; t < take; ++t) {
          region->AppendBits(pos[i + t] & ((1u << suffix_bits) - 1),
                             suffix_bits);
        }
        i += take;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

int Log2Ceil(uint64_t x) {
  int b = 0;
  while ((uint64_t{1} << b) < x) ++b;
  return b;
}

size_t NodeHeaderBits(int M) { return 3 + LenBits(M); }

size_t EncodeNodeWith(const BitVector& arr, int M, CodecScheme scheme,
                      BitVector* out) {
  assert(M >= 2);
  BitVector region;
  bool ok = BuildRegion(arr, M, scheme, &region);
  const size_t max_region = (size_t{1} << LenBits(M));
  if (!ok || region.empty() || region.size() > max_region) {
    scheme = CodecScheme::kBaseline;
    region = BitVector();
    BuildRegion(arr, M, CodecScheme::kBaseline, &region);
  }
  size_t before = out->size();
  out->AppendBits(static_cast<uint64_t>(scheme), 3);
  out->AppendBits(region.size() - 1, LenBits(M));  // one-less principle
  out->AppendVector(region);
  return out->size() - before;
}

size_t EncodeNodeAdaptive(const BitVector& arr, int M, BitVector* out) {
  static constexpr CodecScheme kAll[] = {
      CodecScheme::kBaseline, CodecScheme::kPiSparse, CodecScheme::kPiDense,
      CodecScheme::kRlSparse, CodecScheme::kRlDense,  CodecScheme::kPcSparse,
      CodecScheme::kPcDense,
  };
  BitVector best;
  for (CodecScheme s : kAll) {
    BitVector candidate;
    EncodeNodeWith(arr, M, s, &candidate);
    if (best.empty() || candidate.size() < best.size()) best = candidate;
  }
  out->AppendVector(best);
  return best.size();
}

Status DecodeNode(BitReader* reader, int M, BitVector* out) {
  const int pos_bits = PosBits(M);
  if (reader->pos() + NodeHeaderBits(M) > reader->pos() + (1u << 30)) {
    return Status::Corruption("bit stream underflow");
  }
  auto scheme = static_cast<CodecScheme>(reader->Read(3));
  size_t region_len = static_cast<size_t>(reader->Read(LenBits(M))) + 1;
  size_t region_end = reader->pos() + region_len;

  *out = BitVector(static_cast<size_t>(M), false);
  switch (scheme) {
    case CodecScheme::kBaseline: {
      for (size_t i = 0; i < region_len; ++i) {
        bool b = reader->ReadBit();
        if (i < out->size()) out->Set(i, b);
      }
      return Status::OK();
    }
    case CodecScheme::kPiSparse: {
      if (region_len % pos_bits != 0) {
        return Status::Corruption("PI region not position-aligned");
      }
      for (size_t i = 0; i < region_len / pos_bits; ++i) {
        out->Set(reader->Read(pos_bits) % M, true);
      }
      return Status::OK();
    }
    case CodecScheme::kPiDense: {
      size_t L = static_cast<size_t>(reader->Read(pos_bits)) + 1;
      for (size_t i = 0; i < std::min(L, out->size()); ++i) out->Set(i, true);
      while (reader->pos() < region_end) {
        out->Set(reader->Read(pos_bits) % M, false);
      }
      return Status::OK();
    }
    case CodecScheme::kRlSparse: {
      size_t p = 0;
      while (reader->pos() < region_end) {
        p += ReadGamma(reader);
        if (p >= out->size()) break;
        out->Set(p, true);
        ++p;
      }
      return Status::OK();
    }
    case CodecScheme::kRlDense: {
      size_t L = static_cast<size_t>(reader->Read(pos_bits)) + 1;
      size_t p = 0;
      while (reader->pos() < region_end && p <= L) {
        uint64_t ones = ReadGamma(reader);
        for (uint64_t i = 0; i < ones && p < out->size(); ++i) {
          out->Set(p++, true);
        }
        ++p;  // the zero terminating this run
      }
      return Status::OK();
    }
    case CodecScheme::kPcSparse:
    case CodecScheme::kPcDense: {
      bool dense = scheme == CodecScheme::kPcDense;
      size_t L = static_cast<size_t>(M);
      if (dense) {
        L = static_cast<size_t>(reader->Read(pos_bits)) + 1;
        for (size_t i = 0; i < std::min(L, out->size()); ++i) {
          out->Set(i, true);
        }
      }
      const int n = pos_bits;
      const int p = PcPrefixLen(n);
      const int suffix_bits = n - p;
      while (reader->pos() < region_end) {
        uint64_t prefix = reader->Read(p);
        size_t count = static_cast<size_t>(reader->Read(suffix_bits)) + 1;
        for (size_t i = 0; i < count; ++i) {
          uint64_t suffix = reader->Read(suffix_bits);
          size_t position = ((prefix << suffix_bits) | suffix) % M;
          out->Set(position, !dense);
        }
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown coding scheme");
}

}  // namespace rankcube
