// Fragment grouping and covering-cuboid selection (§3.4). Selection
// dimensions are evenly partitioned into groups of size F; the cuboids of
// each group are fully materialized; a query over arbitrary dimensions is
// answered by a minimum set of materialized cuboids that jointly cover it
// (the minmax criterion of §3.4.2).
#ifndef RANKCUBE_CUBE_FRAGMENTS_H_
#define RANKCUBE_CUBE_FRAGMENTS_H_

#include <vector>

namespace rankcube {

/// Evenly partitions dimensions {0..num_dims-1} into groups of size
/// `fragment_size` (last group may be smaller).
std::vector<std::vector<int>> GroupDimensions(int num_dims, int fragment_size);

/// All non-empty subsets of `dims` (the 2^F - 1 cuboids of one fragment).
std::vector<std::vector<int>> AllSubsets(const std::vector<int>& dims);

/// Covering-cuboid selection (§3.4.2): among `materialized` cuboids (each a
/// sorted dim list), keep those that are subsets of `query_dims` and maximal
/// (no other candidate is a superset), then greedily pick a minimum subset
/// whose union equals `query_dims`. Returns indices into `materialized`.
/// Empty result means the query cannot be covered.
std::vector<int> SelectCoveringCuboids(
    const std::vector<std::vector<int>>& materialized,
    const std::vector<int>& query_dims);

}  // namespace rankcube

#endif  // RANKCUBE_CUBE_FRAGMENTS_H_
