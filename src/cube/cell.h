// Cuboid cell keys. A cuboid is named by a subset of selection dimensions
// (§3.2.3); a cell is an assignment of values to those dimensions, possibly
// extended with a pseudo-block id.
#ifndef RANKCUBE_CUBE_CELL_H_
#define RANKCUBE_CUBE_CELL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "func/query.h"

namespace rankcube {

/// Values of a cuboid's dimensions plus a pseudo-block id (Ch3) or 0 (Ch4).
struct CellKey {
  std::vector<int32_t> values;  ///< one per cuboid dimension, in cuboid order
  uint32_t pid = 0;

  bool operator==(const CellKey&) const = default;
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001B3ull;
    };
    for (int32_t v : k.values) mix(static_cast<uint64_t>(v) + 1);
    mix(k.pid);
    return static_cast<size_t>(h);
  }
};

/// Restricts `predicates` (sorted by dim) to `dims`, producing cell values in
/// cuboid order. Returns false if some dim has no predicate.
bool ProjectPredicates(const std::vector<Predicate>& predicates,
                       const std::vector<int>& dims,
                       std::vector<int32_t>* values);

/// Pretty cell name for diagnostics, e.g. "A0=3,A2=7@p12".
std::string CellToString(const std::vector<int>& dims, const CellKey& key);

/// Hash over a sorted dimension set; keys the cuboid lookup maps of the
/// grid cube, the ranking fragments, and the signature cube.
struct DimSetHash {
  size_t operator()(const std::vector<int>& dims) const {
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (int d : dims) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(d));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace rankcube

#endif  // RANKCUBE_CUBE_CELL_H_
