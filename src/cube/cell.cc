#include "cube/cell.h"

#include <sstream>

namespace rankcube {

bool ProjectPredicates(const std::vector<Predicate>& predicates,
                       const std::vector<int>& dims,
                       std::vector<int32_t>* values) {
  values->clear();
  values->reserve(dims.size());
  for (int d : dims) {
    bool found = false;
    for (const auto& p : predicates) {
      if (p.dim == d) {
        values->push_back(p.value);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string CellToString(const std::vector<int>& dims, const CellKey& key) {
  std::ostringstream os;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i) os << ",";
    os << "A" << dims[i] << "="
       << (i < key.values.size() ? key.values[i] : -1);
  }
  os << "@p" << key.pid;
  return os.str();
}

}  // namespace rankcube
