#include "cube/fragments.h"

#include <algorithm>
#include <cstdint>
#include <set>

namespace rankcube {

std::vector<std::vector<int>> GroupDimensions(int num_dims,
                                              int fragment_size) {
  std::vector<std::vector<int>> groups;
  for (int start = 0; start < num_dims; start += fragment_size) {
    std::vector<int> g;
    for (int d = start; d < std::min(num_dims, start + fragment_size); ++d) {
      g.push_back(d);
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<std::vector<int>> AllSubsets(const std::vector<int>& dims) {
  std::vector<std::vector<int>> subsets;
  const size_t n = dims.size();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<int> s;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) s.push_back(dims[i]);
    }
    subsets.push_back(std::move(s));
  }
  return subsets;
}

std::vector<int> SelectCoveringCuboids(
    const std::vector<std::vector<int>>& materialized,
    const std::vector<int>& query_dims) {
  std::set<int> want(query_dims.begin(), query_dims.end());

  // Candidates: materialized cuboids fully inside the query's dims.
  std::vector<int> candidates;
  for (size_t i = 0; i < materialized.size(); ++i) {
    bool subset = std::all_of(materialized[i].begin(), materialized[i].end(),
                              [&](int d) { return want.count(d) > 0; });
    if (subset && !materialized[i].empty()) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  // Maximum step: drop candidates strictly contained in another candidate.
  std::vector<int> maximal;
  for (int ci : candidates) {
    bool dominated = false;
    for (int cj : candidates) {
      if (ci == cj) continue;
      const auto& a = materialized[ci];
      const auto& b = materialized[cj];
      if (a.size() < b.size() &&
          std::includes(b.begin(), b.end(), a.begin(), a.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(ci);
  }
  // Minimum step: greedy set cover of `want`.
  std::vector<int> chosen;
  std::set<int> covered;
  while (covered.size() < want.size()) {
    int best = -1;
    size_t best_gain = 0;
    for (int ci : maximal) {
      size_t gain = 0;
      for (int d : materialized[ci]) {
        if (want.count(d) && !covered.count(d)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = ci;
      }
    }
    if (best < 0) return {};  // cannot cover
    chosen.push_back(best);
    for (int d : materialized[best]) covered.insert(d);
  }
  return chosen;
}

}  // namespace rankcube
