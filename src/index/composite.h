// Clustered composite index: selection dimensions first, then ranking
// dimensions — the multi-dimensional index the rank-mapping baseline builds
// (§3.5.1: "the dimension order in the index is first the selection
// dimensions and then the ranking dimensions"). A range query is efficient
// exactly when the query's selection dimensions form a prefix of the index
// order; otherwise a wider region must be scanned, which is the sensitivity
// the thesis observes in Figs 3.7/3.9/3.14.
#ifndef RANKCUBE_INDEX_COMPOSITE_H_
#define RANKCUBE_INDEX_COMPOSITE_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "func/query.h"
#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {

class CompositeIndex {
 public:
  /// Builds over `sel_dims` (in this order) then all ranking dimensions.
  CompositeIndex(const Table& table, std::vector<int> sel_dims);

  const std::vector<int>& sel_dims() const { return sel_dims_; }

  struct RangeResult {
    std::vector<Tid> candidates;  ///< tuples inside the scanned region that
                                  ///< satisfy all predicates + rank bounds
    uint64_t scanned = 0;         ///< tuples touched by the sequential scan
  };

  /// Executes the transformed range query: equality `predicates` plus a box
  /// over the ranking dimensions. Charges sequential pages of the scanned
  /// region.
  RangeResult RangeQuery(const std::vector<Predicate>& predicates,
                         const Box& rank_box, IoSession* io) const;

  /// How many of the query's predicates line up with the index prefix; used
  /// by the rank-mapping baseline to pick the best fragment index.
  int PrefixMatch(const std::vector<Predicate>& predicates) const;

  size_t SizeBytes() const;

 private:
  const Table& table_;
  std::vector<int> sel_dims_;
  std::vector<Tid> order_;  ///< tids sorted by (sel_dims..., rank dims...)
};

}  // namespace rankcube

#endif  // RANKCUBE_INDEX_COMPOSITE_H_
