#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace rankcube {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Box BoxOfPoint(const std::vector<double>& p) {
  Box b(p.size());
  for (size_t d = 0; d < p.size(); ++d) b[d] = {p[d], p[d]};
  return b;
}

double EnlargedArea(const Box& b, const Box& add) {
  Box u = b;
  u.ExpandToInclude(add);
  return u.Area();
}

}  // namespace

RTree::RTree(int dims, IoSession& io, RTreeOptions options)
    : dims_(dims) {
  // Entry = d coordinates + pointer: 8d + 4 bytes -> M = 204 (2d) / ~94 (5d)
  // at 4 KB pages, matching §4.2.2.
  max_entries_ =
      options.max_entries > 0
          ? options.max_entries
          : std::max<int>(4, static_cast<int>(io.page_size() /
                                              (8 * dims + 4)));
  min_entries_ = options.min_entries > 0
                     ? options.min_entries
                     : std::max(1, (max_entries_ * 2) / 5);
  root_ = NewNode(/*is_leaf=*/true);
}

uint32_t RTree::NewNode(bool is_leaf) {
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  RTreeNode n;
  n.id = id;
  n.is_leaf = is_leaf;
  n.mbr = Box::EmptyFor(dims_);
  nodes_.push_back(std::move(n));
  parent_.push_back(id);  // self-parent marks "root / unattached"
  return id;
}

int RTree::depth() const {
  int d = 1;
  uint32_t id = root_;
  while (!nodes_[id].is_leaf) {
    id = nodes_[id].children.front();
    ++d;
  }
  return d;
}

void RTree::BulkLoadSTR(const Table& table, const std::vector<int>* dims) {
  assert(num_tuples_ == 0);
  std::vector<int> cols(dims_);
  for (int d = 0; d < dims_; ++d) cols[d] = dims ? (*dims)[d] : d;
  auto coord = [&](Tid t, int local) { return table.rank(t, cols[local]); };
  auto point_of = [&](Tid t) {
    std::vector<double> p(dims_);
    for (int d = 0; d < dims_; ++d) p[d] = coord(t, d);
    return p;
  };
  std::vector<Tid> order;
  order.reserve(table.num_live());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (table.is_live(t)) order.push_back(t);
  }
  const size_t n = order.size();

  // Recursive Sort-Tile: sort by dim, carve into slabs, recurse on the rest.
  const size_t leaf_cap = static_cast<size_t>(max_entries_);
  size_t num_leaves = std::max<size_t>(1, (n + leaf_cap - 1) / leaf_cap);

  struct Range {
    size_t begin, end;
    int dim;
  };
  std::vector<Range> work{{0, n, 0}};
  std::vector<Range> final_ranges;
  while (!work.empty()) {
    Range r = work.back();
    work.pop_back();
    size_t len = r.end - r.begin;
    if (r.dim >= dims_ - 1 || len <= leaf_cap) {
      std::sort(order.begin() + r.begin, order.begin() + r.end,
                [&](Tid a, Tid b) {
                  return coord(a, r.dim) < coord(b, r.dim);
                });
      final_ranges.push_back(r);
      continue;
    }
    std::sort(order.begin() + r.begin, order.begin() + r.end,
              [&](Tid a, Tid b) {
                return coord(a, r.dim) < coord(b, r.dim);
              });
    // Number of slabs along this dimension: P^(1/remaining_dims).
    double leaves_here = static_cast<double>(len) / leaf_cap;
    int remaining = dims_ - r.dim;
    size_t slabs = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(std::pow(leaves_here, 1.0 / remaining))));
    size_t per_slab = (len + slabs - 1) / slabs;
    for (size_t s = 0; s < slabs; ++s) {
      size_t b = r.begin + s * per_slab;
      if (b >= r.end) break;
      size_t e = std::min(r.end, b + per_slab);
      work.push_back({b, e, r.dim + 1});
    }
  }
  (void)num_leaves;
  // Deterministic leaf order: sort ranges by begin offset.
  std::sort(final_ranges.begin(), final_ranges.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });

  nodes_.clear();
  parent_.clear();
  std::vector<uint32_t> level;
  for (const Range& r : final_ranges) {
    for (size_t i = r.begin; i < r.end; i += leaf_cap) {
      uint32_t id = NewNode(true);
      RTreeNode& leaf = nodes_[id];
      size_t e = std::min(r.end, i + leaf_cap);
      for (size_t j = i; j < e; ++j) {
        Tid t = order[j];
        leaf.entries.push_back({t, point_of(t)});
        leaf.mbr.ExpandToInclude(leaf.entries.back().point);
      }
      level.push_back(id);
    }
  }
  if (level.empty()) level.push_back(NewNode(true));
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t i = 0; i < level.size(); i += leaf_cap) {
      uint32_t id = NewNode(false);
      RTreeNode& inner = nodes_[id];
      size_t e = std::min(level.size(), i + leaf_cap);
      for (size_t j = i; j < e; ++j) {
        inner.children.push_back(level[j]);
        parent_[level[j]] = id;
        inner.mbr.ExpandToInclude(nodes_[level[j]].mbr);
      }
      next.push_back(id);
    }
    level = std::move(next);
  }
  root_ = level.front();
  parent_[root_] = root_;

  num_tuples_ = n;
  // Indexed by tid, which can exceed the stored-tuple count once rows are
  // tombstoned.
  leaf_of_.assign(table.num_rows(), 0);
  for (const auto& node : nodes_) {
    if (!node.is_leaf) continue;
    for (const auto& e : node.entries) leaf_of_[e.tid] = node.id;
  }
}

uint32_t RTree::ChooseLeaf(const std::vector<double>& point) const {
  uint32_t id = root_;
  Box pb = BoxOfPoint(point);
  while (!nodes_[id].is_leaf) {
    const RTreeNode& n = nodes_[id];
    uint32_t best = n.children.front();
    double best_enlarge = kInf, best_area = kInf;
    for (uint32_t c : n.children) {
      double area = nodes_[c].mbr.Area();
      double enlarge = EnlargedArea(nodes_[c].mbr, pb) - area;
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best_enlarge = enlarge;
        best_area = area;
        best = c;
      }
    }
    id = best;
  }
  return id;
}

void RTree::RecomputeMbr(uint32_t id) {
  RTreeNode& n = nodes_[id];
  n.mbr = Box::EmptyFor(dims_);
  if (n.is_leaf) {
    for (const auto& e : n.entries) n.mbr.ExpandToInclude(e.point);
  } else {
    for (uint32_t c : n.children) n.mbr.ExpandToInclude(nodes_[c].mbr);
  }
}

int RTree::PosInParent(uint32_t id) const {
  uint32_t p = parent_[id];
  const auto& ch = nodes_[p].children;
  for (size_t i = 0; i < ch.size(); ++i) {
    if (ch[i] == id) return static_cast<int>(i) + 1;
  }
  return 0;
}

std::vector<int> RTree::NodePath(uint32_t id) const {
  std::vector<int> path;
  while (id != root_) {
    path.push_back(PosInParent(id));
    id = parent_[id];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> RTree::TuplePath(Tid tid) const {
  uint32_t leaf = leaf_of_[tid];
  std::vector<int> path = NodePath(leaf);
  const auto& entries = nodes_[leaf].entries;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].tid == tid) {
      path.push_back(static_cast<int>(i) + 1);
      break;
    }
  }
  return path;
}

std::vector<std::vector<int>> RTree::TupleNodePaths() const {
  std::vector<std::vector<int>> paths(leaf_of_.size());
  for (const auto& n : nodes_) {
    if (!n.is_leaf || n.entries.empty()) continue;
    std::vector<int> p = NodePath(n.id);
    for (const auto& e : n.entries) {
      if (e.tid < paths.size()) paths[e.tid] = p;
    }
  }
  return paths;
}

void RTree::CollectTuplePaths(uint32_t id, std::vector<int>* prefix,
                              std::vector<PathUpdate>* out,
                              bool as_old) const {
  const RTreeNode& n = nodes_[id];
  if (n.is_leaf) {
    for (size_t i = 0; i < n.entries.size(); ++i) {
      std::vector<int> p = *prefix;
      p.push_back(static_cast<int>(i) + 1);
      PathUpdate u;
      u.tid = n.entries[i].tid;
      if (as_old) {
        u.old_path = std::move(p);
      } else {
        u.new_path = std::move(p);
      }
      out->push_back(std::move(u));
    }
    return;
  }
  for (size_t c = 0; c < n.children.size(); ++c) {
    prefix->push_back(static_cast<int>(c) + 1);
    CollectTuplePaths(n.children[c], prefix, out, as_old);
    prefix->pop_back();
  }
}

uint32_t RTree::SplitNode(uint32_t id) {
  // Quadratic split (Guttman). Works uniformly over leaf entries / children
  // by materializing per-item boxes.
  const bool leaf = nodes_[id].is_leaf;
  std::vector<Box> boxes;
  size_t count = nodes_[id].fanout();
  boxes.reserve(count);
  if (leaf) {
    for (const auto& e : nodes_[id].entries) boxes.push_back(BoxOfPoint(e.point));
  } else {
    for (uint32_t c : nodes_[id].children) boxes.push_back(nodes_[c].mbr);
  }

  // PickSeeds: maximize dead area.
  size_t seed_a = 0, seed_b = 1;
  double worst = -kInf;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      Box u = boxes[i];
      u.ExpandToInclude(boxes[j]);
      double dead = u.Area() - boxes[i].Area() - boxes[j].Area();
      if (dead > worst) {
        worst = dead;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<int> group(count, -1);
  group[seed_a] = 0;
  group[seed_b] = 1;
  Box cover[2] = {boxes[seed_a], boxes[seed_b]};
  size_t sizes[2] = {1, 1};
  size_t remaining = count - 2;
  while (remaining > 0) {
    // Force-assign when a group must take all remaining to reach min fill.
    for (int g = 0; g < 2; ++g) {
      if (sizes[g] + remaining == static_cast<size_t>(min_entries_)) {
        for (size_t i = 0; i < count; ++i) {
          if (group[i] < 0) {
            group[i] = g;
            cover[g].ExpandToInclude(boxes[i]);
            ++sizes[g];
          }
        }
        remaining = 0;
      }
    }
    if (remaining == 0) break;
    // PickNext: max preference difference.
    size_t pick = count;
    double best_diff = -1.0;
    for (size_t i = 0; i < count; ++i) {
      if (group[i] >= 0) continue;
      double d0 = EnlargedArea(cover[0], boxes[i]) - cover[0].Area();
      double d1 = EnlargedArea(cover[1], boxes[i]) - cover[1].Area();
      double diff = std::abs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    double d0 = EnlargedArea(cover[0], boxes[pick]) - cover[0].Area();
    double d1 = EnlargedArea(cover[1], boxes[pick]) - cover[1].Area();
    int g = (d0 < d1 || (d0 == d1 && sizes[0] <= sizes[1])) ? 0 : 1;
    if (sizes[g] >= count - static_cast<size_t>(min_entries_)) g = 1 - g;
    group[pick] = g;
    cover[g].ExpandToInclude(boxes[pick]);
    ++sizes[g];
    --remaining;
  }

  uint32_t sibling = NewNode(leaf);
  // NewNode may reallocate nodes_; take references afterwards.
  RTreeNode& self = nodes_[id];
  RTreeNode& sib = nodes_[sibling];
  if (leaf) {
    std::vector<RTreeLeafEntry> keep;
    for (size_t i = 0; i < count; ++i) {
      if (group[i] == 0) {
        keep.push_back(std::move(self.entries[i]));
      } else {
        sib.entries.push_back(std::move(self.entries[i]));
      }
    }
    self.entries = std::move(keep);
    for (const auto& e : sib.entries) leaf_of_[e.tid] = sibling;
  } else {
    std::vector<uint32_t> keep;
    for (size_t i = 0; i < count; ++i) {
      if (group[i] == 0) {
        keep.push_back(self.children[i]);
      } else {
        sib.children.push_back(self.children[i]);
        parent_[self.children[i]] = sibling;
      }
    }
    self.children = std::move(keep);
  }
  RecomputeMbr(id);
  RecomputeMbr(sibling);
  return sibling;
}

std::vector<std::vector<int>> RTree::AllTuplePaths() const {
  std::vector<std::vector<int>> paths(num_tuples_);
  std::vector<PathUpdate> collected;
  collected.reserve(num_tuples_);
  std::vector<int> prefix;
  CollectTuplePaths(root_, &prefix, &collected, /*as_old=*/false);
  for (auto& u : collected) {
    if (u.tid >= paths.size()) paths.resize(u.tid + 1);
    paths[u.tid] = std::move(u.new_path);
  }
  return paths;
}

std::vector<PathUpdate> RTree::Insert(Tid tid,
                                      const std::vector<double>& point,
                                      bool track_updates) {
  assert(static_cast<int>(point.size()) == dims_);
  if (leaf_of_.size() <= tid) leaf_of_.resize(tid + 1, 0);

  uint32_t leaf = ChooseLeaf(point);

  // Topmost node that will split: walk up while nodes are full (§4.2.5 —
  // splits propagate exactly while ancestors are at capacity).
  bool will_split = nodes_[leaf].fanout() >= static_cast<size_t>(max_entries_);
  uint32_t top_affected = leaf;
  if (will_split) {
    while (top_affected != root_ &&
           nodes_[parent_[top_affected]].fanout() >=
               static_cast<size_t>(max_entries_)) {
      top_affected = parent_[top_affected];
    }
  }

  std::vector<PathUpdate> old_paths;
  if (will_split && track_updates) {
    std::vector<int> prefix = NodePath(top_affected);
    CollectTuplePaths(top_affected, &prefix, &old_paths, /*as_old=*/true);
  }

  // Standard insert + split propagation.
  nodes_[leaf].entries.push_back({tid, point});
  leaf_of_[tid] = leaf;
  ++num_tuples_;
  uint32_t cur = leaf;
  std::vector<uint32_t> new_top_siblings;
  while (nodes_[cur].fanout() > static_cast<size_t>(max_entries_)) {
    uint32_t sibling = SplitNode(cur);
    if (cur == root_) {
      uint32_t new_root = NewNode(false);
      nodes_[new_root].children = {cur, sibling};
      parent_[cur] = new_root;
      parent_[sibling] = new_root;
      root_ = new_root;
      parent_[new_root] = new_root;
      cur = new_root;
      top_affected = new_root;  // every path gained a level
      break;
    }
    uint32_t par = parent_[cur];
    nodes_[par].children.push_back(sibling);
    parent_[sibling] = par;
    if (cur == top_affected) new_top_siblings.push_back(sibling);
    cur = par;
  }
  TightenToRoot(cur);

  if (!track_updates) return {};

  // Collect new paths for affected subtrees and diff against old paths.
  std::vector<PathUpdate> new_paths;
  {
    std::vector<int> prefix = NodePath(top_affected);
    CollectTuplePaths(top_affected, &prefix, &new_paths, /*as_old=*/false);
    for (uint32_t sib : new_top_siblings) {
      std::vector<int> p = NodePath(sib);
      CollectTuplePaths(sib, &p, &new_paths, /*as_old=*/false);
    }
  }

  std::vector<PathUpdate> updates;
  if (!will_split) {
    PathUpdate u;
    u.tid = tid;
    u.new_path = TuplePath(tid);
    updates.push_back(std::move(u));
    return updates;
  }
  std::unordered_map<Tid, std::vector<int>> old_by_tid;
  old_by_tid.reserve(old_paths.size());
  for (auto& u : old_paths) old_by_tid[u.tid] = std::move(u.old_path);
  for (auto& u : new_paths) {
    auto it = old_by_tid.find(u.tid);
    if (it != old_by_tid.end()) {
      if (it->second == u.new_path) continue;  // unchanged, drop (§4.2.5)
      u.old_path = std::move(it->second);
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

void RTree::TightenToRoot(uint32_t id) {
  for (uint32_t walk = id;; walk = parent_[walk]) {
    RecomputeMbr(walk);
    if (walk == root_) break;
  }
}

std::vector<PathUpdate> RTree::Delete(Tid tid, bool track_updates) {
  if (tid >= leaf_of_.size()) return {};
  uint32_t leaf = leaf_of_[tid];
  auto& entries = nodes_[leaf].entries;
  size_t pos = entries.size();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].tid == tid) {
      pos = i;
      break;
    }
  }
  if (pos == entries.size()) return {};  // tid not stored (already removed)

  // Leaf-entry positions are path components, so every entry after the
  // removed one shifts down by one: emit old/new paths for the shifted
  // range and a clear-only update for the removed tuple (§4.2.5).
  std::vector<PathUpdate> updates;
  if (track_updates) {
    std::vector<int> prefix = NodePath(leaf);
    for (size_t i = pos; i < entries.size(); ++i) {
      PathUpdate u;
      u.tid = entries[i].tid;
      u.old_path = prefix;
      u.old_path.push_back(static_cast<int>(i) + 1);
      if (i > pos) {
        u.new_path = prefix;
        u.new_path.push_back(static_cast<int>(i));
      }
      updates.push_back(std::move(u));
    }
  }

  entries.erase(entries.begin() + pos);
  --num_tuples_;
  // Lazy deletion: an underfull (even empty) leaf stays in place; its MBR
  // and the ancestors' tighten, which only improves lower bounds.
  TightenToRoot(leaf);
  return updates;
}

void ApplyRTreeDelta(RTree* rtree, const Table& table, const DeltaStore& delta,
                     uint64_t* built_epoch, std::vector<PathUpdate>* updates,
                     IoSession* io) {
  if (*built_epoch >= delta.epoch()) return;
  std::vector<Tid> inserted, deleted;
  delta.ChangesSince(*built_epoch, &inserted, &deleted);
  if (io != nullptr && !inserted.empty()) {
    table.ChargeTailScan(io, inserted.front());
  }

  const bool track = updates != nullptr;
  std::unordered_set<uint32_t> touched_leaves;
  std::vector<double> point(rtree->dims());
  for (Tid t : inserted) {
    table.CopyRankRow(t, point.data());
    auto u = rtree->Insert(t, point, track);
    if (track) {
      updates->insert(updates->end(), std::make_move_iterator(u.begin()),
                      std::make_move_iterator(u.end()));
    }
    touched_leaves.insert(rtree->LeafOf(t));
  }
  for (Tid t : deleted) {
    touched_leaves.insert(rtree->LeafOf(t));
    auto u = rtree->Delete(t, track);
    if (track) {
      updates->insert(updates->end(), std::make_move_iterator(u.begin()),
                      std::make_move_iterator(u.end()));
    }
  }
  if (io != nullptr && !touched_leaves.empty()) {
    io->Access(IoCategory::kRTree, uint64_t{1} << 41, rtree->depth());
    for (uint32_t leaf : touched_leaves) {
      io->Access(IoCategory::kRTree, leaf, 2);  // read + write back
    }
  }
  *built_epoch = delta.epoch();
}

void RTree::ChargeBuild(const Table& table, IoSession& io) const {
  table.ChargeFullScan(&io);
  uint64_t pages = std::max<uint64_t>(
      1, (SizeBytes() + io.page_size() - 1) / io.page_size());
  io.Access(IoCategory::kRTree, uint64_t{1} << 40, pages);
}

size_t RTree::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& n : nodes_) {
    bytes += 16 + 16 * static_cast<size_t>(dims_);  // header + MBR
    bytes += n.children.size() * (4 + 16 * static_cast<size_t>(dims_));
    bytes += n.entries.size() * (4 + 8 * static_cast<size_t>(dims_));
  }
  return bytes;
}

}  // namespace rankcube
