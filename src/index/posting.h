// Per-dimension posting lists: the "non-clustered index on each selection
// dimension" of the SQL-Server baseline (§3.5.1) and the B+-tree-per-boolean-
// dimension of the boolean-first approach (§4.4.1).
#ifndef RANKCUBE_INDEX_POSTING_H_
#define RANKCUBE_INDEX_POSTING_H_

#include <cstdint>
#include <vector>

#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {

/// value -> sorted tid list, one per selection dimension.
class PostingIndex {
 public:
  /// Builds posting lists for every selection dimension of `table`.
  explicit PostingIndex(const Table& table);

  /// Sorted tids with sel[dim] == value (empty when out of domain).
  const std::vector<Tid>& Lookup(int dim, int32_t value) const;

  /// List length, i.e. exact selectivity of the equality predicate.
  size_t ListSize(int dim, int32_t value) const {
    return Lookup(dim, value).size();
  }

  /// Charge the sequential pages of scanning one posting list.
  void ChargeListScan(IoSession* io, int dim, int32_t value) const;

  size_t SizeBytes() const;

 private:
  std::vector<std::vector<std::vector<Tid>>> lists_;  // [dim][value] -> tids
  std::vector<Tid> empty_;
};

}  // namespace rankcube

#endif  // RANKCUBE_INDEX_POSTING_H_
