// Bulk-loaded B+-tree over one ranking attribute. Used by the Ch5
// index-merge engine (each attribute indexed separately, §5.1.1) and by the
// boolean-first baseline's attribute indices. Nodes carry their subtree's
// value range so joint states can compute ranking-function lower bounds, and
// nodes expose 1-based paths/positions because the join-signature addresses
// states by entry positions (§5.3.1).
#ifndef RANKCUBE_INDEX_BTREE_H_
#define RANKCUBE_INDEX_BTREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {

/// One B+-tree node; `children` for internal nodes, `entries` for leaves.
struct BTreeNode {
  uint32_t id = 0;
  bool is_leaf = false;
  int level = 0;  ///< 1 = root (thesis levels count from 1)
  Interval range{0.0, 0.0};
  std::vector<uint32_t> children;
  std::vector<std::pair<double, Tid>> entries;  ///< (value, tid), sorted

  size_t fanout() const {
    return is_leaf ? entries.size() : children.size();
  }
};

/// Read-only B+-tree (built once by bulk load; Ch5 treats indices as given).
struct BTreeOptions {
  int fanout = 0;  ///< 0 = derive from page size (~204 for 4 KB, §5.1.3)
};

class BTree {
 public:
  /// Builds the index over `table`'s ranking column `dim`.
  BTree(const Table& table, int dim, IoSession& io,
        BTreeOptions options = BTreeOptions());

  int attribute() const { return dim_; }
  int fanout() const { return fanout_; }
  int depth() const { return depth_; }  ///< number of levels, root = level 1
  uint32_t root() const { return root_; }
  size_t num_nodes() const { return nodes_.size(); }
  const BTreeNode& node(uint32_t id) const { return nodes_[id]; }

  /// Charge one node read to the session (category kBTree).
  void ChargeNodeAccess(IoSession* io, uint32_t id) const {
    io->Access(IoCategory::kBTree,
                  (static_cast<uint64_t>(dim_) << 32) | id);
  }

  /// 1-based child positions from the root down to (and excluding) `id`'s
  /// entry position in its own parent... i.e. the path addressing node `id`.
  std::vector<int> NodePath(uint32_t id) const;

  /// Per-tuple path down to the leaf *node* (leaf entry position excluded,
  /// §5.3.2). Result[tid] = path.
  std::vector<std::vector<int>> TuplePaths() const;

  /// Materialized size in bytes (for size-vs-T reports).
  size_t SizeBytes() const;

 private:
  int dim_;
  int fanout_;
  int depth_ = 0;
  uint32_t root_ = 0;
  std::vector<BTreeNode> nodes_;
  std::vector<uint32_t> parent_;
  std::vector<int> pos_in_parent_;  ///< 1-based
};

}  // namespace rankcube

#endif  // RANKCUBE_INDEX_BTREE_H_
