// R-tree over the ranking dimensions: the hierarchical partition template of
// Ch4 (signatures are built over its topology), the multi-dimensional index
// of Ch5, and the BBS substrate of Ch7. Supports Guttman-style insertion
// with quadratic node splitting (incremental maintenance needs the path
// update-set, §4.2.5) and STR bulk loading (fast offline construction).
#ifndef RANKCUBE_INDEX_RTREE_H_
#define RANKCUBE_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {

/// Leaf payload: a tuple and its ranking-vector.
struct RTreeLeafEntry {
  Tid tid = 0;
  std::vector<double> point;
};

struct RTreeNode {
  uint32_t id = 0;
  bool is_leaf = true;
  Box mbr;
  std::vector<uint32_t> children;       ///< internal nodes
  std::vector<RTreeLeafEntry> entries;  ///< leaf nodes

  size_t fanout() const {
    return is_leaf ? entries.size() : children.size();
  }
};

/// A tuple whose R-tree path changed during an insert (§4.2.5). Paths are
/// 1-based entry positions root->leaf, including the position within the
/// leaf node; an empty old_path means the tuple is new.
struct PathUpdate {
  Tid tid = 0;
  std::vector<int> old_path;
  std::vector<int> new_path;
};

class RTree;

/// Shared incremental-maintenance pass for R-tree-backed structures
/// (signature cube, ranking_first): absorbs the table mutations after
/// `*built_epoch` — appended rows inserted, tombstoned stored rows removed
/// — and advances `*built_epoch` to the delta's epoch. When `updates` is
/// non-null the §4.2.5 path-update sets are collected (signature
/// maintenance needs them; tracking costs extra, pass null otherwise).
/// I/O charged to `io` (nullptr = uncharged, matching ApplyGridDelta): the
/// heap-tail read, one root-to-leaf descent per batch, and a read +
/// write-back per *distinct* touched leaf — billing per mutation would
/// charge the same leaf page over and over, which is exactly the locality
/// a clustered live feed exploits.
void ApplyRTreeDelta(RTree* rtree, const Table& table, const DeltaStore& delta,
                     uint64_t* built_epoch, std::vector<PathUpdate>* updates,
                     IoSession* io);

struct RTreeOptions {
  int max_entries = 0;  ///< M; 0 = derive from page size (§4.2.2 sizing)
  int min_entries = 0;  ///< m; 0 = ceil(0.4 * M)
};

class RTree {
 public:
  RTree(int dims, IoSession& io, RTreeOptions options = RTreeOptions());

  /// Bulk-loads with Sort-Tile-Recursive packing; tree must be empty.
  /// `dims` selects which ranking columns feed the tree's coordinates
  /// (nullptr = the first dims() columns); stored points use local order.
  /// Tombstoned rows of `table` are skipped.
  void BulkLoadSTR(const Table& table, const std::vector<int>* dims = nullptr);

  /// Inserts one tuple; returns the update set of tuples whose paths
  /// changed (including the inserted tuple, old_path empty). Pass
  /// track_updates = false during bulk construction to skip the (possibly
  /// large) path diff.
  std::vector<PathUpdate> Insert(Tid tid, const std::vector<double>& point,
                                 bool track_updates = true);

  /// Removes a stored tuple (lazy deletion: the leaf may go underfull or
  /// empty; no rebalancing, MBRs shrink up the path). Returns the update
  /// set: the removed tuple (new_path empty) plus the same-leaf entries
  /// whose positions shifted — exactly what signature maintenance (§4.2.5)
  /// needs to clear/move bits. No-op (empty set) for an absent tid.
  std::vector<PathUpdate> Delete(Tid tid, bool track_updates = true);

  /// All tuple paths (leaf entry position included), via one DFS; indexed
  /// by tid. Much cheaper than per-tuple TuplePath() calls.
  std::vector<std::vector<int>> AllTuplePaths() const;

  int dims() const { return dims_; }
  int max_entries() const { return max_entries_; }
  /// Leaf currently holding `tid` (stale for removed tids; 0 for unknown).
  uint32_t LeafOf(Tid tid) const {
    return tid < leaf_of_.size() ? leaf_of_[tid] : 0;
  }
  uint32_t root() const { return root_; }
  size_t num_nodes() const { return nodes_.size(); }
  const RTreeNode& node(uint32_t id) const { return nodes_[id]; }
  size_t num_tuples() const { return num_tuples_; }

  /// Leaf-node count (tree-shape statistic for the planner's cost model).
  size_t num_leaves() const {
    size_t n = 0;
    for (const auto& node : nodes_) n += node.is_leaf ? 1 : 0;
    return n;
  }

  /// Levels, root = level 1; leaves are at level depth().
  int depth() const;

  void ChargeNodeAccess(IoSession* io, uint32_t id) const {
    io->Access(IoCategory::kRTree, id);
  }

  /// 1-based child positions addressing node `id` from the root.
  std::vector<int> NodePath(uint32_t id) const;

  /// Charge the construction I/O of a freshly built tree to `io`: one
  /// relation scan (the build reads every tuple) plus the tree's pages
  /// written (category kRTree). Shared by the signature cube and the
  /// ranking_first factory so maintain-vs-rebuild page comparisons are
  /// honest on both sides.
  void ChargeBuild(const Table& table, IoSession& io) const;

  /// Path of a stored tuple, leaf entry position included (§4.2.1).
  std::vector<int> TuplePath(Tid tid) const;

  /// All tuple paths with the leaf entry position *excluded* (the node
  /// granularity used by join-signatures, §5.3.2). Result indexed by tid.
  std::vector<std::vector<int>> TupleNodePaths() const;

  size_t SizeBytes() const;

 private:
  uint32_t NewNode(bool is_leaf);
  /// MBR recomputation from `id` up to the root.
  void TightenToRoot(uint32_t id);
  uint32_t ChooseLeaf(const std::vector<double>& point) const;
  void RecomputeMbr(uint32_t id);
  /// Splits overfull `id`; returns the new sibling (appended to parent).
  uint32_t SplitNode(uint32_t id);
  void CollectTuplePaths(uint32_t id, std::vector<int>* prefix,
                         std::vector<PathUpdate>* out, bool as_old) const;
  int PosInParent(uint32_t id) const;

  int dims_;
  int max_entries_;
  int min_entries_;
  uint32_t root_;
  size_t num_tuples_ = 0;
  std::vector<RTreeNode> nodes_;
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> leaf_of_;  ///< tid -> leaf node id
};

}  // namespace rankcube

#endif  // RANKCUBE_INDEX_RTREE_H_
