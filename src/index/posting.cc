#include "index/posting.h"

namespace rankcube {

PostingIndex::PostingIndex(const Table& table) {
  const auto& schema = table.schema();
  lists_.resize(schema.num_sel_dims());
  for (int d = 0; d < schema.num_sel_dims(); ++d) {
    lists_[d].resize(schema.sel_cardinality[d]);
  }
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (!table.is_live(t)) continue;
    for (int d = 0; d < schema.num_sel_dims(); ++d) {
      lists_[d][table.sel(t, d)].push_back(t);
    }
  }
}

const std::vector<Tid>& PostingIndex::Lookup(int dim, int32_t value) const {
  if (dim < 0 || dim >= static_cast<int>(lists_.size()) || value < 0 ||
      value >= static_cast<int32_t>(lists_[dim].size())) {
    return empty_;
  }
  return lists_[dim][value];
}

void PostingIndex::ChargeListScan(IoSession* io, int dim, int32_t value) const {
  size_t bytes = Lookup(dim, value).size() * sizeof(Tid);
  uint64_t pages = (bytes + io->page_size() - 1) / io->page_size();
  io->Access(IoCategory::kPosting, (uint64_t{static_cast<uint32_t>(dim)}
                                       << 40) |
                                          static_cast<uint32_t>(value),
                std::max<uint64_t>(1, pages));
}

size_t PostingIndex::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& dim : lists_) {
    for (const auto& list : dim) bytes += 16 + list.size() * sizeof(Tid);
  }
  return bytes;
}

}  // namespace rankcube
