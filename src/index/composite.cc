#include "index/composite.h"

#include <algorithm>
#include <numeric>

namespace rankcube {

CompositeIndex::CompositeIndex(const Table& table, std::vector<int> sel_dims)
    : table_(table), sel_dims_(std::move(sel_dims)) {
  order_.reserve(table.num_live());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (table.is_live(t)) order_.push_back(t);
  }
  std::sort(order_.begin(), order_.end(), [&](Tid a, Tid b) {
    for (int d : sel_dims_) {
      int32_t va = table_.sel(a, d), vb = table_.sel(b, d);
      if (va != vb) return va < vb;
    }
    for (int d = 0; d < table_.num_rank_dims(); ++d) {
      double va = table_.rank(a, d), vb = table_.rank(b, d);
      if (va != vb) return va < vb;
    }
    return a < b;
  });
}

int CompositeIndex::PrefixMatch(
    const std::vector<Predicate>& predicates) const {
  int match = 0;
  for (int d : sel_dims_) {
    bool found = false;
    for (const auto& p : predicates) {
      if (p.dim == d) {
        found = true;
        break;
      }
    }
    if (!found) break;
    ++match;
  }
  return match;
}

CompositeIndex::RangeResult CompositeIndex::RangeQuery(
    const std::vector<Predicate>& predicates, const Box& rank_box,
    IoSession* io) const {
  // Values for the matched index prefix.
  int prefix = PrefixMatch(predicates);
  std::vector<int32_t> prefix_vals(prefix);
  for (int i = 0; i < prefix; ++i) {
    for (const auto& p : predicates) {
      if (p.dim == sel_dims_[i]) prefix_vals[i] = p.value;
    }
  }

  auto cmp_prefix = [&](Tid t) {
    // -1 if t < prefix, 0 if equal, +1 if greater.
    for (int i = 0; i < prefix; ++i) {
      int32_t v = table_.sel(t, sel_dims_[i]);
      if (v < prefix_vals[i]) return -1;
      if (v > prefix_vals[i]) return +1;
    }
    return 0;
  };

  // Binary search the contiguous region matching the prefix.
  size_t lo = 0, hi = order_.size();
  {
    size_t l = 0, r = order_.size();
    while (l < r) {
      size_t mid = (l + r) / 2;
      if (cmp_prefix(order_[mid]) < 0) {
        l = mid + 1;
      } else {
        r = mid;
      }
    }
    lo = l;
    l = lo;
    r = order_.size();
    while (l < r) {
      size_t mid = (l + r) / 2;
      if (cmp_prefix(order_[mid]) <= 0) {
        l = mid + 1;
      } else {
        r = mid;
      }
    }
    hi = l;
  }

  RangeResult res;
  res.scanned = hi - lo;
  // Sequential scan of the region, filtering the remaining predicates and
  // the rank-bound box (the transformed range query).
  for (size_t i = lo; i < hi; ++i) {
    Tid t = order_[i];
    bool ok = true;
    for (const auto& p : predicates) {
      if (table_.sel(t, p.dim) != p.value) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int d = 0; ok && d < table_.num_rank_dims(); ++d) {
      if (d < static_cast<int>(rank_box.dims()) &&
          !rank_box[d].Contains(table_.rank(t, d))) {
        ok = false;
      }
    }
    if (ok) res.candidates.push_back(t);
  }

  // Charge: one seek + sequential pages of the region (clustered index rows
  // pack like heap rows).
  size_t rpp = table_.RowsPerPage(io->page_size());
  uint64_t pages = (res.scanned + rpp - 1) / rpp;
  io->Access(IoCategory::kComposite, lo / std::max<size_t>(1, rpp),
                std::max<uint64_t>(1, pages));
  return res;
}

size_t CompositeIndex::SizeBytes() const {
  // A clustered multi-dimensional index materializes the full key for every
  // row: all indexed selection dims + all ranking dims + tid.
  return order_.size() *
         (4 + 4 * sel_dims_.size() + 8 * table_.num_rank_dims());
}

}  // namespace rankcube
