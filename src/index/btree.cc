#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace rankcube {

BTree::BTree(const Table& table, int dim, IoSession& io,
             BTreeOptions options)
    : dim_(dim) {
  // ~20 bytes/entry (8-byte key + pointer + overhead) -> fanout 204 at 4 KB,
  // the figure the thesis quotes (§5.1.3).
  fanout_ = options.fanout > 0
                ? options.fanout
                : std::max<int>(4, static_cast<int>(io.page_size() / 20));

  std::vector<std::pair<double, Tid>> sorted;
  sorted.reserve(table.num_live());
  const double* col = table.rank_col(dim);
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (!table.is_live(t)) continue;
    sorted.emplace_back(col[t], t);
  }
  std::sort(sorted.begin(), sorted.end());

  // Bottom-up bulk load: leaves first, then parent levels.
  std::vector<uint32_t> level_nodes;
  for (size_t i = 0; i < sorted.size();
       i += static_cast<size_t>(fanout_)) {
    BTreeNode leaf;
    leaf.id = static_cast<uint32_t>(nodes_.size());
    leaf.is_leaf = true;
    size_t end = std::min(sorted.size(), i + static_cast<size_t>(fanout_));
    leaf.entries.assign(sorted.begin() + i, sorted.begin() + end);
    leaf.range = {leaf.entries.front().first, leaf.entries.back().first};
    level_nodes.push_back(leaf.id);
    nodes_.push_back(std::move(leaf));
  }
  if (level_nodes.empty()) {  // empty relation: single empty leaf as root
    BTreeNode leaf;
    leaf.id = 0;
    leaf.is_leaf = true;
    nodes_.push_back(std::move(leaf));
    level_nodes.push_back(0);
  }
  int levels = 1;
  while (level_nodes.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t i = 0; i < level_nodes.size();
         i += static_cast<size_t>(fanout_)) {
      BTreeNode inner;
      inner.id = static_cast<uint32_t>(nodes_.size());
      size_t end =
          std::min(level_nodes.size(), i + static_cast<size_t>(fanout_));
      inner.children.assign(level_nodes.begin() + i,
                            level_nodes.begin() + end);
      inner.range = {nodes_[inner.children.front()].range.lo,
                     nodes_[inner.children.back()].range.hi};
      next.push_back(inner.id);
      nodes_.push_back(std::move(inner));
    }
    level_nodes = std::move(next);
    ++levels;
  }
  root_ = level_nodes.front();
  depth_ = levels;

  // Assign levels (root = 1) + parent links.
  parent_.assign(nodes_.size(), root_);
  pos_in_parent_.assign(nodes_.size(), 0);
  std::vector<std::pair<uint32_t, int>> stack{{root_, 1}};
  while (!stack.empty()) {
    auto [id, level] = stack.back();
    stack.pop_back();
    nodes_[id].level = level;
    for (size_t c = 0; c < nodes_[id].children.size(); ++c) {
      uint32_t child = nodes_[id].children[c];
      parent_[child] = id;
      pos_in_parent_[child] = static_cast<int>(c) + 1;
      stack.push_back({child, level + 1});
    }
  }
}

std::vector<int> BTree::NodePath(uint32_t id) const {
  std::vector<int> path;
  while (id != root_) {
    path.push_back(pos_in_parent_[id]);
    id = parent_[id];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<int>> BTree::TuplePaths() const {
  std::vector<std::vector<int>> paths;
  // Indexed by tid, which can exceed the stored-entry count once heap rows
  // are tombstoned (tids are sparse, never reused).
  size_t max_tid_plus_1 = 0;
  for (const auto& n : nodes_) {
    if (!n.is_leaf) continue;
    for (const auto& [value, tid] : n.entries) {
      (void)value;
      max_tid_plus_1 = std::max<size_t>(max_tid_plus_1, size_t{tid} + 1);
    }
  }
  paths.resize(max_tid_plus_1);
  for (const auto& n : nodes_) {
    if (!n.is_leaf) continue;
    std::vector<int> leaf_path = NodePath(n.id);
    for (const auto& [value, tid] : n.entries) {
      (void)value;
      paths[tid] = leaf_path;
    }
  }
  return paths;
}

size_t BTree::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& n : nodes_) {
    bytes += 32;                      // header + range
    bytes += n.children.size() * 12;  // child ptr + separator key
    bytes += n.entries.size() * 12;   // value + tid
  }
  return bytes;
}

}  // namespace rankcube
