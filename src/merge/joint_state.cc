#include "merge/joint_state.h"

namespace rankcube {

StateKey MakeStateKey(const std::vector<std::vector<int>>& paths) {
  StateKey key;
  size_t total = paths.size();
  for (const auto& p : paths) total += p.size();
  key.flat.reserve(total);
  for (const auto& p : paths) {
    key.flat.push_back(static_cast<int>(p.size()));
    key.flat.insert(key.flat.end(), p.begin(), p.end());
  }
  return key;
}

StateKey MakeStateKeySubset(const std::vector<std::vector<int>>& paths,
                            const std::vector<int>& positions) {
  StateKey key;
  for (int i : positions) {
    key.flat.push_back(static_cast<int>(paths[i].size()));
    key.flat.insert(key.flat.end(), paths[i].begin(), paths[i].end());
  }
  return key;
}

uint64_t CoordCode(const std::vector<int>& coords,
                   const std::vector<int>& bases) {
  uint64_t code = 0;
  for (size_t i = 0; i < coords.size(); ++i) {
    code = code * static_cast<uint64_t>(bases[i] + 1) +
           static_cast<uint64_t>(coords[i]);
  }
  return code;
}

}  // namespace rankcube
