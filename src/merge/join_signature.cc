#include "merge/join_signature.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace rankcube {

JoinSignature::JoinSignature(std::vector<const MergeIndex*> indices,
                             JoinSignatureOptions options)
    : indices_(std::move(indices)) {
  Stopwatch watch;
  const size_t m = indices_.size();
  bases_.resize(m);
  for (size_t i = 0; i < m; ++i) bases_[i] = indices_[i]->fanout();

  // Tuple-oriented construction (§5.3.2): one pass per level over all
  // tuples' node paths, collecting the non-empty child coordinates of every
  // non-leaf state.
  std::vector<std::vector<std::vector<int>>> paths(m);
  size_t num_tuples = 0;
  size_t max_depth = 0;
  for (size_t i = 0; i < m; ++i) {
    paths[i] = indices_[i]->TupleNodePaths();
    num_tuples = std::max(num_tuples, paths[i].size());
    // Balanced index: any *stored* tuple's depth is everyone's depth. Path
    // arrays are indexed by tid, and tombstoned tids hold empty paths —
    // skip those (tid 0 being deleted must not zero the signature).
    for (const auto& p : paths[i]) {
      if (p.empty()) continue;
      max_depth = std::max(max_depth, p.size());
      break;
    }
  }

  // Gather raw coordinate sets first (exact), then finalize representation.
  std::unordered_map<StateKey, std::unordered_set<uint64_t>, StateKeyHash> raw;
  std::vector<std::vector<int>> prefix(m);
  std::vector<int> coords(m);
  static const std::vector<int> kNoPath;
  for (Tid t = 0; t < num_tuples; ++t) {
    for (size_t i = 0; i < m; ++i) prefix[i].clear();
    for (size_t level = 0; level < max_depth; ++level) {
      bool any = false;
      for (size_t i = 0; i < m; ++i) {
        const auto& p = t < paths[i].size() ? paths[i][t] : kNoPath;
        if (level < p.size()) {
          coords[i] = p[level];
          any = true;
        } else {
          coords[i] = 0;  // exhausted: the leaf joins as itself
        }
      }
      if (!any) break;
      raw[MakeStateKey(prefix)].insert(CoordCode(coords, bases_));
      for (size_t i = 0; i < m; ++i) {
        const auto& p = t < paths[i].size() ? paths[i][t] : kNoPath;
        if (level < p.size()) prefix[i].push_back(p[level]);
      }
    }
  }

  // Finalize: dense bit array when the child-state space fits a page,
  // otherwise a bloom filter with b = min(P, k*ne/ln2) (§5.3.1).
  uint64_t card = 1;
  bool overflow = false;
  for (size_t i = 0; i < m; ++i) {
    card *= static_cast<uint64_t>(bases_[i] + 1);
    if (card > (1ull << 40)) overflow = true;
  }
  const size_t page_bits = options.page_size * 8;
  for (auto& [key, codes] : raw) {
    StateSig sig;
    if (!overflow && card <= page_bits) {
      BitVector bits(static_cast<size_t>(card), false);
      for (uint64_t c : codes) bits.Set(static_cast<size_t>(c), true);
      sig.bits = std::move(bits);
      sig.exact = true;
    } else {
      size_t ne = codes.size();
      size_t b = std::min<size_t>(
          page_bits,
          static_cast<size_t>(std::ceil(options.max_hashes * ne /
                                        std::log(2.0))));
      BloomFilter bloom(std::max<size_t>(64, b),
                        BloomFilter::OptimalHashes(b, ne, options.max_hashes));
      for (uint64_t c : codes) bloom.Insert(c);
      sig.bits = std::move(bloom);
      sig.exact = false;
    }
    sigs_.emplace(key, std::move(sig));
  }
  construction_ms_ = watch.ElapsedMs();
}

bool JoinSignature::ChildMayBeNonEmpty(const StateKey& key,
                                       const std::vector<int>& coords) const {
  auto it = sigs_.find(key);
  if (it == sigs_.end()) return false;  // parent itself is empty
  uint64_t code = CoordCode(coords, bases_);
  if (it->second.exact) {
    const BitVector& bits = std::get<BitVector>(it->second.bits);
    return code < bits.size() && bits.Get(static_cast<size_t>(code));
  }
  return std::get<BloomFilter>(it->second.bits).MayContain(code);
}

size_t JoinSignature::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, sig] : sigs_) {
    bytes += key.flat.size() * 2 + 16;  // key + index entry
    bytes += sig.exact ? std::get<BitVector>(sig.bits).SizeBytes()
                       : std::get<BloomFilter>(sig.bits).SizeBytes();
  }
  return bytes;
}

}  // namespace rankcube
