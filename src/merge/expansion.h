// Progressive child-state generation for the double-heap algorithm (§5.2):
// every joint state lazily yields its child states best-first through an
// Expander. Two strategies:
//  * NeighborhoodExpander (§5.2.2) — ordered indices + separable monotone /
//    semi-monotone f: children per component sorted by partial score, the
//    frontier walks the staircase lattice (no duplicates by construction).
//  * ThresholdExpander (§5.2.3) — general f: sort-merge over per-component
//    partial scores with threshold positions (instance-optimal, Lemma 7).
#ifndef RANKCUBE_MERGE_EXPANSION_H_
#define RANKCUBE_MERGE_EXPANSION_H_

#include <functional>
#include <memory>
#include <vector>

#include "func/ranking_function.h"
#include "merge/merge_index.h"

namespace rankcube {

/// A child state identified by per-component child positions (1-based;
/// 0 = the component is a leaf joining as itself).
struct ChildSpec {
  double lb = 0.0;
  std::vector<int> coords;
};

/// Engine-supplied hooks shared by both expanders.
struct ExpansionContext {
  const std::vector<const MergeIndex*>* indices = nullptr;
  const RankingFunction* f = nullptr;
  /// Empty-state pruning (join-signature); null = accept all children.
  std::function<bool(const std::vector<int>& coords)> child_ok;
  /// Shared counter of live local-heap entries (peak-heap accounting).
  size_t* local_entries = nullptr;
};

class Expander {
 public:
  virtual ~Expander() = default;
  /// Next-best child; false when exhausted.
  virtual bool GetNext(ChildSpec* out) = 0;
  /// Best possible score of any future child (+inf when exhausted); the
  /// double-heap re-inserts the parent with this score.
  virtual double PeekScore() const = 0;
};

/// Chooses the strategy for a state with component `nodes` whose combined
/// domain is `parent_box`: neighborhood expansion when every index is
/// ordered and f is (semi-)monotone — i.e. separable — else threshold.
std::unique_ptr<Expander> MakeExpander(const std::vector<uint32_t>& nodes,
                                       const Box& parent_box,
                                       const ExpansionContext& ctx);

/// Exposed for tests: true when the neighborhood strategy applies.
bool NeighborhoodApplicable(const std::vector<const MergeIndex*>& indices,
                            const RankingFunction& f);

}  // namespace rankcube

#endif  // RANKCUBE_MERGE_EXPANSION_H_
