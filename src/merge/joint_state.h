// Joint-state identity: a state in the merged space is addressed by the
// per-index node paths (§5.3.1); child states by per-index child positions
// (0 = the index bottomed out at a leaf and contributes itself, §5.1.1).
#ifndef RANKCUBE_MERGE_JOINT_STATE_H_
#define RANKCUBE_MERGE_JOINT_STATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rankcube {

/// Exact (collision-free) key for a joint state: the concatenated per-index
/// node paths with length separators.
struct StateKey {
  std::vector<int> flat;

  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  size_t operator()(const StateKey& k) const {
    uint64_t h = 0xCBF29CE484222325ull;
    for (int v : k.flat) {
      h ^= static_cast<uint64_t>(v) + 0x9E3779B9u;
      h *= 0x100000001B3ull;
    }
    return static_cast<size_t>(h);
  }
};

/// Builds the key of the state addressed by `paths` (one path per index).
StateKey MakeStateKey(const std::vector<std::vector<int>>& paths);

/// Same, restricted to a subset of index positions (pairwise signatures).
StateKey MakeStateKeySubset(const std::vector<std::vector<int>>& paths,
                            const std::vector<int>& positions);

/// Linearizes child coordinates (1-based positions, 0 = self) with bases
/// fanout_i + 1: the bit/bloom address inside a state-signature.
uint64_t CoordCode(const std::vector<int>& coords,
                   const std::vector<int>& bases);

}  // namespace rankcube

#endif  // RANKCUBE_MERGE_JOINT_STATE_H_
