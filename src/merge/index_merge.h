// Ranked query processing by index-merge (Ch5): progressive search over the
// space of joint states composed of nodes from m hierarchical indices.
//
// Three configurations reproduce the thesis's comparisons:
//  * kBaseline (BL)     — Algorithm 4: full expansion of popped states.
//  * kProgressive (PE)  — the double-heap algorithm: states expand lazily
//                         through neighborhood / threshold expansion (§5.2).
//  * PE + signatures    — kProgressive with join-signatures pruning
//                         empty states (§5.3, type-II optimality).
#ifndef RANKCUBE_MERGE_INDEX_MERGE_H_
#define RANKCUBE_MERGE_INDEX_MERGE_H_

#include <vector>

#include "core/topk_query.h"
#include "merge/expansion.h"
#include "merge/join_signature.h"
#include "merge/merge_index.h"
#include "storage/table.h"

namespace rankcube {

struct MergeOptions {
  enum class Mode { kBaseline, kProgressive };
  Mode mode = Mode::kProgressive;

  /// Join-signatures for empty-state pruning. Each signature covers the
  /// engine index positions listed in the parallel `signature_positions`
  /// entry (a single all-positions signature, or pairwise ones for m > 2,
  /// §5.3.3). Empty = no signature pruning.
  std::vector<const JoinSignature*> signatures;
  std::vector<std::vector<int>> signature_positions;
};

/// Top-k over the merged indices (no boolean predicates in Ch5's model).
/// Results and I/O/state counters are written to `stats`.
std::vector<ScoredTuple> IndexMergeTopK(
    const Table& table, const std::vector<const MergeIndex*>& indices,
    const RankingFunctionPtr& function, int k, const MergeOptions& options,
    IoSession* io, ExecStats* stats);

}  // namespace rankcube

#endif  // RANKCUBE_MERGE_INDEX_MERGE_H_
