// Join-signature (§5.3): for every non-leaf, non-empty joint state over a
// set of merged indices, a state-signature marking which child states are
// non-empty. Small state-signatures are exact bit arrays; oversized ones
// fall back to bloom filters (false positives possible, no false negatives,
// §5.3.1). Built tuple-oriented from per-index node paths (§5.3.2).
#ifndef RANKCUBE_MERGE_JOIN_SIGNATURE_H_
#define RANKCUBE_MERGE_JOIN_SIGNATURE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "bitmap/bitvector.h"
#include "bitmap/bloom.h"
#include "merge/joint_state.h"
#include "merge/merge_index.h"

namespace rankcube {

struct JoinSignatureOptions {
  size_t page_size = 4096;  ///< P: state-signature size budget
  int max_hashes = 8;       ///< k-bar of §5.3.1
};

class JoinSignature {
 public:
  /// Builds over the given indices (their order defines coordinate order).
  JoinSignature(std::vector<const MergeIndex*> indices,
                JoinSignatureOptions options = JoinSignatureOptions());

  size_t num_indices() const { return indices_.size(); }

  /// Does a state exist (i.e. is it non-empty)? Used both for child pruning
  /// and for the §5.3.3 bloom false-positive self-correction.
  bool StateExists(const StateKey& key) const {
    return sigs_.count(key) > 0;
  }

  /// May the child at `coords` (1-based; 0 = exhausted index) of the state
  /// `key` be non-empty? Exact for bit-array signatures; one-sided for
  /// bloom-compressed ones. A missing parent state means empty.
  bool ChildMayBeNonEmpty(const StateKey& key,
                          const std::vector<int>& coords) const;

  size_t SizeBytes() const;
  size_t num_states() const { return sigs_.size(); }
  double construction_ms() const { return construction_ms_; }

 private:
  struct StateSig {
    // Exact: dense bit array addressed by CoordCode. Compressed: bloom.
    std::variant<BitVector, BloomFilter> bits;
    bool exact = true;
  };

  std::vector<const MergeIndex*> indices_;
  std::vector<int> bases_;  ///< per-index fanout (coord code bases)
  std::unordered_map<StateKey, StateSig, StateKeyHash> sigs_;
  double construction_ms_ = 0.0;
};

}  // namespace rankcube

#endif  // RANKCUBE_MERGE_JOIN_SIGNATURE_H_
