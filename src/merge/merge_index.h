// Uniform view over hierarchical indices for the Ch5 index-merge paradigm:
// a top-k query merges m indices (B+-trees or R-trees), each covering a
// subset of the ranking dimensions (§5.1.1). The view exposes exactly what
// joint-state search needs: node topology, per-node domain boxes projected
// into the full ranking space, leaf tid lists, paths (for join-signatures),
// and whether entries are totally ordered (neighborhood expansion needs it).
#ifndef RANKCUBE_MERGE_MERGE_INDEX_H_
#define RANKCUBE_MERGE_MERGE_INDEX_H_

#include <vector>

#include "common/geometry.h"
#include "index/btree.h"
#include "index/rtree.h"
#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {

class MergeIndex {
 public:
  virtual ~MergeIndex() = default;

  /// Table ranking dimensions this index covers.
  virtual const std::vector<int>& dims() const = 0;
  virtual uint32_t root() const = 0;
  virtual bool IsLeaf(uint32_t id) const = 0;
  virtual size_t NumChildren(uint32_t id) const = 0;
  virtual uint32_t Child(uint32_t id, size_t i) const = 0;
  /// Overwrites this index's dims in `box` with node `id`'s extent.
  virtual void WriteBox(uint32_t id, Box* box) const = 0;
  /// Tids stored in leaf `id`.
  virtual void LeafTids(uint32_t id, std::vector<Tid>* out) const = 0;
  /// True when child entries are totally ordered along one attribute.
  virtual bool ordered() const = 0;
  virtual int fanout() const = 0;
  virtual void ChargeAccess(IoSession* io, uint32_t id) const = 0;
  /// Node-granularity tuple paths (no leaf entry position), for
  /// join-signature construction (§5.3.2). Indexed by tid.
  virtual std::vector<std::vector<int>> TupleNodePaths() const = 0;
};

/// B+-tree over one attribute.
class BTreeMergeIndex : public MergeIndex {
 public:
  /// `table_dim` is the ranking column the tree indexes.
  BTreeMergeIndex(const BTree* tree, int table_dim)
      : tree_(tree), dims_{table_dim} {}

  const std::vector<int>& dims() const override { return dims_; }
  uint32_t root() const override { return tree_->root(); }
  bool IsLeaf(uint32_t id) const override { return tree_->node(id).is_leaf; }
  size_t NumChildren(uint32_t id) const override {
    return tree_->node(id).children.size();
  }
  uint32_t Child(uint32_t id, size_t i) const override {
    return tree_->node(id).children[i];
  }
  void WriteBox(uint32_t id, Box* box) const override {
    (*box)[dims_[0]] = tree_->node(id).range;
  }
  void LeafTids(uint32_t id, std::vector<Tid>* out) const override {
    out->clear();
    for (const auto& [v, tid] : tree_->node(id).entries) {
      (void)v;
      out->push_back(tid);
    }
  }
  bool ordered() const override { return true; }
  int fanout() const override { return tree_->fanout(); }
  void ChargeAccess(IoSession* io, uint32_t id) const override {
    tree_->ChargeNodeAccess(io, id);
  }
  std::vector<std::vector<int>> TupleNodePaths() const override {
    return tree_->TuplePaths();
  }

 private:
  const BTree* tree_;
  std::vector<int> dims_;
};

/// R-tree over a set of attributes (`dims[i]` is the table column of the
/// tree's local coordinate i).
class RTreeMergeIndex : public MergeIndex {
 public:
  RTreeMergeIndex(const RTree* tree, std::vector<int> dims)
      : tree_(tree), dims_(std::move(dims)) {}

  const std::vector<int>& dims() const override { return dims_; }
  uint32_t root() const override { return tree_->root(); }
  bool IsLeaf(uint32_t id) const override { return tree_->node(id).is_leaf; }
  size_t NumChildren(uint32_t id) const override {
    return tree_->node(id).children.size();
  }
  uint32_t Child(uint32_t id, size_t i) const override {
    return tree_->node(id).children[i];
  }
  void WriteBox(uint32_t id, Box* box) const override {
    const Box& mbr = tree_->node(id).mbr;
    for (size_t d = 0; d < dims_.size(); ++d) (*box)[dims_[d]] = mbr[d];
  }
  void LeafTids(uint32_t id, std::vector<Tid>* out) const override {
    out->clear();
    for (const auto& e : tree_->node(id).entries) out->push_back(e.tid);
  }
  bool ordered() const override { return false; }
  int fanout() const override { return tree_->max_entries(); }
  void ChargeAccess(IoSession* io, uint32_t id) const override {
    tree_->ChargeNodeAccess(io, id);
  }
  std::vector<std::vector<int>> TupleNodePaths() const override {
    return tree_->TupleNodePaths();
  }

 private:
  const RTree* tree_;
  std::vector<int> dims_;
};

}  // namespace rankcube

#endif  // RANKCUBE_MERGE_MERGE_INDEX_H_
