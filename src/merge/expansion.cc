#include "merge/expansion.h"

#include <algorithm>
#include <queue>

namespace rankcube {

namespace {

/// One component's children ordered by partial score f'(e) = lower bound of
/// f with this component narrowed to the child's box, everything else at
/// the parent's box (§5.2.3). A leaf component contributes itself (pos 0).
struct Component {
  struct Entry {
    int pos;        // 1-based child position; 0 = self
    double fprime;  // f'(e)
  };
  std::vector<Entry> entries;  // ascending fprime
};

std::vector<Component> BuildComponents(const std::vector<uint32_t>& nodes,
                                       const Box& parent_box,
                                       const ExpansionContext& ctx) {
  const auto& indices = *ctx.indices;
  std::vector<Component> comps(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const MergeIndex& idx = *indices[i];
    Component& c = comps[i];
    if (idx.IsLeaf(nodes[i])) {
      c.entries.push_back({0, ctx.f->LowerBound(parent_box)});
      continue;
    }
    size_t n = idx.NumChildren(nodes[i]);
    c.entries.reserve(n);
    Box box = parent_box;
    for (size_t j = 0; j < n; ++j) {
      idx.WriteBox(idx.Child(nodes[i], j), &box);
      c.entries.push_back(
          {static_cast<int>(j) + 1, ctx.f->LowerBound(box)});
    }
    idx.WriteBox(nodes[i], &box);  // restore for next component
    std::sort(c.entries.begin(), c.entries.end(),
              [](const Component::Entry& a, const Component::Entry& b) {
                return a.fprime < b.fprime ||
                       (a.fprime == b.fprime && a.pos < b.pos);
              });
  }
  return comps;
}

/// Exact joint lower bound for a coordinate assignment.
double JointLb(const std::vector<uint32_t>& nodes, const Box& parent_box,
               const std::vector<int>& coords, const ExpansionContext& ctx) {
  const auto& indices = *ctx.indices;
  Box box = parent_box;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (coords[i] > 0) {
      indices[i]->WriteBox(indices[i]->Child(nodes[i], coords[i] - 1), &box);
    }
  }
  return ctx.f->LowerBound(box);
}

struct HeapItem {
  double lb;
  uint64_t seq;
  std::vector<int> coords;      // per-component actual child positions
  std::vector<int> rank;        // per-component index into sorted entries
                                // (neighborhood only)
  bool passes_signature = true;

  bool operator>(const HeapItem& o) const {
    return lb > o.lb || (lb == o.lb && seq > o.seq);
  }
};

class LocalHeap {
 public:
  explicit LocalHeap(size_t* counter) : counter_(counter) {}
  ~LocalHeap() {
    if (counter_ != nullptr) *counter_ -= heap_.size();
  }

  void Push(HeapItem item) {
    heap_.push(std::move(item));
    if (counter_ != nullptr) ++*counter_;
  }
  bool empty() const { return heap_.empty(); }
  const HeapItem& top() const { return heap_.top(); }
  HeapItem Pop() {
    HeapItem item = heap_.top();
    heap_.pop();
    if (counter_ != nullptr) --*counter_;
    return item;
  }

 private:
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  size_t* counter_;
};

// ---------------------------------------------------------- Neighborhood --

class NeighborhoodExpander : public Expander {
 public:
  NeighborhoodExpander(const std::vector<uint32_t>& nodes,
                       const Box& parent_box, const ExpansionContext& ctx)
      : nodes_(nodes),
        parent_box_(parent_box),
        ctx_(ctx),
        comps_(BuildComponents(nodes, parent_box, ctx)),
        heap_(ctx.local_entries) {
    PushRank(std::vector<int>(comps_.size(), 0));
  }

  bool GetNext(ChildSpec* out) override {
    while (!heap_.empty()) {
      HeapItem item = heap_.Pop();
      // Staircase lattice: advance component j only while every later
      // component is still at its initial rank — generates each position
      // exactly once (the m-way generalization of §5.2.2's N relation).
      for (size_t j = 0; j < comps_.size(); ++j) {
        bool later_initial = true;
        for (size_t j2 = j + 1; j2 < comps_.size(); ++j2) {
          if (item.rank[j2] != 0) later_initial = false;
        }
        if (!later_initial) continue;
        if (item.rank[j] + 1 >= static_cast<int>(comps_[j].entries.size())) {
          continue;
        }
        std::vector<int> next = item.rank;
        ++next[j];
        PushRank(std::move(next));
      }
      if (!item.passes_signature) continue;  // empty state: expand, skip
      out->lb = item.lb;
      out->coords = item.coords;
      return true;
    }
    return false;
  }

  double PeekScore() const override {
    return heap_.empty() ? kInfScore : heap_.top().lb;
  }

 private:
  void PushRank(std::vector<int> rank) {
    HeapItem item;
    item.rank = std::move(rank);
    item.coords.resize(comps_.size());
    for (size_t i = 0; i < comps_.size(); ++i) {
      item.coords[i] = comps_[i].entries[item.rank[i]].pos;
    }
    item.lb = JointLb(nodes_, parent_box_, item.coords, ctx_);
    item.seq = seq_++;
    item.passes_signature = !ctx_.child_ok || ctx_.child_ok(item.coords);
    heap_.Push(std::move(item));
  }

  std::vector<uint32_t> nodes_;
  Box parent_box_;
  ExpansionContext ctx_;
  std::vector<Component> comps_;
  LocalHeap heap_;
  uint64_t seq_ = 0;
};

// ------------------------------------------------------------- Threshold --

class ThresholdExpander : public Expander {
 public:
  ThresholdExpander(const std::vector<uint32_t>& nodes, const Box& parent_box,
                    const ExpansionContext& ctx)
      : nodes_(nodes),
        parent_box_(parent_box),
        ctx_(ctx),
        comps_(BuildComponents(nodes, parent_box, ctx)),
        consumed_(comps_.size(), 1),
        heap_(ctx.local_entries) {
    // Initial state: the best entry of every component.
    std::vector<int> coords(comps_.size());
    for (size_t i = 0; i < comps_.size(); ++i) {
      coords[i] = comps_[i].entries[0].pos;
    }
    PushCoords(std::move(coords));
  }

  bool GetNext(ChildSpec* out) override {
    Refill();
    if (heap_.empty()) return false;
    HeapItem item = heap_.Pop();
    out->lb = item.lb;
    out->coords = item.coords;
    return true;
  }

  double PeekScore() const override {
    double peek = heap_.empty() ? kInfScore : heap_.top().lb;
    return std::min(peek, NextThreshold());
  }

 private:
  double NextThreshold() const {
    double t = kInfScore;
    for (size_t i = 0; i < comps_.size(); ++i) {
      if (consumed_[i] < comps_[i].entries.size()) {
        t = std::min(t, comps_[i].entries[consumed_[i]].fprime);
      }
    }
    return t;
  }

  /// Advance thresholds until the heap top is proven to be the next-best
  /// child (f(l_heap.root) <= min_i f'(e_i^{t_i}), §5.2.3).
  void Refill() {
    while (true) {
      double threshold = NextThreshold();
      if (threshold == kInfScore) return;  // all components exhausted
      if (!heap_.empty() && heap_.top().lb <= threshold) return;
      // Advance the component with the minimal next partial score.
      size_t s = comps_.size();
      double best = kInfScore;
      for (size_t i = 0; i < comps_.size(); ++i) {
        if (consumed_[i] < comps_[i].entries.size() &&
            comps_[i].entries[consumed_[i]].fprime < best) {
          best = comps_[i].entries[consumed_[i]].fprime;
          s = i;
        }
      }
      if (s == comps_.size()) return;
      // New candidates: consumed prefixes of the others x the new entry.
      std::vector<int> coords(comps_.size());
      EmitProduct(s, 0, &coords);
      ++consumed_[s];
    }
  }

  void EmitProduct(size_t s, size_t depth, std::vector<int>* coords) {
    if (depth == comps_.size()) {
      PushCoords(*coords);
      return;
    }
    if (depth == s) {
      (*coords)[depth] = comps_[s].entries[consumed_[s]].pos;
      EmitProduct(s, depth + 1, coords);
      return;
    }
    for (size_t j = 0; j < consumed_[depth]; ++j) {
      (*coords)[depth] = comps_[depth].entries[j].pos;
      EmitProduct(s, depth + 1, coords);
    }
  }

  void PushCoords(std::vector<int> coords) {
    if (ctx_.child_ok && !ctx_.child_ok(coords)) return;  // empty: prune
    HeapItem item;
    item.lb = JointLb(nodes_, parent_box_, coords, ctx_);
    item.coords = std::move(coords);
    item.seq = seq_++;
    heap_.Push(std::move(item));
  }

  std::vector<uint32_t> nodes_;
  Box parent_box_;
  ExpansionContext ctx_;
  std::vector<Component> comps_;
  std::vector<size_t> consumed_;
  LocalHeap heap_;
  uint64_t seq_ = 0;
};

}  // namespace

bool NeighborhoodApplicable(const std::vector<const MergeIndex*>& indices,
                            const RankingFunction& f) {
  for (const auto* idx : indices) {
    if (!idx->ordered()) return false;
  }
  return f.MonotoneDirections().has_value() ||
         f.SemiMonotoneCenter().has_value();
}

std::unique_ptr<Expander> MakeExpander(const std::vector<uint32_t>& nodes,
                                       const Box& parent_box,
                                       const ExpansionContext& ctx) {
  if (NeighborhoodApplicable(*ctx.indices, *ctx.f)) {
    return std::make_unique<NeighborhoodExpander>(nodes, parent_box, ctx);
  }
  return std::make_unique<ThresholdExpander>(nodes, parent_box, ctx);
}

}  // namespace rankcube
