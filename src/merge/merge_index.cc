#include "merge/merge_index.h"

namespace rankcube {}  // namespace rankcube
