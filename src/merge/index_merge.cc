#include "merge/index_merge.h"

#include <deque>
#include <memory>
#include <queue>
#include <unordered_set>

#include "common/stopwatch.h"
#include "func/kernels/kernels.h"

namespace rankcube {

namespace {

struct State {
  double lb = 0.0;
  std::vector<uint32_t> nodes;
  std::vector<std::vector<int>> paths;
  bool is_leaf = false;
  bool examined = false;
  std::unique_ptr<Expander> expander;
};

struct GlobalEntry {
  double score;
  uint64_t seq;
  State* state;
  bool operator>(const GlobalEntry& o) const {
    return score > o.score || (score == o.score && seq > o.seq);
  }
};

class Engine {
 public:
  Engine(const Table& table, const std::vector<const MergeIndex*>& indices,
         const RankingFunctionPtr& function, int k,
         const MergeOptions& options, IoSession* io, ExecStats* stats)
      : table_(table),
        indices_(indices),
        f_(function),
        options_(options),
        io_(io),
        stats_(stats),
        topk_(k),
        scorer_(table, *function, &topk_, stats),
        accessed_(indices.size()),
        retrieved_leaves_(indices.size()),
        seen_mask_(table.num_rows(), 0) {
    full_mask_ = static_cast<uint8_t>((1u << indices.size()) - 1);
  }

  std::vector<ScoredTuple> Run() {
    Stopwatch watch;
    uint64_t pages_before = io_->TotalPhysical();

    State* root = NewState();
    root->nodes.reserve(indices_.size());
    root->paths.resize(indices_.size());
    Box box = Box::Unit(table_.num_rank_dims());
    bool all_leaf = true;
    for (const auto* idx : indices_) {
      root->nodes.push_back(idx->root());
      idx->WriteBox(idx->root(), &box);
      all_leaf = all_leaf && idx->IsLeaf(idx->root());
    }
    root->lb = f_->LowerBound(box);
    root->is_leaf = all_leaf;
    Push(root->lb, root);

    while (!heap_.empty()) {
      GlobalEntry top = heap_.top();
      if (topk_.Full() && topk_.KthScore() <= top.score) break;
      heap_.pop();
      State* s = top.state;
      if (!s->examined) {
        s->examined = true;
        ++stats_->states_examined;
      }
      if (s->is_leaf) {
        RetrieveLeaf(s);
        continue;
      }
      if (options_.mode == MergeOptions::Mode::kBaseline) {
        ExpandFully(s);
      } else {
        ExpandProgressively(s);
      }
      stats_->MergeMax(heap_.size() + local_entries_);
    }

    stats_->time_ms += watch.ElapsedMs();
    stats_->pages_read += io_->TotalPhysical() - pages_before;
    return topk_.Sorted();
  }

 private:
  State* NewState() {
    arena_.push_back(std::make_unique<State>());
    return arena_.back().get();
  }

  void Push(double score, State* s) {
    heap_.push({score, seq_++, s});
  }

  void ChargeNodeOnce(size_t i, uint32_t node) {
    if (accessed_[i].insert(node).second) {
      indices_[i]->ChargeAccess(io_, node);
    }
  }

  /// All covering signatures agree the state exists (§5.3.3 correction).
  bool StateExists(const State& s) {
    bool checked = false;
    for (size_t g = 0; g < options_.signatures.size(); ++g) {
      StateKey key =
          MakeStateKeySubset(s.paths, options_.signature_positions[g]);
      ChargeSignature(key);
      checked = true;
      if (!options_.signatures[g]->StateExists(key)) return false;
    }
    (void)checked;
    return true;
  }

  void ChargeSignature(const StateKey& key) {
    uint64_t h = StateKeyHash{}(key);
    if (signature_loaded_.insert(h).second) {
      io_->Access(IoCategory::kJoinSignature, h);
      ++stats_->signature_pages;
    }
  }

  /// Builds the empty-state filter for children of `s`.
  std::function<bool(const std::vector<int>&)> MakeChildFilter(State* s) {
    if (options_.signatures.empty()) return nullptr;
    // Pre-compute the per-signature parent keys once per expansion.
    auto keys = std::make_shared<std::vector<StateKey>>();
    for (size_t g = 0; g < options_.signatures.size(); ++g) {
      keys->push_back(
          MakeStateKeySubset(s->paths, options_.signature_positions[g]));
      ChargeSignature(keys->back());
    }
    const MergeOptions* opt = &options_;
    return [opt, keys](const std::vector<int>& coords) {
      for (size_t g = 0; g < opt->signatures.size(); ++g) {
        std::vector<int> sub;
        sub.reserve(opt->signature_positions[g].size());
        for (int pos : opt->signature_positions[g]) {
          sub.push_back(coords[pos]);
        }
        if (!opt->signatures[g]->ChildMayBeNonEmpty((*keys)[g], sub)) {
          return false;
        }
      }
      return true;
    };
  }

  State* MaterializeChild(State* parent, const ChildSpec& spec) {
    State* child = NewState();
    child->lb = spec.lb;
    child->nodes.resize(indices_.size());
    child->paths = parent->paths;
    bool all_leaf = true;
    for (size_t i = 0; i < indices_.size(); ++i) {
      if (spec.coords[i] == 0) {
        child->nodes[i] = parent->nodes[i];  // leaf joins as itself
      } else {
        child->nodes[i] =
            indices_[i]->Child(parent->nodes[i], spec.coords[i] - 1);
        child->paths[i].push_back(spec.coords[i]);
      }
      all_leaf = all_leaf && indices_[i]->IsLeaf(child->nodes[i]);
    }
    child->is_leaf = all_leaf;
    ++stats_->states_generated;
    return child;
  }

  void ExpandProgressively(State* s) {
    if (!s->expander) {
      if (!StateExists(*s)) return;  // bloom false positive corrected
      Box box = Box::Unit(table_.num_rank_dims());
      for (size_t i = 0; i < indices_.size(); ++i) {
        ChargeNodeOnce(i, s->nodes[i]);
        indices_[i]->WriteBox(s->nodes[i], &box);
      }
      ExpansionContext ctx;
      ctx.indices = &indices_;
      ctx.f = f_.get();
      ctx.child_ok = MakeChildFilter(s);
      ctx.local_entries = &local_entries_;
      s->expander = MakeExpander(s->nodes, box, ctx);
    }
    ChildSpec spec;
    if (s->expander->GetNext(&spec)) {
      Push(spec.lb, MaterializeChild(s, spec));
    }
    double peek = s->expander->PeekScore();
    if (peek < kInfScore) Push(peek, s);
  }

  void ExpandFully(State* s) {
    if (!StateExists(*s)) return;
    Box box = Box::Unit(table_.num_rank_dims());
    for (size_t i = 0; i < indices_.size(); ++i) {
      ChargeNodeOnce(i, s->nodes[i]);
      indices_[i]->WriteBox(s->nodes[i], &box);
    }
    auto filter = MakeChildFilter(s);
    // Full Cartesian product of child entries (Algorithm 4 line 8).
    std::vector<int> coords(indices_.size(), 0);
    std::vector<size_t> counts(indices_.size());
    for (size_t i = 0; i < indices_.size(); ++i) {
      counts[i] = indices_[i]->IsLeaf(s->nodes[i])
                      ? 1
                      : indices_[i]->NumChildren(s->nodes[i]);
    }
    std::vector<size_t> cursor(indices_.size(), 0);
    while (true) {
      for (size_t i = 0; i < indices_.size(); ++i) {
        coords[i] = indices_[i]->IsLeaf(s->nodes[i])
                        ? 0
                        : static_cast<int>(cursor[i]) + 1;
      }
      if (!filter || filter(coords)) {
        Box child_box = box;
        for (size_t i = 0; i < indices_.size(); ++i) {
          if (coords[i] > 0) {
            indices_[i]->WriteBox(
                indices_[i]->Child(s->nodes[i], coords[i] - 1), &child_box);
          }
        }
        ChildSpec spec;
        spec.lb = f_->LowerBound(child_box);
        spec.coords = coords;
        Push(spec.lb, MaterializeChild(s, spec));
      }
      size_t i = 0;
      for (; i < indices_.size(); ++i) {
        if (++cursor[i] < counts[i]) break;
        cursor[i] = 0;
      }
      if (i == indices_.size()) break;
    }
  }

  void RetrieveLeaf(State* s) {
    // Redundant state: every component leaf was retrieved before, so all of
    // its tuples have already been merged through the hashtable (§5.1.3).
    bool all_redundant = true;
    for (size_t i = 0; i < indices_.size(); ++i) {
      if (!retrieved_leaves_[i].count(s->nodes[i])) all_redundant = false;
    }
    if (all_redundant) return;

    std::vector<Tid> tids;
    merged_.clear();
    for (size_t i = 0; i < indices_.size(); ++i) {
      if (!retrieved_leaves_[i].insert(s->nodes[i]).second) continue;
      ChargeNodeOnce(i, s->nodes[i]);
      indices_[i]->LeafTids(s->nodes[i], &tids);
      uint8_t bit = static_cast<uint8_t>(1u << i);
      for (Tid t : tids) {
        uint8_t mask = (seen_mask_[t] |= bit);
        // Fully merged: all attribute values seen; batch the exact scoring.
        if (mask == full_mask_) merged_.push_back(t);
      }
    }
    scorer_.ScoreBlock(merged_.data(), merged_.size());
  }

  const Table& table_;
  const std::vector<const MergeIndex*>& indices_;
  RankingFunctionPtr f_;
  const MergeOptions& options_;
  IoSession* io_;
  ExecStats* stats_;
  TopKHeap topk_;
  kernels::FusedScorer scorer_;

  std::deque<std::unique_ptr<State>> arena_;
  std::priority_queue<GlobalEntry, std::vector<GlobalEntry>, std::greater<>>
      heap_;
  uint64_t seq_ = 0;
  size_t local_entries_ = 0;

  std::vector<std::unordered_set<uint32_t>> accessed_;
  std::vector<std::unordered_set<uint32_t>> retrieved_leaves_;
  std::unordered_set<uint64_t> signature_loaded_;
  std::vector<uint8_t> seen_mask_;
  uint8_t full_mask_;
  std::vector<Tid> merged_;  ///< fully-merged tids of one retrieval
};

}  // namespace

std::vector<ScoredTuple> IndexMergeTopK(
    const Table& table, const std::vector<const MergeIndex*>& indices,
    const RankingFunctionPtr& function, int k, const MergeOptions& options,
    IoSession* io, ExecStats* stats) {
  Engine engine(table, indices, function, k, options, io, stats);
  return engine.Run();
}

}  // namespace rankcube
