// RankingEngine adapters over the seven executor families in this
// repository. Each adapter either wraps structures the caller already built
// (shared_ptr; the bench harnesses cache cubes across figures) or is built
// from scratch by the EngineRegistry factories (registry.cc).
#ifndef RANKCUBE_ENGINE_BUILTIN_ENGINES_H_
#define RANKCUBE_ENGINE_BUILTIN_ENGINES_H_

#include <memory>
#include <vector>

#include "baselines/baselines.h"
#include "core/grid_cube.h"
#include "core/ranking_fragments.h"
#include "core/signature_cube.h"
#include "engine/engine.h"
#include "merge/index_merge.h"

namespace rankcube {

// Engines constructed over a non-const structure own the write path too:
// RankingEngine::Maintain incrementally absorbs table deltas (ApplyDelta /
// R-tree insert+delete). The const overloads wrap shared read-only
// structures (the bench harnesses cache cubes across figures); those
// engines stay exact through the Execute delta overlay and report
// SupportsMaintenance() == false.

/// Ch3 grid ranking cube ("grid").
std::unique_ptr<RankingEngine> MakeGridCubeEngine(
    const Table& table, std::shared_ptr<const GridRankingCube> cube);
std::unique_ptr<RankingEngine> MakeGridCubeEngine(
    const Table& table, std::shared_ptr<GridRankingCube> cube);

/// Ch3 ranking fragments ("fragments").
std::unique_ptr<RankingEngine> MakeFragmentsEngine(
    const Table& table, std::shared_ptr<const RankingFragments> fragments);
std::unique_ptr<RankingEngine> MakeFragmentsEngine(
    const Table& table, std::shared_ptr<RankingFragments> fragments);

/// Ch4 signature cube ("signature"); `lossy` = query through the §4.5
/// bloom signatures ("signature_lossy"; the cube must have been built with
/// lossy_bloom enabled).
std::unique_ptr<RankingEngine> MakeSignatureCubeEngine(
    const Table& table, std::shared_ptr<const SignatureCube> cube,
    bool lossy = false);
std::unique_ptr<RankingEngine> MakeSignatureCubeEngine(
    const Table& table, std::shared_ptr<SignatureCube> cube,
    bool lossy = false);

/// Sequential-scan oracle ("table_scan"); always fresh by construction.
std::unique_ptr<RankingEngine> MakeTableScanEngine(const Table& table);

/// Boolean-first baseline ("boolean_first").
std::unique_ptr<RankingEngine> MakeBooleanFirstEngine(
    const Table& table, std::shared_ptr<const BooleanFirst> baseline);

/// Ranking-first baseline ("ranking_first") over a caller-provided R-tree
/// (e.g. a signature cube's partition template).
std::unique_ptr<RankingEngine> MakeRankingFirstEngine(
    const Table& table, std::shared_ptr<const RTree> rtree);
std::unique_ptr<RankingEngine> MakeRankingFirstEngine(
    const Table& table, std::shared_ptr<RTree> rtree);

/// Rank-mapping baseline ("rank_mapping"). The engine feeds it the optimal
/// k-th-score bound from an in-memory oracle, the concession the thesis
/// grants this competitor (§3.5.1); oracle evaluation charges no pages.
std::unique_ptr<RankingEngine> MakeRankMappingEngine(
    const Table& table, std::shared_ptr<const RankMapping> baseline);

/// Ch5 index-merge ("index_merge") over caller-provided merge indices.
/// `options.signatures` entries must outlive the engine; `owned` (optional)
/// transfers ownership of backing structures with matching lifetime.
std::unique_ptr<RankingEngine> MakeIndexMergeEngine(
    const Table& table, std::vector<const MergeIndex*> indices,
    MergeOptions options,
    std::shared_ptr<const void> owned = nullptr);

}  // namespace rankcube

#endif  // RANKCUBE_ENGINE_BUILTIN_ENGINES_H_
