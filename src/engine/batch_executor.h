// Runs a workload vector through one RankingEngine — or, in router mode,
// through a per-query engine choice — and aggregates the ExecStats: the
// loop every bench binary used to reimplement by hand.
//
// Three entry points:
//  * Run(workload, ctx)            — sequential, inside a caller-owned
//    ExecContext/IoSession (per-query budget and trace hook apply).
//  * ExecuteAll(workload, store)   — sequential, one fresh IoSession per
//    query against the shared PageStore.
//  * ExecuteParallel(workload, store, num_threads) — worker pool; each
//    worker owns its IoSession, so the only shared mutable state is the
//    store's sharded cache. Per-query results and stats are collected into
//    per-query slots and merged in workload order after the workers join,
//    so the report (totals, results, latencies) is deterministic and
//    tuple-identical to ExecuteAll regardless of scheduling.
#ifndef RANKCUBE_ENGINE_BATCH_EXECUTOR_H_
#define RANKCUBE_ENGINE_BATCH_EXECUTOR_H_

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "engine/engine.h"

namespace rankcube {

/// A router's answer for one query: the engine that should run it, plus
/// the plan record to attach to the result (may be null for routers that
/// don't plan).
struct RoutedEngine {
  const RankingEngine* engine = nullptr;
  std::shared_ptr<const PlanInfo> plan;
};

/// Per-query engine choice — how planner-routed workloads run: RankCubeDb
/// hands BatchExecutor a router that plans each query and lazily builds
/// the chosen structure, so one mixed workload may legitimately split
/// across engines. Must be thread-safe when used with ExecuteParallel.
/// A routing failure counts as that query's failure, like any engine
/// error.
using EngineRouter =
    std::function<Result<RoutedEngine>(const TopKQuery& query)>;

/// Full per-query executor — how facades with their own execution pipeline
/// (result cache, planner feedback) run workloads: BatchExecutor still owns
/// scheduling, sessions and the deterministic merge, but the callback owns
/// everything between "here is a query and its context" and "here is its
/// result". Must be thread-safe when used with ExecuteParallel.
using QueryExecutor =
    std::function<Result<TopKResult>(const TopKQuery& query, ExecContext& ctx)>;

struct BatchOptions {
  /// Retain each query's TopKResult (memory-heavy for large workloads;
  /// off = counters only). Results are always in workload order.
  bool keep_results = false;
  /// Stop at the first failing query instead of counting and continuing.
  /// Parallel execution stops dispatching new queries after a failure;
  /// queries already in flight still finish.
  bool stop_on_error = false;
  /// Physical-page budget applied to every query individually (0 = none);
  /// used by ExecuteAll / ExecuteParallel, which build their own contexts.
  /// Charged pages are metered against the query's own session (see
  /// io_session.h), so a borderline query's pass/fail verdict is identical
  /// across thread counts and schedules.
  uint64_t page_budget = 0;
  /// Wall-clock deadline applied to every query individually, measured from
  /// that query's dispatch (0 = none); enforced by RankingEngine::Execute
  /// with Status::DeadlineExceeded. Used by ExecuteAll / ExecuteParallel.
  uint64_t deadline_ms = 0;
  /// Record every successful query's latency (ms, workload order) in
  /// BatchReport::latencies_ms, for percentile reporting.
  bool record_latencies = false;
  /// Bring a stale engine up to date (RankingEngine::Maintain) before the
  /// workload runs — the safe point between batches where no query is in
  /// flight. Requires the non-const single-engine constructor and an engine
  /// with SupportsMaintenance(); otherwise the flag is a no-op (stale
  /// engines stay exact through the per-query delta overlay, just slower).
  bool auto_maintain = false;
};

struct BatchReport {
  size_t num_queries = 0;  ///< workload size
  size_t executed = 0;     ///< queries actually run (< num_queries when
                           ///< stop_on_error cut the batch short)
  size_t failed = 0;
  Status first_error;  ///< earliest failure by workload order; OK when
                       ///< failed == 0

  ExecStats total;              ///< accumulated over successful queries
  uint64_t physical_pages = 0;  ///< pages charged to the batch's sessions
                                ///< (deterministic; see io_session.h)
  uint64_t device_pages = 0;    ///< simulated device reads (shared-cache
                                ///< misses; schedule-dependent by nature)
  /// Physical pages auto_maintain's pre-batch Maintain charged (not part
  /// of physical_pages: maintenance is amortized across the batch, the
  /// benchmarks report it separately).
  uint64_t maintenance_pages = 0;
  /// Per-category physical/logical counters summed over the batch's
  /// sessions (Run: the context session's delta is not split by category,
  /// so this stays zero there).
  std::array<IoStats, static_cast<int>(IoCategory::kNumCategories)> io{};
  double wall_ms = 0.0;  ///< wall-clock of the whole batch (spawn to join)

  std::vector<TopKResult> results;   ///< per query, when keep_results
  std::vector<double> latencies_ms;  ///< per successful query, when
                                     ///< record_latencies

  size_t succeeded() const { return executed - failed; }
  double AvgMs() const { return total.time_ms / Denom(); }
  /// Queries per second by wall-clock — the scaling figure ExecuteParallel
  /// exists to improve. 0 when wall time was not measured.
  double Qps() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(succeeded()) / wall_ms
                         : 0.0;
  }
  double AvgPhysicalPages() const {
    return static_cast<double>(physical_pages) / Denom();
  }
  double AvgStatesGenerated() const {
    return static_cast<double>(total.states_generated) / Denom();
  }
  double AvgPeakHeap() const {
    return static_cast<double>(total.peak_heap) / Denom();
  }
  double AvgTuplesEvaluated() const {
    return static_cast<double>(total.tuples_evaluated) / Denom();
  }
  double AvgSignaturePages() const {
    return static_cast<double>(total.signature_pages) / Denom();
  }

 private:
  double Denom() const { return succeeded() > 0 ? succeeded() : 1.0; }
};

class BatchExecutor {
 public:
  /// Single-engine mode: every query runs on `engine`.
  explicit BatchExecutor(const RankingEngine* engine,
                         BatchOptions options = BatchOptions())
      : engine_(engine), options_(options) {}

  /// Single-engine mode over a mutable engine: additionally allows
  /// auto_maintain to trigger RankingEngine::Maintain between batches
  /// (before each Run/ExecuteAll/ExecuteParallel, while no query is in
  /// flight).
  explicit BatchExecutor(RankingEngine* engine,
                         BatchOptions options = BatchOptions())
      : engine_(engine), maintain_target_(engine), options_(options) {}

  /// Router mode: each query is routed individually (thread-safe router
  /// required for ExecuteParallel); the routed plan is attached to the
  /// query's TopKResult.
  explicit BatchExecutor(EngineRouter router,
                         BatchOptions options = BatchOptions())
      : router_(std::move(router)), options_(options) {}

  /// Executor mode: the callback runs each query end to end inside the
  /// context BatchExecutor built (fresh session, batch budget/deadline).
  explicit BatchExecutor(QueryExecutor executor,
                         BatchOptions options = BatchOptions())
      : executor_(std::move(executor)), options_(options) {}

  /// Executes the workload in order inside `ctx` (the per-query page budget
  /// and trace hook apply to each query individually). Only setup failures
  /// (no I/O session) fail the whole batch; per-query errors are tallied in
  /// the report unless stop_on_error is set.
  Result<BatchReport> Run(const std::vector<TopKQuery>& workload,
                          ExecContext& ctx) const;

  /// Sequential execution against `store`, one fresh IoSession per query.
  Result<BatchReport> ExecuteAll(const std::vector<TopKQuery>& workload,
                                 const PageStore& store) const;

  /// Executes the workload on `num_threads` workers (<= 1 falls back to
  /// ExecuteAll). Queries are claimed from a shared atomic cursor and each
  /// runs in a fresh IoSession against the shared `store`. Result tuples,
  /// per-query charged pages (physical_pages) and page_budget verdicts are
  /// all identical to sequential execution regardless of scheduling: each
  /// session meters its own accounting cache (io_session.h), so workers
  /// racing for the shared buffer cache affect only wall-clock latency and
  /// the device_pages figure.
  Result<BatchReport> ExecuteParallel(const std::vector<TopKQuery>& workload,
                                      const PageStore& store,
                                      int num_threads) const;

 private:
  /// Resolves the engine (fixed or routed) and executes one query.
  Result<TopKResult> ExecuteOne(const TopKQuery& query,
                                ExecContext& ctx) const;

  /// The between-batches maintenance point: brings a stale maintainable
  /// engine to the table's epoch inside `io`, reporting the pages charged.
  /// Errors propagate — running the batch against a half-maintained
  /// structure would be silent corruption.
  Status MaintainIfRequested(IoSession* io, uint64_t* pages) const;

  const RankingEngine* engine_ = nullptr;
  RankingEngine* maintain_target_ = nullptr;
  EngineRouter router_;
  QueryExecutor executor_;
  BatchOptions options_;
};

}  // namespace rankcube

#endif  // RANKCUBE_ENGINE_BATCH_EXECUTOR_H_
