// Runs a workload vector through one RankingEngine and aggregates the
// ExecStats — the loop every bench binary used to reimplement by hand. The
// report carries totals (accumulated with ExecStats::operator+=) plus the
// physical-page delta observed on the context's pager, and per-query
// averages derived from them.
#ifndef RANKCUBE_ENGINE_BATCH_EXECUTOR_H_
#define RANKCUBE_ENGINE_BATCH_EXECUTOR_H_

#include <vector>

#include "engine/engine.h"

namespace rankcube {

struct BatchOptions {
  /// Retain each query's TopKResult (memory-heavy for large workloads;
  /// off = counters only).
  bool keep_results = false;
  /// Stop at the first failing query instead of counting and continuing.
  bool stop_on_error = false;
};

struct BatchReport {
  size_t num_queries = 0;  ///< workload size
  size_t executed = 0;     ///< queries actually run (< num_queries when
                           ///< stop_on_error cut the batch short)
  size_t failed = 0;
  Status first_error;  ///< OK when failed == 0

  ExecStats total;               ///< accumulated over successful queries
  uint64_t physical_pages = 0;   ///< pager physical delta over the batch

  std::vector<TopKResult> results;  ///< per query, when keep_results

  size_t succeeded() const { return executed - failed; }
  double AvgMs() const { return total.time_ms / Denom(); }
  double AvgPhysicalPages() const {
    return static_cast<double>(physical_pages) / Denom();
  }
  double AvgStatesGenerated() const {
    return static_cast<double>(total.states_generated) / Denom();
  }
  double AvgPeakHeap() const {
    return static_cast<double>(total.peak_heap) / Denom();
  }
  double AvgTuplesEvaluated() const {
    return static_cast<double>(total.tuples_evaluated) / Denom();
  }
  double AvgSignaturePages() const {
    return static_cast<double>(total.signature_pages) / Denom();
  }

 private:
  double Denom() const { return succeeded() > 0 ? succeeded() : 1.0; }
};

class BatchExecutor {
 public:
  explicit BatchExecutor(const RankingEngine* engine,
                         BatchOptions options = BatchOptions())
      : engine_(engine), options_(options) {}

  /// Executes the workload in order inside `ctx` (the per-query page budget
  /// and trace hook apply to each query individually). Only setup failures
  /// (no pager) fail the whole batch; per-query errors are tallied in the
  /// report unless stop_on_error is set.
  Result<BatchReport> Run(const std::vector<TopKQuery>& workload,
                          ExecContext& ctx) const;

 private:
  const RankingEngine* engine_;
  BatchOptions options_;
};

}  // namespace rankcube

#endif  // RANKCUBE_ENGINE_BATCH_EXECUTOR_H_
