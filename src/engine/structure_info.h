// Self-description of physical access structures, and the plan record a
// cost-based choice between them produces.
//
// The paper's Ch3-Ch5 structures (grid ranking cube, fragments, signature
// cube, R-tree, boolean-first indexes, sequential scan, ...) are alternative
// physical executors of one logical query class, each winning in a different
// regime of selectivity, predicate count and function shape. To let a
// planner choose among them, every RankingEngine exports an
// AccessStructureInfo: its capabilities (which queries it can answer at all)
// and the statistics the block-access cost model needs (sizes, cell counts,
// grid geometry, tree shape). The planner's decision is recorded as a
// PlanInfo and travels inside TopKResult.
//
// Both types live in the engine layer (below src/planner/) so that
// RankingEngine can describe itself and TopKResult can carry the plan
// without the engine layer depending on the planner.
#ifndef RANKCUBE_ENGINE_STRUCTURE_INFO_H_
#define RANKCUBE_ENGINE_STRUCTURE_INFO_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace rankcube {

/// What a planner-routed query should minimize.
enum class OptimizeFor {
  kPages,    ///< physical page reads (the paper's #disk-accesses series)
  kLatency,  ///< page reads weighted by device cost plus CPU evaluation cost
};

/// Capabilities + statistics of one physical access structure, keyed by its
/// engine registry name. Produced two ways:
///  * predicted analytically before the structure exists (the planner must
///    be able to cost a plan without paying construction), and
///  * exported exactly by a built engine via RankingEngine::Describe(),
///    which replaces the prediction in the catalog.
struct AccessStructureInfo {
  std::string engine;  ///< registry key ("grid", "table_scan", ...)

  // --- capabilities -------------------------------------------------------
  bool supports_predicates = true;
  /// Search algorithm is only exact for convex ranking functions (the grid
  /// neighborhood search of Lemma 1).
  bool requires_convex = false;
  /// Needs an externally supplied k-th-score bound (the rank-mapping
  /// competitor runs on an oracle concession, §3.5.1); never chosen by the
  /// cost model, only by force_engine.
  bool needs_external_bound = false;

  /// How predicate dimension sets map onto materialized structure:
  enum class DimCoverage {
    kNone,        ///< no boolean access path at all
    kExactSets,   ///< query dims must equal one of covered_dim_sets (grid
                  ///< cuboids answer exactly their own dimension set)
    kAtomicAssembly,  ///< exact-set hit, or online assembly from atomic
                      ///< (single-dim) cuboids — every query dim must appear
                      ///< as a singleton in covered_dim_sets (§4.3.3)
    kAnySubset,   ///< any conjunction answerable (fragments assemble
                  ///< covering sets online; posting lists exist per dim)
  };
  DimCoverage coverage = DimCoverage::kAnySubset;
  /// Sorted dimension sets materialized, for kExactSets; also consulted for
  /// structures (signature cube) where an exact-set hit avoids online
  /// assembly. Single-dim entries double as "this dim has an atomic cuboid".
  std::vector<std::vector<int>> covered_dim_sets;

  // --- statistics ---------------------------------------------------------
  bool built = false;           ///< exact stats from a built structure
  /// Table epoch the built structure reflects (see storage/delta_store.h);
  /// a built entry whose epoch lags the table's pays the delta-overlay
  /// cost in the planner's estimates. Meaningless when !built (an unbuilt
  /// structure would be constructed fresh).
  uint64_t built_epoch = 0;
  uint64_t size_bytes = 0;      ///< auxiliary-structure footprint
  uint64_t construction_pages = 0;  ///< build I/O already paid (0 if unbuilt)

  int num_cuboids = 0;          ///< materialized cuboids (grid/frag/signature)
  uint64_t cuboid_cells = 0;    ///< total materialized cells across cuboids

  // Grid geometry (grid + fragments): bins per ranking dimension, base
  // blocks, and the block-size target P the equi-depth partition was built
  // for (§3.2.2/§3.2.3).
  int grid_bins = 0;
  uint64_t grid_blocks = 0;
  int block_size = 0;
  /// Fragment grouping (fragments only): selection dims per group, so the
  /// planner can count covering cuboids per query (§3.4.2).
  std::vector<std::vector<int>> fragment_groups;

  // Tree shape (signature/ranking_first R-tree; index_merge B+-trees).
  int tree_fanout = 0;
  int tree_depth = 0;
  uint64_t tree_leaves = 0;

  std::string ToString() const {
    std::ostringstream os;
    os << engine << (built ? " [built]" : " [predicted]") << " size="
       << size_bytes << "B cuboids=" << num_cuboids << " cells="
       << cuboid_cells;
    if (grid_blocks > 0) os << " blocks=" << grid_blocks;
    if (tree_leaves > 0) {
      os << " leaves=" << tree_leaves << " depth=" << tree_depth;
    }
    return os.str();
  }
};

/// One costed alternative the planner considered.
struct PlanCandidate {
  std::string engine;
  bool feasible = false;
  double est_pages = 0.0;   ///< estimated physical page reads
  double est_cost = 0.0;    ///< objective minimized (pages, or latency us)
  std::string reason;       ///< why infeasible (empty when feasible)
};

/// The planner's decision for one query: which engine runs it, what the
/// cost model expected, and every candidate's estimate (the EXPLAIN
/// output). Returned by RankCubeDb::Explain and attached to TopKResult for
/// planner-routed executions, so estimated_pages can be compared against
/// the measured ExecStats::pages_read.
struct PlanInfo {
  std::string chosen_engine;
  double estimated_pages = 0.0;
  bool forced = false;  ///< chosen by force_engine, not by cost
  std::vector<PlanCandidate> candidates;  ///< feasible first, by ascending cost

  std::string ToString() const {
    std::ostringstream os;
    os << "plan: " << chosen_engine << (forced ? " (forced)" : "")
       << ", est_pages=" << estimated_pages;
    for (const auto& c : candidates) {
      os << "\n  " << c.engine << ": ";
      if (c.feasible) {
        os << "est_pages=" << c.est_pages << " est_cost=" << c.est_cost;
      } else {
        os << "infeasible (" << c.reason << ")";
      }
    }
    return os.str();
  }
};

}  // namespace rankcube

#endif  // RANKCUBE_ENGINE_STRUCTURE_INFO_H_
