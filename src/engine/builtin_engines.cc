#include "engine/builtin_engines.h"

#include <utility>

namespace rankcube {
namespace {

/// Shared grid-family description: cuboid dim sets + cell counts plus the
/// equi-depth partition geometry the block-access cost model reads.
void DescribeGridCuboids(const std::vector<GridCuboid>& cuboids,
                         const EquiDepthGrid& grid, int block_size,
                         AccessStructureInfo* info) {
  info->requires_convex = true;  // neighborhood search needs Lemma 1
  info->num_cuboids = static_cast<int>(cuboids.size());
  for (const auto& c : cuboids) {
    info->covered_dim_sets.push_back(c.dims);
    info->cuboid_cells += c.cells.size();
  }
  info->grid_bins = grid.bins_per_dim();
  info->grid_blocks = grid.num_blocks();
  info->block_size = block_size;
}

class GridCubeEngine final : public RankingEngine {
 public:
  GridCubeEngine(const Table& table, std::shared_ptr<const GridRankingCube> c,
                 GridRankingCube* mutable_cube = nullptr)
      : RankingEngine("grid", &table),
        cube_(std::move(c)),
        mutable_cube_(mutable_cube) {}

  size_t SizeBytes() const override { return cube_->SizeBytes(); }

  uint64_t BuiltEpoch() const override { return cube_->built_epoch(); }
  bool SupportsMaintenance() const override {
    return mutable_cube_ != nullptr;
  }
  Status Maintain(IoSession* io) override {
    if (mutable_cube_ == nullptr) return RankingEngine::Maintain(io);
    return mutable_cube_->ApplyDelta(table().delta(), io);
  }

  AccessStructureInfo Describe() const override {
    AccessStructureInfo info = RankingEngine::Describe();
    info.coverage = AccessStructureInfo::DimCoverage::kExactSets;
    DescribeGridCuboids(cube_->cuboids(), cube_->grid(), cube_->block_size(),
                        &info);
    info.construction_pages = cube_->construction_pages();
    return info;
  }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    auto r = cube_->TopK(query, ctx.io, &out.stats);
    if (!r.ok()) return r.status();
    out.tuples = std::move(r).value();
    return out;
  }

 private:
  std::shared_ptr<const GridRankingCube> cube_;
  GridRankingCube* mutable_cube_;  ///< nullptr for read-only wrapping
};

class FragmentsEngine final : public RankingEngine {
 public:
  FragmentsEngine(const Table& table,
                  std::shared_ptr<const RankingFragments> f,
                  RankingFragments* mutable_fragments = nullptr)
      : RankingEngine("fragments", &table),
        fragments_(std::move(f)),
        mutable_fragments_(mutable_fragments) {}

  size_t SizeBytes() const override { return fragments_->SizeBytes(); }

  uint64_t BuiltEpoch() const override { return fragments_->built_epoch(); }
  bool SupportsMaintenance() const override {
    return mutable_fragments_ != nullptr;
  }
  Status Maintain(IoSession* io) override {
    if (mutable_fragments_ == nullptr) return RankingEngine::Maintain(io);
    return mutable_fragments_->ApplyDelta(table().delta(), io);
  }

  AccessStructureInfo Describe() const override {
    AccessStructureInfo info = RankingEngine::Describe();
    // Any conjunction is answerable through a covering set (§3.4.2).
    info.coverage = AccessStructureInfo::DimCoverage::kAnySubset;
    DescribeGridCuboids(fragments_->cuboids(), fragments_->grid(),
                        fragments_->block_size(), &info);
    info.fragment_groups = fragments_->groups();
    info.construction_pages = fragments_->construction_pages();
    return info;
  }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    auto r = fragments_->TopK(query, ctx.io, &out.stats);
    if (!r.ok()) return r.status();
    out.tuples = std::move(r).value();
    return out;
  }

 private:
  std::shared_ptr<const RankingFragments> fragments_;
  RankingFragments* mutable_fragments_;  ///< nullptr for read-only wrapping
};

class SignatureCubeEngine final : public RankingEngine {
 public:
  SignatureCubeEngine(const Table& table,
                      std::shared_ptr<const SignatureCube> c, bool lossy,
                      SignatureCube* mutable_cube = nullptr)
      : RankingEngine(lossy ? "signature_lossy" : "signature", &table),
        cube_(std::move(c)),
        mutable_cube_(mutable_cube),
        lossy_(lossy) {}

  size_t SizeBytes() const override {
    return cube_->CompressedBytes() + (lossy_ ? cube_->LossyBloomBytes() : 0);
  }

  uint64_t BuiltEpoch() const override { return cube_->built_epoch(); }
  bool SupportsMaintenance() const override {
    return mutable_cube_ != nullptr;
  }
  Status Maintain(IoSession* io) override {
    if (mutable_cube_ == nullptr) return RankingEngine::Maintain(io);
    return mutable_cube_->ApplyDelta(table().delta(), io);
  }

  AccessStructureInfo Describe() const override {
    AccessStructureInfo info = RankingEngine::Describe();
    // A conjunction needs an exact-match cell or per-dim atomic cuboids for
    // the online assembly of §4.3.3.
    info.coverage = AccessStructureInfo::DimCoverage::kAtomicAssembly;
    info.num_cuboids = static_cast<int>(cube_->cuboids().size());
    for (const auto& c : cube_->cuboids()) {
      info.covered_dim_sets.push_back(c.dims);
      info.cuboid_cells += c.sigs.size();
    }
    const RTree& rtree = cube_->rtree();
    info.tree_fanout = rtree.max_entries();
    info.tree_depth = rtree.depth();
    info.tree_leaves = rtree.num_leaves();
    return info;
  }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    auto r = lossy_ ? cube_->TopKLossy(query, ctx.io, &out.stats)
                    : cube_->TopK(query, ctx.io, &out.stats);
    if (!r.ok()) return r.status();
    out.tuples = std::move(r).value();
    return out;
  }

 private:
  std::shared_ptr<const SignatureCube> cube_;
  SignatureCube* mutable_cube_;  ///< nullptr for read-only wrapping
  bool lossy_;
};

class TableScanEngine final : public RankingEngine {
 public:
  explicit TableScanEngine(const Table& table)
      : RankingEngine("table_scan", &table) {}

  /// A scan reads the live table directly: always fresh, maintenance is a
  /// no-op.
  uint64_t BuiltEpoch() const override { return table().epoch(); }
  bool SupportsMaintenance() const override { return true; }
  Status Maintain(IoSession*) override { return Status::OK(); }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    auto r = TableScanTopK(table(), query, ctx.io, &out.stats);
    if (!r.ok()) return r.status();
    out.tuples = std::move(r).value();
    return out;
  }
};

class BooleanFirstEngine final : public RankingEngine {
 public:
  BooleanFirstEngine(const Table& table, std::shared_ptr<const BooleanFirst> b)
      : RankingEngine("boolean_first", &table), baseline_(std::move(b)) {}

  size_t SizeBytes() const override { return baseline_->IndexSizeBytes(); }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    auto r = baseline_->TopK(query, ctx.io, &out.stats);
    if (!r.ok()) return r.status();
    out.tuples = std::move(r).value();
    return out;
  }

 private:
  std::shared_ptr<const BooleanFirst> baseline_;
};

class RankingFirstEngine final : public RankingEngine {
 public:
  RankingFirstEngine(const Table& table, std::shared_ptr<const RTree> rtree,
                     RTree* mutable_rtree = nullptr)
      : RankingEngine("ranking_first", &table),
        rtree_(std::move(rtree)),
        mutable_rtree_(mutable_rtree),
        baseline_(table, rtree_.get()) {}

  size_t SizeBytes() const override { return rtree_->SizeBytes(); }

  bool SupportsMaintenance() const override {
    return mutable_rtree_ != nullptr;
  }
  /// The R-tree records no epoch of its own; the engine tracks it and
  /// delegates to the shared maintenance pass (no path tracking — nothing
  /// consumes the update sets here).
  Status Maintain(IoSession* io) override {
    if (mutable_rtree_ == nullptr) return RankingEngine::Maintain(io);
    uint64_t epoch = BuiltEpoch();
    ApplyRTreeDelta(mutable_rtree_, table(), table().delta(), &epoch,
                    /*updates=*/nullptr, io);
    set_built_epoch(epoch);
    return Status::OK();
  }

  AccessStructureInfo Describe() const override {
    AccessStructureInfo info = RankingEngine::Describe();
    // Predicates verified per candidate by random table access, so any
    // conjunction is answerable (at a per-candidate page cost).
    info.tree_fanout = rtree_->max_entries();
    info.tree_depth = rtree_->depth();
    info.tree_leaves = rtree_->num_leaves();
    return info;
  }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    auto r = baseline_.TopK(query, ctx.io, &out.stats);
    if (!r.ok()) return r.status();
    out.tuples = std::move(r).value();
    return out;
  }

 private:
  std::shared_ptr<const RTree> rtree_;
  RTree* mutable_rtree_;  ///< nullptr for read-only wrapping
  RankingFirst baseline_;
};

class RankMappingEngine final : public RankingEngine {
 public:
  RankMappingEngine(const Table& table, std::shared_ptr<const RankMapping> b)
      : RankingEngine("rank_mapping", &table), baseline_(std::move(b)) {}

  size_t SizeBytes() const override { return baseline_->IndexSizeBytes(); }

  AccessStructureInfo Describe() const override {
    AccessStructureInfo info = RankingEngine::Describe();
    // Runs on the exact k-th score from an in-memory oracle (§3.5.1); the
    // planner never auto-routes to a competitor fed oracle knowledge.
    info.needs_external_bound = true;
    return info;
  }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    auto r = baseline_->TopK(query, OptimalKthScore(query), ctx.io,
                             &out.stats);
    if (!r.ok()) return r.status();
    out.tuples = std::move(r).value();
    return out;
  }

 private:
  /// Optimal range-mapping bound from the in-memory oracle (no pages
  /// charged; the thesis concedes this competitor the exact k-th score,
  /// §3.5.1).
  double OptimalKthScore(const TopKQuery& query) const {
    auto oracle = BruteForceTopK(table(), query);
    return oracle.empty() ? 1e9 : oracle.back().score;
  }

  std::shared_ptr<const RankMapping> baseline_;
};

class IndexMergeEngine final : public RankingEngine {
 public:
  IndexMergeEngine(const Table& table, std::vector<const MergeIndex*> indices,
                   MergeOptions options, std::shared_ptr<const void> owned)
      : RankingEngine("index_merge", &table),
        indices_(std::move(indices)),
        options_(std::move(options)),
        owned_(std::move(owned)) {}

  /// Ch5's query model carries no boolean selections (§5.1.1).
  bool SupportsPredicates() const override { return false; }

  AccessStructureInfo Describe() const override {
    AccessStructureInfo info = RankingEngine::Describe();
    info.coverage = AccessStructureInfo::DimCoverage::kNone;
    info.num_cuboids = static_cast<int>(indices_.size());
    info.tree_fanout = indices_.empty() ? 0 : indices_.front()->fanout();
    return info;
  }

 protected:
  Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                 ExecContext& ctx) const override {
    TopKResult out;
    out.tuples = IndexMergeTopK(table(), indices_, query.function, query.k,
                                options_, ctx.io, &out.stats);
    return out;
  }

 private:
  std::vector<const MergeIndex*> indices_;
  MergeOptions options_;
  std::shared_ptr<const void> owned_;
};

}  // namespace

std::unique_ptr<RankingEngine> MakeGridCubeEngine(
    const Table& table, std::shared_ptr<const GridRankingCube> cube) {
  return std::make_unique<GridCubeEngine>(table, std::move(cube));
}

std::unique_ptr<RankingEngine> MakeGridCubeEngine(
    const Table& table, std::shared_ptr<GridRankingCube> cube) {
  GridRankingCube* mut = cube.get();
  return std::make_unique<GridCubeEngine>(table, std::move(cube), mut);
}

std::unique_ptr<RankingEngine> MakeFragmentsEngine(
    const Table& table, std::shared_ptr<const RankingFragments> fragments) {
  return std::make_unique<FragmentsEngine>(table, std::move(fragments));
}

std::unique_ptr<RankingEngine> MakeFragmentsEngine(
    const Table& table, std::shared_ptr<RankingFragments> fragments) {
  RankingFragments* mut = fragments.get();
  return std::make_unique<FragmentsEngine>(table, std::move(fragments), mut);
}

std::unique_ptr<RankingEngine> MakeSignatureCubeEngine(
    const Table& table, std::shared_ptr<const SignatureCube> cube,
    bool lossy) {
  return std::make_unique<SignatureCubeEngine>(table, std::move(cube), lossy);
}

std::unique_ptr<RankingEngine> MakeSignatureCubeEngine(
    const Table& table, std::shared_ptr<SignatureCube> cube, bool lossy) {
  SignatureCube* mut = cube.get();
  return std::make_unique<SignatureCubeEngine>(table, std::move(cube), lossy,
                                               mut);
}

std::unique_ptr<RankingEngine> MakeTableScanEngine(const Table& table) {
  return std::make_unique<TableScanEngine>(table);
}

std::unique_ptr<RankingEngine> MakeBooleanFirstEngine(
    const Table& table, std::shared_ptr<const BooleanFirst> baseline) {
  return std::make_unique<BooleanFirstEngine>(table, std::move(baseline));
}

std::unique_ptr<RankingEngine> MakeRankingFirstEngine(
    const Table& table, std::shared_ptr<const RTree> rtree) {
  return std::make_unique<RankingFirstEngine>(table, std::move(rtree));
}

std::unique_ptr<RankingEngine> MakeRankingFirstEngine(
    const Table& table, std::shared_ptr<RTree> rtree) {
  RTree* mut = rtree.get();
  return std::make_unique<RankingFirstEngine>(table, std::move(rtree), mut);
}

std::unique_ptr<RankingEngine> MakeRankMappingEngine(
    const Table& table, std::shared_ptr<const RankMapping> baseline) {
  return std::make_unique<RankMappingEngine>(table, std::move(baseline));
}

std::unique_ptr<RankingEngine> MakeIndexMergeEngine(
    const Table& table, std::vector<const MergeIndex*> indices,
    MergeOptions options, std::shared_ptr<const void> owned) {
  return std::make_unique<IndexMergeEngine>(table, std::move(indices),
                                            std::move(options),
                                            std::move(owned));
}

}  // namespace rankcube
