// Fluent construction of TopKQuery values:
//   TopKQuery q = QueryBuilder()
//                     .Where(0, red).Where(2, sedan)
//                     .OrderByLinear({1.0, 2.0})
//                     .Limit(10)
//                     .Build();
// Build() only assembles the struct; validation happens inside
// RankingEngine::Execute via ValidateQuery, so a malformed build fails with
// the same Status an engine would report for a hand-rolled query.
// Front-ends that want to reject malformed input *before* paying planning
// cost use BuildValidated(schema), which runs the same ValidateQuery up
// front and hands back Result<TopKQuery>.
#ifndef RANKCUBE_ENGINE_QUERY_BUILDER_H_
#define RANKCUBE_ENGINE_QUERY_BUILDER_H_

#include <memory>
#include <utility>
#include <vector>

#include <string>

#include "func/query.h"
#include "func/score_expr.h"

namespace rankcube {

class QueryBuilder {
 public:
  /// Adds the conjunctive equality selection `A<dim> = value`.
  QueryBuilder& Where(int dim, int32_t value) {
    query_.predicates.push_back({dim, value});
    return *this;
  }

  /// Sets the ranking function (smaller scores rank higher).
  QueryBuilder& OrderBy(RankingFunctionPtr function) {
    query_.function = std::move(function);
    return *this;
  }

  /// order by sum_i weights[i] * N_i (one weight per ranking dimension;
  /// zero = uninvolved).
  QueryBuilder& OrderByLinear(std::vector<double> weights) {
    return OrderBy(std::make_shared<LinearFunction>(std::move(weights)));
  }

  /// order by weighted squared distance to `targets` (the nearest-neighbor
  /// query shape, Q2 of Example 1).
  QueryBuilder& OrderByDistance(std::vector<double> weights,
                                std::vector<double> targets) {
    return OrderBy(std::make_shared<QuadraticDistance>(std::move(weights),
                                                       std::move(targets)));
  }

  /// order by sum_i weights[i] * |N_i - targets[i]| : the L1 variant of
  /// OrderByDistance (one weight/target per ranking dimension; zero weight
  /// = uninvolved).
  QueryBuilder& OrderByL1(std::vector<double> weights,
                          std::vector<double> targets) {
    return OrderBy(std::make_shared<L1Distance>(std::move(weights),
                                                std::move(targets)));
  }

  /// order by a user-defined monotone combination built from the ScoreExpr
  /// algebra (score_expr.h): any tree over Const/Var/Add/Mul/Sub/Abs/
  /// Square/Gate. `num_dims` is R, the table's ranking-dimension count.
  /// Trees matching a built-in shape (linear, quadratic, ...) execute
  /// through the same fused kernels as the native classes — bit-identical
  /// scores; anything else runs through the generic tree evaluator with
  /// interval-arithmetic lower bounds.
  QueryBuilder& OrderByExpr(int num_dims, ScoreExprPtr expr,
                            std::string name = "") {
    return OrderBy(std::make_shared<ExprFunction>(num_dims, std::move(expr),
                                                  std::move(name)));
  }

  QueryBuilder& Limit(int k) {
    query_.k = k;
    return *this;
  }

  /// The assembled query; the builder can keep being amended and rebuilt.
  TopKQuery Build() const { return query_; }

  /// The assembled query, validated against `schema` (same ValidateQuery
  /// every engine applies): a malformed query comes back as the identical
  /// InvalidArgument Status, but before any planning or execution cost.
  Result<TopKQuery> BuildValidated(const TableSchema& schema) const {
    RC_RETURN_IF_ERROR(ValidateQuery(query_, schema));
    return query_;
  }

 private:
  TopKQuery query_;
};

}  // namespace rankcube

#endif  // RANKCUBE_ENGINE_QUERY_BUILDER_H_
