// The unified top-k execution interface (§1.2.1's query model as an API).
//
// The thesis's central claim is that ranking cubes, fragments, signature
// cubes and the comparator baselines are interchangeable executors of the
// same multi-dimensionally selected top-k query. This layer makes that
// interchangeability literal: every engine is a RankingEngine answering
//   Result<TopKResult> Execute(const TopKQuery&, ExecContext&)
// and nothing else. Engines are obtained from EngineRegistry (registry.h),
// queries are assembled with QueryBuilder (query_builder.h), and workloads
// run through BatchExecutor (batch_executor.h).
#ifndef RANKCUBE_ENGINE_ENGINE_H_
#define RANKCUBE_ENGINE_ENGINE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/topk_query.h"
#include "engine/structure_info.h"
#include "func/query.h"
#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {

/// Per-query execution environment: the I/O session every page access is
/// charged to (one session per query or worker thread — never shared
/// across threads), an optional I/O budget, and an optional trace hook.
struct ExecContext {
  IoSession* io = nullptr;

  /// Physical pages one query may read; 0 = unlimited. Exceeding the budget
  /// fails the query with Status::OutOfRange (the result is discarded), the
  /// admission-control contract a serving layer needs.
  uint64_t page_budget = 0;

  /// Wall-clock deadline; default-constructed = none. Checked in the same
  /// place as page_budget: a query already past its deadline is rejected
  /// before doing any work, and one that finishes past it fails with
  /// Status::DeadlineExceeded (distinct from the budget's OutOfRange, so a
  /// serving layer can tell "too slow" from "too expensive"). The result of
  /// an overrunning query is discarded, exactly like a budget overrun.
  std::chrono::steady_clock::time_point deadline{};

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }
  bool deadline_passed() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }

  /// Trace hook; receives one line per execution phase when set.
  std::function<void(const std::string&)> trace;

  void Trace(const std::string& line) const {
    if (trace) trace(line);
  }
};

/// What an engine returns: the ranked tuples plus the execution counters the
/// benchmarks report (time, page accesses, states, peak heap, ...).
struct TopKResult {
  std::vector<ScoredTuple> tuples;
  ExecStats stats;
  /// The planner's decision when this execution was planner-routed
  /// (RankCubeDb / router-mode BatchExecutor); null for direct
  /// RankingEngine::Execute calls.
  std::shared_ptr<const PlanInfo> plan;
};

/// How far an engine's structures lag behind the table's mutation log.
struct FreshnessInfo {
  uint64_t built_epoch = 0;  ///< epoch the structures reflect
  uint64_t table_epoch = 0;  ///< the table's current epoch
  uint64_t pending_inserts = 0;  ///< appended rows the structures miss
  uint64_t pending_deletes = 0;  ///< tombstones the structures still carry

  bool fresh() const { return built_epoch >= table_epoch; }
};

/// Polymorphic top-k engine. Subclasses implement ExecuteImpl; the
/// non-virtual Execute wraps it with the shared contract:
///  1. the query is validated (ValidateQuery) against the engine's table,
///  2. engines that cannot evaluate boolean predicates reject them,
///  3. when the engine's structures are stale (the table mutated after they
///     were built/maintained), the result is made exact by a delta overlay:
///     the structure answers top-(k + pending deletes) over its own epoch,
///     tombstoned tuples are filtered, and the appended rows are scanned
///     exactly (batch-scored, heap tail pages charged) and merged in,
///  4. physical page reads are metered against ctx.page_budget,
///  5. begin/end trace lines are emitted when ctx.trace is set.
///
/// Maintenance is explicit and never concurrent with queries: Maintain()
/// mutates the underlying structures, so callers (RankCubeDb::Compact,
/// BatchExecutor between batches) must hold exclusive access.
class RankingEngine {
 public:
  /// Captures the table's current epoch as the default built_epoch — every
  /// factory constructs the engine right after its structures.
  RankingEngine(std::string name, const Table* table)
      : name_(std::move(name)),
        table_(table),
        built_epoch_(table->epoch()) {}
  virtual ~RankingEngine() = default;

  /// Registry key this engine was created under ("grid", "table_scan", ...).
  const std::string& name() const { return name_; }
  const Table& table() const { return *table_; }

  /// False for engines whose query model has no boolean selections
  /// (Ch5 index-merge); Execute rejects predicated queries up front.
  virtual bool SupportsPredicates() const { return true; }

  /// Bytes of auxiliary structures (cuboids, signatures, indices) this
  /// engine queries; 0 for scan-only engines. Drives the space figures.
  virtual size_t SizeBytes() const { return 0; }

  /// Exact self-description for the planner's catalog: capabilities plus
  /// the statistics the cost model reads (structure_info.h). The base
  /// implementation fills the fields every engine shares (name, predicate
  /// support, size, built = true, built_epoch); engines with
  /// structure-specific stats (grid geometry, cuboid cells, tree shape)
  /// extend it.
  virtual AccessStructureInfo Describe() const;

  /// Table epoch this engine's structures reflect. Engines wrapping an
  /// epoch-tracking structure return the structure's; scan engines return
  /// the current epoch (a scan is always fresh); the default is the epoch
  /// captured at engine construction.
  virtual uint64_t BuiltEpoch() const { return built_epoch_; }

  /// Staleness report against the table's delta store.
  FreshnessInfo Freshness() const;

  /// True when Maintain() incrementally absorbs deltas (grid, fragments,
  /// signature, R-tree engines). Engines without an incremental path stay
  /// correct through the Execute overlay and are rebuilt at compaction.
  virtual bool SupportsMaintenance() const { return false; }

  /// Incrementally absorbs the mutations after BuiltEpoch(), charging
  /// maintenance I/O to `io`. Default: NotSupported. Not thread-safe with
  /// respect to concurrent Execute calls — see the class comment.
  virtual Status Maintain(IoSession* io);

  /// Answers `query` inside `ctx`. Never throws; all failure modes —
  /// malformed query, missing cuboid, exhausted budget — come back as a
  /// non-ok Status, identically across engines. Results are fresh even
  /// when the structures are stale (delta overlay, see class comment).
  Result<TopKResult> Execute(const TopKQuery& query, ExecContext& ctx) const;

 protected:
  virtual Result<TopKResult> ExecuteImpl(const TopKQuery& query,
                                         ExecContext& ctx) const = 0;

  /// For engines that track their own epoch (e.g. after maintaining a
  /// wrapped index that does not record one).
  void set_built_epoch(uint64_t epoch) { built_epoch_ = epoch; }

 private:
  /// Runs ExecuteImpl for a stale engine and overlays the delta: filter
  /// tombstones out of the (k + D)-deep structure answer, scan + score the
  /// appended rows, merge. Exact for every engine because each engine is
  /// exact over its own epoch's content at any k.
  Result<TopKResult> ExecuteWithOverlay(const TopKQuery& query,
                                        ExecContext& ctx) const;

  std::string name_;
  const Table* table_;
  uint64_t built_epoch_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_ENGINE_ENGINE_H_
