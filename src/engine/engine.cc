#include "engine/engine.h"

namespace rankcube {

AccessStructureInfo RankingEngine::Describe() const {
  AccessStructureInfo info;
  info.engine = name_;
  info.supports_predicates = SupportsPredicates();
  info.size_bytes = SizeBytes();
  info.built = true;
  return info;
}

Result<TopKResult> RankingEngine::Execute(const TopKQuery& query,
                                          ExecContext& ctx) const {
  if (ctx.io == nullptr) {
    return Status::InvalidArgument("ExecContext has no I/O session");
  }
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_->schema()));
  if (!SupportsPredicates() && !query.predicates.empty()) {
    return Status::NotSupported("engine '" + name_ +
                                "' does not evaluate boolean predicates");
  }
  ctx.Trace(name_ + ": " + query.ToString());

  uint64_t before = ctx.io->TotalPhysical();
  Result<TopKResult> result = ExecuteImpl(query, ctx);
  uint64_t physical = ctx.io->TotalPhysical() - before;

  if (!result.ok()) {
    // The engine's own failure outranks a budget overrun: an admission
    // layer must not retry-with-larger-budget a query that cannot succeed.
    ctx.Trace(name_ + ": error: " + result.status().ToString());
    return result;
  }
  if (ctx.page_budget > 0 && physical > ctx.page_budget) {
    return Status::OutOfRange("engine '" + name_ + "' read " +
                              std::to_string(physical) +
                              " pages, budget was " +
                              std::to_string(ctx.page_budget));
  }
  ctx.Trace(name_ + ": " + std::to_string(result.value().tuples.size()) +
            " tuples, " + std::to_string(physical) + " pages");
  return result;
}

}  // namespace rankcube
