#include "engine/engine.h"

#include "common/stopwatch.h"
#include "func/kernels/kernels.h"

namespace rankcube {

AccessStructureInfo RankingEngine::Describe() const {
  AccessStructureInfo info;
  info.engine = name_;
  info.supports_predicates = SupportsPredicates();
  info.size_bytes = SizeBytes();
  info.built = true;
  info.built_epoch = BuiltEpoch();
  return info;
}

FreshnessInfo RankingEngine::Freshness() const {
  const DeltaStore& delta = table_->delta();
  FreshnessInfo f;
  f.built_epoch = BuiltEpoch();
  f.table_epoch = delta.epoch();
  if (f.built_epoch < f.table_epoch) {
    f.pending_inserts = delta.InsertsSince(f.built_epoch);
    f.pending_deletes = delta.DeletesSince(f.built_epoch);
  }
  return f;
}

Status RankingEngine::Maintain(IoSession* io) {
  (void)io;
  return Status::NotSupported("engine '" + name_ +
                              "' has no incremental maintenance; rebuild at "
                              "compaction");
}

Result<TopKResult> RankingEngine::ExecuteWithOverlay(const TopKQuery& query,
                                                     ExecContext& ctx) const {
  const DeltaStore& delta = table_->delta();
  std::vector<Tid> inserted, deleted;
  delta.ChangesSince(BuiltEpoch(), &inserted, &deleted);
  ctx.Trace(name_ + ": stale (built_epoch=" + std::to_string(BuiltEpoch()) +
            ", table_epoch=" + std::to_string(delta.epoch()) + "), overlay " +
            std::to_string(inserted.size()) + " inserts / " +
            std::to_string(deleted.size()) + " deletes");

  // The structure answers over its own epoch's content. Of its top-(k + D)
  // at most D tuples can be tombstoned, so the surviving top-k is exactly
  // the live top-k of the structure's epoch. D counts only deletes of rows
  // the structure may hold: a row born and deleted inside the suffix (tid
  // at or past the first appended tid) never reached it, and must not
  // deepen the search.
  size_t ephemeral = 0;
  if (!inserted.empty()) {
    for (Tid t : deleted) ephemeral += t >= inserted.front() ? 1 : 0;
  }
  TopKQuery inner = query;
  inner.k = query.k + static_cast<int>(deleted.size() - ephemeral);
  Result<TopKResult> result = ExecuteImpl(inner, ctx);
  if (!result.ok()) return result;

  Stopwatch watch;
  uint64_t pages_before = ctx.io->TotalPhysical();
  TopKHeap topk(query.k);
  for (const ScoredTuple& st : result.value().tuples) {
    if (table_->is_live(st.tid)) topk.Offer(st.tid, st.score);
  }

  // Exact delta scan: the appended rows form the heap tail, read
  // sequentially (charged), filtered by predicates + liveness, and scored
  // through the same fused path every engine uses. Tuples a constrained
  // function excludes score +inf and are compacted out (drop_inf), matching
  // the oracle.
  if (!inserted.empty()) {
    table_->ChargeTailScan(ctx.io, inserted.front());
    kernels::FusedScorer scorer(*table_, *query.function, query.predicates,
                                &topk, &result.value().stats,
                                {.drop_inf = true});
    for (Tid t : inserted) {
      if (table_->is_live(t)) scorer.Add(t);
    }
    scorer.Flush();
  }

  result.value().tuples = topk.Sorted();
  result.value().stats.pages_read += ctx.io->TotalPhysical() - pages_before;
  result.value().stats.time_ms += watch.ElapsedMs();
  return result;
}

Result<TopKResult> RankingEngine::Execute(const TopKQuery& query,
                                          ExecContext& ctx) const {
  if (ctx.io == nullptr) {
    return Status::InvalidArgument("ExecContext has no I/O session");
  }
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_->schema()));
  if (!SupportsPredicates() && !query.predicates.empty()) {
    return Status::NotSupported("engine '" + name_ +
                                "' does not evaluate boolean predicates");
  }
  if (ctx.deadline_passed()) {
    // Rejected before any page is read: a queued query whose deadline
    // lapsed must not consume I/O it can no longer answer in time.
    return Status::DeadlineExceeded("engine '" + name_ +
                                    "' not started: deadline already passed");
  }
  ctx.Trace(name_ + ": " + query.ToString());

  uint64_t before = ctx.io->TotalPhysical();
  Result<TopKResult> result = BuiltEpoch() >= table_->epoch()
                                  ? ExecuteImpl(query, ctx)
                                  : ExecuteWithOverlay(query, ctx);
  uint64_t physical = ctx.io->TotalPhysical() - before;

  if (!result.ok()) {
    // The engine's own failure outranks a budget overrun: an admission
    // layer must not retry-with-larger-budget a query that cannot succeed.
    ctx.Trace(name_ + ": error: " + result.status().ToString());
    return result;
  }
  if (ctx.deadline_passed()) {
    // Checked before the budget: a query that overran both is reported as
    // too slow — the verdict the caller observed first.
    return Status::DeadlineExceeded("engine '" + name_ +
                                    "' finished past the deadline (read " +
                                    std::to_string(physical) + " pages)");
  }
  if (ctx.page_budget > 0 && physical > ctx.page_budget) {
    return Status::OutOfRange("engine '" + name_ + "' read " +
                              std::to_string(physical) +
                              " pages, budget was " +
                              std::to_string(ctx.page_budget));
  }
  ctx.Trace(name_ + ": " + std::to_string(result.value().tuples.size()) +
            " tuples, " + std::to_string(physical) + " pages");
  return result;
}

}  // namespace rankcube
