#include "engine/registry.h"

#include <cassert>
#include <utility>

#include "engine/builtin_engines.h"
#include "index/btree.h"
#include "merge/join_signature.h"
#include "merge/merge_index.h"

namespace rankcube {
namespace {

/// Everything a from-scratch index_merge engine must keep alive.
struct MergeBundle {
  std::vector<std::unique_ptr<BTree>> btrees;
  std::vector<std::unique_ptr<MergeIndex>> indices;
  std::unique_ptr<JoinSignature> signature;
};

Result<std::unique_ptr<RankingEngine>> BuildIndexMerge(
    const Table& table, IoSession& io, const EngineBuildOptions& opts) {
  if (table.num_rank_dims() < 1) {
    return Status::InvalidArgument("index_merge needs ranking dimensions");
  }
  auto bundle = std::make_shared<MergeBundle>();
  std::vector<const MergeIndex*> raw;
  for (int d = 0; d < table.num_rank_dims(); ++d) {
    bundle->btrees.push_back(std::make_unique<BTree>(
        table, d, io, BTreeOptions{.fanout = opts.merge_btree_fanout}));
    bundle->indices.push_back(
        std::make_unique<BTreeMergeIndex>(bundle->btrees.back().get(), d));
    raw.push_back(bundle->indices.back().get());
  }
  MergeOptions merge;
  merge.mode = opts.merge_mode;
  if (opts.merge_join_signature) {
    bundle->signature = std::make_unique<JoinSignature>(raw);
    merge.signatures = {bundle->signature.get()};
    std::vector<int> all_positions;
    for (size_t i = 0; i < raw.size(); ++i) {
      all_positions.push_back(static_cast<int>(i));
    }
    merge.signature_positions = {all_positions};
  }
  return MakeIndexMergeEngine(table, std::move(raw), std::move(merge),
                              std::move(bundle));
}

void RegisterBuiltins(EngineRegistry* registry) {
  auto must = [registry](const std::string& name, EngineFactory factory) {
    Status s = registry->Register(name, std::move(factory));
    (void)s;
    assert(s.ok());
  };

  must("grid", [](const Table& table, IoSession& io,
                  const EngineBuildOptions& opts)
           -> Result<std::unique_ptr<RankingEngine>> {
    return MakeGridCubeEngine(
        table, std::make_shared<GridRankingCube>(table, io, opts.grid));
  });

  must("fragments", [](const Table& table, IoSession& io,
                       const EngineBuildOptions& opts)
           -> Result<std::unique_ptr<RankingEngine>> {
    return MakeFragmentsEngine(
        table,
        std::make_shared<RankingFragments>(table, io, opts.fragments));
  });

  must("signature", [](const Table& table, IoSession& io,
                       const EngineBuildOptions& opts)
           -> Result<std::unique_ptr<RankingEngine>> {
    return MakeSignatureCubeEngine(
        table, std::make_shared<SignatureCube>(table, io, opts.signature),
        /*lossy=*/false);
  });

  must("signature_lossy", [](const Table& table, IoSession& io,
                             const EngineBuildOptions& opts)
           -> Result<std::unique_ptr<RankingEngine>> {
    SignatureCubeOptions sig = opts.signature;
    sig.lossy_bloom = true;
    return MakeSignatureCubeEngine(
        table, std::make_shared<SignatureCube>(table, io, sig),
        /*lossy=*/true);
  });

  must("table_scan", [](const Table& table, IoSession&,
                        const EngineBuildOptions&)
           -> Result<std::unique_ptr<RankingEngine>> {
    return MakeTableScanEngine(table);
  });

  must("boolean_first", [](const Table& table, IoSession&,
                           const EngineBuildOptions&)
           -> Result<std::unique_ptr<RankingEngine>> {
    return MakeBooleanFirstEngine(table, std::make_shared<BooleanFirst>(table));
  });

  must("ranking_first", [](const Table& table, IoSession& io,
                           const EngineBuildOptions&)
           -> Result<std::unique_ptr<RankingEngine>> {
    if (table.num_rank_dims() < 1) {
      return Status::InvalidArgument("ranking_first needs ranking dimensions");
    }
    auto rtree = std::make_shared<RTree>(table.num_rank_dims(), io);
    rtree->BulkLoadSTR(table);
    rtree->ChargeBuild(table, io);
    return MakeRankingFirstEngine(table, std::move(rtree));
  });

  must("rank_mapping", [](const Table& table, IoSession&,
                          const EngineBuildOptions& opts)
           -> Result<std::unique_ptr<RankingEngine>> {
    std::vector<std::vector<int>> groups = opts.rank_mapping_groups;
    if (groups.empty()) {
      groups.emplace_back();
      for (int d = 0; d < table.num_sel_dims(); ++d) groups[0].push_back(d);
    }
    return MakeRankMappingEngine(table,
                                 std::make_shared<RankMapping>(table, groups));
  });

  must("index_merge", BuildIndexMerge);
}

}  // namespace

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* instance = [] {
    auto* r = new EngineRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *instance;
}

Status EngineRegistry::Register(const std::string& name,
                                EngineFactory factory) {
  if (name.empty() || !factory) {
    return Status::InvalidArgument("engine registration needs name + factory");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    return Status::InvalidArgument("engine '" + name + "' already registered");
  }
  return Status::OK();
}

bool EngineRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) > 0;
}

std::vector<std::string> EngineRegistry::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

Result<std::unique_ptr<RankingEngine>> EngineRegistry::Create(
    const std::string& name, const Table& table, IoSession& io,
    const EngineBuildOptions& options) const {
  EngineFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      // List what *is* registered: lookups are often composed
      // programmatically (planner catalogs, --engines flags), where "which
      // keys exist" is exactly the question the caller needs answered.
      std::string keys;
      for (const auto& [key, unused] : factories_) {
        (void)unused;
        if (!keys.empty()) keys += ", ";
        keys += key;
      }
      return Status::NotFound("no engine registered under '" + name +
                              "'; registered engines: " + keys);
    }
    factory = it->second;
  }
  return factory(table, io, options);
}

}  // namespace rankcube
