// String-keyed engine factory registry. Built-in keys:
//   "grid"            Ch3 grid ranking cube
//   "fragments"       Ch3 ranking fragments (semi-materialization)
//   "signature"       Ch4 signature cube
//   "signature_lossy" Ch4 signature cube through §4.5 bloom signatures
//   "table_scan"      sequential-scan oracle (TS)
//   "boolean_first"   index-selection-then-rank baseline
//   "ranking_first"   R-tree branch-and-bound + post-hoc verification
//   "rank_mapping"    range-mapping competitor [14], fed optimal bounds
//   "index_merge"     Ch5 progressive index-merge (no boolean predicates)
// Additional engines (future backends, remote shards) register under new
// keys; Create() hands back a RankingEngine and callers never learn the
// concrete type.
#ifndef RANKCUBE_ENGINE_REGISTRY_H_
#define RANKCUBE_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/grid_cube.h"
#include "core/ranking_fragments.h"
#include "core/signature_cube.h"
#include "engine/engine.h"
#include "merge/index_merge.h"

namespace rankcube {

/// Per-family construction knobs consumed by the built-in factories; a
/// factory reads only its own member, so one options value can configure a
/// whole fleet of engines over the same table.
struct EngineBuildOptions {
  GridCubeOptions grid;
  FragmentsOptions fragments;
  SignatureCubeOptions signature;  ///< lossy_bloom forced on for *_lossy

  /// Composite-index groups for rank_mapping; empty = one group spanning
  /// every selection dimension (§3.5.2).
  std::vector<std::vector<int>> rank_mapping_groups;

  MergeOptions::Mode merge_mode = MergeOptions::Mode::kProgressive;
  bool merge_join_signature = true;  ///< build + use one full join-signature
  int merge_btree_fanout = 0;        ///< 0 = derive from page size
};

using EngineFactory = std::function<Result<std::unique_ptr<RankingEngine>>(
    const Table&, IoSession&, const EngineBuildOptions&)>;

class EngineRegistry {
 public:
  /// Process-wide registry, pre-populated with the built-in engines.
  static EngineRegistry& Global();

  /// Registers a factory; fails with InvalidArgument on duplicate keys.
  Status Register(const std::string& name, EngineFactory factory);

  bool Contains(const std::string& name) const;

  /// Registered keys, sorted — the supported way to enumerate candidate
  /// engines (callers should never probe Create() for NotFound).
  std::vector<std::string> Keys() const;
  /// Alias of Keys(), kept for existing call sites.
  std::vector<std::string> Names() const { return Keys(); }

  /// Builds the engine `name` over `table`. `io` is the construction
  /// session: factories read page geometry from it and charge build-time
  /// I/O to it (grid/fragments report construction_pages from exactly
  /// these charges).
  Result<std::unique_ptr<RankingEngine>> Create(
      const std::string& name, const Table& table, IoSession& io,
      const EngineBuildOptions& options = EngineBuildOptions()) const;

 private:
  EngineRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, EngineFactory> factories_;
};

}  // namespace rankcube

#endif  // RANKCUBE_ENGINE_REGISTRY_H_
