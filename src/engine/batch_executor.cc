#include "engine/batch_executor.h"

#include <atomic>
#include <optional>
#include <thread>
#include <utility>

#include "common/stopwatch.h"

namespace rankcube {

namespace {

/// Everything one finished query contributes to the report; filled into a
/// per-query slot so merging is deterministic in workload order.
struct QuerySlot {
  bool executed = false;
  Status status;
  std::optional<TopKResult> result;  ///< set on success (moved into report
                                     ///< when keep_results)
  ExecStats stats;                   ///< copy kept even when result dropped
};

}  // namespace

Result<TopKResult> BatchExecutor::ExecuteOne(const TopKQuery& query,
                                             ExecContext& ctx) const {
  if (executor_) return executor_(query, ctx);
  if (router_) {
    Result<RoutedEngine> routed = router_(query);
    if (!routed.ok()) return routed.status();
    if (routed.value().engine == nullptr) {
      return Status::InvalidArgument("router returned no engine");
    }
    Result<TopKResult> r = routed.value().engine->Execute(query, ctx);
    if (r.ok()) r.value().plan = routed.value().plan;
    return r;
  }
  return engine_->Execute(query, ctx);
}

Status BatchExecutor::MaintainIfRequested(IoSession* io,
                                          uint64_t* pages) const {
  if (!options_.auto_maintain || maintain_target_ == nullptr ||
      !maintain_target_->SupportsMaintenance() ||
      maintain_target_->Freshness().fresh()) {
    return Status::OK();
  }
  uint64_t before = io->TotalPhysical();
  RC_RETURN_IF_ERROR(maintain_target_->Maintain(io));
  *pages += io->TotalPhysical() - before;
  return Status::OK();
}

Result<BatchReport> BatchExecutor::Run(const std::vector<TopKQuery>& workload,
                                       ExecContext& ctx) const {
  if (engine_ == nullptr && !router_ && !executor_) {
    return Status::InvalidArgument("BatchExecutor has no engine or router");
  }
  if (ctx.io == nullptr) {
    return Status::InvalidArgument("ExecContext has no I/O session");
  }
  Stopwatch wall;
  BatchReport report;
  report.num_queries = workload.size();
  RC_RETURN_IF_ERROR(MaintainIfRequested(ctx.io, &report.maintenance_pages));
  uint64_t before = ctx.io->TotalPhysical();
  uint64_t device_before = ctx.io->TotalDevice();
  for (const TopKQuery& query : workload) {
    Result<TopKResult> r = ExecuteOne(query, ctx);
    ++report.executed;
    if (!r.ok()) {
      if (report.failed == 0) report.first_error = r.status();
      ++report.failed;
      if (options_.stop_on_error) break;
      continue;
    }
    report.total += r.value().stats;
    if (options_.record_latencies) {
      report.latencies_ms.push_back(r.value().stats.time_ms);
    }
    if (options_.keep_results) {
      report.results.push_back(std::move(r).value());
    }
  }
  report.physical_pages = ctx.io->TotalPhysical() - before;
  report.device_pages = ctx.io->TotalDevice() - device_before;
  report.wall_ms = wall.ElapsedMs();
  return report;
}

Result<BatchReport> BatchExecutor::ExecuteAll(
    const std::vector<TopKQuery>& workload, const PageStore& store) const {
  return ExecuteParallel(workload, store, 1);
}

Result<BatchReport> BatchExecutor::ExecuteParallel(
    const std::vector<TopKQuery>& workload, const PageStore& store,
    int num_threads) const {
  if (engine_ == nullptr && !router_ && !executor_) {
    return Status::InvalidArgument("BatchExecutor has no engine or router");
  }
  const size_t n = workload.size();
  size_t workers = num_threads > 1 ? static_cast<size_t>(num_threads) : 1;
  if (workers > n && n > 0) workers = n;

  Stopwatch wall;
  uint64_t maintenance_pages = 0;
  {
    // Maintenance runs on the calling thread before any worker spawns —
    // the only point of the batch with exclusive access to the engine.
    IoSession maintain_io(&store);
    Status maintained = MaintainIfRequested(&maintain_io, &maintenance_pages);
    if (!maintained.ok()) return maintained;
  }
  std::vector<QuerySlot> slots(n);
  std::vector<IoSession> sessions(workers, IoSession(&store));
  std::atomic<size_t> cursor{0};
  std::atomic<bool> abort{false};

  auto worker_loop = [&](size_t w) {
    // One fresh session per query (budgets and counters are query-local),
    // accumulated into the worker's session after each query; nothing here
    // is shared mutably across threads except the store's internally
    // locked cache.
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (abort.load(std::memory_order_relaxed)) break;
      QuerySlot& slot = slots[i];
      IoSession io(&store);
      ExecContext ctx;
      ctx.io = &io;
      ctx.page_budget = options_.page_budget;
      if (options_.deadline_ms > 0) {
        ctx.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.deadline_ms);
      }
      Result<TopKResult> r = ExecuteOne(workload[i], ctx);
      sessions[w].MergeFrom(io);
      slot.executed = true;
      if (r.ok()) {
        slot.stats = r.value().stats;
        slot.result = std::move(r).value();
      } else {
        slot.status = r.status();
        if (options_.stop_on_error) {
          abort.store(true, std::memory_order_relaxed);
        }
      }
    }
  };

  if (workers <= 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) threads.emplace_back(worker_loop, w);
    for (auto& t : threads) t.join();
  }

  // Deterministic merge in workload order, on the calling thread after the
  // join (which orders every worker's writes before these reads).
  BatchReport report;
  report.num_queries = n;
  report.maintenance_pages = maintenance_pages;
  for (QuerySlot& slot : slots) {
    if (!slot.executed) continue;
    ++report.executed;
    if (!slot.result.has_value()) {
      if (report.failed == 0) report.first_error = slot.status;
      ++report.failed;
      continue;
    }
    report.total += slot.stats;
    if (options_.record_latencies) {
      report.latencies_ms.push_back(slot.stats.time_ms);
    }
    if (options_.keep_results) {
      report.results.push_back(std::move(*slot.result));
    }
  }
  for (const IoSession& io : sessions) {
    report.physical_pages += io.TotalPhysical();
    report.device_pages += io.TotalDevice();
    for (int c = 0; c < static_cast<int>(IoCategory::kNumCategories); ++c) {
      report.io[c] += io.stats(static_cast<IoCategory>(c));
    }
  }
  report.wall_ms = wall.ElapsedMs();
  return report;
}

}  // namespace rankcube
