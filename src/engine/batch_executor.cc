#include "engine/batch_executor.h"

namespace rankcube {

Result<BatchReport> BatchExecutor::Run(const std::vector<TopKQuery>& workload,
                                       ExecContext& ctx) const {
  if (engine_ == nullptr) {
    return Status::InvalidArgument("BatchExecutor has no engine");
  }
  if (ctx.pager == nullptr) {
    return Status::InvalidArgument("ExecContext has no pager");
  }
  BatchReport report;
  report.num_queries = workload.size();
  uint64_t before = ctx.pager->TotalPhysical();
  for (const TopKQuery& query : workload) {
    Result<TopKResult> r = engine_->Execute(query, ctx);
    ++report.executed;
    if (!r.ok()) {
      if (report.failed == 0) report.first_error = r.status();
      ++report.failed;
      if (options_.stop_on_error) break;
      continue;
    }
    report.total += r.value().stats;
    if (options_.keep_results) {
      report.results.push_back(std::move(r).value());
    }
  }
  report.physical_pages = ctx.pager->TotalPhysical() - before;
  return report;
}

}  // namespace rankcube
