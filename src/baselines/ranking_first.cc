#include "baselines/baselines.h"

namespace rankcube {

namespace {

/// Verifies boolean predicates by fetching the tuple from the base table
/// (random access, charged), exactly the "Ranking" configuration of §4.4.1.
class TableVerifyPruner : public BooleanPruner {
 public:
  TableVerifyPruner(const Table& table, const std::vector<Predicate>& preds)
      : table_(table), preds_(preds) {}

  bool MayContain(const std::vector<int>&, IoSession*, ExecStats*) override {
    return true;  // no pre-computed boolean knowledge
  }

  bool Qualifies(Tid tid, const std::vector<int>&, IoSession* io,
                 ExecStats*) override {
    table_.ChargeRowFetch(io, tid);
    for (const auto& p : preds_) {
      if (table_.sel(tid, p.dim) != p.value) return false;
    }
    return true;
  }

 private:
  const Table& table_;
  const std::vector<Predicate>& preds_;
};

}  // namespace

Result<std::vector<ScoredTuple>> RankingFirst::TopK(const TopKQuery& query,
                                                    IoSession* io,
                                                    ExecStats* stats) const {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
  TableVerifyPruner pruner(table_, query.predicates);
  return RTreeBranchAndBoundTopK(table_, *rtree_, query, &pruner, io, stats);
}

}  // namespace rankcube
