#include <algorithm>

#include "baselines/baselines.h"
#include "common/stopwatch.h"
#include "func/kernels/kernels.h"

namespace rankcube {

BooleanFirst::BooleanFirst(const Table& table)
    : table_(table),
      built_rows_(static_cast<Tid>(table.num_rows())),
      posting_(table) {}

Result<std::vector<ScoredTuple>> BooleanFirst::TopK(const TopKQuery& query,
                                                    IoSession* io,
                                                    ExecStats* stats) const {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();
  TopKHeap topk(query.k);
  kernels::FusedScorer scorer(table_, *query.function, query.predicates, &topk,
                              stats);

  // Cost-pick index scan (most selective predicate) vs full table scan,
  // as the thesis does ("we report the best performance of the two").
  const Predicate* best = nullptr;
  size_t best_len = SIZE_MAX;
  for (const auto& p : query.predicates) {
    size_t len = posting_.ListSize(p.dim, p.value);
    if (len < best_len) {
      best_len = len;
      best = &p;
    }
  }
  // Both plans answer over the construction snapshot [0, built_rows_):
  // rows appended later belong to the engine-level delta overlay, which
  // scans the heap tail itself — reading it here too would double count.
  size_t rpp = table_.RowsPerPage(io->page_size());
  uint64_t scan_pages = (built_rows_ + rpp - 1) / rpp;
  uint64_t scan_cost = scan_pages;
  // Index plan: posting pages + one random heap access per candidate.
  uint64_t index_cost =
      best ? 1 + best_len * sizeof(Tid) / io->page_size() + best_len
           : UINT64_MAX;

  if (best == nullptr || index_cost >= scan_cost) {
    if (scan_pages > 0) io->Access(IoCategory::kTable, 0, scan_pages);
    for (Tid t = 0; t < built_rows_; ++t) {
      if (table_.is_live(t)) scorer.Add(t);
    }
  } else {
    posting_.ChargeListScan(io, best->dim, best->value);
    for (Tid t : posting_.Lookup(best->dim, best->value)) {
      table_.ChargeRowFetch(io, t);  // random access to the heap page
      scorer.Add(t);
    }
  }
  scorer.Flush();
  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return topk.Sorted();
}

}  // namespace rankcube
