// Comparator methods the thesis benchmarks against:
//  * TableScan      — sequential scan + top-k heap (TS, §5.4.1)
//  * BooleanFirst   — per-dimension index selection then ranking ("baseline"
//                     SQL-Server execution of §3.5.1 / "Boolean" of §4.4.1)
//  * RankingFirst   — R-tree branch-and-bound with post-hoc boolean
//                     verification by random table access ("Ranking", §4.4.1)
//  * RankMapping    — top-k mapped to a range query over a clustered
//                     composite index with optimal bounds ([14], §3.5.1)
#ifndef RANKCUBE_BASELINES_BASELINES_H_
#define RANKCUBE_BASELINES_BASELINES_H_

#include <memory>
#include <vector>

#include "core/rtree_search.h"
#include "core/topk_query.h"
#include "index/composite.h"
#include "index/posting.h"
#include "index/rtree.h"
#include "storage/table.h"

namespace rankcube {

// All baselines validate through ValidateQuery (func/query.h) and report
// malformed queries as a non-ok Status, matching the cube engines; the seed's
// silent empty-vector behavior is gone. The uniform public entry point is
// the RankingEngine facade (engine/engine.h).

/// TS: full sequential scan, filtering predicates and keeping a size-k heap.
Result<std::vector<ScoredTuple>> TableScanTopK(const Table& table,
                                               const TopKQuery& query,
                                               IoSession* io, ExecStats* stats);

/// Boolean-first executor over posting-list indices.
class BooleanFirst {
 public:
  explicit BooleanFirst(const Table& table);

  /// Picks index-scan vs table-scan by estimated page cost (the thesis
  /// reports the best of the two alternatives) and evaluates the query.
  Result<std::vector<ScoredTuple>> TopK(const TopKQuery& query, IoSession* io,
                                        ExecStats* stats) const;

  const PostingIndex& index() const { return posting_; }
  size_t IndexSizeBytes() const { return posting_.SizeBytes(); }

 private:
  const Table& table_;
  /// Heap rows at construction: both plans answer over this snapshot (the
  /// posting lists cover exactly these rows), so the engine-level delta
  /// overlay can merge in later appends without double counting.
  Tid built_rows_;
  PostingIndex posting_;
};

/// Ranking-first executor: Algorithm 3 without signatures; boolean
/// predicates verified per candidate tuple via random table access.
class RankingFirst {
 public:
  RankingFirst(const Table& table, const RTree* rtree)
      : table_(table), rtree_(rtree) {}

  Result<std::vector<ScoredTuple>> TopK(const TopKQuery& query, IoSession* io,
                                        ExecStats* stats) const;

 private:
  const Table& table_;
  const RTree* rtree_;
};

/// Rank-mapping baseline [14]: maps the ranking function + the true k-th
/// score (the *optimal* bound, as the thesis concedes to this competitor)
/// to a range box, executes it on composite indices, then ranks candidates.
class RankMapping {
 public:
  /// `index_groups`: one composite index per group of selection dims (a
  /// single group of all dims reproduces §3.5.2; per-fragment groups
  /// reproduce §3.5.3).
  RankMapping(const Table& table,
              const std::vector<std::vector<int>>& index_groups);

  /// `kth_score`: the optimal bound value (from an exact oracle).
  Result<std::vector<ScoredTuple>> TopK(const TopKQuery& query,
                                        double kth_score, IoSession* io,
                                        ExecStats* stats) const;

  /// Derives the optimal per-dimension range box for f and bound s*.
  static Box OptimalBounds(const RankingFunction& f, double kth_score);

  size_t IndexSizeBytes() const;

 private:
  const Table& table_;
  std::vector<std::unique_ptr<CompositeIndex>> indices_;
};

}  // namespace rankcube

#endif  // RANKCUBE_BASELINES_BASELINES_H_
