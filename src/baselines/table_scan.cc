#include <vector>

#include "baselines/baselines.h"
#include "common/stopwatch.h"

namespace rankcube {

Result<std::vector<ScoredTuple>> TableScanTopK(const Table& table,
                                               const TopKQuery& query,
                                               IoSession* io,
                                               ExecStats* stats) {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table.schema()));
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();
  TopKHeap topk(query.k);
  table.ChargeFullScan(io);
  std::vector<double> point(table.num_rank_dims());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    bool ok = true;
    for (const auto& p : query.predicates) {
      if (table.sel(t, p.dim) != p.value) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int d = 0; d < table.num_rank_dims(); ++d) point[d] = table.rank(t, d);
    topk.Offer(t, query.function->Evaluate(point.data()));
    ++stats->tuples_evaluated;
  }
  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return topk.Sorted();
}

}  // namespace rankcube
