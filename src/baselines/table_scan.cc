#include <vector>

#include "baselines/baselines.h"
#include "common/stopwatch.h"
#include "func/kernels/kernels.h"

namespace rankcube {

Result<std::vector<ScoredTuple>> TableScanTopK(const Table& table,
                                               const TopKQuery& query,
                                               IoSession* io,
                                               ExecStats* stats) {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table.schema()));
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();
  TopKHeap topk(query.k);
  table.ChargeFullScan(io);
  // Predicates are evaluated inside the fused scorer (column-direct, per
  // block) rather than row-at-a-time here; with no tombstones the blocks are
  // consecutive runs and take the vectorized dense path.
  kernels::FusedScorer scorer(table, *query.function, query.predicates, &topk,
                              stats);
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (table.is_live(t)) scorer.Add(t);
  }
  scorer.Flush();
  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return topk.Sorted();
}

}  // namespace rankcube
