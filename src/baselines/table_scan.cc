#include <vector>

#include "baselines/baselines.h"
#include "common/stopwatch.h"
#include "core/batch_scorer.h"

namespace rankcube {

Result<std::vector<ScoredTuple>> TableScanTopK(const Table& table,
                                               const TopKQuery& query,
                                               IoSession* io,
                                               ExecStats* stats) {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table.schema()));
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();
  TopKHeap topk(query.k);
  table.ChargeFullScan(io);
  BatchScorer scorer(table, *query.function, &topk, stats);
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (!table.is_live(t)) continue;
    bool ok = true;
    for (const auto& p : query.predicates) {
      if (table.sel(t, p.dim) != p.value) {
        ok = false;
        break;
      }
    }
    if (ok) scorer.Add(t);
  }
  scorer.Flush();
  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return topk.Sorted();
}

}  // namespace rankcube
