#include <algorithm>
#include <cmath>

#include "baselines/baselines.h"
#include "common/stopwatch.h"
#include "func/kernels/kernels.h"

namespace rankcube {

RankMapping::RankMapping(const Table& table,
                         const std::vector<std::vector<int>>& index_groups)
    : table_(table) {
  for (const auto& group : index_groups) {
    indices_.push_back(std::make_unique<CompositeIndex>(table, group));
  }
}

Box RankMapping::OptimalBounds(const RankingFunction& f, double kth_score) {
  Box box = Box::Unit(f.num_dims());
  if (const auto* lin = dynamic_cast<const LinearFunction*>(&f)) {
    const auto& w = lin->weights();
    // f_min excluding dim i, then w_i * x_i <= s* - f_min_without_i.
    double fmin = 0.0;
    for (double wi : w) fmin += std::min(0.0, wi);  // domain [0,1]
    for (size_t d = 0; d < w.size(); ++d) {
      if (w[d] == 0.0) continue;
      double without = fmin - std::min(0.0, w[d]);
      double bound = (kth_score - without) / w[d];
      if (w[d] > 0) {
        box[d].hi = std::clamp(bound, 0.0, 1.0);
      } else {
        box[d].lo = std::clamp(bound, 0.0, 1.0);
      }
    }
    return box;
  }
  if (const auto* q = dynamic_cast<const QuadraticDistance*>(&f)) {
    // Per-dimension radius sqrt(s*/w_i) around the target (other dims can
    // be at distance 0 in the best case).
    Box domain = Box::Unit(f.num_dims());
    std::vector<double> center = q->Minimizer(domain);
    for (int d : q->involved_dims()) {
      // Weight recovered by probing the 1-d second difference.
      std::vector<double> p = center;
      double base = q->Evaluate(p.data());
      p[d] = center[d] + 0.5;
      double w = (q->Evaluate(p.data()) - base) / 0.25;
      if (w <= 0) continue;
      double r = std::sqrt(std::max(0.0, kth_score / w));
      box[d].lo = std::max(0.0, center[d] - r);
      box[d].hi = std::min(1.0, center[d] + r);
    }
    return box;
  }
  return box;  // unknown function: unbounded range (no mapping benefit)
}

Result<std::vector<ScoredTuple>> RankMapping::TopK(const TopKQuery& query,
                                                   double kth_score,
                                                   IoSession* io,
                                                   ExecStats* stats) const {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();

  // Pick the composite index whose prefix covers most of the query.
  const CompositeIndex* best = indices_.front().get();
  int best_match = -1;
  for (const auto& idx : indices_) {
    int m = idx->PrefixMatch(query.predicates);
    if (m > best_match) {
      best_match = m;
      best = idx.get();
    }
  }

  Box bounds = OptimalBounds(*query.function, kth_score);
  auto range = best->RangeQuery(query.predicates, bounds, io);

  TopKHeap topk(query.k);
  // The composite index hands back its candidates as one block; run it
  // through the fused kernel in one shot (predicates were already applied
  // by the index prefix match).
  kernels::FusedScorer scorer(table_, *query.function, &topk, stats);
  scorer.ScoreBlock(range.candidates.data(), range.candidates.size());
  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return topk.Sorted();
}

size_t RankMapping::IndexSizeBytes() const {
  size_t bytes = 0;
  for (const auto& idx : indices_) bytes += idx->SizeBytes();
  return bytes;
}

}  // namespace rankcube
