// FaultFs: an in-memory Fs with power-loss semantics and fault injection —
// the harness behind every kill-mid-write recovery test.
//
// Crash model. Each file tracks its full ("OS cache") contents and a
// synced_len watermark advanced only by WritableFile::Sync. Crash() reverts
// the whole filesystem to what stable storage would hold after a kill -9 /
// power cut: every file truncates to its watermark (plus an optional torn
// tail of unsynced bytes, modeling a partially flushed sector). Metadata
// ops (create, rename, remove, truncate) are modeled as immediately durable
// — the journaled-metadata assumption every mainstream fs gives you — so
// the interesting failure surface is exactly the one the WAL and checkpoint
// CRCs must cover: lost and torn unsynced data.
//
// Fault plan. Appends and Syncs count as mutation ops (reads are free):
//  * crash_after_ops=N  — the (N+1)-th op fails and latches the "crashed"
//    state; every later mutation fails too. Sweeping N over a workload
//    visits every kill point between two writes.
//  * short_write_at=N   — that op (an Append) persists only half its bytes
//    into the cache view, then latches crashed: a torn write.
//  * fail_sync_at=N     — that op (a Sync) returns an error WITHOUT
//    advancing the watermark, modeling fsync EIO; not latched, so the test
//    can observe graceful degradation rather than crash recovery.
// CorruptByte flips one stored byte in place — bit rot for the
// torn-vs-corrupt recovery distinction.
//
// Thread-safe (single mutex); intended op rates are test-sized.
#ifndef RANKCUBE_STORAGE_FAULT_FS_H_
#define RANKCUBE_STORAGE_FAULT_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "storage/fs.h"

namespace rankcube {

struct FaultPlan {
  int64_t crash_after_ops = -1;  ///< mutation-op budget; < 0 = unlimited
  int64_t short_write_at = -1;   ///< op index whose Append tears in half
  int64_t fail_sync_at = -1;     ///< op index whose Sync reports EIO
  uint32_t torn_tail_bytes = 0;  ///< unsynced bytes Crash() leaves behind
};

class FaultFs : public Fs {
 public:
  FaultFs() = default;

  // --- Fs interface --------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

  // --- fault harness -------------------------------------------------------
  /// Installs a plan and resets the op counter (not the stored data).
  void SetPlan(const FaultPlan& plan);
  /// Simulates the machine dying and rebooting: every file reverts to its
  /// synced watermark (+ the plan's torn tail), the crashed latch and plan
  /// clear. The fs is then reusable for the recovery run.
  void Crash();
  /// True once an injected kill point fired; all mutations fail until
  /// Crash() "reboots".
  bool crashed() const;
  /// Mutation ops executed since the last SetPlan.
  int64_t ops() const;
  /// Flips one byte of `path` in both the cache and durable views.
  Status CorruptByte(const std::string& path, uint64_t offset);

 private:
  struct FileState {
    std::string data;       ///< OS-cache view (what reads see pre-crash)
    uint64_t synced = 0;    ///< crash-durable watermark
  };

  class FaultWritableFile;
  class FaultRandomAccessFile;

  /// Must hold mu_. Charges one mutation op; returns an error when a kill
  /// point fires. `is_sync` selects which injections apply.
  Status ChargeOpLocked(bool is_sync, bool* short_write);

  FileState* FindLocked(const std::string& path);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  std::set<std::string> dirs_;
  FaultPlan plan_;
  int64_t ops_ = 0;
  bool crashed_ = false;
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_FAULT_FS_H_
