#include "storage/io_session.h"

#include <chrono>
#include <sstream>
#include <thread>

namespace rankcube {

uint64_t IoSession::TotalLogical() const {
  uint64_t t = 0;
  for (const auto& s : stats_) t += s.logical;
  return t;
}

uint64_t IoSession::TotalPhysical() const {
  uint64_t t = 0;
  for (const auto& s : stats_) t += s.physical;
  return t;
}

void IoSession::SimulateWait(uint64_t pages) const {
  std::this_thread::sleep_for(std::chrono::microseconds(
      static_cast<uint64_t>(store_->read_latency_us()) * pages));
}

void IoSession::MergeFrom(const IoSession& other) {
  for (int c = 0; c < static_cast<int>(IoCategory::kNumCategories); ++c) {
    stats_[c] += other.stats_[c];
  }
}

std::string IoSession::StatsString() const {
  std::ostringstream os;
  for (int c = 0; c < static_cast<int>(IoCategory::kNumCategories); ++c) {
    const IoStats& s = stats_[c];
    if (s.logical == 0) continue;
    os << IoCategoryName(static_cast<IoCategory>(c)) << "=" << s.physical
       << "/" << s.logical << " ";
  }
  return os.str();
}

}  // namespace rankcube
