#include "storage/io_session.h"

#include <chrono>
#include <sstream>
#include <thread>

namespace rankcube {

uint64_t IoSession::TotalLogical() const {
  uint64_t t = 0;
  for (const auto& s : stats_) t += s.logical;
  return t;
}

uint64_t IoSession::TotalPhysical() const {
  uint64_t t = 0;
  for (const auto& s : stats_) t += s.physical;
  return t;
}

uint64_t IoSession::TotalDevice() const {
  uint64_t t = 0;
  for (const auto& s : stats_) t += s.device;
  return t;
}

bool IoSession::AccountingHit(uint64_t cache_key) {
  if (accounting_.empty()) {
    accounting_.resize(store_->num_shards());
  }
  AccountingShard& shard =
      accounting_[PageStore::ShardHash(cache_key) % accounting_.size()];
  auto it = shard.in_cache.find(cache_key);
  if (it != shard.in_cache.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
    return true;
  }
  shard.lru.push_front(cache_key);
  shard.in_cache[cache_key] = shard.lru.begin();
  if (shard.lru.size() > store_->shard_capacity()) {
    shard.in_cache.erase(shard.lru.back());
    shard.lru.pop_back();
  }
  return false;
}

void IoSession::SimulateWait(uint64_t pages) const {
  std::this_thread::sleep_for(std::chrono::microseconds(
      static_cast<uint64_t>(store_->read_latency_us()) * pages));
}

void IoSession::MergeFrom(const IoSession& other) {
  for (int c = 0; c < static_cast<int>(IoCategory::kNumCategories); ++c) {
    stats_[c] += other.stats_[c];
  }
}

std::string IoSession::StatsString() const {
  std::ostringstream os;
  for (int c = 0; c < static_cast<int>(IoCategory::kNumCategories); ++c) {
    const IoStats& s = stats_[c];
    if (s.logical == 0) continue;
    os << IoCategoryName(static_cast<IoCategory>(c)) << "=" << s.physical
       << "/" << s.logical << " ";
  }
  return os.str();
}

}  // namespace rankcube
