// DurabilityManager: the recovery state machine and write-ahead plumbing
// that make a RankCubeDb survive kill -9. It owns the data directory's
// three artifact kinds — checkpoint files (file_page_store.h + snapshot.h),
// WAL segments (wal.h), and the manifest (manifest.h) — and exposes exactly
// the operations the database needs: log a mutation, sync, checkpoint,
// and open-with-recovery.
//
// Open() state machine:
//   no manifest        -> fresh create: checkpoint the seed table, start an
//                         empty WAL, commit the manifest.
//   manifest corrupt   -> hard kCorruption (the file set is ambiguous;
//                         guessing could resurrect deleted data).
//   checkpoint corrupt -> hard kCorruption (nothing to serve).
//   WAL torn tail      -> expected crash shape: truncate to the valid
//                         prefix, replay it, stay READ-WRITE.
//   WAL mid-corruption / missing / header-corrupt / epoch gap
//                      -> replay the salvageable prefix, come up READ-ONLY
//                         at that state with a typed degraded_reason
//                         (acknowledged writes past the hole cannot be
//                         reconstructed; refusing new writes keeps the
//                         divergence from compounding).
//
// Write-ahead ordering contract (enforced by RankCubeDb): validate ->
// LogInsert/LogDelete (append + policy fsync) -> apply in memory. A WAL
// error means the mutation was never applied, so the caller can latch
// read-only with memory and disk still consistent.
#ifndef RANKCUBE_STORAGE_DURABILITY_H_
#define RANKCUBE_STORAGE_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "storage/file_page_store.h"
#include "storage/fs.h"
#include "storage/manifest.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace rankcube {

struct DurabilityOptions {
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  size_t wal_batch_bytes = 1 << 16;  ///< kBatch group-commit threshold
  size_t page_size = 4096;           ///< checkpoint file page size
  Fs* fs = nullptr;                  ///< nullptr = Fs::Posix()
};

/// What Open() found and did; surfaced through DbStats for operators and
/// asserted on by the crash-recovery tests.
struct RecoveryInfo {
  bool created = false;    ///< fresh dir: seeded checkpoint + empty WAL
  bool recovered = false;  ///< existing state was loaded
  bool read_only = false;  ///< unrecoverable damage: serving at last good
                           ///< state, writes refused
  uint64_t checkpoint_epoch = 0;
  uint64_t replayed = 0;            ///< WAL records applied
  uint64_t skipped_duplicates = 0;  ///< records at-or-below the epoch
  uint64_t wal_bytes = 0;           ///< valid WAL prefix length
  bool torn_tail = false;           ///< WAL damage at EOF was truncated
  std::string degraded_reason;      ///< set iff read_only
  double recovery_ms = 0.0;
};

class DurabilityManager {
 public:
  struct Opened {
    std::unique_ptr<DurabilityManager> manager;
    /// Set when existing state was recovered; replaces the caller's seed.
    std::optional<Table> table;
    RecoveryInfo info;
  };

  /// Recover-or-create against `options.data_dir` (created if missing).
  /// `seed` is checkpointed as the initial state when the dir is fresh and
  /// ignored otherwise. Hard-fails only when the on-disk state is too
  /// ambiguous to serve (see the state machine above).
  static Result<Opened> Open(const DurabilityOptions& options,
                             const Table& seed);

  // --- write-ahead hooks ---------------------------------------------------
  /// `seq` is the table epoch AFTER the mutation (epoch() + 1 at call time).
  Status LogInsert(uint64_t seq, const std::vector<int32_t>& sel,
                   const std::vector<double>& rank);
  Status LogDelete(uint64_t seq, Tid tid);
  /// Group-commit barrier: force everything appended so far to storage.
  Status SyncWal();

  /// Takes a full checkpoint of `table`: snapshot to a temp file, rename,
  /// start a fresh WAL at the table's epoch, commit the manifest, GC
  /// superseded files. On success the backing handle (checkpoint_pages)
  /// points at the new file. Crash-safe at every step — until the manifest
  /// rename lands, recovery uses the previous checkpoint + WAL.
  Status Checkpoint(const Table& table);

  /// Open handle on the live checkpoint file (for PageStore backing);
  /// never null after a successful Open.
  std::shared_ptr<const FilePageStore> checkpoint_pages() const {
    return checkpoint_pages_;
  }

  uint64_t checkpoint_epoch() const { return manifest_.epoch; }
  /// Checkpoints committed over the directory's lifetime (see Manifest).
  uint64_t checkpoint_generation() const { return manifest_.generation; }
  uint64_t wal_bytes() const { return wal_ ? wal_->bytes() : 0; }
  uint64_t wal_records() const { return wal_ ? wal_->records() : 0; }
  const std::string& data_dir() const { return options_.data_dir; }
  FsyncPolicy fsync_policy() const { return options_.fsync; }

 private:
  explicit DurabilityManager(DurabilityOptions options)
      : options_(std::move(options)) {}

  WalWriter::Options WalOptions() const {
    return {options_.fsync, options_.wal_batch_bytes};
  }
  /// Removes checkpoint/WAL files the manifest no longer references.
  void CollectGarbage();

  DurabilityOptions options_;
  Manifest manifest_;
  std::unique_ptr<WalWriter> wal_;  ///< null when opened read-only
  std::shared_ptr<const FilePageStore> checkpoint_pages_;
};

/// Applies one WAL record to `table` if it is new (seq == epoch + 1);
/// returns false for an already-applied duplicate (seq <= epoch). Errors on
/// a sequence gap or a record the table rejects — both mean the log and the
/// table diverged. Exposed for replay-idempotence tests.
Result<bool> ApplyWalRecord(Table* table, const WalRecord& rec);

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_DURABILITY_H_
