#include "storage/delta_store.h"

namespace rankcube {

void DeltaStore::ChangesSince(uint64_t since, std::vector<Tid>* inserted,
                              std::vector<Tid>* deleted) const {
  inserted->clear();
  deleted->clear();
  for (size_t i = SuffixBegin(since); i < log_.size(); ++i) {
    (log_[i].kind == MutationKind::kInsert ? inserted : deleted)
        ->push_back(log_[i].tid);
  }
}

size_t DeltaStore::InsertsSince(uint64_t since) const {
  size_t n = 0;
  for (size_t i = SuffixBegin(since); i < log_.size(); ++i) {
    n += log_[i].kind == MutationKind::kInsert ? 1 : 0;
  }
  return n;
}

size_t DeltaStore::DeletesSince(uint64_t since) const {
  size_t n = 0;
  for (size_t i = SuffixBegin(since); i < log_.size(); ++i) {
    n += log_[i].kind == MutationKind::kDelete ? 1 : 0;
  }
  return n;
}

DeltaStore::PendingSummary DeltaStore::Pending(uint64_t since) const {
  PendingSummary p;
  for (size_t i = SuffixBegin(since); i < log_.size(); ++i) {
    const Mutation& m = log_[i];
    if (m.kind == MutationKind::kInsert) {
      if (!p.has_insert) {
        p.has_insert = true;
        p.first_insert = m.tid;
      }
      ++p.inserts;
    } else if (!p.has_insert || m.tid < p.first_insert) {
      ++p.deletes;
    }
  }
  return p;
}

bool DeltaStore::FirstInsertSince(uint64_t since, Tid* tid) const {
  for (size_t i = SuffixBegin(since); i < log_.size(); ++i) {
    if (log_[i].kind == MutationKind::kInsert) {
      *tid = log_[i].tid;
      return true;
    }
  }
  return false;
}

void DeltaStore::RecordDelete(Tid tid) {
  if (deleted_.size() <= tid) deleted_.resize(tid + 1, 0);
  deleted_[tid] = 1;
  ++num_deleted_;
  log_.push_back({MutationKind::kDelete, tid});
}

}  // namespace rankcube
