// Per-query half of the simulated block device (see page_store.h for the
// split). An IoSession charges page accesses against a shared PageStore and
// keeps the per-category logical/physical counters for exactly one query —
// or one construction pass, or one worker thread of a parallel batch.
//
// Contract: a session is owned by a single thread and never shared. All
// counters are plain (unsynchronized) fields; cross-thread visibility is the
// owner's job (BatchExecutor joins its workers before merging sessions).
// Because counters are session-local, "pages this phase read" is a simple
// snapshot difference on the owning thread — there is no racy delta against
// a globally shared pager.
#ifndef RANKCUBE_STORAGE_IO_SESSION_H_
#define RANKCUBE_STORAGE_IO_SESSION_H_

#include <array>
#include <cstdint>
#include <string>

#include "storage/page_store.h"

namespace rankcube {

class IoSession {
 public:
  /// Binds the session to `store` (not owned; must outlive the session).
  explicit IoSession(const PageStore* store) : store_(store) {}

  const PageStore& store() const { return *store_; }
  size_t page_size() const { return store_->page_size(); }

  /// Record an access to page `key` of `cat`. Multi-page reads (npages > 1)
  /// are charged fully and bypass the cache (they model sequential scans).
  /// When the store simulates device latency, missed pages block the owning
  /// thread for that long.
  void Access(IoCategory cat, uint64_t key, uint64_t npages = 1) {
    IoStats& s = stats_[static_cast<int>(cat)];
    s.logical += npages;
    uint64_t missed = npages;
    if (npages == 1 && store_->cache_enabled() &&
        store_->AdmitOrHit(cat, key)) {
      missed = 0;
    }
    s.physical += missed;
    if (missed > 0 && store_->read_latency_us() > 0) SimulateWait(missed);
  }

  const IoStats& stats(IoCategory cat) const {
    return stats_[static_cast<int>(cat)];
  }
  uint64_t TotalLogical() const;
  uint64_t TotalPhysical() const;

  void ResetStats() { stats_.fill(IoStats{}); }

  /// Accumulates another session's counters (e.g. a finished worker's).
  void MergeFrom(const IoSession& other);

  /// One line per non-zero category; for harness output.
  std::string StatsString() const;

 private:
  /// Sleeps for `pages` worth of simulated device reads (out of line to
  /// keep <thread> out of this header's hot path).
  void SimulateWait(uint64_t pages) const;

  const PageStore* store_;
  std::array<IoStats, static_cast<int>(IoCategory::kNumCategories)> stats_{};
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_IO_SESSION_H_
