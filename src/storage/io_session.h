// Per-query half of the simulated block device (see page_store.h for the
// split). An IoSession charges page accesses against a shared PageStore and
// keeps the per-category logical/physical counters for exactly one query —
// or one construction pass, or one worker thread of a parallel batch.
//
// Contract: a session is owned by a single thread and never shared. All
// counters are plain (unsynchronized) fields; cross-thread visibility is the
// owner's job (BatchExecutor joins its workers before merging sessions).
// Because counters are session-local, "pages this phase read" is a simple
// snapshot difference on the owning thread — there is no racy delta against
// a globally shared pager.
//
// Attribution: the session runs a *private* accounting cache with exactly
// the shared cache's geometry (key, shard mapping, per-shard LRU capacity),
// seeded cold when the session is created. `physical` counts misses against
// that private cache, so a query's charged page count depends only on its
// own access string — never on which concurrent query happened to warm the
// shared cache first. That makes page_budget verdicts and per-query page
// reports deterministic across thread counts and schedules (the property
// BatchExecutor::ExecuteParallel and multi-tenant admission rely on). The
// shared cache still decides `device` (true simulated device reads) and the
// simulated read-latency waits, so wall-clock latency keeps the benefit of
// cross-query warmth.
#ifndef RANKCUBE_STORAGE_IO_SESSION_H_
#define RANKCUBE_STORAGE_IO_SESSION_H_

#include <array>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/page_store.h"

namespace rankcube {

class IoSession {
 public:
  /// Binds the session to `store` (not owned; must outlive the session).
  explicit IoSession(const PageStore* store) : store_(store) {}

  const PageStore& store() const { return *store_; }
  size_t page_size() const { return store_->page_size(); }

  /// Record an access to page `key` of `cat`. Multi-page reads (npages > 1)
  /// are charged fully and bypass the cache (they model sequential scans).
  /// When the store simulates device latency, missed pages block the owning
  /// thread for that long.
  void Access(IoCategory cat, uint64_t key, uint64_t npages = 1) {
    IoStats& s = stats_[static_cast<int>(cat)];
    s.logical += npages;
    uint64_t charged = npages;
    uint64_t device = npages;
    if (npages == 1 && store_->cache_enabled()) {
      if (AccountingHit(PageStore::MakeKey(cat, key))) charged = 0;
      if (store_->AdmitOrHit(cat, key)) device = 0;
    }
    s.physical += charged;
    s.device += device;
    if (device > 0 && store_->read_latency_us() > 0) SimulateWait(device);
    // With a durable checkpoint attached, a single-page heap miss performs a
    // real verified pread (multi-page scans stay modeled; see page_store.h).
    if (device > 0 && npages == 1 && cat == IoCategory::kTable &&
        store_->has_table_backing()) {
      store_->ReadBackingPage(key);
    }
  }

  const IoStats& stats(IoCategory cat) const {
    return stats_[static_cast<int>(cat)];
  }
  uint64_t TotalLogical() const;
  uint64_t TotalPhysical() const;
  /// Shared-cache misses across categories: the simulated device reads this
  /// session actually waited on (schedule-dependent, unlike TotalPhysical).
  uint64_t TotalDevice() const;

  void ResetStats() { stats_.fill(IoStats{}); }

  /// Accumulates another session's counters (e.g. a finished worker's).
  void MergeFrom(const IoSession& other);

  /// One line per non-zero category; for harness output.
  std::string StatsString() const;

 private:
  /// Probe-and-admit on the private accounting cache (same geometry as the
  /// store's shared cache, session-local so no locking). Out of line: the
  /// cache-disabled hot path never pays for it.
  bool AccountingHit(uint64_t cache_key);

  /// Sleeps for `pages` worth of simulated device reads (out of line to
  /// keep <thread> out of this header's hot path).
  void SimulateWait(uint64_t pages) const;

  /// One private LRU shard mirroring PageStore::Shard, minus the mutex.
  struct AccountingShard {
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> in_cache;
  };

  const PageStore* store_;
  std::array<IoStats, static_cast<int>(IoCategory::kNumCategories)> stats_{};
  std::vector<AccountingShard> accounting_;  ///< sized lazily on first probe
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_IO_SESSION_H_
