// Checkpoint files: a blob stored as fixed-size pages, each carrying its
// own CRC and page index, so recovery can detect a torn or misdirected
// write down to the page and report exactly where. This is the real-file
// half of the PageStore story — once a checkpoint exists, the shared
// buffer cache's kTable misses are served by pread against this file
// (PageStore::AttachTableBacking), verifying page checksums on the way in.
//
// Layout (page_size-aligned):
//   page 0        : "RCPG" | u32 version | u32 page_size | u32 reserved
//                   | u64 num_data_pages | u64 payload_bytes | u64 epoch
//                   | u32 crc(all previous) | zero padding
//   page 1..N     : u32 crc(index+payload) | u64 page_index (1-based)
//                   | payload (page_size - 12 bytes; last page zero-padded)
//
// Files are written once (checkpoints are immutable); atomicity comes from
// the caller writing to a temp name and renaming after Sync.
#ifndef RANKCUBE_STORAGE_FILE_PAGE_STORE_H_
#define RANKCUBE_STORAGE_FILE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/fs.h"

namespace rankcube {

class FilePageStore {
 public:
  /// Writes `blob` to `path` in the paged format and syncs it. Overwrites.
  static Status WriteBlobFile(Fs* fs, const std::string& path,
                              std::string_view blob, size_t page_size,
                              uint64_t epoch);

  /// Opens + validates the header (the per-page payload is validated on
  /// read). Fails with kCorruption when the header is damaged.
  static Result<std::unique_ptr<FilePageStore>> Open(Fs* fs,
                                                     const std::string& path);

  /// Reads + CRC-verifies data page `index` (1-based); kCorruption names
  /// the page on mismatch — torn writes and bit rot land here.
  Status ReadPage(uint64_t index, std::string* payload) const;

  /// Reassembles the whole blob, verifying every page.
  Result<std::string> ReadBlob() const;

  uint64_t num_data_pages() const { return num_data_pages_; }
  uint64_t payload_bytes() const { return payload_bytes_; }
  size_t page_size() const { return page_size_; }
  uint64_t epoch() const { return epoch_; }
  const std::string& path() const { return path_; }

 private:
  FilePageStore(std::unique_ptr<RandomAccessFile> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  size_t page_size_ = 0;
  uint64_t num_data_pages_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_FILE_PAGE_STORE_H_
