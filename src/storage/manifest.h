// The manifest is the single source of truth for which files constitute the
// database: the live checkpoint, its epoch, and the WAL segment holding
// everything since. It is a tiny text file replaced atomically (temp +
// fsync + rename, WriteFileAtomic) so recovery always sees a complete old
// or complete new manifest — the commit point of every checkpoint.
//
// Format (trailing crc line covers everything before it):
//   rankcube-manifest v1
//   checkpoint=ckpt-00000000000000000042.tab
//   epoch=42
//   wal=wal-00000000000000000042.log
//   crc=3735928559
#ifndef RANKCUBE_STORAGE_MANIFEST_H_
#define RANKCUBE_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/fs.h"

namespace rankcube {

struct Manifest {
  std::string checkpoint_file;  ///< file name inside the data dir
  uint64_t epoch = 0;           ///< epoch captured by that checkpoint
  std::string wal_file;         ///< segment starting at that epoch
  /// Monotone count of checkpoints committed over the directory's
  /// lifetime (1 = the seed checkpoint). Unlike `epoch` it advances even
  /// when no mutations happened between checkpoints, so operators can tell
  /// "checkpointing is running" from "nothing changed". Absent from
  /// legacy manifests, which load as 0.
  uint64_t generation = 0;
};

/// Name of the manifest file inside a data dir.
inline const char* ManifestFileName() { return "MANIFEST"; }

/// "ckpt-<epoch, zero-padded>.tab" — sorts by epoch lexicographically.
std::string CheckpointFileName(uint64_t epoch);
/// "wal-<epoch, zero-padded>.log".
std::string WalFileName(uint64_t epoch);
/// True if `name` looks like a checkpoint / WAL file (GC candidates).
bool IsCheckpointFileName(const std::string& name);
bool IsWalFileName(const std::string& name);

/// Atomically replaces `dir`/MANIFEST.
Status StoreManifest(Fs* fs, const std::string& dir, const Manifest& manifest);

/// Loads + validates `dir`/MANIFEST. kNotFound when missing (fresh dir);
/// kCorruption when present but damaged — the caller must NOT guess at
/// state, this is a hard stop.
Result<Manifest> LoadManifest(Fs* fs, const std::string& dir);

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_MANIFEST_H_
