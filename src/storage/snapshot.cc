#include "storage/snapshot.h"

#include <cstring>
#include <vector>

namespace rankcube {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'S', 'N'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kMaxDims = 1 << 10;

template <typename T>
void PutPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetPod(const std::string& in, size_t* pos, T* v) {
  if (in.size() - *pos < sizeof(T)) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

Status Corrupt(const char* what) {
  return Status::Corruption(std::string("table snapshot: ") + what);
}

}  // namespace

std::string EncodeTableSnapshot(const Table& table) {
  const TableSchema& schema = table.schema();
  const size_t rows = table.num_rows();

  std::vector<Tid> tombstones;
  for (size_t r = 0; r < rows; ++r) {
    if (!table.is_live(static_cast<Tid>(r))) {
      tombstones.push_back(static_cast<Tid>(r));
    }
  }

  std::string out;
  out.reserve(64 + rows * table.RowBytes());
  out.append(kMagic, sizeof(kMagic));
  PutPod(&out, kVersion);
  PutPod(&out, static_cast<uint32_t>(schema.num_sel_dims()));
  PutPod(&out, static_cast<uint32_t>(schema.num_rank_dims));
  for (int32_t card : schema.sel_cardinality) PutPod(&out, card);
  PutPod(&out, static_cast<uint64_t>(rows));
  PutPod(&out, table.epoch());
  PutPod(&out, static_cast<uint64_t>(tombstones.size()));
  for (Tid tid : tombstones) PutPod(&out, tid);
  for (int d = 0; d < schema.num_sel_dims(); ++d) {
    out.append(reinterpret_cast<const char*>(table.sel_col(d)),
               rows * sizeof(int32_t));
  }
  for (int d = 0; d < schema.num_rank_dims; ++d) {
    out.append(reinterpret_cast<const char*>(table.rank_col(d)),
               rows * sizeof(double));
  }
  return out;
}

Result<Table> DecodeTableSnapshot(const std::string& blob) {
  size_t pos = 0;
  if (blob.size() < sizeof(kMagic) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  pos = sizeof(kMagic);
  uint32_t version = 0;
  uint32_t num_sel = 0;
  uint32_t num_rank = 0;
  if (!GetPod(blob, &pos, &version) || version != kVersion) {
    return Corrupt("unknown version");
  }
  if (!GetPod(blob, &pos, &num_sel) || !GetPod(blob, &pos, &num_rank) ||
      num_sel > kMaxDims || num_rank > kMaxDims) {
    return Corrupt("implausible dimension counts");
  }
  TableSchema schema;
  schema.sel_cardinality.resize(num_sel);
  schema.num_rank_dims = static_cast<int>(num_rank);
  for (auto& card : schema.sel_cardinality) {
    if (!GetPod(blob, &pos, &card) || card <= 0) {
      return Corrupt("bad dimension cardinality");
    }
  }
  uint64_t rows = 0;
  uint64_t epoch = 0;
  uint64_t num_tombstones = 0;
  if (!GetPod(blob, &pos, &rows) || !GetPod(blob, &pos, &epoch) ||
      !GetPod(blob, &pos, &num_tombstones) || num_tombstones > rows) {
    return Corrupt("bad row / tombstone counts");
  }
  const uint64_t want = pos + num_tombstones * sizeof(Tid) +
                        rows * (num_sel * sizeof(int32_t)) +
                        rows * (num_rank * sizeof(double));
  if (blob.size() != want) return Corrupt("size mismatch");

  std::vector<Tid> tombstones(num_tombstones);
  for (auto& tid : tombstones) {
    if (!GetPod(blob, &pos, &tid) || tid >= rows) {
      return Corrupt("tombstone tid out of range");
    }
  }

  // Column-major in the blob; AddRow wants rows. Gather per row.
  const char* sel_base = blob.data() + pos;
  const char* rank_base = sel_base + rows * num_sel * sizeof(int32_t);
  Table table(schema);
  std::vector<int32_t> sel(num_sel);
  std::vector<double> rank(num_rank);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint32_t d = 0; d < num_sel; ++d) {
      std::memcpy(&sel[d], sel_base + (d * rows + r) * sizeof(int32_t),
                  sizeof(int32_t));
    }
    for (uint32_t d = 0; d < num_rank; ++d) {
      std::memcpy(&rank[d], rank_base + (d * rows + r) * sizeof(double),
                  sizeof(double));
    }
    RC_RETURN_IF_ERROR(table.AddRow(sel, rank));
  }
  table.RestoreRecoveryState(epoch, tombstones);
  return table;
}

}  // namespace rankcube
