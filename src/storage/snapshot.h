// Table snapshot codec: the byte blob a checkpoint file stores. Captures
// everything needed to reconstruct the relation exactly — schema, the full
// column heap (tombstoned rows included, since tids are positional and never
// reused), the tombstone set, and the epoch. Access structures are NOT
// snapshotted: they are derived state, rebuilt lazily on first use, which
// keeps checkpoints small and recovery code trivial.
//
// The blob is wrapped in a FilePageStore file (per-page CRCs), so this codec
// does integrity-free plain serialization; structural validation on decode
// still guards against version skew.
#ifndef RANKCUBE_STORAGE_SNAPSHOT_H_
#define RANKCUBE_STORAGE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace rankcube {

/// Serializes `table` (rows, tombstones, epoch) into a blob.
std::string EncodeTableSnapshot(const Table& table);

/// Rebuilds a Table from a blob produced by EncodeTableSnapshot. The result
/// has an empty mutation log at compacted_epoch = the snapshotted epoch.
Result<Table> DecodeTableSnapshot(const std::string& blob);

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_SNAPSHOT_H_
