// Shared, thread-safe half of the simulated block device. The thesis
// evaluates methods by execution time and by the number of (4 KB) disk-block
// accesses; every structure in this repository (tables, B+-trees, R-trees,
// cuboids, base-block tables, signatures, join-signatures) routes page
// access through the storage layer so those counts can be reported exactly.
//
// The storage layer is split so many queries can run concurrently:
//  * PageStore (this file)  — immutable page geometry plus an optional LRU
//    buffer cache, sharded with per-shard mutexes so concurrent queries can
//    probe it without serializing on one lock. One PageStore is shared by
//    every structure and every query over a dataset.
//  * IoSession (io_session.h) — per-query access counters. Each query (or
//    worker thread) owns exactly one session; sessions are never shared
//    across threads, which is what makes their counters race-free.
//
// The optional cache models the node-buffering the thesis assumes ("many
// index implementations buffer the previously retrieved index nodes",
// §5.1.3).
#ifndef RANKCUBE_STORAGE_PAGE_STORE_H_
#define RANKCUBE_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace rankcube {

class FilePageStore;

/// Which subsystem a page belongs to; stats are reported per category.
enum class IoCategory : int {
  kTable = 0,       ///< heap pages of the base relation
  kPosting,         ///< per-dimension posting-list (non-clustered) indices
  kComposite,       ///< clustered composite index (rank-mapping baseline)
  kBTree,           ///< B+-tree nodes (Ch5 index-merge)
  kRTree,           ///< R-tree nodes (Ch4/Ch5/Ch7)
  kCuboid,          ///< ranking-cube cuboid cells / pseudo blocks (Ch3)
  kBaseBlock,       ///< base block table (Ch3)
  kSignature,       ///< partial signatures (Ch4/Ch7)
  kJoinSignature,   ///< join-signature state signatures (Ch5)
  kNumCategories,
};

/// Returns a short printable name ("rtree", "signature", ...).
const char* IoCategoryName(IoCategory cat);

/// Per-category access counters. Owned by an IoSession (single-threaded);
/// never shared between queries.
///
/// `physical` is *charged* I/O: misses against the session's own private
/// accounting cache (same geometry as the store's shared cache, seeded cold
/// at session birth). It depends only on the session's own access string, so
/// per-query page counts — and the page_budget verdicts derived from them —
/// are identical no matter which other queries run concurrently or in what
/// order. `device` is the hardware truth: misses against the *shared* buffer
/// cache, which is what the simulated read latency waits on and what a
/// cache-hit-rate figure should report. On a quiet store with one session
/// the two coincide; under concurrency only `device` varies with schedule.
struct IoStats {
  uint64_t logical = 0;   ///< accesses requested
  uint64_t physical = 0;  ///< accesses charged (missed the session's own
                          ///< accounting cache; schedule-independent)
  uint64_t device = 0;    ///< accesses that missed the shared buffer cache
                          ///< (actual simulated device reads)

  /// Accounting-cache hits (multi-page scans bypass the cache and add
  /// equally to both counters, so the difference is exactly the hit count).
  uint64_t hits() const { return logical - physical; }
  /// Shared-buffer-cache hits, including pages another session warmed.
  uint64_t device_hits() const { return logical - device; }

  IoStats& operator+=(const IoStats& o) {
    logical += o.logical;
    physical += o.physical;
    device += o.device;
    return *this;
  }
};

/// Immutable page geometry + thread-safe sharded LRU buffer cache. Shared
/// by all structures over a dataset and by all concurrently running queries;
/// all methods are safe to call from multiple threads.
class PageStore {
 public:
  struct Options {
    size_t page_size = 4096;  ///< bytes per block (thesis default)
    size_t cache_pages = 0;   ///< LRU capacity in pages; 0 disables caching
    size_t cache_shards = 8;  ///< lock shards (clamped to >= 1)
    /// Simulated device latency per physical page read, in microseconds
    /// (0 = none). Sessions sleep this long per missed page, which makes
    /// the simulated device behave like the I/O-bound system the thesis
    /// measures (bench_common's 0.1 ms/page convention) and lets parallel
    /// batch execution overlap device waits across worker threads.
    uint32_t read_latency_us = 0;
  };

  PageStore() : PageStore(Options{}) {}
  explicit PageStore(Options options);

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  size_t page_size() const { return options_.page_size; }
  bool cache_enabled() const { return options_.cache_pages > 0; }
  size_t cache_pages() const { return options_.cache_pages; }
  uint32_t read_latency_us() const { return options_.read_latency_us; }

  /// Cache geometry, exposed so IoSession's private accounting cache can
  /// replicate the shared cache bit-for-bit (same key, same shard mapping,
  /// same per-shard LRU capacity): a lone session then charges exactly the
  /// pages the shared cache would miss.
  size_t num_shards() const { return shards_.size(); }
  size_t shard_capacity() const { return shard_capacity_; }
  using CacheKey = uint64_t;
  static CacheKey MakeKey(IoCategory cat, uint64_t key) {
    return (static_cast<uint64_t>(cat) << 56) ^ (key & 0x00FFFFFFFFFFFFFFull);
  }
  static uint64_t ShardHash(CacheKey key) {
    return (key * 0x9E3779B97F4A7C15ull) >> 32;
  }

  /// Probes the cache for page `key` of `cat`. Returns true on a hit (the
  /// entry is refreshed to most-recent); on a miss the page is admitted,
  /// evicting the shard's least-recently-used entry if the shard is full.
  /// Always false when caching is disabled. Thread-safe.
  bool AdmitOrHit(IoCategory cat, uint64_t key) const;

  /// Drops every cached page (does not touch any session's counters).
  void ClearCache() const;

  // --- checkpoint-file backing --------------------------------------------
  // When a durable checkpoint exists, kTable misses against the shared
  // cache stop being pure simulation: each one performs a verified pread
  // from the checkpoint file (per-page CRC + stored page index), so disk
  // corruption surfaces on the read path the moment a query touches it.
  // The heap-page key is folded onto the checkpoint's data pages — the
  // snapshot blob's geometry differs from the simulated heap's — so the
  // property delivered is "every device miss reads and verifies real
  // checkpoint bytes", not a byte-per-byte heap mapping.

  /// Attaches (or, with nullptr, detaches) the checkpoint backing. Called
  /// on open and after each checkpoint rotation; safe against concurrent
  /// readers.
  void AttachTableBacking(std::shared_ptr<const FilePageStore> backing);
  bool has_table_backing() const {
    return has_backing_.load(std::memory_order_relaxed);
  }
  /// One verified backing pread for heap page `key`; counts the read and,
  /// on CRC mismatch, latches the corruption flag (queries keep running on
  /// the in-memory relation; STATS exposes the latch).
  void ReadBackingPage(uint64_t key) const;
  uint64_t backing_reads() const {
    return backing_reads_.load(std::memory_order_relaxed);
  }
  uint64_t backing_corruptions() const {
    return backing_corruptions_.load(std::memory_order_relaxed);
  }
  bool backing_corrupt() const {
    return backing_corruptions() > 0;
  }

 private:
  /// One LRU shard; `mu` guards `lru` + `in_cache`. Most-recent at front.
  struct Shard {
    std::mutex mu;
    std::list<CacheKey> lru;
    std::unordered_map<CacheKey, std::list<CacheKey>::iterator> in_cache;
  };

  Shard& ShardOf(CacheKey key) const;

  Options options_;
  size_t shard_capacity_ = 0;  ///< pages per shard
  mutable std::vector<Shard> shards_;

  mutable std::mutex backing_mu_;  ///< guards backing_ swap vs. readers
  std::shared_ptr<const FilePageStore> backing_;
  std::atomic<bool> has_backing_{false};
  mutable std::atomic<uint64_t> backing_reads_{0};
  mutable std::atomic<uint64_t> backing_corruptions_{0};
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_PAGE_STORE_H_
