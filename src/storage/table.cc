#include "storage/table.h"

#include <algorithm>

namespace rankcube {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  sel_cols_.resize(schema_.num_sel_dims());
  rank_cols_.resize(schema_.num_rank_dims);
}

Status Table::ValidateRow(const std::vector<int32_t>& sel,
                          const std::vector<double>& rank) const {
  if (static_cast<int>(sel.size()) != schema_.num_sel_dims()) {
    return Status::InvalidArgument("selection arity mismatch");
  }
  if (static_cast<int>(rank.size()) != schema_.num_rank_dims) {
    return Status::InvalidArgument("ranking arity mismatch");
  }
  for (int d = 0; d < schema_.num_sel_dims(); ++d) {
    if (sel[d] < 0 || sel[d] >= schema_.sel_cardinality[d]) {
      return Status::OutOfRange("selection value out of dimension domain");
    }
  }
  for (int d = 0; d < schema_.num_rank_dims; ++d) {
    // Negated comparison also rejects NaN.
    if (!(rank[d] >= 0.0 && rank[d] <= 1.0)) {
      return Status::OutOfRange("ranking value outside [0, 1]");
    }
  }
  return Status::OK();
}

Status Table::AddRow(const std::vector<int32_t>& sel,
                     const std::vector<double>& rank) {
  // Validate everything before touching any column, so a rejected row never
  // leaves a partially appended value behind.
  RC_RETURN_IF_ERROR(ValidateRow(sel, rank));
  for (int d = 0; d < schema_.num_sel_dims(); ++d) {
    sel_cols_[d].push_back(sel[d]);
  }
  for (int d = 0; d < schema_.num_rank_dims; ++d) {
    rank_cols_[d].push_back(rank[d]);
  }
  ++num_rows_;
  return Status::OK();
}

Result<Tid> Table::Insert(const std::vector<int32_t>& sel,
                          const std::vector<double>& rank) {
  RC_RETURN_IF_ERROR(AddRow(sel, rank));
  Tid tid = static_cast<Tid>(num_rows_ - 1);
  delta_.RecordInsert(tid);
  return tid;
}

Status Table::CanDelete(Tid row) const {
  if (row >= num_rows_) {
    return Status::InvalidArgument("delete of nonexistent tid " +
                                   std::to_string(row));
  }
  if (!is_live(row)) {
    return Status::NotFound("tid " + std::to_string(row) +
                            " is already deleted");
  }
  return Status::OK();
}

Status Table::Delete(Tid row) {
  RC_RETURN_IF_ERROR(CanDelete(row));
  delta_.RecordDelete(row);
  return Status::OK();
}

void Table::RestoreRecoveryState(uint64_t epoch,
                                 const std::vector<Tid>& tombstones) {
  delta_.RestoreForRecovery(epoch, tombstones);
}

size_t Table::RowBytes() const {
  // tid + S ints + R doubles, the unit-cost accounting the thesis uses when
  // comparing index sizes against "the base table" (§3.5.3).
  return 4 + 4 * schema_.num_sel_dims() + 8 * schema_.num_rank_dims;
}

size_t Table::RowsPerPage(size_t page_size) const {
  return std::max<size_t>(1, page_size / RowBytes());
}

uint64_t Table::NumPages(size_t page_size) const {
  size_t rpp = RowsPerPage(page_size);
  return (num_rows_ + rpp - 1) / rpp;
}

uint64_t Table::TailPages(Tid first_row, size_t page_size) const {
  if (first_row >= num_rows_) return 0;
  return NumPages(page_size) - first_row / RowsPerPage(page_size);
}

void Table::ChargeRowFetch(IoSession* io, Tid row) const {
  io->Access(IoCategory::kTable, row / RowsPerPage(io->page_size()));
}

void Table::ChargeFullScan(IoSession* io) const {
  io->Access(IoCategory::kTable, 0, NumPages(io->page_size()));
}

void Table::ChargeTailScan(IoSession* io, Tid first_row) const {
  uint64_t pages = TailPages(first_row, io->page_size());
  if (pages == 0) return;
  io->Access(IoCategory::kTable, first_row / RowsPerPage(io->page_size()),
             pages);
}

}  // namespace rankcube
