#include "storage/table.h"

#include <algorithm>

namespace rankcube {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  sel_cols_.resize(schema_.num_sel_dims());
  rank_cols_.resize(schema_.num_rank_dims);
}

Status Table::AddRow(const std::vector<int32_t>& sel,
                     const std::vector<double>& rank) {
  if (static_cast<int>(sel.size()) != schema_.num_sel_dims()) {
    return Status::InvalidArgument("selection arity mismatch");
  }
  if (static_cast<int>(rank.size()) != schema_.num_rank_dims) {
    return Status::InvalidArgument("ranking arity mismatch");
  }
  for (int d = 0; d < schema_.num_sel_dims(); ++d) {
    if (sel[d] < 0 || sel[d] >= schema_.sel_cardinality[d]) {
      return Status::OutOfRange("selection value out of dimension domain");
    }
    sel_cols_[d].push_back(sel[d]);
  }
  for (int d = 0; d < schema_.num_rank_dims; ++d) {
    rank_cols_[d].push_back(rank[d]);
  }
  ++num_rows_;
  return Status::OK();
}

std::vector<double> Table::RankRow(Tid row) const {
  std::vector<double> v(schema_.num_rank_dims);
  for (int d = 0; d < schema_.num_rank_dims; ++d) v[d] = rank_cols_[d][row];
  return v;
}

size_t Table::RowBytes() const {
  // tid + S ints + R doubles, the unit-cost accounting the thesis uses when
  // comparing index sizes against "the base table" (§3.5.3).
  return 4 + 4 * schema_.num_sel_dims() + 8 * schema_.num_rank_dims;
}

size_t Table::RowsPerPage(size_t page_size) const {
  return std::max<size_t>(1, page_size / RowBytes());
}

uint64_t Table::NumPages(size_t page_size) const {
  size_t rpp = RowsPerPage(page_size);
  return (num_rows_ + rpp - 1) / rpp;
}

void Table::ChargeRowFetch(IoSession* io, Tid row) const {
  io->Access(IoCategory::kTable, row / RowsPerPage(io->page_size()));
}

void Table::ChargeFullScan(IoSession* io) const {
  io->Access(IoCategory::kTable, 0, NumPages(io->page_size()));
}

}  // namespace rankcube
