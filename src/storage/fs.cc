#include "storage/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rankcube {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + "(" + path + "): " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    size_t written = 0;
    while (written < data.size()) {
      ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      written += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out->data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Errno("pread", path_);
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    out->resize(got);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Errno("fstat", path_);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    auto file = NewRandomAccessFile(path);
    if (!file.ok()) return file.status();
    auto size = file.value()->Size();
    if (!size.ok()) return size.status();
    std::string out;
    RC_RETURN_IF_ERROR(file.value()->Read(0, size.value(), &out));
    return out;
  }

  Result<bool> FileExists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT) return false;
    return Errno("stat", path);
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    // mkdir -p: create each component, tolerating ones that exist.
    std::string prefix;
    size_t start = 0;
    if (!path.empty() && path[0] == '/') {
      prefix = "/";
      start = 1;
    }
    while (start <= path.size()) {
      size_t slash = path.find('/', start);
      if (slash == std::string::npos) slash = path.size();
      if (slash > start) {
        prefix.append(path, start, slash - start);
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
          return Errno("mkdir", prefix);
        }
        prefix += '/';
      }
      start = slash + 1;
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return Errno("opendir", path);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(dir);
    return names;
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Errno("open", path);
    Status s = Status::OK();
    if (::fsync(fd) != 0) s = Errno("fsync", path);
    ::close(fd);
    return s;
  }
};

}  // namespace

Fs* Fs::Posix() {
  static PosixFs* fs = new PosixFs();
  return fs;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

Status WriteFileAtomic(Fs* fs, const std::string& dir,
                       const std::string& filename, std::string_view data) {
  const std::string tmp = JoinPath(dir, filename + ".tmp");
  const std::string target = JoinPath(dir, filename);
  auto file = fs->NewWritableFile(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  RC_RETURN_IF_ERROR(file.value()->Append(data));
  RC_RETURN_IF_ERROR(file.value()->Sync());
  RC_RETURN_IF_ERROR(file.value()->Close());
  RC_RETURN_IF_ERROR(fs->RenameFile(tmp, target));
  return fs->SyncDir(dir);
}

}  // namespace rankcube
