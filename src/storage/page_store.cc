#include "storage/page_store.h"

#include "storage/file_page_store.h"

namespace rankcube {

const char* IoCategoryName(IoCategory cat) {
  switch (cat) {
    case IoCategory::kTable:
      return "table";
    case IoCategory::kPosting:
      return "posting";
    case IoCategory::kComposite:
      return "composite";
    case IoCategory::kBTree:
      return "btree";
    case IoCategory::kRTree:
      return "rtree";
    case IoCategory::kCuboid:
      return "cuboid";
    case IoCategory::kBaseBlock:
      return "baseblock";
    case IoCategory::kSignature:
      return "signature";
    case IoCategory::kJoinSignature:
      return "joinsig";
    default:
      return "?";
  }
}

PageStore::PageStore(Options options) : options_(options) {
  size_t shards = options_.cache_shards > 0 ? options_.cache_shards : 1;
  // A shard needs at least one page of capacity to admit anything; with a
  // tiny cache, fewer shards keep the configured capacity exact.
  if (options_.cache_pages > 0 && shards > options_.cache_pages) {
    shards = options_.cache_pages;
  }
  options_.cache_shards = shards;
  // Round shard capacity up so the total is never below the configured
  // cache_pages (it may exceed it by at most shards - 1 pages).
  shard_capacity_ = (options_.cache_pages + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
}

PageStore::Shard& PageStore::ShardOf(CacheKey key) const {
  // Multiplicative hash over the full key; the low bits of MakeKey carry the
  // page id, the high bits the category.
  return shards_[ShardHash(key) % shards_.size()];
}

bool PageStore::AdmitOrHit(IoCategory cat, uint64_t key) const {
  if (!cache_enabled()) return false;
  CacheKey ck = MakeKey(cat, key);
  Shard& shard = ShardOf(ck);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.in_cache.find(ck);
  if (it != shard.in_cache.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
    return true;
  }
  shard.lru.push_front(ck);
  shard.in_cache[ck] = shard.lru.begin();
  if (shard.lru.size() > shard_capacity_) {
    shard.in_cache.erase(shard.lru.back());
    shard.lru.pop_back();
  }
  return false;
}

void PageStore::ClearCache() const {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.in_cache.clear();
  }
}

void PageStore::AttachTableBacking(
    std::shared_ptr<const FilePageStore> backing) {
  std::lock_guard<std::mutex> lock(backing_mu_);
  bool attached = backing != nullptr && backing->num_data_pages() > 0;
  backing_ = std::move(backing);
  has_backing_.store(attached, std::memory_order_relaxed);
}

void PageStore::ReadBackingPage(uint64_t key) const {
  std::shared_ptr<const FilePageStore> backing;
  {
    std::lock_guard<std::mutex> lock(backing_mu_);
    backing = backing_;
  }
  if (backing == nullptr || backing->num_data_pages() == 0) return;
  std::string payload;
  backing_reads_.fetch_add(1, std::memory_order_relaxed);
  Status s = backing->ReadPage(key % backing->num_data_pages() + 1, &payload);
  if (!s.ok()) backing_corruptions_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rankcube
