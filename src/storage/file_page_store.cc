#include "storage/file_page_store.h"

#include <cstring>

#include "common/crc32.h"

namespace rankcube {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'P', 'G'};
constexpr uint32_t kVersion = 1;
// magic + version + page_size + reserved + num_data_pages + payload_bytes
// + epoch + crc
constexpr size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 4;
constexpr size_t kPageOverhead = 4 + 8;  // crc + page_index
constexpr size_t kMinPageSize = 64;
constexpr size_t kMaxPageSize = 1 << 20;

template <typename T>
void PutPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T GetPod(const std::string& in, size_t* pos) {
  T v;
  std::memcpy(&v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

}  // namespace

Status FilePageStore::WriteBlobFile(Fs* fs, const std::string& path,
                                    std::string_view blob, size_t page_size,
                                    uint64_t epoch) {
  if (page_size < kMinPageSize || page_size > kMaxPageSize) {
    return Status::InvalidArgument("page_size out of range");
  }
  const size_t payload_per_page = page_size - kPageOverhead;
  const uint64_t num_pages =
      (blob.size() + payload_per_page - 1) / payload_per_page;

  auto file = fs->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();

  std::string header;
  header.reserve(page_size);
  header.append(kMagic, sizeof(kMagic));
  PutPod(&header, kVersion);
  PutPod(&header, static_cast<uint32_t>(page_size));
  PutPod(&header, uint32_t{0});  // reserved
  PutPod(&header, num_pages);
  PutPod(&header, static_cast<uint64_t>(blob.size()));
  PutPod(&header, epoch);
  PutPod(&header, StoredCrc32c(std::string_view(header)));
  header.resize(page_size, '\0');
  RC_RETURN_IF_ERROR(file.value()->Append(header));

  std::string page;
  for (uint64_t i = 0; i < num_pages; ++i) {
    const size_t off = i * payload_per_page;
    const size_t take = std::min(payload_per_page, blob.size() - off);
    page.clear();
    page.reserve(page_size);
    PutPod(&page, i + 1);
    page.append(blob.data() + off, take);
    page.resize(page_size - 4, '\0');
    uint32_t crc = StoredCrc32c(std::string_view(page));
    std::string framed;
    framed.reserve(page_size);
    PutPod(&framed, crc);
    framed += page;
    RC_RETURN_IF_ERROR(file.value()->Append(framed));
  }
  RC_RETURN_IF_ERROR(file.value()->Sync());
  return file.value()->Close();
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    Fs* fs, const std::string& path) {
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();

  std::string header;
  RC_RETURN_IF_ERROR(file.value()->Read(0, kHeaderBytes, &header));
  if (header.size() < kHeaderBytes ||
      std::memcmp(header.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("checkpoint '" + path + "': bad magic");
  }
  size_t pos = sizeof(kMagic);
  uint32_t version = GetPod<uint32_t>(header, &pos);
  uint32_t page_size = GetPod<uint32_t>(header, &pos);
  pos += 4;  // reserved
  uint64_t num_pages = GetPod<uint64_t>(header, &pos);
  uint64_t payload_bytes = GetPod<uint64_t>(header, &pos);
  uint64_t epoch = GetPod<uint64_t>(header, &pos);
  uint32_t crc = GetPod<uint32_t>(header, &pos);
  if (version != kVersion ||
      StoredCrc32c(std::string_view(header.data(), kHeaderBytes - 4)) != crc) {
    return Status::Corruption("checkpoint '" + path +
                              "': header checksum mismatch");
  }
  if (page_size < kMinPageSize || page_size > kMaxPageSize) {
    return Status::Corruption("checkpoint '" + path + "': bad page size");
  }
  const uint64_t payload_per_page = page_size - kPageOverhead;
  if (payload_bytes > num_pages * payload_per_page ||
      (num_pages > 0 && payload_bytes <= (num_pages - 1) * payload_per_page)) {
    return Status::Corruption("checkpoint '" + path +
                              "': page count / payload size disagree");
  }
  auto size = file.value()->Size();
  if (!size.ok()) return size.status();
  const uint64_t want = (num_pages + 1) * static_cast<uint64_t>(page_size);
  if (size.value() < want) {
    return Status::Corruption("checkpoint '" + path + "': truncated (" +
                              std::to_string(size.value()) + " of " +
                              std::to_string(want) + " bytes)");
  }

  auto store = std::unique_ptr<FilePageStore>(
      new FilePageStore(std::move(file).value(), path));
  store->page_size_ = page_size;
  store->num_data_pages_ = num_pages;
  store->payload_bytes_ = payload_bytes;
  store->epoch_ = epoch;
  return store;
}

Status FilePageStore::ReadPage(uint64_t index, std::string* payload) const {
  if (index == 0 || index > num_data_pages_) {
    return Status::OutOfRange("page index " + std::to_string(index) +
                              " not in [1, " +
                              std::to_string(num_data_pages_) + "]");
  }
  std::string page;
  RC_RETURN_IF_ERROR(file_->Read(index * page_size_, page_size_, &page));
  if (page.size() != page_size_) {
    return Status::Corruption("checkpoint '" + path_ + "' page " +
                              std::to_string(index) + ": short read");
  }
  size_t pos = 0;
  uint32_t crc = GetPod<uint32_t>(page, &pos);
  if (StoredCrc32c(std::string_view(page.data() + 4, page_size_ - 4)) != crc) {
    return Status::Corruption("checkpoint '" + path_ + "' page " +
                              std::to_string(index) + ": checksum mismatch");
  }
  uint64_t stored_index = GetPod<uint64_t>(page, &pos);
  if (stored_index != index) {
    return Status::Corruption("checkpoint '" + path_ + "' page " +
                              std::to_string(index) +
                              ": misdirected write (stored index " +
                              std::to_string(stored_index) + ")");
  }
  const size_t payload_per_page = page_size_ - kPageOverhead;
  const uint64_t off = (index - 1) * payload_per_page;
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(payload_per_page,
                                             payload_bytes_ - off));
  payload->assign(page, pos, take);
  return Status::OK();
}

Result<std::string> FilePageStore::ReadBlob() const {
  std::string blob;
  blob.reserve(payload_bytes_);
  std::string payload;
  for (uint64_t i = 1; i <= num_data_pages_; ++i) {
    RC_RETURN_IF_ERROR(ReadPage(i, &payload));
    blob += payload;
  }
  return blob;
}

}  // namespace rankcube
