#include "storage/pager.h"

#include <sstream>

namespace rankcube {

const char* IoCategoryName(IoCategory cat) {
  switch (cat) {
    case IoCategory::kTable:
      return "table";
    case IoCategory::kPosting:
      return "posting";
    case IoCategory::kComposite:
      return "composite";
    case IoCategory::kBTree:
      return "btree";
    case IoCategory::kRTree:
      return "rtree";
    case IoCategory::kCuboid:
      return "cuboid";
    case IoCategory::kBaseBlock:
      return "baseblock";
    case IoCategory::kSignature:
      return "signature";
    case IoCategory::kJoinSignature:
      return "joinsig";
    default:
      return "?";
  }
}

void Pager::Access(IoCategory cat, uint64_t key, uint64_t npages) {
  IoStats& s = stats_[static_cast<int>(cat)];
  s.logical += npages;
  if (npages != 1 || options_.cache_pages == 0) {
    s.physical += npages;
    return;
  }
  CacheKey ck = MakeKey(cat, key);
  auto it = in_cache_.find(ck);
  if (it != in_cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh
    return;                                       // hit: no physical access
  }
  s.physical += 1;
  lru_.push_front(ck);
  in_cache_[ck] = lru_.begin();
  if (lru_.size() > options_.cache_pages) {
    in_cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

uint64_t Pager::TotalLogical() const {
  uint64_t t = 0;
  for (const auto& s : stats_) t += s.logical;
  return t;
}

uint64_t Pager::TotalPhysical() const {
  uint64_t t = 0;
  for (const auto& s : stats_) t += s.physical;
  return t;
}

void Pager::ResetStats() { stats_.fill(IoStats{}); }

void Pager::ClearCache() {
  lru_.clear();
  in_cache_.clear();
}

std::string Pager::StatsString() const {
  std::ostringstream os;
  for (int c = 0; c < static_cast<int>(IoCategory::kNumCategories); ++c) {
    const IoStats& s = stats_[c];
    if (s.logical == 0) continue;
    os << IoCategoryName(static_cast<IoCategory>(c)) << "=" << s.physical
       << "/" << s.logical << " ";
  }
  return os.str();
}

}  // namespace rankcube
