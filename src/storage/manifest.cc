#include "storage/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"

namespace rankcube {

namespace {

constexpr char kHeaderLine[] = "rankcube-manifest v1\n";

std::string EpochName(const char* prefix, uint64_t epoch, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", prefix, epoch, suffix);
  return buf;
}

bool HasAffixes(const std::string& name, const char* prefix,
                const char* suffix) {
  size_t np = std::strlen(prefix);
  size_t ns = std::strlen(suffix);
  return name.size() > np + ns && name.compare(0, np, prefix) == 0 &&
         name.compare(name.size() - ns, ns, suffix) == 0;
}

/// Returns the value of "key=..." at line `pos` (advancing past it), or
/// nullopt on any mismatch.
bool TakeLine(const std::string& text, size_t* pos, const std::string& key,
              std::string* value) {
  size_t eol = text.find('\n', *pos);
  if (eol == std::string::npos) return false;
  std::string line = text.substr(*pos, eol - *pos);
  *pos = eol + 1;
  if (line.compare(0, key.size() + 1, key + "=") != 0) return false;
  *value = line.substr(key.size() + 1);
  return true;
}

}  // namespace

std::string CheckpointFileName(uint64_t epoch) {
  return EpochName("ckpt-", epoch, ".tab");
}

std::string WalFileName(uint64_t epoch) {
  return EpochName("wal-", epoch, ".log");
}

bool IsCheckpointFileName(const std::string& name) {
  return HasAffixes(name, "ckpt-", ".tab");
}

bool IsWalFileName(const std::string& name) {
  return HasAffixes(name, "wal-", ".log");
}

Status StoreManifest(Fs* fs, const std::string& dir,
                     const Manifest& manifest) {
  std::string body = kHeaderLine;
  body += "checkpoint=" + manifest.checkpoint_file + "\n";
  body += "epoch=" + std::to_string(manifest.epoch) + "\n";
  body += "wal=" + manifest.wal_file + "\n";
  body += "generation=" + std::to_string(manifest.generation) + "\n";
  std::string text = body + "crc=" + std::to_string(StoredCrc32c(body)) + "\n";
  return WriteFileAtomic(fs, dir, ManifestFileName(), text);
}

Result<Manifest> LoadManifest(Fs* fs, const std::string& dir) {
  const std::string path = JoinPath(dir, ManifestFileName());
  auto exists = fs->FileExists(path);
  if (!exists.ok()) return exists.status();
  if (!exists.value()) return Status::NotFound("no manifest in " + dir);

  auto text = fs->ReadFileToString(path);
  if (!text.ok()) return text.status();
  const std::string& data = text.value();

  auto corrupt = [&](const char* what) {
    return Status::Corruption(std::string("manifest '") + path + "': " + what);
  };
  if (data.compare(0, std::strlen(kHeaderLine), kHeaderLine) != 0) {
    return corrupt("bad header");
  }
  size_t pos = std::strlen(kHeaderLine);
  Manifest m;
  std::string value;
  if (!TakeLine(data, &pos, "checkpoint", &m.checkpoint_file)) {
    return corrupt("missing checkpoint line");
  }
  if (!TakeLine(data, &pos, "epoch", &value)) {
    return corrupt("missing epoch line");
  }
  char* end = nullptr;
  m.epoch = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) {
    return corrupt("bad epoch value");
  }
  if (!TakeLine(data, &pos, "wal", &m.wal_file)) {
    return corrupt("missing wal line");
  }
  // Optional (absent from pre-generation manifests, which still verify:
  // the crc covers whatever lines are present).
  size_t before_generation = pos;
  if (TakeLine(data, &pos, "generation", &value)) {
    m.generation = std::strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value.empty()) {
      return corrupt("bad generation value");
    }
  } else {
    pos = before_generation;
  }
  const std::string body = data.substr(0, pos);
  if (!TakeLine(data, &pos, "crc", &value)) {
    return corrupt("missing crc line");
  }
  uint32_t crc = static_cast<uint32_t>(std::strtoul(value.c_str(), &end, 10));
  if (*end != '\0' || StoredCrc32c(body) != crc) {
    return corrupt("checksum mismatch");
  }
  if (pos != data.size()) return corrupt("trailing bytes");
  return m;
}

}  // namespace rankcube
