// Write-ahead log for the DeltaStore mutation stream. Every acknowledged
// Insert/Delete is a CRC-framed record appended (and, per the fsync policy,
// synced) BEFORE the in-memory table mutates — so "the client saw OK"
// implies "the record is on stable storage" under FsyncPolicy::kAlways.
//
// Segment layout:
//   header   : "RCWL" | u32 version | u64 start_epoch | u32 crc(header)
//   record*  : u32 crc(body) | u32 body_len | body
//   body     : u8 type | u64 seq | payload
//     kInsert: u16 num_sel | u16 num_rank | i32*num_sel | f64*num_rank
//     kDelete: u32 tid
//
// seq is the table epoch AFTER applying the record; a segment starting at
// epoch E holds seq E+1, E+2, ... with no gaps. Replay is idempotent by
// construction: records with seq <= the table's current epoch are skipped
// (duplicates from a retried append or a re-replayed segment), so applying
// a log twice is a no-op.
//
// Recovery truncation contract (ReadWal): the valid prefix is returned; a
// corrupt or partial record ENDS the log. If the damage extends to
// end-of-file it is a torn tail — the expected shape after a mid-write
// crash — and the caller truncates the segment and keeps serving
// read-write. If a well-formed record parses BEYOND the damage, the middle
// of the log rotted; committed data after the hole would be silently lost,
// so the caller degrades to read-only instead of guessing.
//
// Values are serialized little-endian via memcpy: segments are
// machine-local recovery state, not an interchange format.
#ifndef RANKCUBE_STORAGE_WAL_H_
#define RANKCUBE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/delta_store.h"
#include "storage/fs.h"

namespace rankcube {

/// When an acknowledged write is on stable storage.
enum class FsyncPolicy {
  kAlways,  ///< fsync every commit: no acked write can be lost
  kBatch,   ///< group commit: fsync once >= batch_bytes are pending
  kOff,     ///< never fsync: the OS flushes eventually (benchmarking)
};

const char* FsyncPolicyName(FsyncPolicy policy);
/// Parses "always" | "batch" | "off".
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

class WalWriter {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    size_t batch_bytes = 1 << 16;  ///< kBatch: max unsynced bytes
  };

  /// Starts a fresh segment at `path` (truncating) whose records will begin
  /// at epoch `start_epoch` + 1; writes + syncs the header.
  static Result<std::unique_ptr<WalWriter>> Create(Fs* fs,
                                                   const std::string& path,
                                                   uint64_t start_epoch,
                                                   Options options);

  /// Reopens an existing (already validated + truncated) segment for
  /// further appends after recovery.
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      Fs* fs, const std::string& path, uint64_t start_epoch, uint64_t bytes,
      uint64_t records, Options options);

  Status AppendInsert(uint64_t seq, const std::vector<int32_t>& sel,
                      const std::vector<double>& rank);
  Status AppendDelete(uint64_t seq, Tid tid);

  /// Forces pending records to stable storage regardless of policy
  /// (checkpoint and clean-shutdown barrier).
  Status Sync();

  uint64_t start_epoch() const { return start_epoch_; }
  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, uint64_t start_epoch,
            uint64_t bytes, uint64_t records, Options options)
      : file_(std::move(file)),
        start_epoch_(start_epoch),
        bytes_(bytes),
        records_(records),
        options_(options) {}

  Status AppendRecord(std::string body);

  std::unique_ptr<WritableFile> file_;
  uint64_t start_epoch_;
  uint64_t bytes_;
  uint64_t records_;
  size_t unsynced_ = 0;
  Options options_;
};

/// One decoded WAL record.
struct WalRecord {
  DeltaStore::MutationKind kind;
  uint64_t seq = 0;
  std::vector<int32_t> sel;   ///< kInsert
  std::vector<double> rank;   ///< kInsert
  Tid tid = 0;                ///< kDelete
};

/// Result of scanning a segment (see the truncation contract above).
struct WalReadResult {
  uint64_t start_epoch = 0;
  std::vector<WalRecord> records;  ///< the valid prefix, in log order
  uint64_t valid_bytes = 0;        ///< prefix length incl. header; the
                                   ///< truncate point when torn
  bool torn_tail = false;          ///< damage at EOF (recoverable)
  bool mid_corruption = false;     ///< valid record past the damage (degrade)
  std::string damage;              ///< human-readable description
};

/// Scans `path`. Fails only when the file is missing/unreadable or its
/// HEADER is corrupt (nothing is salvageable then); record damage is
/// reported in the result, never as a Status.
Result<WalReadResult> ReadWal(Fs* fs, const std::string& path);

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_WAL_H_
