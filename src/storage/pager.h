// Simulated block device. The thesis evaluates methods by execution time and
// by the number of (4 KB) disk-block accesses; every structure in this
// repository (tables, B+-trees, R-trees, cuboids, base-block tables,
// signatures, join-signatures) routes page access through a Pager so those
// counts can be reported exactly. An optional LRU buffer cache models the
// node-buffering the thesis assumes ("many index implementations buffer the
// previously retrieved index nodes", §5.1.3).
#ifndef RANKCUBE_STORAGE_PAGER_H_
#define RANKCUBE_STORAGE_PAGER_H_

#include <array>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace rankcube {

/// Which subsystem a page belongs to; stats are reported per category.
enum class IoCategory : int {
  kTable = 0,       ///< heap pages of the base relation
  kPosting,         ///< per-dimension posting-list (non-clustered) indices
  kComposite,       ///< clustered composite index (rank-mapping baseline)
  kBTree,           ///< B+-tree nodes (Ch5 index-merge)
  kRTree,           ///< R-tree nodes (Ch4/Ch5/Ch7)
  kCuboid,          ///< ranking-cube cuboid cells / pseudo blocks (Ch3)
  kBaseBlock,       ///< base block table (Ch3)
  kSignature,       ///< partial signatures (Ch4/Ch7)
  kJoinSignature,   ///< join-signature state signatures (Ch5)
  kNumCategories,
};

/// Returns a short printable name ("rtree", "signature", ...).
const char* IoCategoryName(IoCategory cat);

/// Per-category access counters.
struct IoStats {
  uint64_t logical = 0;   ///< accesses requested
  uint64_t physical = 0;  ///< accesses that missed the buffer cache
};

/// Simulated pager; see file comment.
class Pager {
 public:
  struct Options {
    size_t page_size = 4096;  ///< bytes per block (thesis default)
    size_t cache_pages = 0;   ///< LRU capacity in pages; 0 disables caching
  };

  Pager() : Pager(Options{}) {}
  explicit Pager(Options options) : options_(options) {}

  size_t page_size() const { return options_.page_size; }

  /// Record an access to page `key` of `cat`. Multi-page reads (npages > 1)
  /// are charged fully and bypass the cache (they model sequential scans).
  void Access(IoCategory cat, uint64_t key, uint64_t npages = 1);

  const IoStats& stats(IoCategory cat) const {
    return stats_[static_cast<int>(cat)];
  }
  uint64_t TotalLogical() const;
  uint64_t TotalPhysical() const;

  void ResetStats();
  void ClearCache();

  /// One line per non-zero category; for harness output.
  std::string StatsString() const;

 private:
  using CacheKey = uint64_t;
  static CacheKey MakeKey(IoCategory cat, uint64_t key) {
    return (static_cast<uint64_t>(cat) << 56) ^ (key & 0x00FFFFFFFFFFFFFFull);
  }

  Options options_;
  std::array<IoStats, static_cast<int>(IoCategory::kNumCategories)> stats_{};

  // LRU cache: most-recent at front.
  std::list<CacheKey> lru_;
  std::unordered_map<CacheKey, std::list<CacheKey>::iterator> in_cache_;
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_PAGER_H_
