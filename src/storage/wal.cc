#include "storage/wal.h"

#include <cstring>

#include "common/crc32.h"

namespace rankcube {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'W', 'L'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;
constexpr size_t kRecordHeaderBytes = 4 + 4;  // crc + body_len
constexpr uint8_t kTypeInsert = 1;
constexpr uint8_t kTypeDelete = 2;
/// A body larger than this is certainly a corrupt length field.
constexpr uint32_t kMaxBodyBytes = 1 << 24;
/// How far past damage to look for a live record before concluding the
/// damage is a torn tail rather than mid-log rot.
constexpr uint64_t kResyncScanBytes = 1 << 16;

template <typename T>
void PutPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetPod(const std::string& in, size_t* pos, T* v) {
  if (in.size() - *pos < sizeof(T)) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" + name +
                                 "' (want always|batch|off)");
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Fs* fs,
                                                     const std::string& path,
                                                     uint64_t start_epoch,
                                                     Options options) {
  auto file = fs->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutPod(&header, kVersion);
  PutPod(&header, start_epoch);
  uint32_t crc = StoredCrc32c(header);
  PutPod(&header, crc);

  RC_RETURN_IF_ERROR(file.value()->Append(header));
  RC_RETURN_IF_ERROR(file.value()->Sync());
  return std::unique_ptr<WalWriter>(new WalWriter(
      std::move(file).value(), start_epoch, header.size(), 0, options));
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    Fs* fs, const std::string& path, uint64_t start_epoch, uint64_t bytes,
    uint64_t records, Options options) {
  auto file = fs->NewWritableFile(path, /*truncate=*/false);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WalWriter>(new WalWriter(
      std::move(file).value(), start_epoch, bytes, records, options));
}

Status WalWriter::AppendRecord(std::string body) {
  std::string frame;
  frame.reserve(kRecordHeaderBytes + body.size());
  PutPod(&frame, StoredCrc32c(body));
  PutPod(&frame, static_cast<uint32_t>(body.size()));
  frame += body;

  RC_RETURN_IF_ERROR(file_->Append(frame));
  bytes_ += frame.size();
  ++records_;
  unsynced_ += frame.size();
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kBatch:
      if (unsynced_ >= options_.batch_bytes) return Sync();
      return Status::OK();
    case FsyncPolicy::kOff:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::AppendInsert(uint64_t seq, const std::vector<int32_t>& sel,
                               const std::vector<double>& rank) {
  std::string body;
  body.reserve(1 + 8 + 4 + sel.size() * 4 + rank.size() * 8);
  PutPod(&body, kTypeInsert);
  PutPod(&body, seq);
  PutPod(&body, static_cast<uint16_t>(sel.size()));
  PutPod(&body, static_cast<uint16_t>(rank.size()));
  for (int32_t v : sel) PutPod(&body, v);
  for (double v : rank) PutPod(&body, v);
  return AppendRecord(std::move(body));
}

Status WalWriter::AppendDelete(uint64_t seq, Tid tid) {
  std::string body;
  body.reserve(1 + 8 + 4);
  PutPod(&body, kTypeDelete);
  PutPod(&body, seq);
  PutPod(&body, tid);
  return AppendRecord(std::move(body));
}

Status WalWriter::Sync() {
  if (unsynced_ == 0) return Status::OK();
  RC_RETURN_IF_ERROR(file_->Sync());
  unsynced_ = 0;
  return Status::OK();
}

namespace {

/// Decodes the body of one record; false on a structural mismatch (which,
/// with a matching CRC, would mean an encoder bug — still refuse).
bool DecodeBody(const std::string& body, WalRecord* rec) {
  size_t pos = 0;
  uint8_t type = 0;
  if (!GetPod(body, &pos, &type)) return false;
  if (!GetPod(body, &pos, &rec->seq)) return false;
  if (type == kTypeInsert) {
    rec->kind = DeltaStore::MutationKind::kInsert;
    uint16_t num_sel = 0;
    uint16_t num_rank = 0;
    if (!GetPod(body, &pos, &num_sel)) return false;
    if (!GetPod(body, &pos, &num_rank)) return false;
    if (body.size() - pos != num_sel * 4u + num_rank * 8u) return false;
    rec->sel.resize(num_sel);
    rec->rank.resize(num_rank);
    for (auto& v : rec->sel) {
      if (!GetPod(body, &pos, &v)) return false;
    }
    for (auto& v : rec->rank) {
      if (!GetPod(body, &pos, &v)) return false;
    }
    return true;
  }
  if (type == kTypeDelete) {
    rec->kind = DeltaStore::MutationKind::kDelete;
    return GetPod(body, &pos, &rec->tid) && pos == body.size();
  }
  return false;
}

/// Tries to parse one record at `pos`. Returns 1 on success (advances pos),
/// 0 when the bytes from pos to EOF cannot hold a whole valid record
/// (partial), -1 on a definite mismatch (CRC / structure).
int TryParseRecord(const std::string& data, size_t* pos, WalRecord* rec) {
  if (data.size() - *pos < kRecordHeaderBytes) return 0;
  size_t p = *pos;
  uint32_t crc = 0;
  uint32_t len = 0;
  GetPod(data, &p, &crc);
  GetPod(data, &p, &len);
  if (len > kMaxBodyBytes) return -1;
  if (data.size() - p < len) return 0;
  std::string body(data, p, len);
  if (StoredCrc32c(body) != crc) return -1;
  if (!DecodeBody(body, rec)) return -1;
  *pos = p + len;
  return 1;
}

}  // namespace

Result<WalReadResult> ReadWal(Fs* fs, const std::string& path) {
  auto data = fs->ReadFileToString(path);
  if (!data.ok()) return data.status();
  const std::string& bytes = data.value();

  WalReadResult out;
  if (bytes.size() < kHeaderBytes) {
    return Status::Corruption("wal '" + path + "': header truncated");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("wal '" + path + "': bad magic");
  }
  size_t pos = sizeof(kMagic);
  uint32_t version = 0;
  GetPod(bytes, &pos, &version);
  GetPod(bytes, &pos, &out.start_epoch);
  uint32_t crc = 0;
  GetPod(bytes, &pos, &crc);
  if (version != kVersion ||
      StoredCrc32c(std::string_view(bytes.data(), kHeaderBytes - 4)) != crc) {
    return Status::Corruption("wal '" + path + "': header checksum mismatch");
  }

  while (pos < bytes.size()) {
    WalRecord rec;
    size_t before = pos;
    int r = TryParseRecord(bytes, &pos, &rec);
    if (r == 1) {
      out.records.push_back(std::move(rec));
      continue;
    }
    // Damage at `before`. Torn tail or mid-log rot? Look ahead for any
    // byte offset where a whole valid record parses.
    out.valid_bytes = before;
    out.damage = (r == 0 ? "partial record at offset "
                         : "corrupt record at offset ") +
                 std::to_string(before);
    uint64_t limit =
        std::min<uint64_t>(bytes.size(), before + 1 + kResyncScanBytes);
    for (size_t scan = before + 1; scan < limit; ++scan) {
      size_t p = scan;
      WalRecord probe;
      if (TryParseRecord(bytes, &p, &probe) == 1) {
        out.mid_corruption = true;
        break;
      }
    }
    out.torn_tail = !out.mid_corruption;
    return out;
  }
  out.valid_bytes = bytes.size();
  return out;
}

}  // namespace rankcube
