// Filesystem abstraction the durability layer writes through. Every durable
// artifact (WAL segments, checkpoint files, the manifest) goes through an Fs
// so the crash-recovery tests can substitute FaultFs (fault_fs.h) — an
// in-memory filesystem with precise power-loss semantics: data survives a
// crash only up to the last Sync, and injected faults (short writes, fsync
// failures, kill points) land at deterministic operation counts. Production
// code uses Fs::Posix().
//
// Durability contract (matches what POSIX actually promises):
//  * WritableFile::Append buffers in the OS; only Sync() makes bytes
//    crash-durable. A crash may keep any prefix of unsynced appends — torn
//    writes included — which is why every record and page carries a CRC.
//  * Metadata ops (create, rename, remove) become durable with SyncDir() on
//    the containing directory; RenameFile over an existing target is atomic
//    (the reader sees the old file or the new one, never a mix).
#ifndef RANKCUBE_STORAGE_FS_H_
#define RANKCUBE_STORAGE_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rankcube {

/// Sequential append handle. Not thread-safe; one writer owns it.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Makes every appended byte crash-durable (fsync). An error here means
  /// the bytes may or may not be on stable storage — callers must treat the
  /// file as suspect (the WAL latches read-only).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional read handle; Read is thread-safe (pread semantics), which is
/// what lets the shared PageStore serve concurrent backing reads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to `n` bytes at `offset`; short only at end-of-file.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual Result<uint64_t> Size() const = 0;
};

class Fs {
 public:
  virtual ~Fs() = default;

  /// `truncate` false opens for append (creating if missing).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual Result<bool> FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Creates `path` (and parents); succeeds if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// File names (not paths) in `path`, unsorted; excludes "." / "..".
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;
  /// Makes metadata ops inside `path` crash-durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// The real filesystem; process-lifetime singleton.
  static Fs* Posix();
};

/// Writes `data` as `dir`/`filename` atomically: temp file in the same
/// directory, Sync, rename over the target, SyncDir. A crash leaves either
/// the old file or the complete new one — the manifest update primitive.
Status WriteFileAtomic(Fs* fs, const std::string& dir,
                       const std::string& filename, std::string_view data);

/// `dir` + "/" + `name` (no trailing-slash surprises).
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_FS_H_
