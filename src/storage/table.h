// In-memory column-major relation with S categorical selection dimensions and
// R real-valued ranking dimensions (§1.2.1 data model). Row fetches are
// charged to the I/O session as heap-page accesses so baselines that do random
// tuple lookups pay the same cost profile the thesis measures.
//
// The relation is versioned: Insert/Delete advance an epoch and log into a
// DeltaStore (delta_store.h), so access structures built over an earlier
// epoch can absorb exactly the missed mutations (ApplyDelta) and query
// execution can overlay an exact delta scan meanwhile. Deletes are
// tombstones — tids are never reused and the heap row stays in place — so
// every sequential scan and structure build must skip non-live rows.
#ifndef RANKCUBE_STORAGE_TABLE_H_
#define RANKCUBE_STORAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/delta_store.h"
#include "storage/io_session.h"

namespace rankcube {

/// Shape of a relation: cardinality of each selection dimension plus the
/// number of ranking dimensions. Ranking values live in [0, 1] by convention
/// (§3.2.2); generators normalize into that range.
struct TableSchema {
  std::vector<int32_t> sel_cardinality;  ///< size S; values in [0, card)
  int num_rank_dims = 0;                 ///< R

  int num_sel_dims() const { return static_cast<int>(sel_cardinality.size()); }
};

/// Column-major table. Rows are identified by insertion order; deleted rows
/// stay in the heap as tombstones.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_sel_dims() const { return schema_.num_sel_dims(); }
  int num_rank_dims() const { return schema_.num_rank_dims; }

  /// Appends a row without logging a mutation: the bulk-load path for the
  /// base relation, used before any access structure exists. Validation is
  /// all-or-nothing: `sel` must have S entries in domain, `rank` R entries
  /// in [0, 1]; a rejected row leaves the table untouched.
  Status AddRow(const std::vector<int32_t>& sel,
                const std::vector<double>& rank);

  // --- durability hooks (write-ahead ordering) ----------------------------

  /// The validation half of AddRow with no side effects. The durable write
  /// path must know a mutation will apply BEFORE logging it to the WAL —
  /// otherwise replay would re-hit the validation error and diverge.
  Status ValidateRow(const std::vector<int32_t>& sel,
                     const std::vector<double>& rank) const;
  /// Same for Delete: OK iff Delete(row) would succeed right now.
  Status CanDelete(Tid row) const;

  /// Snapshot restore: stamps the epoch and tombstone set recorded by a
  /// checkpoint onto a freshly bulk-loaded table. Only valid before any
  /// logged mutation (the delta log must be empty).
  void RestoreRecoveryState(uint64_t epoch, const std::vector<Tid>& tombstones);

  // --- write path (logged; drives incremental maintenance) ---------------

  /// Appends a row and records the mutation; returns the new tid. Same
  /// validation as AddRow. Structures built earlier see the insert through
  /// ApplyDelta / the engine-level delta overlay.
  Result<Tid> Insert(const std::vector<int32_t>& sel,
                     const std::vector<double>& rank);

  /// Tombstones `row` and records the mutation. The heap row remains (tids
  /// are never reused); scans and builds skip it via is_live().
  Status Delete(Tid row);

  bool is_live(Tid row) const { return !delta_.is_deleted(row); }
  /// Rows minus tombstones.
  size_t num_live() const { return num_rows_ - delta_.num_deleted(); }
  /// Mutations ever applied (0 for a pure bulk-loaded table).
  uint64_t epoch() const { return delta_.epoch(); }
  const DeltaStore& delta() const { return delta_; }
  /// Truncates the mutation log after every built structure absorbed it
  /// (RankCubeDb::Compact). Tombstones persist.
  void MarkCompacted() { delta_.Truncate(); }

  int32_t sel(Tid row, int dim) const { return sel_cols_[dim][row]; }
  double rank(Tid row, int dim) const { return rank_cols_[dim][row]; }

  /// Allocation-free row gather: writes the R ranking values of `row` into
  /// `out` (caller-provided, size >= R). For build paths that need a dense
  /// point; query paths should read rank_col() column-direct instead.
  void CopyRankRow(Tid row, double* out) const {
    for (size_t d = 0; d < rank_cols_.size(); ++d) out[d] = rank_cols_[d][row];
  }
  /// Pointer view used on hot paths; valid until the next AddRow/Insert.
  const double* rank_col(int dim) const { return rank_cols_[dim].data(); }
  /// Same for selection columns (the fused kernels' predicate pass).
  const int32_t* sel_col(int dim) const { return sel_cols_[dim].data(); }

  /// Bytes a row occupies in the simulated heap file.
  size_t RowBytes() const;
  /// Rows that fit one heap page of `page_size` bytes.
  size_t RowsPerPage(size_t page_size) const;
  /// Total heap pages of the relation (used by sequential scans).
  uint64_t NumPages(size_t page_size) const;
  /// Heap pages a sequential scan of the tail [first_row, num_rows) touches
  /// — the delta-overlay scan cost.
  uint64_t TailPages(Tid first_row, size_t page_size) const;

  /// Charge a random access fetching `row`'s heap page.
  void ChargeRowFetch(IoSession* io, Tid row) const;
  /// Charge a full sequential scan of the heap file.
  void ChargeFullScan(IoSession* io) const;
  /// Charge a sequential scan of the heap tail starting at `first_row`
  /// (the delta rows appended since some epoch).
  void ChargeTailScan(IoSession* io, Tid first_row) const;

 private:
  TableSchema schema_;
  size_t num_rows_ = 0;
  std::vector<std::vector<int32_t>> sel_cols_;
  std::vector<std::vector<double>> rank_cols_;
  DeltaStore delta_;
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_TABLE_H_
