// In-memory column-major relation with S categorical selection dimensions and
// R real-valued ranking dimensions (§1.2.1 data model). Row fetches are
// charged to the I/O session as heap-page accesses so baselines that do random
// tuple lookups pay the same cost profile the thesis measures.
#ifndef RANKCUBE_STORAGE_TABLE_H_
#define RANKCUBE_STORAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/io_session.h"

namespace rankcube {

using Tid = uint32_t;  ///< tuple identifier (dense, 0-based)

/// Shape of a relation: cardinality of each selection dimension plus the
/// number of ranking dimensions. Ranking values live in [0, 1] by convention
/// (§3.2.2); generators normalize into that range.
struct TableSchema {
  std::vector<int32_t> sel_cardinality;  ///< size S; values in [0, card)
  int num_rank_dims = 0;                 ///< R

  int num_sel_dims() const { return static_cast<int>(sel_cardinality.size()); }
};

/// Column-major table. Append-only; rows are identified by insertion order.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_sel_dims() const { return schema_.num_sel_dims(); }
  int num_rank_dims() const { return schema_.num_rank_dims; }

  /// Appends a row; `sel` must have S entries in range, `rank` R entries.
  Status AddRow(const std::vector<int32_t>& sel,
                const std::vector<double>& rank);

  int32_t sel(Tid row, int dim) const { return sel_cols_[dim][row]; }
  double rank(Tid row, int dim) const { return rank_cols_[dim][row]; }

  /// Copy of the full ranking-vector of a row (size R).
  std::vector<double> RankRow(Tid row) const;
  /// Allocation-free variant: writes the R ranking values of `row` into
  /// `out` (caller-provided, size >= R). For build paths that need a dense
  /// point; query paths should read rank_col() column-direct instead.
  void CopyRankRow(Tid row, double* out) const {
    for (size_t d = 0; d < rank_cols_.size(); ++d) out[d] = rank_cols_[d][row];
  }
  /// Pointer view used on hot paths; valid until the next AddRow.
  const double* rank_col(int dim) const { return rank_cols_[dim].data(); }

  /// Bytes a row occupies in the simulated heap file.
  size_t RowBytes() const;
  /// Rows that fit one heap page of `page_size` bytes.
  size_t RowsPerPage(size_t page_size) const;
  /// Total heap pages of the relation (used by sequential scans).
  uint64_t NumPages(size_t page_size) const;

  /// Charge a random access fetching `row`'s heap page.
  void ChargeRowFetch(IoSession* io, Tid row) const;
  /// Charge a full sequential scan of the heap file.
  void ChargeFullScan(IoSession* io) const;

 private:
  TableSchema schema_;
  size_t num_rows_ = 0;
  std::vector<std::vector<int32_t>> sel_cols_;
  std::vector<std::vector<double>> rank_cols_;
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_TABLE_H_
