// Mutation log + tombstone bitmap that make a Table writable without
// rebuilding its access structures. The paper's rank-aware organization
// makes maintenance naturally local — one inserted tuple lands in one base
// block, one cuboid cell per cuboid, one R-tree leaf — so the storage layer
// records *which* tuples changed and every structure absorbs exactly the
// mutations it has not seen yet (ApplyDelta against its built_epoch).
//
// Model:
//  * The epoch is the count of mutations ever applied. Each Table::Insert /
//    Table::Delete appends one log entry and advances the epoch by one.
//  * Tids are never reused. Inserts append rows at the heap tail; deletes
//    set a tombstone bit and leave the heap row in place. A structure built
//    (or maintained) at epoch E therefore holds exactly the live-at-E rows
//    among [0, rows-at-E) — "what changed since E" is a log suffix.
//  * Compaction truncates the log once every built structure has absorbed
//    it; tombstones persist (the heap still carries the dead rows, and
//    sequential scans must keep skipping them).
#ifndef RANKCUBE_STORAGE_DELTA_STORE_H_
#define RANKCUBE_STORAGE_DELTA_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rankcube {

using Tid = uint32_t;  ///< tuple identifier (dense, 0-based, never reused)

class DeltaStore {
 public:
  enum class MutationKind : uint8_t { kInsert, kDelete };
  struct Mutation {
    MutationKind kind;
    Tid tid;
  };

  /// Mutations ever applied; log entry i happened at epoch
  /// compacted_epoch() + i + 1.
  uint64_t epoch() const { return compacted_epoch_ + log_.size(); }
  /// Epoch of the last compaction; the log holds (epoch() -
  /// compacted_epoch()) entries.
  uint64_t compacted_epoch() const { return compacted_epoch_; }
  size_t log_size() const { return log_.size(); }
  bool empty() const { return log_.empty(); }

  bool is_deleted(Tid tid) const {
    return tid < deleted_.size() && deleted_[tid] != 0;
  }
  /// Tombstones ever set (they survive compaction).
  size_t num_deleted() const { return num_deleted_; }

  /// Splits the log suffix after epoch `since` into inserted and deleted
  /// tids (each in log = tid-ascending order). A tuple born and deleted
  /// inside the suffix appears in both lists. `since` below the compacted
  /// epoch is clamped — callers maintain structures at least as fresh as
  /// the last compaction, so nothing is ever silently lost.
  void ChangesSince(uint64_t since, std::vector<Tid>* inserted,
                    std::vector<Tid>* deleted) const;
  size_t InsertsSince(uint64_t since) const;
  size_t DeletesSince(uint64_t since) const;
  /// First tid appended after epoch `since` (the delta tail start); false
  /// when nothing was inserted since.
  bool FirstInsertSince(uint64_t since, Tid* tid) const;

  /// What a structure at epoch `since` owes, in one log pass. `deletes`
  /// counts only rows that existed at `since` — tombstones of rows born
  /// inside the suffix never reached the structure, so neither the query
  /// overlay's k + D inflation nor the planner's staleness term should pay
  /// for them. (Appended tids are monotone, so "existed at since" is
  /// simply tid < first_insert.)
  struct PendingSummary {
    uint64_t inserts = 0;
    uint64_t deletes = 0;     ///< of rows the structure may actually hold
    bool has_insert = false;
    Tid first_insert = 0;     ///< delta tail start; valid when has_insert
  };
  PendingSummary Pending(uint64_t since) const;

  /// Recording; called by Table (which owns validation).
  void RecordInsert(Tid tid) { log_.push_back({MutationKind::kInsert, tid}); }
  void RecordDelete(Tid tid);

  /// Drops the log (base for future ChangesSince calls becomes the current
  /// epoch). Tombstones are kept: the heap still holds the dead rows.
  void Truncate() {
    compacted_epoch_ += log_.size();
    log_.clear();
  }

  /// Checkpoint restore: stamps the compacted epoch and tombstone set a
  /// snapshot recorded. The snapshotted log suffix is irrelevant after a
  /// restart (no built structure survives the process), so the restored
  /// store starts with an empty log at `compacted_epoch`. Only valid on a
  /// store that has recorded nothing yet.
  void RestoreForRecovery(uint64_t compacted_epoch,
                          const std::vector<Tid>& tombstones) {
    compacted_epoch_ = compacted_epoch;
    for (Tid tid : tombstones) {
      if (!is_deleted(tid)) RecordDelete(tid);
    }
    log_.clear();
  }

 private:
  /// First log index after epoch `since` (clamped).
  size_t SuffixBegin(uint64_t since) const {
    return since <= compacted_epoch_
               ? 0
               : static_cast<size_t>(since - compacted_epoch_);
  }

  uint64_t compacted_epoch_ = 0;
  std::vector<Mutation> log_;
  std::vector<uint8_t> deleted_;  ///< tombstones; sized lazily on first delete
  size_t num_deleted_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_STORAGE_DELTA_STORE_H_
