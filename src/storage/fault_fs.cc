#include "storage/fault_fs.h"

#include <algorithm>

namespace rankcube {

namespace {

Status Crashed() {
  return Status::Internal("simulated power loss (FaultFs kill point)");
}

}  // namespace

// Holds a shared_ptr to the state so a handle stays valid across renames of
// its path (exactly like a POSIX fd does).
class FaultFs::FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultFs* fs, std::shared_ptr<FileState> state)
      : fs_(fs), state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    bool short_write = false;
    Status s = fs_->ChargeOpLocked(/*is_sync=*/false, &short_write);
    if (!s.ok()) return s;
    if (short_write) {
      state_->data.append(data.data(), data.size() / 2);
      return Crashed();
    }
    state_->data.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    Status s = fs_->ChargeOpLocked(/*is_sync=*/true, nullptr);
    if (!s.ok()) return s;
    state_->synced = state_->data.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  FaultFs* fs_;
  std::shared_ptr<FileState> state_;
};

class FaultFs::FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(const FaultFs* fs, std::shared_ptr<FileState> state)
      : fs_(fs), state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    out->clear();
    if (offset >= state_->data.size()) return Status::OK();
    size_t take = std::min<uint64_t>(n, state_->data.size() - offset);
    out->assign(state_->data, offset, take);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    return static_cast<uint64_t>(state_->data.size());
  }

 private:
  const FaultFs* fs_;
  std::shared_ptr<FileState> state_;
};

Status FaultFs::ChargeOpLocked(bool is_sync, bool* short_write) {
  if (crashed_) return Crashed();
  int64_t op = ops_++;
  if (!is_sync && short_write != nullptr && plan_.short_write_at >= 0 &&
      op == plan_.short_write_at) {
    crashed_ = true;
    *short_write = true;
    return Status::OK();  // the caller tears the write, then reports crash
  }
  if (is_sync && plan_.fail_sync_at >= 0 && op == plan_.fail_sync_at) {
    return Status::Internal("fsync: Input/output error (injected)");
  }
  if (plan_.crash_after_ops >= 0 && op >= plan_.crash_after_ops) {
    crashed_ = true;
    return Crashed();
  }
  return Status::OK();
}

FaultFs::FileState* FaultFs::FindLocked(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second.get();
}

Result<std::unique_ptr<WritableFile>> FaultFs::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Crashed();
  auto it = files_.find(path);
  if (it == files_.end()) {
    it = files_.emplace(path, std::make_shared<FileState>()).first;
  } else if (truncate) {
    it->second->data.clear();
    it->second->synced = 0;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, it->second));
}

Result<std::unique_ptr<RandomAccessFile>> FaultFs::NewRandomAccessFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState* state = FindLocked(path);
  if (state == nullptr) return Status::NotFound("no such file: " + path);
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultRandomAccessFile>(this, files_[path]));
}

Result<std::string> FaultFs::ReadFileToString(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState* state = FindLocked(path);
  if (state == nullptr) return Status::NotFound("no such file: " + path);
  return state->data;
}

Result<bool> FaultFs::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(path) != nullptr;
}

Result<uint64_t> FaultFs::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState* state = FindLocked(path);
  if (state == nullptr) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(state->data.size());
}

Status FaultFs::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Crashed();
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = it->second;  // overwrite-atomic, like POSIX rename
  files_.erase(it);
  return Status::OK();
}

Status FaultFs::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Crashed();
  if (files_.erase(path) == 0) return Status::NotFound("no such file: " + path);
  return Status::OK();
}

Status FaultFs::TruncateFile(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Crashed();
  FileState* state = FindLocked(path);
  if (state == nullptr) return Status::NotFound("no such file: " + path);
  if (size < state->data.size()) state->data.resize(size);
  state->synced = std::min<uint64_t>(state->synced, size);
  return Status::OK();
}

Status FaultFs::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Crashed();
  dirs_.insert(path);
  return Status::OK();
}

Result<std::vector<std::string>> FaultFs::ListDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [file_path, state] : files_) {
    (void)state;
    if (file_path.rfind(prefix, 0) == 0 &&
        file_path.find('/', prefix.size()) == std::string::npos) {
      names.push_back(file_path.substr(prefix.size()));
    }
  }
  return names;
}

Status FaultFs::SyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Crashed();
  // Metadata is modeled durable-on-commit; nothing further to do.
  (void)path;
  return Status::OK();
}

void FaultFs::SetPlan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  ops_ = 0;
  crashed_ = false;
}

void FaultFs::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    (void)path;
    uint64_t keep = std::min<uint64_t>(
        state->data.size(), state->synced + plan_.torn_tail_bytes);
    state->data.resize(keep);
    state->synced = std::min<uint64_t>(state->synced, keep);
  }
  plan_ = FaultPlan{};
  ops_ = 0;
  crashed_ = false;
}

bool FaultFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

int64_t FaultFs::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

Status FaultFs::CorruptByte(const std::string& path, uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState* state = FindLocked(path);
  if (state == nullptr) return Status::NotFound("no such file: " + path);
  if (offset >= state->data.size()) {
    return Status::OutOfRange("corrupt offset beyond file size");
  }
  state->data[offset] = static_cast<char>(state->data[offset] ^ 0x5A);
  return Status::OK();
}

}  // namespace rankcube
