#include "storage/durability.h"

#include <chrono>

#include "storage/snapshot.h"

namespace rankcube {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Writes `table`'s snapshot as `dir`/`name` atomically (temp + rename).
Status WriteCheckpointFile(Fs* fs, const std::string& dir,
                           const std::string& name, const Table& table,
                           size_t page_size) {
  const std::string tmp = JoinPath(dir, name + ".tmp");
  RC_RETURN_IF_ERROR(FilePageStore::WriteBlobFile(
      fs, tmp, EncodeTableSnapshot(table), page_size, table.epoch()));
  RC_RETURN_IF_ERROR(fs->RenameFile(tmp, JoinPath(dir, name)));
  return fs->SyncDir(dir);
}

}  // namespace

Result<bool> ApplyWalRecord(Table* table, const WalRecord& rec) {
  if (rec.seq <= table->epoch()) return false;  // already applied
  if (rec.seq != table->epoch() + 1) {
    return Status::Corruption("wal sequence gap: record " +
                              std::to_string(rec.seq) + " at table epoch " +
                              std::to_string(table->epoch()));
  }
  if (rec.kind == DeltaStore::MutationKind::kInsert) {
    auto tid = table->Insert(rec.sel, rec.rank);
    if (!tid.ok()) {
      return Status::Corruption("wal insert at seq " + std::to_string(rec.seq) +
                                " rejected: " + tid.status().message());
    }
  } else {
    Status s = table->Delete(rec.tid);
    if (!s.ok()) {
      return Status::Corruption("wal delete at seq " + std::to_string(rec.seq) +
                                " rejected: " + s.message());
    }
  }
  return true;
}

Result<DurabilityManager::Opened> DurabilityManager::Open(
    const DurabilityOptions& options, const Table& seed) {
  auto t0 = std::chrono::steady_clock::now();
  DurabilityOptions opts = options;
  if (opts.fs == nullptr) opts.fs = Fs::Posix();
  Fs* fs = opts.fs;
  RC_RETURN_IF_ERROR(fs->CreateDir(opts.data_dir));

  Opened out;
  out.manager =
      std::unique_ptr<DurabilityManager>(new DurabilityManager(opts));
  DurabilityManager& mgr = *out.manager;

  auto manifest = LoadManifest(fs, opts.data_dir);
  if (!manifest.ok() &&
      manifest.status().code() != Status::Code::kNotFound) {
    return manifest.status();  // corrupt manifest: hard stop
  }

  if (!manifest.ok()) {
    // Fresh directory: the seed table becomes checkpoint zero.
    out.info.created = true;
    out.info.checkpoint_epoch = seed.epoch();
    mgr.manifest_.epoch = seed.epoch();
    mgr.manifest_.checkpoint_file = CheckpointFileName(seed.epoch());
    mgr.manifest_.wal_file = WalFileName(seed.epoch());
    mgr.manifest_.generation = 1;  // the seed checkpoint
    RC_RETURN_IF_ERROR(WriteCheckpointFile(fs, opts.data_dir,
                                           mgr.manifest_.checkpoint_file, seed,
                                           opts.page_size));
    auto wal = WalWriter::Create(fs, JoinPath(opts.data_dir,
                                              mgr.manifest_.wal_file),
                                 seed.epoch(), mgr.WalOptions());
    if (!wal.ok()) return wal.status();
    mgr.wal_ = std::move(wal).value();
    RC_RETURN_IF_ERROR(StoreManifest(fs, opts.data_dir, mgr.manifest_));
  } else {
    out.info.recovered = true;
    mgr.manifest_ = std::move(manifest).value();
    out.info.checkpoint_epoch = mgr.manifest_.epoch;

    // Checkpoint: must decode fully, every page CRC-verified.
    auto ckpt = FilePageStore::Open(
        fs, JoinPath(opts.data_dir, mgr.manifest_.checkpoint_file));
    if (!ckpt.ok()) return ckpt.status();
    auto blob = ckpt.value()->ReadBlob();
    if (!blob.ok()) return blob.status();
    auto table = DecodeTableSnapshot(blob.value());
    if (!table.ok()) return table.status();
    if (table.value().epoch() != mgr.manifest_.epoch) {
      return Status::Corruption("checkpoint epoch " +
                                std::to_string(table.value().epoch()) +
                                " disagrees with manifest epoch " +
                                std::to_string(mgr.manifest_.epoch));
    }
    out.table.emplace(std::move(table).value());
    mgr.checkpoint_pages_ = std::move(ckpt).value();

    // WAL: replay the valid prefix; classify any damage.
    const std::string wal_path =
        JoinPath(opts.data_dir, mgr.manifest_.wal_file);
    auto degrade = [&](const std::string& reason) {
      out.info.read_only = true;
      out.info.degraded_reason = reason;
    };
    auto wal = ReadWal(fs, wal_path);
    if (!wal.ok()) {
      degrade("wal unreadable: " + wal.status().message());
    } else if (wal.value().start_epoch != mgr.manifest_.epoch) {
      degrade("wal starts at epoch " +
              std::to_string(wal.value().start_epoch) +
              ", checkpoint is at " + std::to_string(mgr.manifest_.epoch));
    } else {
      const WalReadResult& scan = wal.value();
      out.info.wal_bytes = scan.valid_bytes;
      out.info.torn_tail = scan.torn_tail;
      for (const WalRecord& rec : scan.records) {
        auto applied = ApplyWalRecord(&out.table.value(), rec);
        if (!applied.ok()) {
          degrade(applied.status().message());
          break;
        }
        if (applied.value()) {
          ++out.info.replayed;
        } else {
          ++out.info.skipped_duplicates;
        }
      }
      if (!out.info.read_only && scan.mid_corruption) {
        degrade("wal " + scan.damage +
                " with valid records beyond it (committed data lost)");
      }
      if (!out.info.read_only && scan.torn_tail) {
        // The expected crash shape: drop the torn bytes, keep serving.
        RC_RETURN_IF_ERROR(fs->TruncateFile(wal_path, scan.valid_bytes));
      }
      if (!out.info.read_only) {
        auto writer = WalWriter::OpenForAppend(fs, wal_path,
                                               scan.start_epoch,
                                               scan.valid_bytes,
                                               scan.records.size(),
                                               mgr.WalOptions());
        if (!writer.ok()) return writer.status();
        mgr.wal_ = std::move(writer).value();
      }
    }
  }

  if (mgr.checkpoint_pages_ == nullptr) {
    auto ckpt = FilePageStore::Open(
        fs, JoinPath(opts.data_dir, mgr.manifest_.checkpoint_file));
    if (!ckpt.ok()) return ckpt.status();
    mgr.checkpoint_pages_ = std::move(ckpt).value();
  }
  out.info.recovery_ms = MsSince(t0);
  return out;
}

Status DurabilityManager::LogInsert(uint64_t seq,
                                    const std::vector<int32_t>& sel,
                                    const std::vector<double>& rank) {
  if (wal_ == nullptr) return Status::Internal("wal unavailable (read-only)");
  return wal_->AppendInsert(seq, sel, rank);
}

Status DurabilityManager::LogDelete(uint64_t seq, Tid tid) {
  if (wal_ == nullptr) return Status::Internal("wal unavailable (read-only)");
  return wal_->AppendDelete(seq, tid);
}

Status DurabilityManager::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Status DurabilityManager::Checkpoint(const Table& table) {
  Fs* fs = options_.fs;
  const uint64_t epoch = table.epoch();

  // 1. Snapshot to its final name (temp + rename inside).
  Manifest next;
  next.epoch = epoch;
  next.checkpoint_file = CheckpointFileName(epoch);
  next.wal_file = WalFileName(epoch);
  next.generation = manifest_.generation + 1;
  RC_RETURN_IF_ERROR(WriteCheckpointFile(fs, options_.data_dir,
                                         next.checkpoint_file, table,
                                         options_.page_size));

  // 2. Fresh WAL at the checkpoint's epoch. If the epoch did not advance
  // since the last checkpoint the name collides with the live segment —
  // harmless: zero mutations happened, so the segment holds no record the
  // previous manifest still needs.
  auto wal = WalWriter::Create(fs, JoinPath(options_.data_dir, next.wal_file),
                               epoch, WalOptions());
  if (!wal.ok()) return wal.status();

  // 3. Commit point: the manifest rename.
  RC_RETURN_IF_ERROR(StoreManifest(fs, options_.data_dir, next));
  manifest_ = next;
  wal_ = std::move(wal).value();

  // 4. Superseded files are now unreferenced; reopen the backing handle.
  CollectGarbage();
  auto ckpt = FilePageStore::Open(
      fs, JoinPath(options_.data_dir, manifest_.checkpoint_file));
  if (!ckpt.ok()) return ckpt.status();
  checkpoint_pages_ = std::move(ckpt).value();
  return Status::OK();
}

void DurabilityManager::CollectGarbage() {
  auto names = options_.fs->ListDir(options_.data_dir);
  if (!names.ok()) return;
  for (const std::string& name : names.value()) {
    bool gc = (IsCheckpointFileName(name) &&
               name != manifest_.checkpoint_file) ||
              (IsWalFileName(name) && name != manifest_.wal_file);
    if (gc) {
      Status s = options_.fs->RemoveFile(JoinPath(options_.data_dir, name));
      (void)s;  // best-effort: a leaked old file is re-GC'd next checkpoint
    }
  }
}

}  // namespace rankcube
