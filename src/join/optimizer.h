// SPJR query optimizer (§6.2): picks the per-relation access path
// (rank-aware cube stream vs boolean-first materialize+sort) from estimated
// page costs, using posting-list selectivities as cardinality estimates.
#ifndef RANKCUBE_JOIN_OPTIMIZER_H_
#define RANKCUBE_JOIN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "func/query.h"
#include "index/posting.h"
#include "storage/table.h"

namespace rankcube {

struct AccessPlan {
  enum class Kind {
    kCubeStream,       ///< progressive rank-aware selection (§6.3.1)
    kMaterializeSort,  ///< fetch all matches, sort by score
  };
  Kind kind = Kind::kCubeStream;
  double est_matches = 0.0;  ///< estimated qualifying tuples
  double est_cost = 0.0;     ///< estimated page cost of the chosen plan
  std::string explain;
};

/// Estimated number of tuples matching a conjunction, from exact posting
/// sizes assuming dimension independence (§6.2.1).
double EstimateMatches(const Table& table, const PostingIndex& posting,
                       const std::vector<Predicate>& predicates);

/// Chooses the access path for one relation of a top-k join: with very few
/// matches, materializing beats progressive search; with many, the cube
/// stream only touches what the join consumes.
AccessPlan ChooseAccessPath(const Table& table, const PostingIndex& posting,
                            const std::vector<Predicate>& predicates, int k,
                            const PageStore& store);

}  // namespace rankcube

#endif  // RANKCUBE_JOIN_OPTIMIZER_H_
