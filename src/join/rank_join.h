// Multi-way rank join (§6.3.2): a hash-ripple join over rank-aware
// selection streams with bound-based early termination and list pruning
// (§6.3.3). Combined score = sum of per-relation scores (monotone).
#ifndef RANKCUBE_JOIN_RANK_JOIN_H_
#define RANKCUBE_JOIN_RANK_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/topk_query.h"
#include "join/ranked_stream.h"

namespace rankcube {

/// One joined result: a tuple id per relation plus the combined score.
struct JoinedResult {
  std::vector<Tid> tids;
  double score = 0.0;

  bool operator<(const JoinedResult& o) const {
    return score < o.score || (score == o.score && tids < o.tids);
  }
};

/// Resolves a relation-local tuple to its join-key value.
using JoinKeyFn = std::function<int32_t(int relation, Tid tid)>;

struct RankJoinStats {
  uint64_t tuples_pulled = 0;   ///< stream GetNext calls that returned data
  uint64_t results_formed = 0;  ///< join combinations materialized
  uint64_t pruned_tuples = 0;   ///< dropped by list pruning
};

/// Top-k over the equi-join of the streams. Stops as soon as the k-th
/// combined score is at most the HRJN-style threshold
///   tau = max_i ( last_i + sum_{j != i} best_j ).
std::vector<JoinedResult> MultiWayRankJoin(
    const std::vector<RankedStream*>& streams, const JoinKeyFn& join_key,
    int k, RankJoinStats* join_stats = nullptr);

}  // namespace rankcube

#endif  // RANKCUBE_JOIN_RANK_JOIN_H_
