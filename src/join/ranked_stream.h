// Rank-aware selection (§6.3.1): a resumable stream of tuples from one
// relation, filtered by local boolean predicates and emitted in ascending
// ranking-score order. The cube-backed implementation runs Algorithm 3
// incrementally (one confirmed tuple per GetNext); the materialize-sort
// implementation is the plan a conventional executor would pick for very
// selective predicates.
#ifndef RANKCUBE_JOIN_RANKED_STREAM_H_
#define RANKCUBE_JOIN_RANKED_STREAM_H_

#include <memory>
#include <queue>
#include <vector>

#include "core/rtree_search.h"
#include "core/signature_cube.h"

namespace rankcube {

class RankedStream {
 public:
  virtual ~RankedStream() = default;

  /// Next qualifying tuple in ascending score order; false when drained.
  virtual bool GetNext(Tid* tid, double* score) = 0;

  /// Lower bound on the score of any tuple not yet returned (+inf when
  /// drained). Feeds the rank-join threshold (§6.3.2).
  virtual double BestPossibleNext() const = 0;
};

/// Algorithm-3-based progressive stream over a relation's signature cube.
class CubeRankedStream : public RankedStream {
 public:
  /// `pruner` may be nullptr (no predicates). Keeps references; the cube,
  /// session and stats must outlive the stream.
  CubeRankedStream(const Table& table, const SignatureCube& cube,
                   RankingFunctionPtr function,
                   std::unique_ptr<BooleanPruner> pruner, IoSession* io,
                   ExecStats* stats);

  bool GetNext(Tid* tid, double* score) override;
  double BestPossibleNext() const override;

 private:
  struct Entry {
    double score;
    bool is_tuple;
    uint32_t node_id;
    Tid tid;
    std::vector<int> path;
    bool operator>(const Entry& o) const { return score > o.score; }
  };

  const Table& table_;
  const SignatureCube& cube_;
  RankingFunctionPtr f_;
  kernels::BlockEvaluator eval_;  ///< fused leaf scoring (after f_: init order)
  std::unique_ptr<BooleanPruner> pruner_;
  IoSession* io_;
  ExecStats* stats_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<Tid> leaf_tids_;      ///< batch scoring scratch
  std::vector<double> leaf_scores_;
};

/// Materialized stream: predicates evaluated up front (boolean-first), all
/// matches scored and sorted.
class SortedVectorStream : public RankedStream {
 public:
  SortedVectorStream(std::vector<ScoredTuple> sorted)
      : items_(std::move(sorted)) {}

  bool GetNext(Tid* tid, double* score) override {
    if (pos_ >= items_.size()) return false;
    *tid = items_[pos_].tid;
    *score = items_[pos_].score;
    ++pos_;
    return true;
  }

  double BestPossibleNext() const override {
    return pos_ < items_.size() ? items_[pos_].score : kInfScore;
  }

 private:
  std::vector<ScoredTuple> items_;
  size_t pos_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_JOIN_RANKED_STREAM_H_
