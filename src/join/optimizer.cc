#include "join/optimizer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rankcube {

double EstimateMatches(const Table& table, const PostingIndex& posting,
                       const std::vector<Predicate>& predicates) {
  double t = static_cast<double>(table.num_rows());
  if (t == 0) return 0.0;
  double est = t;
  for (const auto& p : predicates) {
    double sel =
        static_cast<double>(posting.ListSize(p.dim, p.value)) / t;
    est *= sel;
  }
  return est;
}

AccessPlan ChooseAccessPath(const Table& table, const PostingIndex& posting,
                            const std::vector<Predicate>& predicates, int k,
                            const PageStore& store) {
  AccessPlan plan;
  plan.est_matches = EstimateMatches(table, posting, predicates);

  // Materialize plan: scan the most selective posting list, one random heap
  // access per candidate, then an in-memory sort of the matches.
  double min_list = static_cast<double>(table.num_rows());
  for (const auto& p : predicates) {
    min_list = std::min(
        min_list, static_cast<double>(posting.ListSize(p.dim, p.value)));
  }
  double materialize_cost =
      predicates.empty() ? static_cast<double>(table.NumPages(store.page_size()))
                         : min_list + 1.0;

  // Cube-stream plan: the join typically consumes a few k' >= k tuples per
  // input; each costs ~ depth node reads amortized, discounted by predicate
  // selectivity (sparse cells force deeper exploration).
  double sel = plan.est_matches / std::max(1.0, double(table.num_rows()));
  double per_tuple = 3.0 / std::max(sel, 1e-6) / 50.0 + 1.0;
  double stream_cost = 4.0 * k * per_tuple;

  std::ostringstream os;
  os << "est_matches=" << plan.est_matches
     << " materialize_cost=" << materialize_cost
     << " stream_cost=" << stream_cost;
  if (materialize_cost < stream_cost) {
    plan.kind = AccessPlan::Kind::kMaterializeSort;
    plan.est_cost = materialize_cost;
    os << " -> materialize+sort";
  } else {
    plan.kind = AccessPlan::Kind::kCubeStream;
    plan.est_cost = stream_cost;
    os << " -> cube stream";
  }
  plan.explain = os.str();
  return plan;
}

}  // namespace rankcube
