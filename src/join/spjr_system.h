// The ranking-cube SPJR system (Fig 6.1): registered relations carry a
// ranking cube (signature implementation) plus posting indices; SPJR
// queries (select-project-join-rank, §6.1.1) execute as optimizer-chosen
// rank-aware selections feeding the multi-way rank join. A conventional
// full-join baseline reproduces the comparison in §6.4.
#ifndef RANKCUBE_JOIN_SPJR_SYSTEM_H_
#define RANKCUBE_JOIN_SPJR_SYSTEM_H_

#include <memory>
#include <vector>

#include "core/signature_cube.h"
#include "index/posting.h"
#include "join/optimizer.h"
#include "join/rank_join.h"
#include "join/ranked_stream.h"

namespace rankcube {

/// One relation's slice of an SPJR query.
struct SpjrRelationQuery {
  std::vector<Predicate> predicates;  ///< local boolean selections
  RankingFunctionPtr function;        ///< over this relation's ranking dims
  int join_dim = 0;                   ///< selection dim used as join key
};

struct SpjrQuery {
  std::vector<SpjrRelationQuery> relations;  ///< parallel to registration
  int k = 10;
};

class SpjrSystem {
 public:
  /// `store` provides the page geometry for every registered relation's
  /// structures and must outlive the system.
  explicit SpjrSystem(const PageStore& store) : store_(store) {}

  /// Registers a relation (kept by reference; must outlive the system) and
  /// builds its ranking cube + posting indices. Returns the relation slot.
  int AddRelation(const Table& table);

  /// Rank-aware execution: optimizer -> rank-aware selections -> multi-way
  /// rank join.
  Result<std::vector<JoinedResult>> TopK(const SpjrQuery& query, IoSession* io,
                                         ExecStats* stats,
                                         RankJoinStats* join_stats = nullptr);

  /// Conventional plan: filter + full hash join + sort, for §6.4's
  /// comparison.
  Result<std::vector<JoinedResult>> BaselineTopK(const SpjrQuery& query,
                                                 IoSession* io,
                                                 ExecStats* stats) const;

  /// The plan the optimizer would pick for one relation of `query`.
  AccessPlan Plan(const SpjrQuery& query, int relation) const;

  const SignatureCube& cube(int relation) const {
    return *relations_[relation]->cube;
  }

 private:
  struct Relation {
    const Table* table;
    std::unique_ptr<SignatureCube> cube;
    std::unique_ptr<PostingIndex> posting;
  };

  std::vector<ScoredTuple> MaterializeSorted(
      const Relation& rel, const SpjrRelationQuery& q, IoSession* io,
      ExecStats* stats) const;

  const PageStore& store_;
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace rankcube

#endif  // RANKCUBE_JOIN_SPJR_SYSTEM_H_
