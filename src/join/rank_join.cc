#include "join/rank_join.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace rankcube {

namespace {

struct Seen {
  Tid tid;
  double score;
};

class TopKJoined {
 public:
  explicit TopKJoined(int k) : k_(k) {}

  void Offer(JoinedResult r) {
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.push_back(std::move(r));
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    } else if (!heap_.empty() && r.score < heap_.front().score) {
      std::pop_heap(heap_.begin(), heap_.end(), Worse);
      heap_.back() = std::move(r);
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    }
  }
  bool Full() const { return static_cast<int>(heap_.size()) >= k_; }
  double KthScore() const {
    return Full() && k_ > 0 ? heap_.front().score : kInfScore;
  }
  std::vector<JoinedResult> Sorted() {
    std::sort(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

 private:
  static bool Worse(const JoinedResult& a, const JoinedResult& b) {
    return a.score < b.score;
  }
  int k_;
  std::vector<JoinedResult> heap_;
};

}  // namespace

std::vector<JoinedResult> MultiWayRankJoin(
    const std::vector<RankedStream*>& streams, const JoinKeyFn& join_key,
    int k, RankJoinStats* join_stats) {
  const size_t m = streams.size();
  RankJoinStats local;
  RankJoinStats* js = join_stats ? join_stats : &local;
  TopKJoined topk(k);

  // Per-relation state: hash table key -> seen tuples, last score, best
  // (first) score, exhausted flag.
  std::vector<std::unordered_map<int32_t, std::vector<Seen>>> tables(m);
  std::vector<double> last(m), best(m);
  std::vector<bool> exhausted(m, false);
  for (size_t i = 0; i < m; ++i) {
    best[i] = streams[i]->BestPossibleNext();
    last[i] = best[i];
    if (best[i] == kInfScore) exhausted[i] = true;
  }

  auto sum_best_excluding = [&](size_t i) {
    double s = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (j != i) s += best[j];
    }
    return s;
  };
  // tau over non-exhausted inputs: the best combined score any future pull
  // can produce.
  auto threshold = [&]() {
    double t = kInfScore;
    for (size_t i = 0; i < m; ++i) {
      if (exhausted[i]) continue;
      double ti = streams[i]->BestPossibleNext() + sum_best_excluding(i);
      t = std::min(t, ti);
    }
    return t;
  };

  std::vector<size_t> combo(m);
  while (true) {
    double tau = threshold();
    if (tau == kInfScore) break;  // all inputs drained
    if (topk.Full() && topk.KthScore() <= tau) break;

    // Pull from the non-exhausted input whose next tuple participates in
    // the lowest possible combined score (it defines tau).
    size_t pick = m;
    double pick_bound = kInfScore;
    for (size_t i = 0; i < m; ++i) {
      if (exhausted[i]) continue;
      double b = streams[i]->BestPossibleNext() + sum_best_excluding(i);
      if (b < pick_bound) {
        pick_bound = b;
        pick = i;
      }
    }
    if (pick == m) break;

    Tid tid;
    double score;
    if (!streams[pick]->GetNext(&tid, &score)) {
      exhausted[pick] = true;
      continue;
    }
    ++js->tuples_pulled;
    last[pick] = score;

    // List pruning (§6.3.3): a tuple whose own score plus the best possible
    // partners already exceeds the k-th result can never contribute.
    if (topk.Full() && score + sum_best_excluding(pick) > topk.KthScore()) {
      ++js->pruned_tuples;
      // Every future tuple of this stream is worse: the stream can only
      // contribute via already-hashed tuples, so stop pulling from it.
      exhausted[pick] = true;
      continue;
    }

    int32_t key = join_key(static_cast<int>(pick), tid);

    // Probe all other relations; enumerate the cartesian product of
    // matching partner lists.
    bool all_match = true;
    std::vector<const std::vector<Seen>*> partners(m, nullptr);
    for (size_t j = 0; j < m && all_match; ++j) {
      if (j == static_cast<size_t>(pick)) continue;
      auto it = tables[j].find(key);
      if (it == tables[j].end() || it->second.empty()) {
        all_match = false;
      } else {
        partners[j] = &it->second;
      }
    }
    if (all_match) {
      std::fill(combo.begin(), combo.end(), 0);
      while (true) {
        JoinedResult r;
        r.tids.resize(m);
        r.score = 0.0;
        for (size_t j = 0; j < m; ++j) {
          if (j == static_cast<size_t>(pick)) {
            r.tids[j] = tid;
            r.score += score;
          } else {
            const Seen& s = (*partners[j])[combo[j]];
            r.tids[j] = s.tid;
            r.score += s.score;
          }
        }
        topk.Offer(std::move(r));
        ++js->results_formed;
        size_t j = 0;
        for (; j < m; ++j) {
          if (j == static_cast<size_t>(pick)) continue;
          if (++combo[j] < partners[j]->size()) break;
          combo[j] = 0;
        }
        if (j == m) break;
      }
    }
    tables[pick][key].push_back({tid, score});
  }
  return topk.Sorted();
}

}  // namespace rankcube
