#include "join/spjr_system.h"

#include <algorithm>
#include <unordered_map>

#include "common/stopwatch.h"
#include "func/kernels/kernels.h"

namespace rankcube {

namespace {

/// One fused-kernel pass over a qualifying tid list, producing scored
/// tuples in input order and charging tuples_evaluated.
std::vector<ScoredTuple> ScoreQualifying(const Table& table,
                                         const RankingFunction& f,
                                         const std::vector<Tid>& qualifying,
                                         ExecStats* stats) {
  std::vector<double> scores(qualifying.size());
  kernels::BlockEvaluator eval(table, f);
  if (!qualifying.empty()) {
    eval.Score(qualifying.data(), qualifying.size(), scores.data());
  }
  stats->tuples_evaluated += qualifying.size();
  std::vector<ScoredTuple> out;
  out.reserve(qualifying.size());
  for (size_t i = 0; i < qualifying.size(); ++i) {
    out.push_back({qualifying[i], scores[i]});
  }
  return out;
}

}  // namespace

int SpjrSystem::AddRelation(const Table& table) {
  auto rel = std::make_unique<Relation>();
  rel->table = &table;
  // Relation structures are built under a throwaway construction session;
  // only the store's geometry outlives the call.
  IoSession build_io(&store_);
  rel->cube = std::make_unique<SignatureCube>(table, build_io);
  rel->posting = std::make_unique<PostingIndex>(table);
  relations_.push_back(std::move(rel));
  return static_cast<int>(relations_.size()) - 1;
}

AccessPlan SpjrSystem::Plan(const SpjrQuery& query, int relation) const {
  const Relation& rel = *relations_[relation];
  return ChooseAccessPath(*rel.table, *rel.posting,
                          query.relations[relation].predicates, query.k,
                          store_);
}

std::vector<ScoredTuple> SpjrSystem::MaterializeSorted(
    const Relation& rel, const SpjrRelationQuery& q, IoSession* io,
    ExecStats* stats) const {
  // Boolean-first: most selective posting list, fetch + verify, then one
  // column-direct batch scoring pass over the qualifying tids.
  const Table& table = *rel.table;
  const std::vector<Tid>* list = nullptr;
  if (!q.predicates.empty()) {
    const Predicate* best = &q.predicates.front();
    for (const auto& p : q.predicates) {
      if (rel.posting->ListSize(p.dim, p.value) <
          rel.posting->ListSize(best->dim, best->value)) {
        best = &p;
      }
    }
    rel.posting->ChargeListScan(io, best->dim, best->value);
    list = &rel.posting->Lookup(best->dim, best->value);
  }
  std::vector<Tid> qualifying;
  auto consider = [&](Tid t) {
    for (const auto& p : q.predicates) {
      if (table.sel(t, p.dim) != p.value) return;
    }
    qualifying.push_back(t);
  };
  if (list != nullptr) {
    for (Tid t : *list) {
      table.ChargeRowFetch(io, t);
      consider(t);
    }
  } else {
    table.ChargeFullScan(io);
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      if (table.is_live(t)) consider(t);
    }
  }
  std::vector<ScoredTuple> out =
      ScoreQualifying(table, *q.function, qualifying, stats);
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<JoinedResult>> SpjrSystem::TopK(
    const SpjrQuery& query, IoSession* io, ExecStats* stats,
    RankJoinStats* join_stats) {
  if (query.relations.size() != relations_.size()) {
    return Status::InvalidArgument("query arity != registered relations");
  }
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();

  std::vector<std::unique_ptr<RankedStream>> streams;
  for (size_t r = 0; r < relations_.size(); ++r) {
    const auto& rq = query.relations[r];
    if (!rq.function) {
      return Status::InvalidArgument("relation has no ranking function");
    }
    AccessPlan plan = Plan(query, static_cast<int>(r));
    if (plan.kind == AccessPlan::Kind::kMaterializeSort) {
      streams.push_back(std::make_unique<SortedVectorStream>(
          MaterializeSorted(*relations_[r], rq, io, stats)));
    } else {
      auto pruner = relations_[r]->cube->MakePruner(rq.predicates);
      if (!pruner.ok()) return pruner.status();
      streams.push_back(std::make_unique<CubeRankedStream>(
          *relations_[r]->table, *relations_[r]->cube, rq.function,
          std::move(std::move(pruner).value()), io, stats));
    }
  }

  std::vector<RankedStream*> raw;
  for (auto& s : streams) raw.push_back(s.get());
  auto key_fn = [this, &query](int relation, Tid tid) {
    return relations_[relation]->table->sel(
        tid, query.relations[relation].join_dim);
  };
  auto results = MultiWayRankJoin(raw, key_fn, query.k, join_stats);

  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return results;
}

Result<std::vector<JoinedResult>> SpjrSystem::BaselineTopK(
    const SpjrQuery& query, IoSession* io, ExecStats* stats) const {
  if (query.relations.size() != relations_.size()) {
    return Status::InvalidArgument("query arity != registered relations");
  }
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();

  // Filter + score every relation by full scan, then hash-join all.
  std::vector<std::vector<ScoredTuple>> inputs(relations_.size());
  for (size_t r = 0; r < relations_.size(); ++r) {
    const auto& rq = query.relations[r];
    const Table& table = *relations_[r]->table;
    table.ChargeFullScan(io);
    std::vector<Tid> qualifying;
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      if (!table.is_live(t)) continue;
      bool ok = true;
      for (const auto& p : rq.predicates) {
        if (table.sel(t, p.dim) != p.value) {
          ok = false;
          break;
        }
      }
      if (ok) qualifying.push_back(t);
    }
    inputs[r] = ScoreQualifying(table, *rq.function, qualifying, stats);
  }

  // Iteratively hash-join relation 0 with 1, ..., m-2 (materialized), then
  // stream the final join into a k-bounded heap: a sort-based plan never
  // needs the full (possibly quadratic) join result in memory at once.
  struct Partial {
    std::vector<Tid> tids;
    double score;
    int32_t key;
  };
  std::vector<Partial> acc;
  for (const auto& st : inputs[0]) {
    acc.push_back({{st.tid},
                   st.score,
                   relations_[0]->table->sel(st.tid,
                                             query.relations[0].join_dim)});
  }
  std::vector<JoinedResult> heap;  // max-heap on score, size <= k
  auto worse = [](const JoinedResult& a, const JoinedResult& b) {
    return a.score < b.score;
  };
  for (size_t r = 1; r < relations_.size(); ++r) {
    std::unordered_map<int32_t, std::vector<ScoredTuple>> hash;
    for (const auto& st : inputs[r]) {
      hash[relations_[r]->table->sel(st.tid, query.relations[r].join_dim)]
          .push_back(st);
    }
    const bool last = (r + 1 == relations_.size());
    std::vector<Partial> next;
    for (const auto& p : acc) {
      auto it = hash.find(p.key);
      if (it == hash.end()) continue;
      for (const auto& st : it->second) {
        if (last) {
          double score = p.score + st.score;
          if (static_cast<int>(heap.size()) >= query.k &&
              score >= heap.front().score) {
            continue;
          }
          JoinedResult jr;
          jr.tids = p.tids;
          jr.tids.push_back(st.tid);
          jr.score = score;
          if (static_cast<int>(heap.size()) < query.k) {
            heap.push_back(std::move(jr));
            std::push_heap(heap.begin(), heap.end(), worse);
          } else {
            std::pop_heap(heap.begin(), heap.end(), worse);
            heap.back() = std::move(jr);
            std::push_heap(heap.begin(), heap.end(), worse);
          }
        } else {
          Partial np = p;
          np.tids.push_back(st.tid);
          np.score += st.score;
          next.push_back(std::move(np));
        }
      }
    }
    if (!last) acc = std::move(next);
  }
  if (relations_.size() == 1) {
    for (auto& p : acc) {
      heap.push_back({std::move(p.tids), p.score});
    }
  }
  std::vector<JoinedResult> all = std::move(heap);
  std::sort(all.begin(), all.end());
  if (all.size() > static_cast<size_t>(query.k)) all.resize(query.k);

  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return all;
}

}  // namespace rankcube
