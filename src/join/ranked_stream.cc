#include "join/ranked_stream.h"

namespace rankcube {

CubeRankedStream::CubeRankedStream(const Table& table,
                                   const SignatureCube& cube,
                                   RankingFunctionPtr function,
                                   std::unique_ptr<BooleanPruner> pruner,
                                   IoSession* io, ExecStats* stats)
    : table_(table),
      cube_(cube),
      f_(std::move(function)),
      eval_(table, *f_),
      pruner_(std::move(pruner)),
      io_(io),
      stats_(stats) {
  const RTree& rtree = cube_.rtree();
  heap_.push({f_->LowerBound(rtree.node(rtree.root()).mbr), false,
              rtree.root(), 0,
              {}});
}

bool CubeRankedStream::GetNext(Tid* tid, double* score) {
  const RTree& rtree = cube_.rtree();
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (e.is_tuple) {
      if (pruner_ == nullptr ||
          pruner_->Qualifies(e.tid, e.path, io_, stats_)) {
        *tid = e.tid;
        *score = e.score;
        return true;
      }
      continue;
    }
    if (pruner_ != nullptr &&
        !pruner_->MayContain(e.path, io_, stats_)) {
      continue;
    }
    const RTreeNode& node = rtree.node(e.node_id);
    rtree.ChargeNodeAccess(io_, e.node_id);
    if (node.is_leaf) {
      ScoreLeafEntries(eval_, node, &leaf_tids_, &leaf_scores_, stats_);
      for (size_t i = 0; i < node.entries.size(); ++i) {
        Entry t;
        t.score = leaf_scores_[i];
        t.is_tuple = true;
        t.tid = leaf_tids_[i];
        t.path = e.path;
        t.path.push_back(static_cast<int>(i) + 1);
        heap_.push(std::move(t));
      }
    } else {
      for (size_t i = 0; i < node.children.size(); ++i) {
        Entry c;
        c.score = f_->LowerBound(rtree.node(node.children[i]).mbr);
        c.is_tuple = false;
        c.node_id = node.children[i];
        c.path = e.path;
        c.path.push_back(static_cast<int>(i) + 1);
        heap_.push(std::move(c));
      }
    }
    stats_->MergeMax(heap_.size());
  }
  return false;
}

double CubeRankedStream::BestPossibleNext() const {
  return heap_.empty() ? kInfScore : heap_.top().score;
}

}  // namespace rankcube
