#include "skyline/olap_session.h"

#include <algorithm>

namespace rankcube {

Result<std::vector<Tid>> SkylineSession::Query(
    std::vector<Predicate> predicates, SkylineTransform transform,
    IoSession* io, ExecStats* stats) {
  predicates_ = std::move(predicates);
  transform_ = std::move(transform);
  journal_ = BBSJournal();
  auto pruner = engine_->cube().MakePruner(predicates_);
  if (!pruner.ok()) return pruner.status();
  auto result =
      BBSSkyline(engine_->table(), engine_->cube().rtree(), transform_,
                 pruner.value().get(), io, stats, &journal_);
  active_ = true;
  return result;
}

Result<std::vector<Tid>> SkylineSession::RunSeeded(
    const std::vector<BBSJournal::Entry>& seed, IoSession* io,
    ExecStats* stats) {
  BBSJournal fresh;
  auto pruner = engine_->cube().MakePruner(predicates_);
  if (!pruner.ok()) return pruner.status();
  auto result =
      BBSSkyline(engine_->table(), engine_->cube().rtree(), transform_,
                 pruner.value().get(), io, stats, &fresh, &seed);
  journal_ = std::move(fresh);
  return result;
}

Result<std::vector<Tid>> SkylineSession::DrillDown(
    const std::vector<Predicate>& extra, IoSession* io, ExecStats* stats) {
  if (!active_) return Status::InvalidArgument("no active session query");
  for (const auto& p : extra) predicates_.push_back(p);
  std::sort(predicates_.begin(), predicates_.end(),
            [](const Predicate& a, const Predicate& b) {
              return a.dim < b.dim;
            });
  // Re-constructed heap (Fig 7.2): previous skyline + dominance-discarded.
  // Entries the old (weaker) predicate set pruned stay pruned.
  std::vector<BBSJournal::Entry> seed = journal_.skyline;
  seed.insert(seed.end(), journal_.dominated.begin(),
              journal_.dominated.end());
  // Boolean-pruned entries must be carried forward in the journal so a
  // later roll-up can still re-admit them.
  std::vector<BBSJournal::Entry> carried = journal_.boolean_pruned;
  auto result = RunSeeded(seed, io, stats);
  journal_.boolean_pruned.insert(journal_.boolean_pruned.end(),
                                 carried.begin(), carried.end());
  return result;
}

Result<std::vector<Tid>> SkylineSession::RollUp(
    const std::vector<int>& drop_dims, IoSession* io, ExecStats* stats) {
  if (!active_) return Status::InvalidArgument("no active session query");
  std::vector<Predicate> kept;
  for (const auto& p : predicates_) {
    if (std::find(drop_dims.begin(), drop_dims.end(), p.dim) ==
        drop_dims.end()) {
      kept.push_back(p);
    }
  }
  predicates_ = std::move(kept);
  // Relaxing predicates re-admits boolean-pruned entries (§7.2.4).
  std::vector<BBSJournal::Entry> seed = journal_.skyline;
  seed.insert(seed.end(), journal_.dominated.begin(),
              journal_.dominated.end());
  seed.insert(seed.end(), journal_.boolean_pruned.begin(),
              journal_.boolean_pruned.end());
  return RunSeeded(seed, io, stats);
}

}  // namespace rankcube
