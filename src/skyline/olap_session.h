// Drill-down / roll-up skyline sessions (§7.2.4): instead of re-running BBS
// from the R-tree root when the user tightens or relaxes the boolean
// selection, the candidate heap is re-constructed from the previous run's
// journal (Fig 7.2):
//  * drill-down (add predicates): seed = previous skyline + entries that
//    were discarded by dominance (boolean-pruned entries stay pruned);
//  * roll-up (remove predicates): seed additionally re-admits the entries
//    the old predicate set had boolean-pruned.
#ifndef RANKCUBE_SKYLINE_OLAP_SESSION_H_
#define RANKCUBE_SKYLINE_OLAP_SESSION_H_

#include <vector>

#include "skyline/skyline_cube.h"

namespace rankcube {

class SkylineSession {
 public:
  explicit SkylineSession(const SkylineEngine* engine) : engine_(engine) {}

  /// Fresh query; establishes the session state.
  Result<std::vector<Tid>> Query(std::vector<Predicate> predicates,
                                 SkylineTransform transform, IoSession* io,
                                 ExecStats* stats);

  /// Adds `extra` predicates to the current selection.
  Result<std::vector<Tid>> DrillDown(const std::vector<Predicate>& extra,
                                     IoSession* io, ExecStats* stats);

  /// Removes the predicates on `drop_dims` from the current selection.
  Result<std::vector<Tid>> RollUp(const std::vector<int>& drop_dims,
                                  IoSession* io, ExecStats* stats);

  const std::vector<Predicate>& predicates() const { return predicates_; }

 private:
  Result<std::vector<Tid>> RunSeeded(
      const std::vector<BBSJournal::Entry>& seed, IoSession* io,
      ExecStats* stats);

  const SkylineEngine* engine_;
  std::vector<Predicate> predicates_;
  SkylineTransform transform_ = SkylineTransform::Static(0);
  BBSJournal journal_;
  bool active_ = false;
};

}  // namespace rankcube

#endif  // RANKCUBE_SKYLINE_OLAP_SESSION_H_
