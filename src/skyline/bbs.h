// Branch-and-bound skyline (Ch7): BBS over the R-tree partition with
// optional boolean-predicate pruning (signatures) and optional dynamic
// transformation g_d(x) = |x_d - q_d| (§7.2.3). The run journal records
// dominance- and boolean-discarded entries so drill-down / roll-up queries
// can re-construct the candidate heap instead of starting over (§7.2.4).
#ifndef RANKCUBE_SKYLINE_BBS_H_
#define RANKCUBE_SKYLINE_BBS_H_

#include <vector>

#include "core/rtree_search.h"
#include "index/rtree.h"

namespace rankcube {

/// Maps ranking vectors into the preference space to minimize: identity for
/// static skylines, per-dimension distance to a query point for dynamic
/// skylines.
class SkylineTransform {
 public:
  /// Static skyline over `dims` dimensions.
  static SkylineTransform Static(int dims);
  /// Dynamic skyline around `query_point`.
  static SkylineTransform Dynamic(std::vector<double> query_point);

  int dims() const { return dims_; }
  bool dynamic() const { return !q_.empty(); }

  /// Transformed coordinates of a point.
  void Apply(const double* point, std::vector<double>* out) const;
  /// Transformed coordinates of table row `tid`, read column-direct via
  /// rank_col() — no per-row vector allocation inside dominance loops.
  void ApplyRow(const Table& table, Tid tid, std::vector<double>* out) const;
  /// Per-dimension minimum of the transformed values over a box (the
  /// box's best corner in preference space).
  void LowerCorner(const Box& box, std::vector<double>* out) const;
  /// mindist: sum of the lower-corner coordinates (BBS heap order).
  double MinDist(const Box& box) const;

 private:
  int dims_ = 0;
  std::vector<double> q_;
};

/// Journal of a BBS run (heap re-construction for OLAP sessions).
struct BBSJournal {
  struct Entry {
    double mindist = 0.0;
    bool is_tuple = false;
    uint32_t node_id = 0;  ///< nodes
    Tid tid = 0;           ///< tuples
    std::vector<int> path;
  };
  std::vector<Entry> skyline;         ///< result tuples (as heap entries)
  std::vector<Entry> dominated;       ///< discarded by dominance pruning
  std::vector<Entry> boolean_pruned;  ///< discarded by the boolean pruner
};

/// Runs BBS. `pruner` may be nullptr (no predicates). If `seed` is given
/// the heap starts from those entries instead of the root (§7.2.4); if
/// `journal` is given the discarded entries are recorded.
std::vector<Tid> BBSSkyline(const Table& table, const RTree& rtree,
                            const SkylineTransform& transform,
                            BooleanPruner* pruner, IoSession* io,
                            ExecStats* stats, BBSJournal* journal = nullptr,
                            const std::vector<BBSJournal::Entry>* seed =
                                nullptr);

/// In-memory skyline of an explicit tuple set (boolean-first executor and
/// test oracle): strict dominance (<= everywhere, < somewhere).
std::vector<Tid> SkylineOfTuples(const Table& table,
                                 const std::vector<Tid>& tids,
                                 const SkylineTransform& transform);

}  // namespace rankcube

#endif  // RANKCUBE_SKYLINE_BBS_H_
