#include "skyline/bbs.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/stopwatch.h"

namespace rankcube {

SkylineTransform SkylineTransform::Static(int dims) {
  SkylineTransform t;
  t.dims_ = dims;
  return t;
}

SkylineTransform SkylineTransform::Dynamic(std::vector<double> query_point) {
  SkylineTransform t;
  t.dims_ = static_cast<int>(query_point.size());
  t.q_ = std::move(query_point);
  return t;
}

void SkylineTransform::Apply(const double* point,
                             std::vector<double>* out) const {
  out->resize(dims_);
  for (int d = 0; d < dims_; ++d) {
    (*out)[d] = dynamic() ? std::abs(point[d] - q_[d]) : point[d];
  }
}

void SkylineTransform::ApplyRow(const Table& table, Tid tid,
                                std::vector<double>* out) const {
  out->resize(dims_);
  for (int d = 0; d < dims_; ++d) {
    const double v = table.rank_col(d)[tid];
    (*out)[d] = dynamic() ? std::abs(v - q_[d]) : v;
  }
}

void SkylineTransform::LowerCorner(const Box& box,
                                   std::vector<double>* out) const {
  out->resize(dims_);
  for (int d = 0; d < dims_; ++d) {
    if (dynamic()) {
      (*out)[d] = std::abs(box[d].Clamp(q_[d]) - q_[d]);
    } else {
      (*out)[d] = box[d].lo;
    }
  }
}

double SkylineTransform::MinDist(const Box& box) const {
  std::vector<double> corner;
  LowerCorner(box, &corner);
  double s = 0.0;
  for (double v : corner) s += v;
  return s;
}

namespace {

/// y strictly dominates x: <= on every dim, < on at least one (§7.2.2).
bool Dominates(const std::vector<double>& y, const std::vector<double>& x) {
  bool strict = false;
  for (size_t d = 0; d < y.size(); ++d) {
    if (y[d] > x[d]) return false;
    if (y[d] < x[d]) strict = true;
  }
  return strict;
}

struct HeapEntry {
  double mindist;
  uint64_t seq;
  BBSJournal::Entry entry;
  bool operator>(const HeapEntry& o) const {
    return mindist > o.mindist || (mindist == o.mindist && seq > o.seq);
  }
};

}  // namespace

std::vector<Tid> BBSSkyline(const Table& table, const RTree& rtree,
                            const SkylineTransform& transform,
                            BooleanPruner* pruner, IoSession* io,
                            ExecStats* stats, BBSJournal* journal,
                            const std::vector<BBSJournal::Entry>* seed) {
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  uint64_t seq = 0;
  if (seed != nullptr) {
    for (const auto& e : *seed) heap.push({e.mindist, seq++, e});
  } else {
    BBSJournal::Entry root;
    root.mindist = transform.MinDist(rtree.node(rtree.root()).mbr);
    root.is_tuple = false;
    root.node_id = rtree.root();
    heap.push({root.mindist, seq++, std::move(root)});
  }

  std::vector<Tid> skyline;
  std::vector<std::vector<double>> sky_points;  // transformed
  std::vector<double> probe;

  auto dominated = [&](const std::vector<double>& x) {
    for (const auto& s : sky_points) {
      if (Dominates(s, x)) return true;
    }
    return false;
  };

  while (!heap.empty()) {
    HeapEntry he = heap.top();
    heap.pop();
    BBSJournal::Entry& e = he.entry;

    if (e.is_tuple) {
      transform.ApplyRow(table, e.tid, &probe);
      if (dominated(probe)) {
        if (journal) journal->dominated.push_back(std::move(e));
        continue;
      }
      if (pruner != nullptr &&
          !pruner->Qualifies(e.tid, e.path, io, stats)) {
        if (journal) journal->boolean_pruned.push_back(std::move(e));
        continue;
      }
      skyline.push_back(e.tid);
      sky_points.push_back(probe);
      if (journal) journal->skyline.push_back(std::move(e));
      continue;
    }

    // Node: dominance pruning against the box's best corner (Fig 7.1).
    const RTreeNode& node = rtree.node(e.node_id);
    transform.LowerCorner(node.mbr, &probe);
    if (dominated(probe)) {
      if (journal) journal->dominated.push_back(std::move(e));
      continue;
    }
    if (pruner != nullptr && !pruner->MayContain(e.path, io, stats)) {
      if (journal) journal->boolean_pruned.push_back(std::move(e));
      continue;
    }
    rtree.ChargeNodeAccess(io, e.node_id);
    if (node.is_leaf) {
      for (size_t i = 0; i < node.entries.size(); ++i) {
        BBSJournal::Entry c;
        transform.Apply(node.entries[i].point.data(), &probe);
        c.mindist = 0.0;
        for (double v : probe) c.mindist += v;
        c.is_tuple = true;
        c.tid = node.entries[i].tid;
        c.path = e.path;
        c.path.push_back(static_cast<int>(i) + 1);
        heap.push({c.mindist, seq++, std::move(c)});
      }
    } else {
      for (size_t i = 0; i < node.children.size(); ++i) {
        BBSJournal::Entry c;
        c.mindist = transform.MinDist(rtree.node(node.children[i]).mbr);
        c.is_tuple = false;
        c.node_id = node.children[i];
        c.path = e.path;
        c.path.push_back(static_cast<int>(i) + 1);
        heap.push({c.mindist, seq++, std::move(c)});
      }
    }
    stats->MergeMax(heap.size());
  }

  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return skyline;
}

std::vector<Tid> SkylineOfTuples(const Table& table,
                                 const std::vector<Tid>& tids,
                                 const SkylineTransform& transform) {
  // Sort by mindist (sum of transformed coords): a point can only be
  // dominated by one sorted before it.
  std::vector<std::pair<double, Tid>> order;
  order.reserve(tids.size());
  std::vector<std::vector<double>> transformed(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    transform.ApplyRow(table, tids[i], &transformed[i]);
    double s = 0.0;
    for (double v : transformed[i]) s += v;
    order.push_back({s, static_cast<Tid>(i)});
  }
  std::sort(order.begin(), order.end());
  std::vector<Tid> skyline;
  std::vector<const std::vector<double>*> sky_points;
  for (const auto& [dist, idx] : order) {
    (void)dist;
    const auto& x = transformed[idx];
    bool dom = false;
    for (const auto* s : sky_points) {
      bool strict = false, ok = true;
      for (size_t d = 0; d < x.size(); ++d) {
        if ((*s)[d] > x[d]) {
          ok = false;
          break;
        }
        if ((*s)[d] < x[d]) strict = true;
      }
      if (ok && strict) {
        dom = true;
        break;
      }
    }
    if (!dom) {
      skyline.push_back(tids[idx]);
      sky_points.push_back(&transformed[idx]);
    }
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace rankcube
