// Skyline query engine over the signature ranking cube (Ch7): the three
// evaluated configurations — Boolean (filter-first), Ranking (BBS with
// per-candidate verification), Signature (BBS with signature pruning).
#ifndef RANKCUBE_SKYLINE_SKYLINE_CUBE_H_
#define RANKCUBE_SKYLINE_SKYLINE_CUBE_H_

#include <memory>
#include <vector>

#include "core/signature_cube.h"
#include "index/posting.h"
#include "skyline/bbs.h"

namespace rankcube {

class SkylineEngine {
 public:
  /// Builds the R-tree + signature cube + posting indices over `table`.
  SkylineEngine(const Table& table, IoSession& io);

  /// BBS + signature boolean pruning (the thesis's method).
  Result<std::vector<Tid>> Signature(const std::vector<Predicate>& predicates,
                                     const SkylineTransform& transform,
                                     IoSession* io, ExecStats* stats,
                                     BBSJournal* journal = nullptr) const;

  /// BBS; boolean predicates verified per candidate via table fetches.
  std::vector<Tid> RankingFirst(const std::vector<Predicate>& predicates,
                                const SkylineTransform& transform,
                                IoSession* io, ExecStats* stats) const;

  /// Filter-first: posting-list selection, then in-memory skyline.
  std::vector<Tid> BooleanFirst(const std::vector<Predicate>& predicates,
                                const SkylineTransform& transform,
                                IoSession* io, ExecStats* stats) const;

  const SignatureCube& cube() const { return cube_; }
  const Table& table() const { return table_; }

 private:
  const Table& table_;
  SignatureCube cube_;
  PostingIndex posting_;
};

}  // namespace rankcube

#endif  // RANKCUBE_SKYLINE_SKYLINE_CUBE_H_
