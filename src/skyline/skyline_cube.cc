#include "skyline/skyline_cube.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace rankcube {

namespace {

/// Verifies predicates by fetching the tuple (the "Ranking" configuration).
class TableVerifyPruner : public BooleanPruner {
 public:
  TableVerifyPruner(const Table& table, const std::vector<Predicate>& preds)
      : table_(table), preds_(preds) {}

  bool MayContain(const std::vector<int>&, IoSession*, ExecStats*) override {
    return true;
  }
  bool Qualifies(Tid tid, const std::vector<int>&, IoSession* io,
                 ExecStats*) override {
    table_.ChargeRowFetch(io, tid);
    for (const auto& p : preds_) {
      if (table_.sel(tid, p.dim) != p.value) return false;
    }
    return true;
  }

 private:
  const Table& table_;
  const std::vector<Predicate>& preds_;
};

}  // namespace

SkylineEngine::SkylineEngine(const Table& table, IoSession& io)
    : table_(table), cube_(table, io), posting_(table) {}

Result<std::vector<Tid>> SkylineEngine::Signature(
    const std::vector<Predicate>& predicates,
    const SkylineTransform& transform, IoSession* io, ExecStats* stats,
    BBSJournal* journal) const {
  auto pruner = cube_.MakePruner(predicates);
  if (!pruner.ok()) return pruner.status();
  return BBSSkyline(table_, cube_.rtree(), transform, pruner.value().get(),
                    io, stats, journal);
}

std::vector<Tid> SkylineEngine::RankingFirst(
    const std::vector<Predicate>& predicates,
    const SkylineTransform& transform, IoSession* io, ExecStats* stats) const {
  TableVerifyPruner pruner(table_, predicates);
  return BBSSkyline(table_, cube_.rtree(), transform,
                    predicates.empty() ? nullptr : &pruner, io, stats);
}

std::vector<Tid> SkylineEngine::BooleanFirst(
    const std::vector<Predicate>& predicates,
    const SkylineTransform& transform, IoSession* io, ExecStats* stats) const {
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();
  std::vector<Tid> candidates;
  if (predicates.empty()) {
    table_.ChargeFullScan(io);
    candidates.reserve(table_.num_live());
    for (Tid t = 0; t < static_cast<Tid>(table_.num_rows()); ++t) {
      if (table_.is_live(t)) candidates.push_back(t);
    }
  } else {
    const Predicate* best = &predicates.front();
    for (const auto& p : predicates) {
      if (posting_.ListSize(p.dim, p.value) <
          posting_.ListSize(best->dim, best->value)) {
        best = &p;
      }
    }
    posting_.ChargeListScan(io, best->dim, best->value);
    for (Tid t : posting_.Lookup(best->dim, best->value)) {
      table_.ChargeRowFetch(io, t);
      bool ok = true;
      for (const auto& p : predicates) {
        if (table_.sel(t, p.dim) != p.value) {
          ok = false;
          break;
        }
      }
      if (ok) candidates.push_back(t);
    }
  }
  stats->tuples_evaluated += candidates.size();
  auto skyline = SkylineOfTuples(table_, candidates, transform);
  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return skyline;
}

}  // namespace rankcube
