#include "func/ranking_function.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "func/score_expr.h"

namespace rankcube {

namespace {

std::vector<int> NonZeroDims(const std::vector<double>& w) {
  std::vector<int> dims;
  for (size_t d = 0; d < w.size(); ++d) {
    if (w[d] != 0.0) dims.push_back(static_cast<int>(d));
  }
  return dims;
}

std::string WeightedTerms(const std::vector<double>& w, const char* var) {
  std::ostringstream os;
  bool first = true;
  for (size_t d = 0; d < w.size(); ++d) {
    if (w[d] == 0.0) continue;
    if (!first) os << " + ";
    os << w[d] << "*" << var << d;
    first = false;
  }
  return os.str();
}

}  // namespace

void RankingFunction::EvaluateBatch(const Table& table, const Tid* tids,
                                    size_t n, double* out) const {
  // Default: the scalar path, one gather + one Evaluate per tuple. Kept as
  // the reference semantics for functions without a column-direct override
  // (and as the baseline the parity test compares overrides against). The
  // gather touches only involved_dims() — Evaluate never reads the others
  // — and hoists the virtual metadata calls out of the loop.
  const std::vector<int>& dims = involved_dims();
  std::vector<double> point(num_dims(), 0.0);
  std::vector<const double*> cols(dims.size());
  for (size_t j = 0; j < dims.size(); ++j) cols[j] = table.rank_col(dims[j]);
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    for (size_t j = 0; j < dims.size(); ++j) point[dims[j]] = cols[j][t];
    out[i] = Evaluate(point.data());
  }
}

std::vector<double> RankingFunction::Minimizer(const Box& box) const {
  // Generic fallback: probe a small lattice (corners + midpoints) over the
  // involved dimensions, anchored at box.lo for uninvolved ones.
  const std::vector<int>& dims = involved_dims();
  std::vector<double> best(num_dims());
  for (int d = 0; d < num_dims(); ++d) best[d] = box[d].lo;
  double best_score = Evaluate(best.data());
  const int kSteps = 4;  // 5 probe values per involved dim
  std::vector<int> idx(dims.size(), 0);
  while (true) {
    std::vector<double> p = best;
    for (size_t j = 0; j < dims.size(); ++j) {
      const Interval& iv = box[dims[j]];
      p[dims[j]] = iv.lo + (iv.hi - iv.lo) * idx[j] / kSteps;
    }
    double s = Evaluate(p.data());
    if (s < best_score) {
      best_score = s;
      best = p;
    }
    size_t j = 0;
    for (; j < dims.size(); ++j) {
      if (++idx[j] <= kSteps) break;
      idx[j] = 0;
    }
    if (j == dims.size()) break;
  }
  return best;
}

// ---------------------------------------------------------------- Linear --

LinearFunction::LinearFunction(std::vector<double> weights)
    : w_(std::move(weights)), dims_(NonZeroDims(w_)) {}

double LinearFunction::Evaluate(const double* p) const {
  double s = 0.0;
  for (int d : dims_) s += w_[d] * p[d];
  return s;
}

void LinearFunction::EvaluateBatch(const Table& table, const Tid* tids,
                                   size_t n, double* out) const {
  // Column-direct: one pass per involved dimension over the block. The
  // accumulation order per tuple matches Evaluate (dims_ order), so the
  // result is bit-identical to the scalar path while the inner loop
  // auto-vectorizes (contiguous out[], indexed loads from one column).
  std::fill(out, out + n, 0.0);
  for (int d : dims_) {
    const double* col = table.rank_col(d);
    const double w = w_[d];
    for (size_t i = 0; i < n; ++i) out[i] += w * col[tids[i]];
  }
}

double LinearFunction::LowerBound(const Box& box) const {
  double s = 0.0;
  for (int d : dims_) s += w_[d] * (w_[d] >= 0 ? box[d].lo : box[d].hi);
  return s;
}

std::vector<double> LinearFunction::Minimizer(const Box& box) const {
  std::vector<double> p(w_.size());
  for (size_t d = 0; d < w_.size(); ++d) {
    p[d] = (w_[d] >= 0) ? box[d].lo : box[d].hi;
  }
  return p;
}

std::optional<std::vector<int>> LinearFunction::MonotoneDirections() const {
  std::vector<int> dir;
  dir.reserve(dims_.size());
  for (int d : dims_) dir.push_back(w_[d] >= 0 ? +1 : -1);
  return dir;
}

std::string LinearFunction::ToString() const {
  return "linear(" + WeightedTerms(w_, "N") + ")";
}

ScoreExprPtr LinearFunction::Expr() const {
  std::vector<ScoreExprPtr> terms;
  for (int d : dims_) {
    terms.push_back(
        ScoreExpr::Mul({ScoreExpr::Const(w_[d]), ScoreExpr::Var(d)}));
  }
  return ScoreExpr::Add(std::move(terms));
}

// ----------------------------------------------------- QuadraticDistance --

QuadraticDistance::QuadraticDistance(std::vector<double> weights,
                                     std::vector<double> targets)
    : w_(std::move(weights)), t_(std::move(targets)), dims_(NonZeroDims(w_)) {}

double QuadraticDistance::Evaluate(const double* p) const {
  double s = 0.0;
  for (int d : dims_) {
    double diff = p[d] - t_[d];
    s += w_[d] * diff * diff;
  }
  return s;
}

void QuadraticDistance::EvaluateBatch(const Table& table, const Tid* tids,
                                      size_t n, double* out) const {
  std::fill(out, out + n, 0.0);
  for (int d : dims_) {
    const double* col = table.rank_col(d);
    const double w = w_[d];
    const double t = t_[d];
    for (size_t i = 0; i < n; ++i) {
      const double diff = col[tids[i]] - t;
      out[i] += w * diff * diff;
    }
  }
}

double QuadraticDistance::LowerBound(const Box& box) const {
  double s = 0.0;
  for (int d : dims_) {
    double c = box[d].Clamp(t_[d]);
    double diff = c - t_[d];
    s += w_[d] * diff * diff;
  }
  return s;
}

std::vector<double> QuadraticDistance::Minimizer(const Box& box) const {
  std::vector<double> p(w_.size());
  for (size_t d = 0; d < w_.size(); ++d) p[d] = box[d].Clamp(t_[d]);
  return p;
}

std::optional<std::vector<double>> QuadraticDistance::SemiMonotoneCenter()
    const {
  std::vector<double> c;
  c.reserve(dims_.size());
  for (int d : dims_) c.push_back(t_[d]);
  return c;
}

ScoreExprPtr QuadraticDistance::Expr() const {
  // w * (x-t) * (x-t) as Mul[Const, Sub, Sub] — the same left fold as
  // Evaluate's `w * diff * diff`. The Sub node is shared so Range() can
  // square the interval instead of multiplying it by itself.
  std::vector<ScoreExprPtr> terms;
  for (int d : dims_) {
    ScoreExprPtr diff =
        ScoreExpr::Sub(ScoreExpr::Var(d), ScoreExpr::Const(t_[d]));
    terms.push_back(ScoreExpr::Mul({ScoreExpr::Const(w_[d]), diff, diff}));
  }
  return ScoreExpr::Add(std::move(terms));
}

std::string QuadraticDistance::ToString() const {
  std::ostringstream os;
  os << "l2dist(";
  for (size_t j = 0; j < dims_.size(); ++j) {
    if (j) os << " + ";
    os << w_[dims_[j]] << "*(N" << dims_[j] << "-" << t_[dims_[j]] << ")^2";
  }
  os << ")";
  return os.str();
}

// ------------------------------------------------------------ L1Distance --

L1Distance::L1Distance(std::vector<double> weights, std::vector<double> targets)
    : w_(std::move(weights)), t_(std::move(targets)), dims_(NonZeroDims(w_)) {}

double L1Distance::Evaluate(const double* p) const {
  double s = 0.0;
  for (int d : dims_) s += w_[d] * std::abs(p[d] - t_[d]);
  return s;
}

void L1Distance::EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                               double* out) const {
  std::fill(out, out + n, 0.0);
  for (int d : dims_) {
    const double* col = table.rank_col(d);
    const double w = w_[d];
    const double t = t_[d];
    for (size_t i = 0; i < n; ++i) out[i] += w * std::abs(col[tids[i]] - t);
  }
}

double L1Distance::LowerBound(const Box& box) const {
  double s = 0.0;
  for (int d : dims_) s += w_[d] * std::abs(box[d].Clamp(t_[d]) - t_[d]);
  return s;
}

std::vector<double> L1Distance::Minimizer(const Box& box) const {
  std::vector<double> p(w_.size());
  for (size_t d = 0; d < w_.size(); ++d) p[d] = box[d].Clamp(t_[d]);
  return p;
}

std::optional<std::vector<double>> L1Distance::SemiMonotoneCenter() const {
  std::vector<double> c;
  c.reserve(dims_.size());
  for (int d : dims_) c.push_back(t_[d]);
  return c;
}

std::string L1Distance::ToString() const {
  return "l1dist(" + WeightedTerms(w_, "N") + ")";
}

ScoreExprPtr L1Distance::Expr() const {
  std::vector<ScoreExprPtr> terms;
  for (int d : dims_) {
    terms.push_back(ScoreExpr::Mul(
        {ScoreExpr::Const(w_[d]),
         ScoreExpr::Abs(
             ScoreExpr::Sub(ScoreExpr::Var(d), ScoreExpr::Const(t_[d])))}));
  }
  return ScoreExpr::Add(std::move(terms));
}

// --------------------------------------------------------- SquaredLinear --

SquaredLinear::SquaredLinear(std::vector<double> weights)
    : w_(std::move(weights)), dims_(NonZeroDims(w_)) {}

double SquaredLinear::Evaluate(const double* p) const {
  double s = 0.0;
  for (int d : dims_) s += w_[d] * p[d];
  return s * s;
}

void SquaredLinear::EvaluateBatch(const Table& table, const Tid* tids,
                                  size_t n, double* out) const {
  // Accumulate the inner linear form column-wise, then square in one pass.
  std::fill(out, out + n, 0.0);
  for (int d : dims_) {
    const double* col = table.rank_col(d);
    const double w = w_[d];
    for (size_t i = 0; i < n; ++i) out[i] += w * col[tids[i]];
  }
  for (size_t i = 0; i < n; ++i) out[i] *= out[i];
}

double SquaredLinear::InnerInterval(const Box& box, double* lo,
                                    double* hi) const {
  double l = 0.0, h = 0.0;
  for (int d : dims_) {
    if (w_[d] >= 0) {
      l += w_[d] * box[d].lo;
      h += w_[d] * box[d].hi;
    } else {
      l += w_[d] * box[d].hi;
      h += w_[d] * box[d].lo;
    }
  }
  *lo = l;
  *hi = h;
  return 0.0;
}

double SquaredLinear::LowerBound(const Box& box) const {
  double lo, hi;
  InnerInterval(box, &lo, &hi);
  if (lo <= 0.0 && 0.0 <= hi) return 0.0;
  double a = lo * lo, b = hi * hi;
  return std::min(a, b);
}

std::vector<double> SquaredLinear::Minimizer(const Box& box) const {
  // Start at the corner minimizing the inner linear form, then walk
  // coordinates toward the opposite end until the inner value reaches 0.
  std::vector<double> p(w_.size());
  double inner = 0.0;
  for (size_t d = 0; d < w_.size(); ++d) {
    p[d] = (w_[d] >= 0) ? box[d].lo : box[d].hi;
    inner += w_[d] * p[d];
  }
  if (inner >= 0.0) return p;  // lo already the minimizing corner
  for (int d : dims_) {
    double other = (w_[d] >= 0) ? box[d].hi : box[d].lo;
    double delta = w_[d] * (other - p[d]);  // >= 0 by construction
    if (inner + delta >= 0.0) {
      // Solve w_d * (x - p_d) = -inner within this coordinate.
      p[d] += -inner / w_[d];
      return p;
    }
    inner += delta;
    p[d] = other;
  }
  return p;  // inner < 0 everywhere: the max corner minimizes inner^2
}

std::string SquaredLinear::ToString() const {
  return "sqlinear((" + WeightedTerms(w_, "N") + ")^2)";
}

ScoreExprPtr SquaredLinear::Expr() const {
  std::vector<ScoreExprPtr> terms;
  for (int d : dims_) {
    terms.push_back(
        ScoreExpr::Mul({ScoreExpr::Const(w_[d]), ScoreExpr::Var(d)}));
  }
  return ScoreExpr::Square(ScoreExpr::Add(std::move(terms)));
}

// ------------------------------------------------------------- GeneralAB --

GeneralAB::GeneralAB(int num_dims, int a_dim, int b_dim)
    : r_(num_dims), a_(a_dim), b_(b_dim), dims_({a_dim, b_dim}) {}

double GeneralAB::Evaluate(const double* p) const {
  double diff = p[a_] - p[b_] * p[b_];
  return diff * diff;
}

void GeneralAB::EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                              double* out) const {
  // Column-direct: both columns streamed once, no row gather, no virtual
  // call per tuple. Same operation order as Evaluate -> bit-identical.
  const double* ca = table.rank_col(a_);
  const double* cb = table.rank_col(b_);
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    const double diff = ca[t] - cb[t] * cb[t];
    out[i] = diff * diff;
  }
}

double GeneralAB::LowerBound(const Box& box) const {
  // Range of b^2 over [blo, bhi]:
  const Interval& ib = box[b_];
  double b2_lo, b2_hi;
  if (ib.lo <= 0.0 && 0.0 <= ib.hi) {
    b2_lo = 0.0;
    b2_hi = std::max(ib.lo * ib.lo, ib.hi * ib.hi);
  } else {
    double x = ib.lo * ib.lo, y = ib.hi * ib.hi;
    b2_lo = std::min(x, y);
    b2_hi = std::max(x, y);
  }
  // Range of a - b^2:
  double lo = box[a_].lo - b2_hi;
  double hi = box[a_].hi - b2_lo;
  if (lo <= 0.0 && 0.0 <= hi) return 0.0;
  return std::min(lo * lo, hi * hi);
}

std::vector<double> GeneralAB::Minimizer(const Box& box) const {
  // Try to pick b so that b^2 lands inside [alo, ahi]; otherwise take the
  // closest endpoint combination.
  std::vector<double> p(r_);
  for (int d = 0; d < r_; ++d) p[d] = box[d].lo;
  const Interval& ia = box[a_];
  const Interval& ib = box[b_];
  double best = kInfScore;
  auto consider = [&](double av, double bv) {
    double diff = av - bv * bv;
    double s = diff * diff;
    if (s < best) {
      best = s;
      p[a_] = av;
      p[b_] = bv;
    }
  };
  for (double bv : {ib.lo, ib.hi, ib.Clamp(0.0), ib.Clamp(std::sqrt(std::max(
                                      0.0, ia.lo))),
                    ib.Clamp(std::sqrt(std::max(0.0, ia.hi)))}) {
    consider(ia.Clamp(bv * bv), bv);
  }
  return p;
}

std::string GeneralAB::ToString() const {
  std::ostringstream os;
  os << "general((N" << a_ << "-N" << b_ << "^2)^2)";
  return os.str();
}

ScoreExprPtr GeneralAB::Expr() const {
  return ScoreExpr::Square(ScoreExpr::Sub(
      ScoreExpr::Var(a_), ScoreExpr::Square(ScoreExpr::Var(b_))));
}

// -------------------------------------------------------- ConstrainedSum --

ConstrainedSum::ConstrainedSum(int num_dims, int a_dim, int b_dim, double lo,
                               double hi)
    : r_(num_dims), a_(a_dim), b_(b_dim), lo_(lo), hi_(hi),
      dims_({a_dim, b_dim}) {}

double ConstrainedSum::Evaluate(const double* p) const {
  if (p[b_] < lo_ || p[b_] > hi_) return kInfScore;
  return p[a_] + p[b_];
}

void ConstrainedSum::EvaluateBatch(const Table& table, const Tid* tids,
                                   size_t n, double* out) const {
  // The 1.04x "speedup" of the generic batch path came from paying the full
  // gather + virtual Evaluate per tuple; the function itself is two loads,
  // a band test, and an add. Stream both columns directly instead. The
  // branchless select keeps the loop vectorizable despite the band test.
  const double* ca = table.rank_col(a_);
  const double* cb = table.rank_col(b_);
  const double lo = lo_, hi = hi_;
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    const double b = cb[t];
    out[i] = (b < lo || b > hi) ? kInfScore : ca[t] + b;
  }
}

double ConstrainedSum::LowerBound(const Box& box) const {
  const Interval& ib = box[b_];
  if (ib.hi < lo_ || ib.lo > hi_) return kInfScore;
  return box[a_].lo + std::max(ib.lo, lo_);
}

std::vector<double> ConstrainedSum::Minimizer(const Box& box) const {
  std::vector<double> p(r_);
  for (int d = 0; d < r_; ++d) p[d] = box[d].lo;
  // Stay inside the box even when it misses the constraint band (the
  // returned point then scores +inf, matching the +inf lower bound).
  p[b_] = box[b_].Clamp(std::max(box[b_].lo, lo_));
  return p;
}

std::string ConstrainedSum::ToString() const {
  std::ostringstream os;
  os << "constrained((N" << a_ << "+N" << b_ << ")/eta[" << lo_ << "," << hi_
     << "])";
  return os.str();
}

ScoreExprPtr ConstrainedSum::Expr() const {
  return ScoreExpr::Gate(
      ScoreExpr::Add({ScoreExpr::Var(a_), ScoreExpr::Var(b_)}), b_, lo_, hi_);
}

}  // namespace rankcube
