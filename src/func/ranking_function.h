// Ranking functions with box lower bounds (the "lower-bound function" class
// of §1.2.1): given f over ranking dimensions and a domain region Omega, the
// lower bound of f over Omega can be derived. Every search algorithm in this
// repository (grid neighborhood search, R-tree branch-and-bound, index-merge)
// prunes with these bounds.
//
// Shape metadata drives algorithm selection:
//  * convex()              -> Ch3 neighborhood search is applicable (Lemma 1)
//  * MonotoneDirections()  -> Ch5 neighborhood expansion, monotone case
//  * SemiMonotoneCenter()  -> Ch5 neighborhood expansion, semi-monotone case
//  * otherwise             -> Ch5 threshold expansion (general case)
#ifndef RANKCUBE_FUNC_RANKING_FUNCTION_H_
#define RANKCUBE_FUNC_RANKING_FUNCTION_H_

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "storage/table.h"

namespace rankcube {

class ScoreExpr;  // func/score_expr.h
using ScoreExprPtr = std::shared_ptr<const ScoreExpr>;

/// Positive infinity; the score of tuples excluded by a constrained function.
inline constexpr double kInfScore = std::numeric_limits<double>::infinity();

/// Abstract scoring function over the R ranking dimensions of a table.
/// Points are passed as dense R-vectors; a function only reads the
/// dimensions in involved_dims(). Smaller scores are better (§1.2.1 assumes
/// score-ascending order throughout).
class RankingFunction {
 public:
  virtual ~RankingFunction() = default;

  /// Total ranking dimensionality R of the space this function lives in.
  virtual int num_dims() const = 0;

  /// Indices (into the R dims) this function actually reads.
  virtual const std::vector<int>& involved_dims() const = 0;

  /// Exact score of a point (array of R values).
  virtual double Evaluate(const double* point) const = 0;

  /// Exact scores of `n` tuples of `table`: out[i] = f(tuple tids[i]). One
  /// virtual call per block instead of per tuple. The default loops the
  /// scalar path (gather + Evaluate) and is bit-identical to it; subclasses
  /// override with column-direct loops that read table.rank_col(d) per
  /// involved dimension and never materialize a row. Overrides must keep the
  /// per-tuple floating-point operation order of Evaluate so batch and
  /// scalar scores stay bit-identical (the batch parity test enforces this).
  virtual void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                             double* out) const;

  /// Lower bound of f over `box` (box has R dims). Must satisfy
  /// LowerBound(box) <= Evaluate(p) for every p in box.
  virtual double LowerBound(const Box& box) const = 0;

  /// A point inside `box` with score close to LowerBound(box); used to seed
  /// the Ch3 neighborhood search. The default samples box corners and the
  /// per-dimension midpoints, which is exact for every function shipped here.
  virtual std::vector<double> Minimizer(const Box& box) const;

  /// True when f is convex on its domain (Definition 1), enabling Lemma 1.
  virtual bool convex() const { return false; }

  /// If f is monotone, the per-involved-dimension direction: +1 when f grows
  /// with the dimension, -1 when it shrinks (order matches involved_dims()).
  virtual std::optional<std::vector<int>> MonotoneDirections() const {
    return std::nullopt;
  }

  /// If f is semi-monotone (§5.2.2): the center o such that f grows with
  /// |x_i - o_i| per involved dimension.
  virtual std::optional<std::vector<double>> SemiMonotoneCenter() const {
    return std::nullopt;
  }

  virtual std::string ToString() const = 0;

  /// The function as a ScoreExpr tree (func/score_expr.h) whose fold order
  /// mirrors Evaluate() exactly, or null when no tree form exists. The fused
  /// kernel layer classifies this tree to pick a specialized loop; null means
  /// the generic EvaluateBatch path.
  virtual ScoreExprPtr Expr() const { return nullptr; }

  double Evaluate(const std::vector<double>& p) const {
    return Evaluate(p.data());
  }
};

using RankingFunctionPtr = std::shared_ptr<const RankingFunction>;

/// f = sum_i w_i * x_i over the dimensions with non-zero weight. Convex and
/// monotone (weights may be negative, matching the thesis's remark that
/// convexity generalizes linear-monotone with non-negative weights).
class LinearFunction : public RankingFunction {
 public:
  /// `weights` has size R; zero entries are uninvolved dimensions.
  explicit LinearFunction(std::vector<double> weights);

  int num_dims() const override { return static_cast<int>(w_.size()); }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override;
  void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                     double* out) const override;
  double LowerBound(const Box& box) const override;
  std::vector<double> Minimizer(const Box& box) const override;
  bool convex() const override { return true; }
  std::optional<std::vector<int>> MonotoneDirections() const override;
  std::string ToString() const override;
  ScoreExprPtr Expr() const override;

  const std::vector<double>& weights() const { return w_; }

 private:
  std::vector<double> w_;
  std::vector<int> dims_;
};

/// f = sum_i w_i * (x_i - t_i)^2 : the nearest-neighbor style distance query
/// (Q2 in Example 1). Convex and semi-monotone around the target.
class QuadraticDistance : public RankingFunction {
 public:
  /// `weights` size R (0 = uninvolved); `targets` size R (entries for
  /// uninvolved dims are ignored).
  QuadraticDistance(std::vector<double> weights, std::vector<double> targets);

  int num_dims() const override { return static_cast<int>(w_.size()); }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override;
  void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                     double* out) const override;
  double LowerBound(const Box& box) const override;
  std::vector<double> Minimizer(const Box& box) const override;
  bool convex() const override { return true; }
  std::optional<std::vector<double>> SemiMonotoneCenter() const override;
  std::string ToString() const override;
  ScoreExprPtr Expr() const override;

 private:
  std::vector<double> w_;
  std::vector<double> t_;
  std::vector<int> dims_;
};

/// f = sum_i w_i * |x_i - t_i| : L1 variant of the above.
class L1Distance : public RankingFunction {
 public:
  L1Distance(std::vector<double> weights, std::vector<double> targets);

  int num_dims() const override { return static_cast<int>(w_.size()); }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override;
  void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                     double* out) const override;
  double LowerBound(const Box& box) const override;
  std::vector<double> Minimizer(const Box& box) const override;
  bool convex() const override { return true; }
  std::optional<std::vector<double>> SemiMonotoneCenter() const override;
  std::string ToString() const override;
  ScoreExprPtr Expr() const override;

 private:
  std::vector<double> w_;
  std::vector<double> t_;
  std::vector<int> dims_;
};

/// f = (sum_i w_i * x_i)^2, e.g. the thesis's min-square-error query
/// fg = (2X - Y - Z)^2 (§4.4.2). Convex but neither monotone nor
/// semi-monotone in general.
class SquaredLinear : public RankingFunction {
 public:
  explicit SquaredLinear(std::vector<double> weights);

  int num_dims() const override { return static_cast<int>(w_.size()); }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override;
  void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                     double* out) const override;
  double LowerBound(const Box& box) const override;
  std::vector<double> Minimizer(const Box& box) const override;
  bool convex() const override { return true; }
  std::string ToString() const override;
  ScoreExprPtr Expr() const override;

 private:
  double InnerInterval(const Box& box, double* lo, double* hi) const;

  std::vector<double> w_;
  std::vector<int> dims_;
};

/// fg = (x_a - x_b^2)^2 : the "general" non-convex query of §5.4.2.
class GeneralAB : public RankingFunction {
 public:
  GeneralAB(int num_dims, int a_dim, int b_dim);

  int num_dims() const override { return r_; }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override;
  void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                     double* out) const override;
  double LowerBound(const Box& box) const override;
  std::vector<double> Minimizer(const Box& box) const override;
  std::string ToString() const override;
  ScoreExprPtr Expr() const override;

 private:
  int r_;
  int a_;
  int b_;
  std::vector<int> dims_;
};

/// fc = (x_a + x_b) / eta(x_b) with eta = 1 on [lo, hi] and 0 elsewhere:
/// the constrained query of §5.4.2 (score is +inf outside the constraint).
class ConstrainedSum : public RankingFunction {
 public:
  ConstrainedSum(int num_dims, int a_dim, int b_dim, double lo, double hi);

  int num_dims() const override { return r_; }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override;
  void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                     double* out) const override;
  double LowerBound(const Box& box) const override;
  std::vector<double> Minimizer(const Box& box) const override;
  std::string ToString() const override;
  ScoreExprPtr Expr() const override;

 private:
  int r_;
  int a_;
  int b_;
  double lo_;
  double hi_;
  std::vector<int> dims_;
};

}  // namespace rankcube

#endif  // RANKCUBE_FUNC_RANKING_FUNCTION_H_
