// Ranking functions as a small expression tree (the "algorithm" half of the
// Halide-style split the ROADMAP calls for): a ScoreExpr is a closed algebra
// of arithmetic nodes over the R ranking dimensions, and every built-in
// RankingFunction class describes itself as one (RankingFunction::Expr()).
// Two consumers read the tree:
//
//  * ExprFunction wraps any tree as a full RankingFunction — Evaluate walks
//    the tree, LowerBound comes from interval arithmetic (always a valid
//    box bound, so every pruning engine stays correct), and monotone /
//    semi-monotone / convex metadata is derived structurally. This is the
//    user-defined-function entry point: any monotone combination a caller
//    assembles becomes a first-class query the planner can route.
//
//  * ClassifyExpr pattern-matches the tree against the kernel-specializable
//    shapes (linear / quadratic / L1 / squared-linear / general-AB /
//    constrained-sum) and flattens it into an ExprPlan, which the fused
//    kernel layer (func/kernels/) binds to table columns. A user tree that
//    happens to be, say, linear is dispatched to the same fused loop as
//    LinearFunction itself; anything unrecognized falls back to the generic
//    batch path and is merely slower, never wrong.
//
// Bit-exactness contract: Eval() uses fixed left-to-right folds, and the
// trees emitted by the legacy classes mirror their Evaluate() operation
// order exactly, so tree evaluation, the legacy scalar path, the
// column-direct EvaluateBatch overrides, and the specialized kernels all
// produce identical doubles (the parity tests compare with ==).
#ifndef RANKCUBE_FUNC_SCORE_EXPR_H_
#define RANKCUBE_FUNC_SCORE_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "func/ranking_function.h"

namespace rankcube {

/// Node kinds of the score algebra. Add and Mul are n-ary with defined
/// left-to-right folding; everything else is unary/binary.
enum class ExprKind {
  kConst,   ///< literal
  kVar,     ///< ranking dimension N_d
  kAdd,     ///< left fold of + over children, starting at 0.0
  kMul,     ///< left fold of * over children, starting at children[0]
  kSub,     ///< children[0] - children[1]
  kAbs,     ///< |child|
  kSquare,  ///< child * child (child evaluated once)
  kGate,    ///< +inf when N_dim outside [band_lo, band_hi], else child
};

class ScoreExpr;
// ScoreExprPtr is declared in ranking_function.h next to Expr().

/// Immutable expression node. Build with the static factories; nodes are
/// shared freely (shared_ptr) and never mutated after construction.
class ScoreExpr {
 public:
  static ScoreExprPtr Const(double value);
  static ScoreExprPtr Var(int dim);
  static ScoreExprPtr Add(std::vector<ScoreExprPtr> children);
  static ScoreExprPtr Mul(std::vector<ScoreExprPtr> children);
  static ScoreExprPtr Sub(ScoreExprPtr a, ScoreExprPtr b);
  static ScoreExprPtr Abs(ScoreExprPtr child);
  static ScoreExprPtr Square(ScoreExprPtr child);
  /// The constrained-function gate of §5.4.2: +inf outside the band.
  static ScoreExprPtr Gate(ScoreExprPtr child, int dim, double lo, double hi);

  ExprKind kind() const { return kind_; }
  double value() const { return value_; }
  int dim() const { return dim_; }
  double band_lo() const { return band_lo_; }
  double band_hi() const { return band_hi_; }
  const std::vector<ScoreExprPtr>& children() const { return children_; }

  /// Exact score of a point (array of R values); deterministic fold order.
  double Eval(const double* point) const;

  /// Interval arithmetic over `box`: the true range of the node over the
  /// box is contained in the returned interval, so .lo is always a valid
  /// LowerBound. Adjacent structurally-shared (pointer-equal) Mul children
  /// are ranged as squares, keeping w*(x-t)*(x-t) bounds non-negative.
  Interval Range(const Box& box) const;

  /// Marks every ranking dimension the subtree reads in `involved`
  /// (caller-sized to R).
  void CollectDims(std::vector<bool>* involved) const;

  /// Monotonicity of the node in dimension `dim` over `domain`:
  /// +1 non-decreasing, -1 non-increasing, 0 independent of the dimension.
  /// nullopt = unknown (the conservative answer; never wrong, only weaker
  /// routing). Gated dimensions are always unknown (the gate is a jump).
  std::optional<int> Monotonicity(int dim, const Box& domain) const;

  std::string ToString() const;

 private:
  ScoreExpr() = default;

  ExprKind kind_ = ExprKind::kConst;
  double value_ = 0.0;  ///< kConst
  int dim_ = -1;        ///< kVar / kGate
  double band_lo_ = 0.0, band_hi_ = 0.0;  ///< kGate
  std::vector<ScoreExprPtr> children_;
};

/// Sound upper bound on max over `box` of |a(x) - b(x)|. Walks the two
/// trees in parallel, exploiting shared structure: plain interval
/// subtraction (Range(a) - Range(b)) loses the correlation through the
/// shared variables and returns bounds as wide as the score range itself,
/// useless for certifying near-duplicate reuse. Structurally parallel nodes
/// telescope instead — two linear functions bound to sum(|dw_d|) over the
/// unit box. Returns kInfScore when no finite bound is provable (gates with
/// different bands, mismatched shapes over unbounded boxes); never returns
/// an underestimate.
double MaxAbsDiff(const ScoreExpr& a, const ScoreExpr& b, const Box& box);

/// Function shapes the kernel layer specializes. kGeneric means "no fused
/// kernel; use the generic EvaluateBatch path".
enum class FuncShape {
  kGeneric,
  kLinear,
  kQuadratic,
  kL1,
  kSquaredLinear,
  kGeneralAB,
  kConstrainedSum,
};

const char* FuncShapeName(FuncShape shape);

/// A classified tree, flattened to the per-term arrays a kernel consumes.
/// `dims/weights/targets` run in evaluation (fold) order — the kernel
/// accumulates terms in exactly this order to stay bit-identical to Eval.
/// For kGeneralAB / kConstrainedSum, dims = {a, b} and the band applies to
/// dims[1].
struct ExprPlan {
  FuncShape shape = FuncShape::kGeneric;
  std::vector<int> dims;
  std::vector<double> weights;
  std::vector<double> targets;
  double band_lo = 0.0;
  double band_hi = 0.0;
};

/// Structural pattern match against the specializable shapes. Strict on
/// operation order (only trees whose fold order matches the kernel's are
/// accepted), so a specialized kernel is bit-identical to Eval by
/// construction. Unrecognized trees come back kGeneric.
ExprPlan ClassifyExpr(const ScoreExpr& expr);

/// Any ScoreExpr tree as a RankingFunction over R dimensions. The entry
/// point for user-defined ranking functions: monotone combinations get
/// exact MonotoneDirections (enabling the Ch5 monotone search), recognized
/// shapes get convex()/SemiMonotoneCenter() and the fused kernels, and
/// everything else still executes correctly through interval lower bounds
/// and the generic scan paths.
class ExprFunction : public RankingFunction {
 public:
  /// `num_dims` is R, the table's ranking dimensionality; `name` appears in
  /// ToString() (defaults to the tree's own rendering).
  ExprFunction(int num_dims, ScoreExprPtr expr, std::string name = "");

  int num_dims() const override { return r_; }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override { return expr_->Eval(p); }
  void EvaluateBatch(const Table& table, const Tid* tids, size_t n,
                     double* out) const override;
  double LowerBound(const Box& box) const override;
  bool convex() const override { return convex_; }
  std::optional<std::vector<int>> MonotoneDirections() const override;
  std::optional<std::vector<double>> SemiMonotoneCenter() const override;
  std::string ToString() const override;
  ScoreExprPtr Expr() const override { return expr_; }

  /// The classification the kernel layer dispatches on.
  const ExprPlan& plan() const { return plan_; }

 private:
  int r_;
  ScoreExprPtr expr_;
  std::string name_;
  std::vector<int> dims_;  ///< ascending involved dimensions
  ExprPlan plan_;
  bool convex_ = false;
  std::optional<std::vector<int>> monotone_;
  std::optional<std::vector<double>> semi_center_;
};

}  // namespace rankcube

#endif  // RANKCUBE_FUNC_SCORE_EXPR_H_
