// Fused scoring kernels (the "schedule" half of the Halide-style split):
// ClassifyExpr flattens a ranking function's ScoreExpr tree into an ExprPlan
// (func/score_expr.h); this layer binds that plan to table columns and
// dispatches to loops template-instantiated on (function shape ×
// involved-dim count), fusing the three passes the engines used to pay per
// block — predicate filter, virtual EvaluateBatch, OfferBatch — into one:
//
//   FusedScorer     predicate mask -> specialized column-direct scoring of
//                   survivors -> S_k threshold test before any heap traffic
//                   (TopKHeap::OfferBatch). Drop-in successor of the old
//                   core/batch_scorer.h funnel; every engine call site uses
//                   either this or BlockEvaluator.
//   BlockEvaluator  score-only variant for engines that keep their own
//                   offer discipline (R-tree leaves, ranked streams, SPJR).
//
// Each specialized shape has two loops. The *indexed* loop takes arbitrary
// tids: it is single-pass and unrolled but inherently scalar — gcc emits no
// gather instructions for col[tids[i]], so scattered scoring is bound by
// the loads, not SIMD (measured: ~1.6x over the legacy per-dim batch
// passes, and AVX2 gather intrinsics measure no faster). The *dense* loop
// fires when a block is a consecutive tid run — which is what every scan
// call site (table scan, delta overlay, grid base blocks, brute force)
// produces — and reads the columns contiguously, which genuinely
// vectorizes (~5x over indexed, verified by CI). Run detection is a
// vectorized O(n) check per block.
//
// Dispatch resolves ONCE per query (at FusedScorer/BlockEvaluator
// construction), not per block. Unrecognized shapes, >kMaxDims functions,
// and RANKCUBE_FUSED_KERNELS=0 all fall back to the generic
// RankingFunction::EvaluateBatch path — slower, never different: every
// kernel reproduces the scalar Evaluate()'s floating-point operation order
// exactly, so kernels on/off is bit-identical (enforced by the parity
// tests, which compare with ==).
//
// kernels.cc is compiled with -O3 -march=x86-64-v3 -ffp-contract=off
// (CMake per-source flags): AVX2 for the dense loops, contraction off so
// no FMA changes a result vs the baseline-compiled scalar path. CI
// verifies the marked loops actually vectorize
// (tools/check_vectorization.sh).
#ifndef RANKCUBE_FUNC_KERNELS_KERNELS_H_
#define RANKCUBE_FUNC_KERNELS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "core/topk_query.h"
#include "func/query.h"
#include "func/score_expr.h"
#include "storage/table.h"

namespace rankcube::kernels {

/// Most involved dimensions a bound kernel supports; wider functions use the
/// generic path. 1..4 get fully unrolled instantiations, 5..kMaxDims a
/// runtime-dim loop.
inline constexpr int kMaxDims = 8;

/// Tuples per flush: same block size the old BatchScorer used (amortizes
/// dispatch, keeps tids + scores in L1).
inline constexpr size_t kBlock = 1024;

/// Kill switch: false when the environment variable RANKCUBE_FUSED_KERNELS
/// is "0"/"off"/"false" (any case). Read at scorer construction — tests
/// flip it between sequential runs to prove dispatch never changes results.
bool Enabled();

/// An ExprPlan with its columns resolved against a table: everything a
/// kernel reads, laid out flat. Valid as long as the table's columns are
/// (i.e. until the next AddRow/Insert — the same contract as rank_col()).
struct BoundPlan {
  FuncShape shape = FuncShape::kGeneric;
  int d = 0;  ///< involved-dim count (fold order, matches cols/weights)
  const double* cols[kMaxDims] = {};
  double weights[kMaxDims] = {};
  double targets[kMaxDims] = {};
  double band_lo = 0.0;  ///< kConstrainedSum: band on cols[1]
  double band_hi = 0.0;
};

/// Scores n arbitrary tuples: out[i] = f(tids[i]).
using IndexedFn = void (*)(const BoundPlan&, const Tid*, size_t, double*);
/// Scores the consecutive run [t0, t0+n): out[i] = f(t0 + i).
using DenseFn = void (*)(const BoundPlan&, Tid, size_t, double*);

/// A resolved pair of specialized loops for one bound plan. `indexed` being
/// null means no kernel applies; `dense` may be null independently (the
/// runtime-dim fallbacks are indexed-only).
struct Kernel {
  IndexedFn indexed = nullptr;
  DenseFn dense = nullptr;
};

/// Resolves `plan`'s columns against `table`. False when the plan is
/// generic, empty, too wide, or names a dimension the table lacks.
bool Bind(const ExprPlan& plan, const Table& table, BoundPlan* bound);

/// The specialized loops for a bound plan ({} if none exist).
Kernel Resolve(const BoundPlan& bound);

/// True when tids[0..n) is the consecutive run tids[0], tids[0]+1, ...
/// (vectorized check; n must be > 0).
bool IsConsecutiveRun(const Tid* tids, size_t n);

/// Runs the kernel on one block, taking the dense loop when the block is a
/// consecutive run.
inline void RunKernel(const Kernel& k, const BoundPlan& bound,
                      const Tid* tids, size_t n, double* out) {
  if (k.dense != nullptr && n >= 8 && IsConsecutiveRun(tids, n)) {
    k.dense(bound, tids[0], n, out);
  } else {
    k.indexed(bound, tids, n, out);
  }
}

/// One-shot classify+bind+run for EvaluateBatch implementations: scores the
/// block through the specialized kernel and returns true, or returns false
/// (out untouched) when no kernel applies or kernels are disabled.
bool EvalDispatch(const ExprPlan& plan, const Table& table, const Tid* tids,
                  size_t n, double* out);

/// Score-only fused evaluator for engines that keep their own offer
/// discipline. Resolves the kernel once at construction; Score() is then
/// one indirect call per block (or the generic EvaluateBatch fallback).
class BlockEvaluator {
 public:
  BlockEvaluator(const Table& table, const RankingFunction& f)
      : table_(table), f_(f) {
    if (Enabled()) {
      if (ScoreExprPtr expr = f.Expr()) {
        BoundPlan bound;
        if (Bind(ClassifyExpr(*expr), table, &bound)) {
          kernel_ = Resolve(bound);
          if (kernel_.indexed != nullptr) bound_ = bound;
        }
      }
    }
  }

  /// out[i] = f(tuple tids[i]); bit-identical to the scalar path.
  void Score(const Tid* tids, size_t n, double* out) const {
    if (kernel_.indexed != nullptr) {
      RunKernel(kernel_, bound_, tids, n, out);
    } else {
      f_.EvaluateBatch(table_, tids, n, out);
    }
  }

  bool fused() const { return kernel_.indexed != nullptr; }

 private:
  const Table& table_;
  const RankingFunction& f_;
  BoundPlan bound_;
  Kernel kernel_;
};

struct FusedOptions {
  bool drop_inf = false;
};

/// The fused predicate/score/threshold funnel. Successor of the old
/// BatchScorer: call sites push candidate tids (already liveness-filtered —
/// tombstones are the caller's concern); the scorer applies the query's
/// equality predicates column-direct, scores survivors through the
/// specialized kernel, and offers through the threshold-aware OfferBatch,
/// so a block worse than S_k costs compares but zero heap operations.
///
/// `stats->tuples_evaluated` counts predicate survivors (exact scores
/// computed), matching the pre-fusion call sites. FusedOptions::drop_inf
/// compacts +inf scores out before offering — used where the legacy call
/// site did the same (delta overlay); everywhere else +inf tuples are
/// offered and lose naturally, preserving exact heap-state parity with the
/// unfused code.
class FusedScorer {
 public:
  using Options = FusedOptions;

  FusedScorer(const Table& table, const RankingFunction& f,
              const std::vector<Predicate>& predicates, TopKHeap* topk,
              ExecStats* stats, Options options = {});

  /// Predicate-free variant (call sites whose tids are already selected).
  FusedScorer(const Table& table, const RankingFunction& f, TopKHeap* topk,
              ExecStats* stats, Options options = {})
      : FusedScorer(table, f, kNoPredicates, topk, stats, options) {}

  /// Buffers one candidate; flushes a full block automatically.
  void Add(Tid tid) {
    buffer_.push_back(tid);
    if (buffer_.size() >= kBlock) Flush();
  }

  /// Filters, scores, and offers one caller-blocked batch immediately
  /// (grid blocks, merged leaves, candidate lists). Independent of Add().
  void ScoreBlock(const Tid* tids, size_t n);

  /// Drains the Add() buffer; call once after the scan loop.
  void Flush() {
    if (!buffer_.empty()) {
      ScoreBlock(buffer_.data(), buffer_.size());
      buffer_.clear();
    }
  }

  bool fused() const { return kernel_.indexed != nullptr; }

 private:
  static const std::vector<Predicate> kNoPredicates;

  struct BoundPred {
    const int32_t* col;
    int32_t value;
  };

  const Table& table_;
  const RankingFunction& f_;
  TopKHeap* topk_;
  ExecStats* stats_;
  Options options_;
  BoundPlan bound_;
  Kernel kernel_;
  std::vector<BoundPred> preds_;
  std::vector<Tid> buffer_;     ///< Add() accumulator
  std::vector<Tid> survivors_;  ///< predicate/inf compaction scratch
  std::vector<double> scores_;
};

}  // namespace rankcube::kernels

#endif  // RANKCUBE_FUNC_KERNELS_KERNELS_H_
