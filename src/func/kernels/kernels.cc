// Specialized scoring loops. This translation unit alone is compiled with
// -O3 -march=x86-64-v3 -ffp-contract=off (see CMakeLists.txt): AVX2 for the
// dense loops, contraction off so vector code is bit-identical to the
// baseline-compiled scalar paths (element-wise IEEE mul/add vectorize to
// the same results — only FMA could differ, and it is forbidden here and
// unavailable to the rest of the build).
//
// Two loops per shape:
//  * <Shape>Idx — arbitrary tids. gcc emits no gathers for col[tids[i]]
//    (and AVX2 gather intrinsics measured no faster than scalar on this
//    load-bound pattern), so these are unrolled scalar loops; their win
//    over the legacy per-dim batch passes is the single pass.
//  * <Shape>Dense — a consecutive tid run, contiguous column reads. These
//    are the loops that genuinely vectorize; CI requires every line tagged
//    `// VEC:` to appear in gcc's -fopt-info-vec optimized report
//    (tools/check_vectorization.sh). Runtime-dim fallbacks are untagged.
#include "func/kernels/kernels.h"

#include <strings.h>

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace rankcube::kernels {

namespace {

// --------------------------------------------------------- score kernels --
//
// Every kernel reproduces the corresponding Evaluate()'s floating-point
// fold exactly: terms accumulate in plan (fold) order, products associate
// left, squares are v*v. D is the compile-time involved-dim count; the
// inner j-loops fully unroll.

template <int D>
void LinearIdx(const BoundPlan& bp, const Tid* tids, size_t n, double* out) {
  const double* cols[D];
  double w[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j];
    w[j] = bp.weights[j];
  }
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < D; ++j) s += w[j] * cols[j][t];
    out[i] = s;
  }
}

template <int D>
void LinearDense(const BoundPlan& bp, Tid t0, size_t n, double* out) {
  const double* cols[D];
  double w[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j] + t0;
    w[j] = bp.weights[j];
  }
  for (size_t i = 0; i < n; ++i) {  // VEC: linear
    double s = 0.0;
    for (int j = 0; j < D; ++j) s += w[j] * cols[j][i];
    out[i] = s;
  }
}

void LinearDyn(const BoundPlan& bp, const Tid* tids, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < bp.d; ++j) s += bp.weights[j] * bp.cols[j][t];
    out[i] = s;
  }
}

template <int D>
void QuadraticIdx(const BoundPlan& bp, const Tid* tids, size_t n,
                  double* out) {
  const double* cols[D];
  double w[D], tg[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j];
    w[j] = bp.weights[j];
    tg[j] = bp.targets[j];
  }
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < D; ++j) {
      const double diff = cols[j][t] - tg[j];
      s += w[j] * diff * diff;
    }
    out[i] = s;
  }
}

template <int D>
void QuadraticDense(const BoundPlan& bp, Tid t0, size_t n, double* out) {
  const double* cols[D];
  double w[D], tg[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j] + t0;
    w[j] = bp.weights[j];
    tg[j] = bp.targets[j];
  }
  for (size_t i = 0; i < n; ++i) {  // VEC: quadratic
    double s = 0.0;
    for (int j = 0; j < D; ++j) {
      const double diff = cols[j][i] - tg[j];
      s += w[j] * diff * diff;
    }
    out[i] = s;
  }
}

void QuadraticDyn(const BoundPlan& bp, const Tid* tids, size_t n,
                  double* out) {
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < bp.d; ++j) {
      const double diff = bp.cols[j][t] - bp.targets[j];
      s += bp.weights[j] * diff * diff;
    }
    out[i] = s;
  }
}

template <int D>
void L1Idx(const BoundPlan& bp, const Tid* tids, size_t n, double* out) {
  const double* cols[D];
  double w[D], tg[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j];
    w[j] = bp.weights[j];
    tg[j] = bp.targets[j];
  }
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < D; ++j) s += w[j] * std::abs(cols[j][t] - tg[j]);
    out[i] = s;
  }
}

template <int D>
void L1Dense(const BoundPlan& bp, Tid t0, size_t n, double* out) {
  const double* cols[D];
  double w[D], tg[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j] + t0;
    w[j] = bp.weights[j];
    tg[j] = bp.targets[j];
  }
  for (size_t i = 0; i < n; ++i) {  // VEC: l1
    double s = 0.0;
    for (int j = 0; j < D; ++j) s += w[j] * std::abs(cols[j][i] - tg[j]);
    out[i] = s;
  }
}

void L1Dyn(const BoundPlan& bp, const Tid* tids, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < bp.d; ++j) {
      s += bp.weights[j] * std::abs(bp.cols[j][t] - bp.targets[j]);
    }
    out[i] = s;
  }
}

template <int D>
void SquaredLinearIdx(const BoundPlan& bp, const Tid* tids, size_t n,
                      double* out) {
  const double* cols[D];
  double w[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j];
    w[j] = bp.weights[j];
  }
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < D; ++j) s += w[j] * cols[j][t];
    out[i] = s * s;
  }
}

template <int D>
void SquaredLinearDense(const BoundPlan& bp, Tid t0, size_t n, double* out) {
  const double* cols[D];
  double w[D];
  for (int j = 0; j < D; ++j) {
    cols[j] = bp.cols[j] + t0;
    w[j] = bp.weights[j];
  }
  for (size_t i = 0; i < n; ++i) {  // VEC: squared_linear
    double s = 0.0;
    for (int j = 0; j < D; ++j) s += w[j] * cols[j][i];
    out[i] = s * s;
  }
}

void SquaredLinearDyn(const BoundPlan& bp, const Tid* tids, size_t n,
                      double* out) {
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    double s = 0.0;
    for (int j = 0; j < bp.d; ++j) s += bp.weights[j] * bp.cols[j][t];
    out[i] = s * s;
  }
}

void GeneralABIdx(const BoundPlan& bp, const Tid* tids, size_t n,
                  double* out) {
  const double* ca = bp.cols[0];
  const double* cb = bp.cols[1];
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    const double diff = ca[t] - cb[t] * cb[t];
    out[i] = diff * diff;
  }
}

void GeneralABDense(const BoundPlan& bp, Tid t0, size_t n, double* out) {
  const double* ca = bp.cols[0] + t0;
  const double* cb = bp.cols[1] + t0;
  for (size_t i = 0; i < n; ++i) {  // VEC: general_ab
    const double diff = ca[i] - cb[i] * cb[i];
    out[i] = diff * diff;
  }
}

void ConstrainedSumIdx(const BoundPlan& bp, const Tid* tids, size_t n,
                       double* out) {
  const double* ca = bp.cols[0];
  const double* cb = bp.cols[1];
  const double lo = bp.band_lo;
  const double hi = bp.band_hi;
  for (size_t i = 0; i < n; ++i) {
    const Tid t = tids[i];
    const double b = cb[t];
    // Branchless select keeps the band test out of the branch predictor.
    out[i] = (b < lo || b > hi) ? kInfScore : ca[t] + b;
  }
}

void ConstrainedSumDense(const BoundPlan& bp, Tid t0, size_t n, double* out) {
  const double* ca = bp.cols[0] + t0;
  const double* cb = bp.cols[1] + t0;
  const double lo = bp.band_lo;
  const double hi = bp.band_hi;
  for (size_t i = 0; i < n; ++i) {  // VEC: constrained_sum
    const double b = cb[i];
    out[i] = (b < lo || b > hi) ? kInfScore : ca[i] + b;
  }
}

}  // namespace

bool Enabled() {
  const char* v = std::getenv("RANKCUBE_FUSED_KERNELS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || ::strcasecmp(v, "off") == 0 ||
           ::strcasecmp(v, "false") == 0);
}

bool IsConsecutiveRun(const Tid* tids, size_t n) {
  const Tid t0 = tids[0];
  Tid acc = 0;
  for (size_t i = 0; i < n; ++i) {  // VEC: run_detect
    acc |= tids[i] ^ (t0 + static_cast<Tid>(i));
  }
  return acc == 0;
}

bool Bind(const ExprPlan& plan, const Table& table, BoundPlan* bound) {
  if (plan.shape == FuncShape::kGeneric) return false;
  const int d = static_cast<int>(plan.dims.size());
  if (d == 0 || d > kMaxDims) return false;
  for (int j = 0; j < d; ++j) {
    const int dim = plan.dims[j];
    if (dim < 0 || dim >= table.num_rank_dims()) return false;
    bound->cols[j] = table.rank_col(dim);
    bound->weights[j] =
        j < static_cast<int>(plan.weights.size()) ? plan.weights[j] : 0.0;
    bound->targets[j] =
        j < static_cast<int>(plan.targets.size()) ? plan.targets[j] : 0.0;
  }
  bound->shape = plan.shape;
  bound->d = d;
  bound->band_lo = plan.band_lo;
  bound->band_hi = plan.band_hi;
  return true;
}

namespace {

template <template <int> class Pick>
Kernel PickByDim(int d) {
  switch (d) {
    case 1:
      return Pick<1>::Get();
    case 2:
      return Pick<2>::Get();
    case 3:
      return Pick<3>::Get();
    case 4:
      return Pick<4>::Get();
    default:
      return Pick<0>::Get();  // 5..kMaxDims: runtime-dim indexed loop
  }
}

template <int D>
struct PickLinear {
  static Kernel Get() { return {&LinearIdx<D>, &LinearDense<D>}; }
};
template <>
struct PickLinear<0> {
  static Kernel Get() { return {&LinearDyn, nullptr}; }
};

template <int D>
struct PickQuadratic {
  static Kernel Get() { return {&QuadraticIdx<D>, &QuadraticDense<D>}; }
};
template <>
struct PickQuadratic<0> {
  static Kernel Get() { return {&QuadraticDyn, nullptr}; }
};

template <int D>
struct PickL1 {
  static Kernel Get() { return {&L1Idx<D>, &L1Dense<D>}; }
};
template <>
struct PickL1<0> {
  static Kernel Get() { return {&L1Dyn, nullptr}; }
};

template <int D>
struct PickSquaredLinear {
  static Kernel Get() {
    return {&SquaredLinearIdx<D>, &SquaredLinearDense<D>};
  }
};
template <>
struct PickSquaredLinear<0> {
  static Kernel Get() { return {&SquaredLinearDyn, nullptr}; }
};

}  // namespace

Kernel Resolve(const BoundPlan& bound) {
  switch (bound.shape) {
    case FuncShape::kLinear:
      return PickByDim<PickLinear>(bound.d);
    case FuncShape::kQuadratic:
      return PickByDim<PickQuadratic>(bound.d);
    case FuncShape::kL1:
      return PickByDim<PickL1>(bound.d);
    case FuncShape::kSquaredLinear:
      return PickByDim<PickSquaredLinear>(bound.d);
    case FuncShape::kGeneralAB:
      return bound.d == 2 ? Kernel{&GeneralABIdx, &GeneralABDense}
                          : Kernel{};
    case FuncShape::kConstrainedSum:
      return bound.d == 2 ? Kernel{&ConstrainedSumIdx, &ConstrainedSumDense}
                          : Kernel{};
    case FuncShape::kGeneric:
      return {};
  }
  return {};
}

bool EvalDispatch(const ExprPlan& plan, const Table& table, const Tid* tids,
                  size_t n, double* out) {
  if (!Enabled()) return false;
  BoundPlan bound;
  if (!Bind(plan, table, &bound)) return false;
  Kernel kernel = Resolve(bound);
  if (kernel.indexed == nullptr) return false;
  if (n > 0) RunKernel(kernel, bound, tids, n, out);
  return true;
}

// ------------------------------------------------------------ FusedScorer --

const std::vector<Predicate> FusedScorer::kNoPredicates;

FusedScorer::FusedScorer(const Table& table, const RankingFunction& f,
                         const std::vector<Predicate>& predicates,
                         TopKHeap* topk, ExecStats* stats, Options options)
    : table_(table), f_(f), topk_(topk), stats_(stats), options_(options) {
  buffer_.reserve(kBlock);
  preds_.reserve(predicates.size());
  for (const Predicate& p : predicates) {
    preds_.push_back({table.sel_col(p.dim), p.value});
  }
  if (Enabled()) {
    if (ScoreExprPtr expr = f.Expr()) {
      BoundPlan bound;
      if (Bind(ClassifyExpr(*expr), table, &bound)) {
        kernel_ = Resolve(bound);
        if (kernel_.indexed != nullptr) bound_ = bound;
      }
    }
  }
}

void FusedScorer::ScoreBlock(const Tid* tids, size_t n) {
  if (n == 0) return;
  const Tid* cur = tids;
  size_t m = n;

  // Predicate pass: column-direct branchless compaction, one predicate at a
  // time. Survivor order is tid order, exactly as the scalar early-exit
  // checks the call sites used to run.
  if (!preds_.empty()) {
    survivors_.resize(n);
    size_t w = 0;
    {
      const int32_t* col = preds_[0].col;
      const int32_t v = preds_[0].value;
      for (size_t i = 0; i < n; ++i) {
        const Tid t = tids[i];
        survivors_[w] = t;
        w += static_cast<size_t>(col[t] == v);
      }
    }
    for (size_t pi = 1; pi < preds_.size(); ++pi) {
      const int32_t* col = preds_[pi].col;
      const int32_t v = preds_[pi].value;
      size_t w2 = 0;
      for (size_t i = 0; i < w; ++i) {
        const Tid t = survivors_[i];
        survivors_[w2] = t;
        w2 += static_cast<size_t>(col[t] == v);
      }
      w = w2;
    }
    if (w == 0) return;
    cur = survivors_.data();
    m = w;
  }

  scores_.resize(m);
  if (kernel_.indexed != nullptr) {
    RunKernel(kernel_, bound_, cur, m, scores_.data());
  } else {
    f_.EvaluateBatch(table_, cur, m, scores_.data());
  }
  stats_->tuples_evaluated += m;

  if (options_.drop_inf) {
    if (cur != survivors_.data()) {
      survivors_.assign(cur, cur + m);
      cur = survivors_.data();
    }
    size_t w = 0;
    for (size_t i = 0; i < m; ++i) {
      survivors_[w] = survivors_[i];
      scores_[w] = scores_[i];
      w += static_cast<size_t>(scores_[i] < kInfScore);
    }
    m = w;
    if (m == 0) return;
  }

  // The S_k threshold test lives in OfferBatch: m compares, zero heap
  // operations for a block that cannot improve the answer.
  topk_->OfferBatch(cur, scores_.data(), m);
}

}  // namespace rankcube::kernels
