#include "func/score_expr.h"

#include <cmath>
#include <sstream>

#include "func/kernels/kernels.h"

namespace rankcube {

namespace {

/// Interval product with the IEEE corner cases blunted: any NaN among the
/// endpoint products (0 * inf from a gated subtree) widens to the
/// everything-interval, which is still a valid enclosure.
Interval IntervalMul(const Interval& a, const Interval& b) {
  const double p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  Interval r{p[0], p[0]};
  for (double v : p) {
    if (std::isnan(v)) return {-kInfScore, kInfScore};
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  return r;
}

/// Range of x*x given the range of x (non-negative, unlike IntervalMul of
/// an interval with itself, which forgets the two factors are equal).
Interval IntervalSquare(const Interval& x) {
  const double a = x.lo * x.lo, b = x.hi * x.hi;
  if (x.lo <= 0.0 && 0.0 <= x.hi) return {0.0, std::max(a, b)};
  return {std::min(a, b), std::max(a, b)};
}

Interval IntervalAbs(const Interval& x) {
  const double a = std::abs(x.lo), b = std::abs(x.hi);
  if (x.lo <= 0.0 && 0.0 <= x.hi) return {0.0, std::max(a, b)};
  return {std::min(a, b), std::max(a, b)};
}

/// Sign of a node over `domain`: +1 when provably >= 0 everywhere, -1 when
/// provably <= 0, nullopt otherwise.
std::optional<int> RangeSign(const ScoreExpr& e, const Box& domain) {
  Interval r = e.Range(domain);
  if (r.lo >= 0.0) return +1;
  if (r.hi <= 0.0) return -1;
  return std::nullopt;
}

std::optional<int> Flip(std::optional<int> m) {
  if (!m) return std::nullopt;
  return -*m;
}

/// Add-style combination: directions must agree (0 is neutral).
std::optional<int> CombineMono(std::optional<int> a, std::optional<int> b) {
  if (!a || !b) return std::nullopt;
  if (*a == 0) return b;
  if (*b == 0 || *a == *b) return a;
  return std::nullopt;
}

}  // namespace

// ------------------------------------------------------------- factories --

ScoreExprPtr ScoreExpr::Const(double value) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kConst;
  e->value_ = value;
  return e;
}

ScoreExprPtr ScoreExpr::Var(int dim) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kVar;
  e->dim_ = dim;
  return e;
}

ScoreExprPtr ScoreExpr::Add(std::vector<ScoreExprPtr> children) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kAdd;
  e->children_ = std::move(children);
  return e;
}

ScoreExprPtr ScoreExpr::Mul(std::vector<ScoreExprPtr> children) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kMul;
  e->children_ = std::move(children);
  return e;
}

ScoreExprPtr ScoreExpr::Sub(ScoreExprPtr a, ScoreExprPtr b) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kSub;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ScoreExprPtr ScoreExpr::Abs(ScoreExprPtr child) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kAbs;
  e->children_ = {std::move(child)};
  return e;
}

ScoreExprPtr ScoreExpr::Square(ScoreExprPtr child) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kSquare;
  e->children_ = {std::move(child)};
  return e;
}

ScoreExprPtr ScoreExpr::Gate(ScoreExprPtr child, int dim, double lo,
                             double hi) {
  auto e = std::shared_ptr<ScoreExpr>(new ScoreExpr());
  e->kind_ = ExprKind::kGate;
  e->children_ = {std::move(child)};
  e->dim_ = dim;
  e->band_lo_ = lo;
  e->band_hi_ = hi;
  return e;
}

// ------------------------------------------------------------ evaluation --

double ScoreExpr::Eval(const double* point) const {
  switch (kind_) {
    case ExprKind::kConst:
      return value_;
    case ExprKind::kVar:
      return point[dim_];
    case ExprKind::kAdd: {
      double s = 0.0;
      for (const auto& c : children_) s += c->Eval(point);
      return s;
    }
    case ExprKind::kMul: {
      double s = children_[0]->Eval(point);
      for (size_t i = 1; i < children_.size(); ++i) {
        s *= children_[i]->Eval(point);
      }
      return s;
    }
    case ExprKind::kSub:
      return children_[0]->Eval(point) - children_[1]->Eval(point);
    case ExprKind::kAbs:
      return std::abs(children_[0]->Eval(point));
    case ExprKind::kSquare: {
      const double v = children_[0]->Eval(point);
      return v * v;
    }
    case ExprKind::kGate: {
      const double x = point[dim_];
      if (x < band_lo_ || x > band_hi_) return kInfScore;
      return children_[0]->Eval(point);
    }
  }
  return 0.0;  // unreachable
}

Interval ScoreExpr::Range(const Box& box) const {
  switch (kind_) {
    case ExprKind::kConst:
      return {value_, value_};
    case ExprKind::kVar:
      return box[dim_];
    case ExprKind::kAdd: {
      Interval r{0.0, 0.0};
      for (const auto& c : children_) {
        Interval cr = c->Range(box);
        r.lo += cr.lo;
        r.hi += cr.hi;
      }
      return r;
    }
    case ExprKind::kMul: {
      // Fold left; a pointer-shared adjacent pair (the w*(x-t)*(x-t) idiom
      // the built-in quadratic emits) is ranged as one square so the bound
      // stays non-negative.
      Interval r{1.0, 1.0};
      size_t i = 0;
      if (children_.size() == 1 ||
          children_[0].get() != children_[1].get()) {
        r = children_[0]->Range(box);
        i = 1;
      }
      while (i < children_.size()) {
        if (i + 1 < children_.size() &&
            children_[i].get() == children_[i + 1].get()) {
          r = IntervalMul(r, IntervalSquare(children_[i]->Range(box)));
          i += 2;
        } else {
          r = IntervalMul(r, children_[i]->Range(box));
          i += 1;
        }
      }
      return r;
    }
    case ExprKind::kSub: {
      Interval a = children_[0]->Range(box);
      Interval b = children_[1]->Range(box);
      return {a.lo - b.hi, a.hi - b.lo};
    }
    case ExprKind::kAbs:
      return IntervalAbs(children_[0]->Range(box));
    case ExprKind::kSquare:
      return IntervalSquare(children_[0]->Range(box));
    case ExprKind::kGate: {
      const Interval& iv = box[dim_];
      if (iv.hi < band_lo_ || iv.lo > band_hi_) {
        return {kInfScore, kInfScore};
      }
      // Inside the box the gate only passes points within the band:
      // restrict the dimension before bounding the body (the same
      // tightening the legacy ConstrainedSum::LowerBound applies).
      Box refined = box;
      refined[dim_] = {std::max(iv.lo, band_lo_), std::min(iv.hi, band_hi_)};
      return children_[0]->Range(refined);
    }
  }
  return {-kInfScore, kInfScore};  // unreachable
}

namespace {

/// max |e(x)| over the box, from interval arithmetic; kInfScore when the
/// range is unbounded (gate outside its band).
double MaxAbs(const ScoreExpr& e, const Box& box) {
  Interval r = e.Range(box);
  if (!std::isfinite(r.lo) || !std::isfinite(r.hi)) return kInfScore;
  return std::max(std::abs(r.lo), std::abs(r.hi));
}

/// The structure-oblivious fallback: |a - b| <= the widest separation of
/// the two ranges. Sound but loose — only reached when the trees stop
/// being structurally parallel.
double RangeDiff(const ScoreExpr& a, const ScoreExpr& b, const Box& box) {
  Interval ra = a.Range(box);
  Interval rb = b.Range(box);
  if (!std::isfinite(ra.lo) || !std::isfinite(ra.hi) ||
      !std::isfinite(rb.lo) || !std::isfinite(rb.hi)) {
    return kInfScore;
  }
  return std::max(std::abs(ra.hi - rb.lo), std::abs(rb.hi - ra.lo));
}

}  // namespace

double MaxAbsDiff(const ScoreExpr& a, const ScoreExpr& b, const Box& box) {
  if (&a == &b) return 0.0;  // shared subtree: identical by construction
  if (a.kind() != b.kind() || a.children().size() != b.children().size()) {
    return RangeDiff(a, b, box);
  }
  switch (a.kind()) {
    case ExprKind::kConst:
      return std::abs(a.value() - b.value());
    case ExprKind::kVar:
      return a.dim() == b.dim() ? 0.0 : RangeDiff(a, b, box);
    case ExprKind::kAdd: {
      // |sum a_i - sum b_i| <= sum |a_i - b_i| pairwise.
      double d = 0.0;
      for (size_t i = 0; i < a.children().size(); ++i) {
        d += MaxAbsDiff(*a.children()[i], *b.children()[i], box);
      }
      return std::min(d, kInfScore);
    }
    case ExprKind::kSub: {
      double d = MaxAbsDiff(*a.children()[0], *b.children()[0], box) +
                 MaxAbsDiff(*a.children()[1], *b.children()[1], box);
      return std::min(d, kInfScore);
    }
    case ExprKind::kAbs:
      // ||x| - |y|| <= |x - y|.
      return MaxAbsDiff(*a.children()[0], *b.children()[0], box);
    case ExprKind::kSquare: {
      // |x^2 - y^2| = |x - y| * |x + y|.
      double d = MaxAbsDiff(*a.children()[0], *b.children()[0], box);
      if (d == 0.0) return 0.0;
      double scale =
          MaxAbs(*a.children()[0], box) + MaxAbs(*b.children()[0], box);
      return std::min(d * scale, kInfScore);
    }
    case ExprKind::kMul: {
      // Telescope: prod(a) - prod(b) = sum_i prod(a_{<i}) * (a_i - b_i)
      // * prod(b_{>i}); bound each factor by its max magnitude. A zero
      // pairwise diff zeroes its term exactly, whatever the scales.
      const size_t n = a.children().size();
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = MaxAbsDiff(*a.children()[i], *b.children()[i], box);
        if (d == 0.0) continue;
        double term = d;
        for (size_t j = 0; j < i; ++j) {
          term *= MaxAbs(*a.children()[j], box);
        }
        for (size_t j = i + 1; j < n; ++j) {
          term *= MaxAbs(*b.children()[j], box);
        }
        total += term;
      }
      return std::min(total, kInfScore);
    }
    case ExprKind::kGate: {
      // Identical gates agree (+inf == +inf) outside the band and differ
      // only through their bodies inside it; different gates have a region
      // where one side is +inf and the other finite — unboundable.
      if (a.dim() != b.dim() || a.band_lo() != b.band_lo() ||
          a.band_hi() != b.band_hi()) {
        return kInfScore;
      }
      const Interval& iv = box[a.dim()];
      if (iv.hi < a.band_lo() || iv.lo > a.band_hi()) return 0.0;
      Box refined = box;
      refined[a.dim()] = {std::max(iv.lo, a.band_lo()),
                         std::min(iv.hi, a.band_hi())};
      return MaxAbsDiff(*a.children()[0], *b.children()[0], refined);
    }
  }
  return kInfScore;  // unreachable
}

void ScoreExpr::CollectDims(std::vector<bool>* involved) const {
  if (kind_ == ExprKind::kVar || kind_ == ExprKind::kGate) {
    if (dim_ >= 0 && dim_ < static_cast<int>(involved->size())) {
      (*involved)[dim_] = true;
    }
  }
  for (const auto& c : children_) c->CollectDims(involved);
}

std::optional<int> ScoreExpr::Monotonicity(int dim, const Box& domain) const {
  switch (kind_) {
    case ExprKind::kConst:
      return 0;
    case ExprKind::kVar:
      return dim_ == dim ? +1 : 0;
    case ExprKind::kAdd: {
      std::optional<int> acc = 0;
      for (const auto& c : children_) {
        acc = CombineMono(acc, c->Monotonicity(dim, domain));
        if (!acc) return std::nullopt;
      }
      return acc;
    }
    case ExprKind::kSub:
      return CombineMono(children_[0]->Monotonicity(dim, domain),
                         Flip(children_[1]->Monotonicity(dim, domain)));
    case ExprKind::kMul: {
      // Monotone when exactly one factor depends on the dimension and every
      // other factor has constant sign over the domain.
      std::optional<int> dep_mono = 0;
      int sign = +1;
      for (const auto& c : children_) {
        std::optional<int> m = c->Monotonicity(dim, domain);
        if (m.has_value() && *m == 0) {
          std::optional<int> s = RangeSign(*c, domain);
          if (!s) return std::nullopt;
          sign *= *s;
          continue;
        }
        if (dep_mono.has_value() && *dep_mono != 0) return std::nullopt;
        if (!m) return std::nullopt;
        dep_mono = m;
      }
      if (!dep_mono || *dep_mono == 0) return 0;
      return *dep_mono * sign;
    }
    case ExprKind::kAbs:
    case ExprKind::kSquare: {
      std::optional<int> m = children_[0]->Monotonicity(dim, domain);
      if (m.has_value() && *m == 0) return 0;
      if (!m) return std::nullopt;
      std::optional<int> s = RangeSign(*children_[0], domain);
      if (!s) return std::nullopt;
      return *m * *s;
    }
    case ExprKind::kGate: {
      if (dim_ == dim) return std::nullopt;  // the gate is a jump
      return children_[0]->Monotonicity(dim, domain);
    }
  }
  return std::nullopt;  // unreachable
}

std::string ScoreExpr::ToString() const {
  std::ostringstream os;
  auto join = [&](const char* op) {
    os << "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i) os << " " << op << " ";
      os << children_[i]->ToString();
    }
    os << ")";
  };
  switch (kind_) {
    case ExprKind::kConst:
      os << value_;
      break;
    case ExprKind::kVar:
      os << "N" << dim_;
      break;
    case ExprKind::kAdd:
      join("+");
      break;
    case ExprKind::kMul:
      join("*");
      break;
    case ExprKind::kSub:
      os << "(" << children_[0]->ToString() << " - "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kAbs:
      os << "|" << children_[0]->ToString() << "|";
      break;
    case ExprKind::kSquare:
      os << children_[0]->ToString() << "^2";
      break;
    case ExprKind::kGate:
      os << "gate(N" << dim_ << " in [" << band_lo_ << "," << band_hi_
         << "]; " << children_[0]->ToString() << ")";
      break;
  }
  return os.str();
}

// -------------------------------------------------------- classification --

namespace {

bool IsConst(const ScoreExpr& e) { return e.kind() == ExprKind::kConst; }
bool IsVar(const ScoreExpr& e) { return e.kind() == ExprKind::kVar; }

/// w * N_d as Mul[Const, Var] / Mul[Var, Const] / bare Var (w = 1, exact
/// since 1.0 * x == x).
bool MatchLinearTerm(const ScoreExpr& e, int* dim, double* w) {
  if (IsVar(e)) {
    *dim = e.dim();
    *w = 1.0;
    return true;
  }
  if (e.kind() != ExprKind::kMul || e.children().size() != 2) return false;
  const ScoreExpr& a = *e.children()[0];
  const ScoreExpr& b = *e.children()[1];
  if (IsConst(a) && IsVar(b)) {
    *dim = b.dim();
    *w = a.value();
    return true;
  }
  if (IsVar(a) && IsConst(b)) {
    *dim = a.dim();
    *w = b.value();
    return true;
  }
  return false;
}

/// N_d - t as Sub(Var, Const).
bool MatchShiftedVar(const ScoreExpr& e, int* dim, double* t) {
  if (e.kind() != ExprKind::kSub) return false;
  const ScoreExpr& a = *e.children()[0];
  const ScoreExpr& b = *e.children()[1];
  if (!IsVar(a) || !IsConst(b)) return false;
  *dim = a.dim();
  *t = b.value();
  return true;
}

/// w*(N_d - t)*(N_d - t) as Mul[Const, Sub, Sub] with matching Subs — the
/// fold order the quadratic kernel reproduces.
bool MatchQuadTerm(const ScoreExpr& e, int* dim, double* w, double* t) {
  if (e.kind() != ExprKind::kMul || e.children().size() != 3) return false;
  if (!IsConst(*e.children()[0])) return false;
  int d1, d2;
  double t1, t2;
  if (!MatchShiftedVar(*e.children()[1], &d1, &t1)) return false;
  if (!MatchShiftedVar(*e.children()[2], &d2, &t2)) return false;
  if (d1 != d2 || t1 != t2) return false;
  *dim = d1;
  *w = e.children()[0]->value();
  *t = t1;
  return true;
}

/// w*|N_d - t| as Mul[Const, Abs(Sub)] or bare Abs(Sub) (w = 1).
bool MatchL1Term(const ScoreExpr& e, int* dim, double* w, double* t) {
  const ScoreExpr* abs_node = nullptr;
  if (e.kind() == ExprKind::kAbs) {
    abs_node = &e;
    *w = 1.0;
  } else if (e.kind() == ExprKind::kMul && e.children().size() == 2 &&
             IsConst(*e.children()[0]) &&
             e.children()[1]->kind() == ExprKind::kAbs) {
    abs_node = e.children()[1].get();
    *w = e.children()[0]->value();
  } else {
    return false;
  }
  return MatchShiftedVar(*abs_node->children()[0], dim, t);
}

/// Matches a sum (or a single bare term) against a per-term matcher.
template <typename TermFn>
bool MatchSum(const ScoreExpr& e, TermFn&& term) {
  if (e.kind() == ExprKind::kAdd) {
    if (e.children().empty()) return false;
    for (const auto& c : e.children()) {
      if (!term(*c)) return false;
    }
    return true;
  }
  return term(e);
}

bool MatchLinear(const ScoreExpr& e, ExprPlan* plan) {
  return MatchSum(e, [plan](const ScoreExpr& c) {
    int dim;
    double w;
    if (!MatchLinearTerm(c, &dim, &w)) return false;
    plan->dims.push_back(dim);
    plan->weights.push_back(w);
    return true;
  });
}

}  // namespace

const char* FuncShapeName(FuncShape shape) {
  switch (shape) {
    case FuncShape::kGeneric:
      return "generic";
    case FuncShape::kLinear:
      return "linear";
    case FuncShape::kQuadratic:
      return "quadratic";
    case FuncShape::kL1:
      return "l1";
    case FuncShape::kSquaredLinear:
      return "squared_linear";
    case FuncShape::kGeneralAB:
      return "general_ab";
    case FuncShape::kConstrainedSum:
      return "constrained_sum";
  }
  return "generic";
}

ExprPlan ClassifyExpr(const ScoreExpr& expr) {
  ExprPlan plan;

  // constrained-sum: Gate(N_b in band; N_a + N_b).
  if (expr.kind() == ExprKind::kGate) {
    const ScoreExpr& body = *expr.children()[0];
    if (body.kind() == ExprKind::kAdd && body.children().size() == 2 &&
        IsVar(*body.children()[0]) && IsVar(*body.children()[1]) &&
        body.children()[1]->dim() == expr.dim()) {
      plan.shape = FuncShape::kConstrainedSum;
      plan.dims = {body.children()[0]->dim(), body.children()[1]->dim()};
      plan.band_lo = expr.band_lo();
      plan.band_hi = expr.band_hi();
      return plan;
    }
    return plan;  // other gated bodies stay generic
  }

  if (expr.kind() == ExprKind::kSquare) {
    const ScoreExpr& inner = *expr.children()[0];
    // general-AB: (N_a - N_b^2)^2.
    if (inner.kind() == ExprKind::kSub && IsVar(*inner.children()[0]) &&
        inner.children()[1]->kind() == ExprKind::kSquare &&
        IsVar(*inner.children()[1]->children()[0])) {
      plan.shape = FuncShape::kGeneralAB;
      plan.dims = {inner.children()[0]->dim(),
                   inner.children()[1]->children()[0]->dim()};
      return plan;
    }
    // squared-linear: (sum w_i N_i)^2.
    if (MatchLinear(inner, &plan)) {
      plan.shape = FuncShape::kSquaredLinear;
      return plan;
    }
    plan = ExprPlan();
    return plan;
  }

  if (MatchLinear(expr, &plan)) {
    plan.shape = FuncShape::kLinear;
    return plan;
  }
  plan = ExprPlan();

  bool quad = MatchSum(expr, [&plan](const ScoreExpr& c) {
    int dim;
    double w, t;
    if (!MatchQuadTerm(c, &dim, &w, &t)) return false;
    plan.dims.push_back(dim);
    plan.weights.push_back(w);
    plan.targets.push_back(t);
    return true;
  });
  if (quad) {
    plan.shape = FuncShape::kQuadratic;
    return plan;
  }
  plan = ExprPlan();

  bool l1 = MatchSum(expr, [&plan](const ScoreExpr& c) {
    int dim;
    double w, t;
    if (!MatchL1Term(c, &dim, &w, &t)) return false;
    plan.dims.push_back(dim);
    plan.weights.push_back(w);
    plan.targets.push_back(t);
    return true;
  });
  if (l1) {
    plan.shape = FuncShape::kL1;
    return plan;
  }
  return ExprPlan();
}

// ---------------------------------------------------------- ExprFunction --

ExprFunction::ExprFunction(int num_dims, ScoreExprPtr expr, std::string name)
    : r_(num_dims), expr_(std::move(expr)), name_(std::move(name)) {
  std::vector<bool> involved(r_, false);
  expr_->CollectDims(&involved);
  for (int d = 0; d < r_; ++d) {
    if (involved[d]) dims_.push_back(d);
  }
  plan_ = ClassifyExpr(*expr_);

  bool weights_nonneg = true;
  for (double w : plan_.weights) weights_nonneg &= w >= 0.0;
  switch (plan_.shape) {
    case FuncShape::kLinear:
    case FuncShape::kSquaredLinear:
      convex_ = true;
      break;
    case FuncShape::kQuadratic:
    case FuncShape::kL1:
      convex_ = weights_nonneg;
      break;
    default:
      convex_ = false;
  }

  // Structural monotone directions over the normalized [0,1]^R domain; a
  // single unknown dimension forfeits the claim (conservative: engines that
  // need monotonicity simply are not offered it).
  Box unit = Box::Unit(static_cast<size_t>(r_));
  std::vector<int> dirs;
  dirs.reserve(dims_.size());
  bool all_known = true;
  for (int d : dims_) {
    std::optional<int> m = expr_->Monotonicity(d, unit);
    if (!m) {
      all_known = false;
      break;
    }
    dirs.push_back(*m == 0 ? +1 : *m);  // constant-in-dim is trivially both
  }
  if (all_known && !dims_.empty()) monotone_ = std::move(dirs);

  // Semi-monotone center for recognized distance shapes with non-negative
  // weights and one term per dimension.
  if ((plan_.shape == FuncShape::kQuadratic ||
       plan_.shape == FuncShape::kL1) &&
      weights_nonneg && plan_.dims.size() == dims_.size()) {
    std::vector<double> center(dims_.size(), 0.0);
    bool unique = true;
    std::vector<bool> seen(r_, false);
    for (size_t j = 0; j < plan_.dims.size(); ++j) {
      int d = plan_.dims[j];
      if (d < 0 || d >= r_ || seen[d]) {
        unique = false;
        break;
      }
      seen[d] = true;
      size_t pos = 0;
      while (dims_[pos] != d) ++pos;
      center[pos] = plan_.targets[j];
    }
    if (unique) semi_center_ = std::move(center);
  }
}

void ExprFunction::EvaluateBatch(const Table& table, const Tid* tids,
                                 size_t n, double* out) const {
  // A classified tree runs the same specialized column-direct kernel the
  // fused scorer dispatches to; unrecognized trees take the generic
  // gather-and-walk path. Both are bit-identical to Eval.
  if (plan_.shape != FuncShape::kGeneric &&
      kernels::EvalDispatch(plan_, table, tids, n, out)) {
    return;
  }
  RankingFunction::EvaluateBatch(table, tids, n, out);
}

double ExprFunction::LowerBound(const Box& box) const {
  return expr_->Range(box).lo;
}

std::optional<std::vector<int>> ExprFunction::MonotoneDirections() const {
  return monotone_;
}

std::optional<std::vector<double>> ExprFunction::SemiMonotoneCenter() const {
  return semi_center_;
}

std::string ExprFunction::ToString() const {
  if (!name_.empty()) return name_ + "(" + expr_->ToString() + ")";
  return "expr(" + expr_->ToString() + ")";
}

}  // namespace rankcube
