// Query model shared by every engine in the repository (§1.2.1):
//   select top k * from R
//   where A'_1 = a_1 and ... A'_s = a_s
//   order by f(N'_1, ..., N'_r)
#ifndef RANKCUBE_FUNC_QUERY_H_
#define RANKCUBE_FUNC_QUERY_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "func/ranking_function.h"

namespace rankcube {

/// Equality predicate on one selection (boolean) dimension.
struct Predicate {
  int dim = 0;        ///< selection-dimension index
  int32_t value = 0;  ///< required value

  bool operator==(const Predicate&) const = default;
};

/// A multi-dimensionally selected top-k query.
struct TopKQuery {
  std::vector<Predicate> predicates;  ///< conjunctive equality selections
  RankingFunctionPtr function;        ///< scoring; smaller is better
  int k = 10;

  std::string ToString() const {
    std::ostringstream os;
    os << "top-" << k << " where ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i) os << " and ";
      os << "A" << predicates[i].dim << "=" << predicates[i].value;
    }
    if (predicates.empty()) os << "true";
    os << " order by " << (function ? function->ToString() : "<none>");
    return os.str();
  }
};

/// One ranked answer.
struct ScoredTuple {
  uint32_t tid = 0;
  double score = 0.0;

  bool operator<(const ScoredTuple& o) const {
    return score < o.score || (score == o.score && tid < o.tid);
  }
  bool operator==(const ScoredTuple&) const = default;
};

}  // namespace rankcube

#endif  // RANKCUBE_FUNC_QUERY_H_
