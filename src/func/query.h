// Query model shared by every engine in the repository (§1.2.1):
//   select top k * from R
//   where A'_1 = a_1 and ... A'_s = a_s
//   order by f(N'_1, ..., N'_r)
#ifndef RANKCUBE_FUNC_QUERY_H_
#define RANKCUBE_FUNC_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "func/ranking_function.h"
#include "storage/table.h"

namespace rankcube {

/// Equality predicate on one selection (boolean) dimension.
struct Predicate {
  int dim = 0;        ///< selection-dimension index
  int32_t value = 0;  ///< required value

  bool operator==(const Predicate&) const = default;
};

/// A multi-dimensionally selected top-k query.
struct TopKQuery {
  std::vector<Predicate> predicates;  ///< conjunctive equality selections
  RankingFunctionPtr function;        ///< scoring; smaller is better
  int k = 10;

  std::string ToString() const {
    std::ostringstream os;
    os << "top-" << k << " where ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i) os << " and ";
      os << "A" << predicates[i].dim << "=" << predicates[i].value;
    }
    if (predicates.empty()) os << "true";
    os << " order by " << (function ? function->ToString() : "<none>");
    return os.str();
  }
};

/// Shared sanity check applied by every engine before execution (the seed's
/// engines disagreed: cubes returned Status, baselines silently returned
/// empty vectors). All execution now funnels through this one helper so a
/// malformed query fails identically regardless of the engine.
inline Status ValidateQuery(const TopKQuery& query, const TableSchema& schema) {
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(query.k));
  }
  if (!query.function) {
    return Status::InvalidArgument("query has no ranking function");
  }
  if (query.function->num_dims() != schema.num_rank_dims) {
    return Status::InvalidArgument(
        "ranking function covers " +
        std::to_string(query.function->num_dims()) + " dims but table has " +
        std::to_string(schema.num_rank_dims));
  }
  std::vector<bool> seen(schema.sel_cardinality.size(), false);
  for (const auto& p : query.predicates) {
    if (p.dim < 0 || p.dim >= schema.num_sel_dims()) {
      return Status::InvalidArgument("predicate dimension A" +
                                     std::to_string(p.dim) + " out of range");
    }
    if (p.value < 0 || p.value >= schema.sel_cardinality[p.dim]) {
      return Status::InvalidArgument(
          "predicate value " + std::to_string(p.value) + " out of range for A" +
          std::to_string(p.dim));
    }
    if (seen[p.dim]) {
      return Status::InvalidArgument("duplicate predicate on dimension A" +
                                     std::to_string(p.dim));
    }
    seen[p.dim] = true;
  }
  return Status::OK();
}

/// One ranked answer.
struct ScoredTuple {
  uint32_t tid = 0;
  double score = 0.0;

  bool operator<(const ScoredTuple& o) const {
    return score < o.score || (score == o.score && tid < o.tid);
  }
  bool operator==(const ScoredTuple&) const = default;
};

/// Exact top-k by full in-memory evaluation; returns ascending scores. The
/// reference oracle: correctness tests compare every engine against it, and
/// the rank-mapping engine derives its optimal k-th-score bound from it
/// (no pages are charged — it reads the in-memory columns directly).
inline std::vector<ScoredTuple> BruteForceTopK(const Table& table,
                                               const TopKQuery& query) {
  std::vector<ScoredTuple> all;
  std::vector<double> point(table.num_rank_dims());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    bool ok = true;
    for (const auto& p : query.predicates) {
      if (table.sel(t, p.dim) != p.value) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int d = 0; d < table.num_rank_dims(); ++d) point[d] = table.rank(t, d);
    double s = query.function->Evaluate(point.data());
    if (s < kInfScore) all.push_back({t, s});
  }
  std::sort(all.begin(), all.end());
  if (all.size() > static_cast<size_t>(query.k)) all.resize(query.k);
  return all;
}

}  // namespace rankcube

#endif  // RANKCUBE_FUNC_QUERY_H_
