// Query model shared by every engine in the repository (§1.2.1):
//   select top k * from R
//   where A'_1 = a_1 and ... A'_s = a_s
//   order by f(N'_1, ..., N'_r)
#ifndef RANKCUBE_FUNC_QUERY_H_
#define RANKCUBE_FUNC_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "func/ranking_function.h"
#include "storage/table.h"

namespace rankcube {

/// Equality predicate on one selection (boolean) dimension.
struct Predicate {
  int dim = 0;        ///< selection-dimension index
  int32_t value = 0;  ///< required value

  bool operator==(const Predicate&) const = default;
};

/// A multi-dimensionally selected top-k query.
struct TopKQuery {
  std::vector<Predicate> predicates;  ///< conjunctive equality selections
  RankingFunctionPtr function;        ///< scoring; smaller is better
  int k = 10;

  std::string ToString() const {
    std::ostringstream os;
    os << "top-" << k << " where ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i) os << " and ";
      os << "A" << predicates[i].dim << "=" << predicates[i].value;
    }
    if (predicates.empty()) os << "true";
    os << " order by " << (function ? function->ToString() : "<none>");
    return os.str();
  }
};

/// Shared sanity check applied by every engine before execution (the seed's
/// engines disagreed: cubes returned Status, baselines silently returned
/// empty vectors). All execution now funnels through this one helper so a
/// malformed query fails identically regardless of the engine.
inline Status ValidateQuery(const TopKQuery& query, const TableSchema& schema) {
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(query.k));
  }
  if (!query.function) {
    return Status::InvalidArgument("query has no ranking function");
  }
  if (query.function->num_dims() != schema.num_rank_dims) {
    return Status::InvalidArgument(
        "ranking function covers " +
        std::to_string(query.function->num_dims()) + " dims but table has " +
        std::to_string(schema.num_rank_dims));
  }
  std::vector<bool> seen(schema.sel_cardinality.size(), false);
  for (const auto& p : query.predicates) {
    if (p.dim < 0 || p.dim >= schema.num_sel_dims()) {
      return Status::InvalidArgument("predicate dimension A" +
                                     std::to_string(p.dim) + " out of range");
    }
    if (p.value < 0 || p.value >= schema.sel_cardinality[p.dim]) {
      return Status::InvalidArgument(
          "predicate value " + std::to_string(p.value) + " out of range for A" +
          std::to_string(p.dim));
    }
    if (seen[p.dim]) {
      return Status::InvalidArgument("duplicate predicate on dimension A" +
                                     std::to_string(p.dim));
    }
    seen[p.dim] = true;
  }
  return Status::OK();
}

/// One ranked answer.
struct ScoredTuple {
  uint32_t tid = 0;
  double score = 0.0;

  bool operator<(const ScoredTuple& o) const {
    return score < o.score || (score == o.score && tid < o.tid);
  }
  bool operator==(const ScoredTuple&) const = default;
};

/// Bounded max-heap over scores: keeps the k smallest-scoring tuples seen;
/// `KthScore()` is the current S_k bound used by every stop condition.
class TopKHeap {
 public:
  explicit TopKHeap(int k) : k_(k) {}

  void Offer(Tid tid, double score) {
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.push_back({tid, score});
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    } else if (!heap_.empty() && score < heap_.front().score) {
      std::pop_heap(heap_.begin(), heap_.end(), Worse);
      heap_.back() = {tid, score};
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    }
  }

  /// Offers a block of scored tuples, filtering against the current S_k
  /// bound before touching the heap: a block whose tuples all score worse
  /// than KthScore() costs n compares and zero heap operations. Produces
  /// exactly the same heap state as n repeated Offer() calls.
  void OfferBatch(const Tid* tids, const double* scores, size_t n) {
    if (k_ <= 0) return;
    size_t i = 0;
    // Fill phase: until k results exist every tuple enters the heap.
    for (; i < n && static_cast<int>(heap_.size()) < k_; ++i) {
      Offer(tids[i], scores[i]);
    }
    for (; i < n; ++i) {
      if (scores[i] < heap_.front().score) Offer(tids[i], scores[i]);
    }
  }

  bool Full() const { return static_cast<int>(heap_.size()) >= k_; }

  /// S_k: the k-th best score so far, +inf until k results exist.
  double KthScore() const {
    return Full() && k_ > 0 ? heap_.front().score : kInfScore;
  }

  /// Results in ascending score order.
  std::vector<ScoredTuple> Sorted() const {
    std::vector<ScoredTuple> v = heap_;
    std::sort(v.begin(), v.end());
    return v;
  }

  size_t size() const { return heap_.size(); }

 private:
  static bool Worse(const ScoredTuple& a, const ScoredTuple& b) {
    return a.score < b.score;  // max-heap on score
  }

  int k_;
  std::vector<ScoredTuple> heap_;
};

/// Exact top-k by full in-memory evaluation; returns ascending scores. The
/// reference oracle: correctness tests compare every engine against it, and
/// the rank-mapping engine derives its optimal k-th-score bound from it
/// (no pages are charged — it reads the in-memory columns directly).
/// Scores through the same column-direct EvaluateBatch + threshold-aware
/// OfferBatch pair the engines run, so the oracle exercises the vectorized
/// path instead of a per-tuple rank() gather.
inline std::vector<ScoredTuple> BruteForceTopK(const Table& table,
                                               const TopKQuery& query) {
  constexpr size_t kBlock = 1024;
  std::vector<Tid> tids;
  tids.reserve(kBlock);
  std::vector<double> scores(kBlock);
  TopKHeap topk(query.k);
  auto flush = [&] {
    scores.resize(tids.size());
    query.function->EvaluateBatch(table, tids.data(), tids.size(),
                                  scores.data());
    // Tuples a constrained function excludes score +inf and never rank
    // (the heap's fill phase would otherwise admit them); compact them out
    // before offering.
    size_t m = 0;
    for (size_t i = 0; i < tids.size(); ++i) {
      if (scores[i] < kInfScore) {
        tids[m] = tids[i];
        scores[m] = scores[i];
        ++m;
      }
    }
    topk.OfferBatch(tids.data(), scores.data(), m);
    tids.clear();
  };
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (!table.is_live(t)) continue;
    bool ok = true;
    for (const auto& p : query.predicates) {
      if (table.sel(t, p.dim) != p.value) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    tids.push_back(t);
    if (tids.size() >= kBlock) flush();
  }
  flush();
  return topk.Sorted();
}

}  // namespace rankcube

#endif  // RANKCUBE_FUNC_QUERY_H_
