#include "server/admission.h"

#include <algorithm>

namespace rankcube {

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->Finish(tenant_, ok_);
  controller_ = nullptr;
}

AdmissionController::Tenant& AdmissionController::TenantLocked(
    const std::string& name) const {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant{default_quota_, TenantCounters{}}).first;
  }
  return it->second;
}

void AdmissionController::SetQuota(const std::string& tenant,
                                   TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantLocked(tenant).quota = quota;
}

TenantQuota AdmissionController::QuotaFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return TenantLocked(tenant).quota;
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = TenantLocked(tenant);
  if (t.quota.max_inflight > 0 &&
      t.counters.inflight >= t.quota.max_inflight) {
    ++t.counters.rejected;
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' at its in-flight limit (" +
        std::to_string(t.quota.max_inflight) + "); rejected, not queued");
  }
  ++t.counters.inflight;
  ++t.counters.admitted;
  return Ticket(this, tenant);
}

std::pair<uint64_t, uint64_t> AdmissionController::Clamp(
    const std::string& tenant, uint64_t requested_budget,
    uint64_t requested_deadline_ms) const {
  TenantQuota quota = QuotaFor(tenant);
  uint64_t budget = requested_budget;
  if (quota.page_budget > 0) {
    budget = budget == 0 ? quota.page_budget
                         : std::min(budget, quota.page_budget);
  }
  uint64_t deadline = requested_deadline_ms;
  if (quota.deadline_ms > 0) {
    deadline = deadline == 0 ? quota.deadline_ms
                             : std::min(deadline, quota.deadline_ms);
  }
  return {budget, deadline};
}

void AdmissionController::Finish(const std::string& tenant, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = TenantLocked(tenant);
  if (t.counters.inflight > 0) --t.counters.inflight;
  if (ok) {
    ++t.counters.completed;
  } else {
    ++t.counters.failed;
  }
}

std::map<std::string, TenantCounters> AdmissionController::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantCounters> out;
  for (const auto& [name, t] : tenants_) out.emplace(name, t.counters);
  return out;
}

}  // namespace rankcube
