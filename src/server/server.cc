#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

namespace rankcube {

namespace {

/// Splits a multi-line string into Response payload lines.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    if (pos == std::string::npos) pos = text.size();
    if (pos > start || pos < text.size()) out.emplace_back(text, start, pos - start);
    start = pos + 1;
  }
  return out;
}

/// Writes the full framed response; false when the peer is gone. Uses
/// MSG_NOSIGNAL so a client that disconnected mid-query yields EPIPE here
/// instead of killing the process with SIGPIPE.
bool SendFrame(int fd, const std::string& payload) {
  std::string wire = EncodeFrame(payload);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

RankCubeServer::RankCubeServer(RankCubeDb* db, Options options)
    : db_(db),
      options_(std::move(options)),
      admission_(options_.default_quota) {
  for (const auto& [tenant, quota] : options_.tenant_quotas) {
    admission_.SetQuota(tenant, quota);
  }
}

RankCubeServer::RankCubeServer(PartitionedDb* db, Options options)
    : pdb_(db),
      options_(std::move(options)),
      admission_(options_.default_quota) {
  for (const auto& [tenant, quota] : options_.tenant_quotas) {
    admission_.SetQuota(tenant, quota);
  }
}

RankCubeServer::~RankCubeServer() { Stop(); }

Status RankCubeServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse host '" + options_.host +
                                   "' as an IPv4 address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::Internal("bind(" + options_.host + ":" +
                                std::to_string(options_.port) +
                                "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status s =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&RankCubeServer::AcceptLoop, this);
  return Status::OK();
}

void RankCubeServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake every connection thread blocked in recv(); fds stay open (the
    // reap below closes them after the join, so a number is never reused
    // while a thread still references it).
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  ReapConnections(/*all=*/true);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

RankCubeServer::Counters RankCubeServer::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void RankCubeServer::ReapConnections(bool all) {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || it->second->done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(it->second));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : dead) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void RankCubeServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int n = ::poll(&p, 1, /*timeout_ms=*/100);
    ReapConnections(/*all=*/false);
    if (stop_.load(std::memory_order_acquire)) break;
    if (n <= 0 || (p.revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    ++counters_.connections_accepted;
    ++counters_.connections_active;
    raw->thread = std::thread(&RankCubeServer::ServeConnection, this, id, fd);
  }
}

void RankCubeServer::ServeConnection(uint64_t conn_id, int fd) {
  ServerSession session;
  session.id = conn_id;
  FrameReader reader(options_.max_frame_bytes);
  char buf[4096];
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed (possibly mid-request) or Stop() shut us down
    }
    reader.Feed(buf, static_cast<size_t>(n));
    std::string payload;
    while (alive) {
      Result<bool> has = reader.Next(&payload);
      if (!has.ok()) {
        // Oversized frame announcement: the stream cannot be resynced, so
        // answer with the typed error and hang up.
        SendFrame(fd, Response::Error(WireCode::kTooLarge,
                                      has.status().message())
                          .Encode());
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.protocol_errors;
        alive = false;
        break;
      }
      if (!has.value()) break;
      Response resp = Dispatch(payload, session);
      ++session.requests;
      if (!resp.ok()) ++session.errors;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.requests;
        if (!resp.ok()) ++counters_.request_errors;
      }
      if (!SendFrame(fd, resp.Encode())) {
        alive = false;  // client went away; its admission slot is already
                        // released (ticket died with DoQuery)
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --counters_.connections_active;
  }
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) conn = it->second.get();
  }
  if (conn != nullptr) conn->done.store(true, std::memory_order_release);
}

Response RankCubeServer::Dispatch(std::string_view payload,
                                  ServerSession& session) {
  Result<Request> parsed = ParseRequest(payload);
  if (!parsed.ok()) return Response::FromStatus(parsed.status());
  const Request& req = parsed.value();

  if (req.verb == "PING") {
    Response resp;
    resp.lines.push_back("pong");
    return resp;
  }
  if (req.verb == "HELLO") {
    if (const std::string* tenant = req.Find("tenant")) {
      if (tenant->empty()) {
        return Response::Error(WireCode::kBadRequest,
                               "tenant must be non-empty");
      }
      session.tenant = *tenant;
    }
    Response resp;
    resp.lines.push_back("tenant=" + session.tenant);
    return resp;
  }
  if (req.verb == "QUERY") return DoQuery(req, session);
  if (req.verb == "EXPLAIN") return DoExplain(req);
  if (req.verb == "INSERT") return DoInsert(req);
  if (req.verb == "DELETE") return DoDelete(req);
  if (req.verb == "COMPACT") return DoCompact();
  if (req.verb == "STATS") return DoStats(req);
  if (req.verb == "CACHE") return DoCache(req);
  if (req.verb == "PARTITION_CREATE" || req.verb == "PARTITION_DROP" ||
      req.verb == "PARTITION_LIST") {
    if (pdb_ == nullptr) {
      return Response::Error(WireCode::kNotSupported,
                             "server is not partitioned");
    }
    if (req.verb == "PARTITION_CREATE") return DoPartitionCreate(req);
    if (req.verb == "PARTITION_DROP") return DoPartitionDrop(req);
    return DoPartitionList();
  }
  return Response::Error(WireCode::kBadRequest,
                         "unknown verb '" + req.verb + "'");
}

Response RankCubeServer::DoQuery(const Request& req, ServerSession& session) {
  // Parse before admitting: a malformed request must not consume a slot.
  Result<TopKQuery> query = ParseWireQuery(req, Schema());
  if (!query.ok()) return Response::FromStatus(query.status());

  uint64_t budget = 0;
  uint64_t deadline_ms = 0;
  if (const std::string* b = req.Find("budget")) {
    Result<uint64_t> v = ParseU64Arg(*b, "budget");
    if (!v.ok()) return Response::FromStatus(v.status());
    budget = v.value();
  }
  if (const std::string* d = req.Find("deadline_ms")) {
    Result<uint64_t> v = ParseU64Arg(*d, "deadline_ms");
    if (!v.ok()) return Response::FromStatus(v.status());
    deadline_ms = v.value();
  }

  Result<AdmissionController::Ticket> ticket = admission_.Admit(session.tenant);
  if (!ticket.ok()) return Response::FromStatus(ticket.status());

  QueryOptions opts;
  std::tie(opts.page_budget, opts.deadline_ms) =
      admission_.Clamp(session.tenant, budget, deadline_ms);
  if (const std::string* engine = req.Find("engine")) {
    opts.force_engine = *engine;
  }

  if (pdb_ != nullptr) {
    Result<PartitionedTopK> result = pdb_->Query(query.value(), opts);
    if (!result.ok()) return Response::FromStatus(result.status());
    ticket.value().set_ok(true);

    const PartitionedTopK& r = result.value();
    Response resp;
    char head[200];
    std::snprintf(head, sizeof(head),
                  "tuples=%zu engine=scatter pages=%llu time_ms=%.3f "
                  "queried=%zu pruned=%zu",
                  r.tuples.size(),
                  static_cast<unsigned long long>(r.stats.pages_read),
                  r.stats.time_ms, r.scatter.queried,
                  r.scatter.pruned_by_predicate + r.scatter.pruned_by_bound);
    resp.lines.emplace_back(head);
    for (const PartitionedTuple& t : r.tuples) {
      resp.lines.push_back(std::to_string(t.tid) + " " +
                           FormatDouble(t.score) + " " + t.partition);
    }
    return resp;
  }

  Result<TopKResult> result = db_->Query(query.value(), opts);
  if (!result.ok()) return Response::FromStatus(result.status());
  ticket.value().set_ok(true);

  const TopKResult& r = result.value();
  Response resp;
  char head[160];
  std::snprintf(head, sizeof(head), "tuples=%zu engine=%s pages=%llu time_ms=%.3f",
                r.tuples.size(),
                r.plan ? r.plan->chosen_engine.c_str() : "direct",
                static_cast<unsigned long long>(r.stats.pages_read),
                r.stats.time_ms);
  resp.lines.emplace_back(head);
  for (const ScoredTuple& t : r.tuples) {
    resp.lines.push_back(std::to_string(t.tid) + " " + FormatDouble(t.score));
  }
  return resp;
}

Response RankCubeServer::DoExplain(const Request& req) {
  Result<TopKQuery> query = ParseWireQuery(req, Schema());
  if (!query.ok()) return Response::FromStatus(query.status());
  QueryOptions opts;
  if (const std::string* engine = req.Find("engine")) {
    opts.force_engine = *engine;
  }
  if (pdb_ != nullptr) {
    Result<std::string> scatter = pdb_->ExplainScatter(query.value(), opts);
    if (!scatter.ok()) return Response::FromStatus(scatter.status());
    Response resp;
    resp.lines = SplitLines(scatter.value());
    return resp;
  }
  Result<PlanInfo> plan = db_->Explain(query.value(), opts);
  if (!plan.ok()) return Response::FromStatus(plan.status());
  Response resp;
  resp.lines = SplitLines(plan.value().ToString());
  return resp;
}

Response RankCubeServer::DoInsert(const Request& req) {
  const std::string* sel = req.Find("sel");
  const std::string* rank = req.Find("rank");
  if (sel == nullptr || rank == nullptr) {
    return Response::Error(WireCode::kBadRequest,
                           "INSERT requires sel=<v,...> rank=<r,...>");
  }
  Result<std::vector<int32_t>> sel_vals = ParseInt32List(*sel);
  if (!sel_vals.ok()) return Response::FromStatus(sel_vals.status());
  Result<std::vector<double>> rank_vals = ParseDoubleList(*rank);
  if (!rank_vals.ok()) return Response::FromStatus(rank_vals.status());
  if (pdb_ != nullptr) {
    Result<PartitionedRowRef> ref =
        pdb_->Insert(sel_vals.value(), rank_vals.value());
    if (!ref.ok()) return Response::FromStatus(ref.status());
    Response resp;
    resp.lines.push_back("tid=" + std::to_string(ref.value().tid));
    resp.lines.push_back("partition=" + ref.value().partition);
    return resp;
  }
  Result<Tid> tid = db_->Insert(sel_vals.value(), rank_vals.value());
  if (!tid.ok()) return Response::FromStatus(tid.status());
  Response resp;
  resp.lines.push_back("tid=" + std::to_string(tid.value()));
  return resp;
}

Response RankCubeServer::DoDelete(const Request& req) {
  const std::string* tid = req.Find("tid");
  if (tid == nullptr) {
    return Response::Error(WireCode::kBadRequest, "DELETE requires tid=<n>");
  }
  Result<uint64_t> v = ParseU64Arg(*tid, "tid");
  if (!v.ok()) return Response::FromStatus(v.status());
  if (v.value() > UINT32_MAX) {
    return Response::Error(WireCode::kBadRequest,
                           "tid=" + *tid + " out of range");
  }
  if (pdb_ != nullptr) {
    const std::string* partition = req.Find("partition");
    if (partition == nullptr) {
      return Response::Error(
          WireCode::kBadRequest,
          "partitioned DELETE requires partition=<name> (tids are dense per "
          "partition)");
    }
    Status s = pdb_->Delete(*partition, static_cast<Tid>(v.value()));
    if (!s.ok()) return Response::FromStatus(s);
    return Response::Ok();
  }
  Status s = db_->Delete(static_cast<Tid>(v.value()));
  if (!s.ok()) return Response::FromStatus(s);
  return Response::Ok();
}

Response RankCubeServer::DoCompact() {
  Result<CompactionReport> report =
      pdb_ != nullptr ? pdb_->Compact() : db_->Compact();
  if (!report.ok()) return Response::FromStatus(report.status());
  const CompactionReport& r = report.value();
  Response resp;
  resp.lines.push_back("epoch=" + std::to_string(r.epoch));
  resp.lines.push_back("absorbed_inserts=" + std::to_string(r.absorbed_inserts));
  resp.lines.push_back("absorbed_deletes=" + std::to_string(r.absorbed_deletes));
  resp.lines.push_back("maintained=" + std::to_string(r.maintained));
  resp.lines.push_back("rebuilt=" + std::to_string(r.rebuilt));
  resp.lines.push_back("pages=" + std::to_string(r.pages));
  return resp;
}

Response RankCubeServer::DoStats(const Request& req) {
  Response resp;
  if (pdb_ != nullptr) {
    if (const std::string* partition = req.Find("partition")) {
      // One partition's counters — including its own durability exposure
      // (wal_records since its checkpoint, checkpoint_generation,
      // backing_reads).
      Result<DbStats> stats = pdb_->PartitionStats(*partition);
      if (!stats.ok()) return Response::FromStatus(stats.status());
      resp.lines = SplitLines(stats.value().ToString());
      return resp;
    }
    resp.lines = SplitLines(pdb_->Stats().ToString());
  } else {
    resp.lines = SplitLines(db_->Stats().ToString());
  }
  for (const auto& [tenant, c] : admission_.Snapshot()) {
    const std::string prefix = "tenant." + tenant + ".";
    resp.lines.push_back(prefix + "inflight=" + std::to_string(c.inflight));
    resp.lines.push_back(prefix + "admitted=" + std::to_string(c.admitted));
    resp.lines.push_back(prefix + "rejected=" + std::to_string(c.rejected));
    resp.lines.push_back(prefix + "completed=" + std::to_string(c.completed));
    resp.lines.push_back(prefix + "failed=" + std::to_string(c.failed));
  }
  Counters c = counters();
  resp.lines.push_back("server.connections_accepted=" +
                       std::to_string(c.connections_accepted));
  resp.lines.push_back("server.connections_active=" +
                       std::to_string(c.connections_active));
  resp.lines.push_back("server.requests=" + std::to_string(c.requests));
  resp.lines.push_back("server.request_errors=" +
                       std::to_string(c.request_errors));
  resp.lines.push_back("server.protocol_errors=" +
                       std::to_string(c.protocol_errors));
  return resp;
}

Response RankCubeServer::DoCache(const Request& req) {
  const bool enabled =
      pdb_ != nullptr ? pdb_->cache_enabled() : db_->cache_enabled();
  const std::string* op_arg = req.Find("op");
  const std::string op = op_arg != nullptr ? *op_arg : "stats";
  // resize may (re-)enable a disabled cache; everything else needs one.
  if (!enabled && op != "resize") {
    return Response::Error(WireCode::kNotSupported,
                           "result cache is disabled (--cache_mb=0)");
  }
  if (op == "clear") {
    if (pdb_ != nullptr) {
      pdb_->ClearCache();
    } else {
      db_->ClearCache();
    }
    return Response::Ok();
  }
  if (op == "resize") {
    const std::string* bytes = req.Find("bytes");
    if (bytes == nullptr) {
      return Response::Error(WireCode::kBadRequest,
                             "CACHE op=resize requires bytes=<n>");
    }
    Result<uint64_t> v = ParseU64Arg(*bytes, "bytes");
    if (!v.ok()) return Response::FromStatus(v.status());
    if (pdb_ != nullptr) {
      pdb_->ResizeCache(static_cast<size_t>(v.value()));
    } else {
      db_->ResizeCache(static_cast<size_t>(v.value()));
    }
    return Response::Ok();
  }
  if (op != "stats") {
    return Response::Error(WireCode::kBadRequest,
                           "CACHE op must be stats, clear or resize");
  }
  ResultCacheStats s =
      pdb_ != nullptr ? pdb_->CacheStats() : db_->CacheStats();
  Response resp;
  resp.lines.push_back("hits=" + std::to_string(s.hits));
  resp.lines.push_back("reuse_hits=" + std::to_string(s.reuse_hits));
  resp.lines.push_back("misses=" + std::to_string(s.misses));
  resp.lines.push_back("insertions=" + std::to_string(s.insertions));
  resp.lines.push_back("invalidations=" + std::to_string(s.invalidations));
  resp.lines.push_back("evictions=" + std::to_string(s.evictions));
  resp.lines.push_back("entries=" + std::to_string(s.entries));
  resp.lines.push_back("bytes=" + std::to_string(s.bytes));
  resp.lines.push_back("max_bytes=" + std::to_string(s.max_bytes));
  return resp;
}

Response RankCubeServer::DoPartitionCreate(const Request& req) {
  const std::string* name = req.Find("name");
  const std::string* lo = req.Find("lo");
  const std::string* hi = req.Find("hi");
  if (name == nullptr || lo == nullptr || hi == nullptr) {
    return Response::Error(
        WireCode::kBadRequest,
        "PARTITION_CREATE requires name=<id> lo=<n> hi=<n>");
  }
  auto parse_i32 = [](const std::string& s, int32_t* out) {
    char* end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || *end != '\0' || v < INT32_MIN || v > INT32_MAX) {
      return false;
    }
    *out = static_cast<int32_t>(v);
    return true;
  };
  PartitionRange range;
  if (!parse_i32(*lo, &range.lo) || !parse_i32(*hi, &range.hi)) {
    return Response::Error(WireCode::kBadRequest,
                           "bad lo/hi value in PARTITION_CREATE");
  }
  Status s = pdb_->CreatePartition(*name, range);
  if (!s.ok()) return Response::FromStatus(s);
  Response resp;
  resp.lines.push_back("partition=" + *name + " range=" + range.ToString());
  return resp;
}

Response RankCubeServer::DoPartitionDrop(const Request& req) {
  const std::string* name = req.Find("name");
  if (name == nullptr) {
    return Response::Error(WireCode::kBadRequest,
                           "PARTITION_DROP requires name=<id>");
  }
  Status s = pdb_->DropPartition(*name);
  if (!s.ok()) return Response::FromStatus(s);
  return Response::Ok();
}

Response RankCubeServer::DoPartitionList() {
  Response resp;
  for (const PartitionInfo& p : pdb_->ListPartitions()) {
    resp.lines.push_back("partition=" + p.name + " range=" +
                         p.range.ToString() + " rows=" +
                         std::to_string(p.rows) + " live_rows=" +
                         std::to_string(p.live_rows) + " epoch=" +
                         std::to_string(p.epoch) + " read_only=" +
                         (p.read_only ? "1" : "0"));
  }
  return resp;
}

}  // namespace rankcube
