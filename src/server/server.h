// rankcubed's serving core: a blocking TCP server over one RankCubeDb.
//
// Threading model: one accept thread runs a poll() loop on the listening
// socket (woken at least every ~100ms to observe Stop()); each accepted
// connection gets a dedicated thread doing blocking recv/send. That is the
// right shape for this system because the expensive part of every request
// is a top-k execution — CPU plus simulated device waits — not socket
// shuffling: an event loop would buy nothing while costing the engine its
// simple blocking I/O sessions.
//
// Request lifecycle per QUERY frame:
//   parse (protocol.h) -> admit (admission.h, typed rejection, never
//   queued) -> clamp budget/deadline to the tenant quota -> RankCubeDb
//   ::Query (shared reader gate, fresh IoSession) -> encode tuples.
// Writes (INSERT/DELETE/COMPACT) go straight to the db's single-writer
// gate; admission governs queries only, since writes are serialized by
// design and their cost is bounded by the mutation itself.
//
// A client vanishing mid-query must never hurt the server: sends use
// MSG_NOSIGNAL (no SIGPIPE), a failed send just ends that connection's
// thread, and the admission ticket + db locks unwind via RAII.
#ifndef RANKCUBE_SERVER_SERVER_H_
#define RANKCUBE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "partition/partitioned_db.h"
#include "planner/rank_cube_db.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/session.h"

namespace rankcube {

class RankCubeServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port() after Start().
    uint16_t port = 0;
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Quota for tenants not named in `tenant_quotas` (0-fields = no limit).
    TenantQuota default_quota;
    std::map<std::string, TenantQuota> tenant_quotas;
  };

  /// `db` must outlive the server. Call Start() to begin serving.
  RankCubeServer(RankCubeDb* db, Options options);

  /// Partitioned serving: same protocol plus the PARTITION_* verbs;
  /// QUERY/EXPLAIN run the scatter-gather path, result lines gain the home
  /// partition as a third token, DELETE takes partition=<name>, and STATS
  /// accepts partition=<name> for one partition's counters. `db` must
  /// outlive the server.
  RankCubeServer(PartitionedDb* db, Options options);
  ~RankCubeServer();

  RankCubeServer(const RankCubeServer&) = delete;
  RankCubeServer& operator=(const RankCubeServer&) = delete;

  /// Binds + listens + launches the accept thread. Fails (kInternal) if the
  /// address cannot be bound.
  Status Start();

  /// Stops accepting, shuts down every live connection, joins all threads.
  /// Idempotent; also runs from the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after Start()).
  uint16_t port() const { return port_; }

  /// Lifetime counters for STATS and tests.
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_active = 0;
    uint64_t requests = 0;         ///< frames dispatched
    uint64_t request_errors = 0;   ///< of those, answered with ERR
    uint64_t protocol_errors = 0;  ///< connections dropped on framing abuse
  };
  Counters counters() const;

  AdmissionController& admission() { return admission_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(uint64_t conn_id, int fd);
  /// Parses and executes one request payload against the db.
  Response Dispatch(std::string_view payload, ServerSession& session);

  Response DoQuery(const Request& req, ServerSession& session);
  Response DoExplain(const Request& req);
  Response DoInsert(const Request& req);
  Response DoDelete(const Request& req);
  Response DoCompact();
  Response DoStats(const Request& req);
  Response DoCache(const Request& req);
  Response DoPartitionCreate(const Request& req);
  Response DoPartitionDrop(const Request& req);
  Response DoPartitionList();

  const TableSchema& Schema() const {
    return pdb_ != nullptr ? pdb_->schema() : db_->table().schema();
  }

  /// Join + erase connections whose threads have finished (accept thread),
  /// or all of them (Stop).
  void ReapConnections(bool all);

  RankCubeDb* db_ = nullptr;        ///< exactly one of db_/pdb_ is set
  PartitionedDb* pdb_ = nullptr;
  Options options_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;  ///< guards conns_ and counters_
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  Counters counters_;
};

}  // namespace rankcube

#endif  // RANKCUBE_SERVER_SERVER_H_
