#include "server/protocol.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <sstream>

namespace rankcube {

namespace {

struct CodeName {
  WireCode code;
  const char* name;
};

constexpr CodeName kCodeNames[] = {
    {WireCode::kOk, "OK"},
    {WireCode::kBadRequest, "BAD_REQUEST"},
    {WireCode::kTooLarge, "TOO_LARGE"},
    {WireCode::kNotFound, "NOT_FOUND"},
    {WireCode::kNotSupported, "NOT_SUPPORTED"},
    {WireCode::kBudgetExceeded, "BUDGET_EXCEEDED"},
    {WireCode::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
    {WireCode::kQuotaExceeded, "QUOTA_EXCEEDED"},
    {WireCode::kCorruption, "CORRUPTION"},
    {WireCode::kInternal, "INTERNAL"},
};

std::vector<std::string_view> SplitOn(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

}  // namespace

const char* WireCodeName(WireCode code) {
  for (const CodeName& c : kCodeNames) {
    if (c.code == code) return c.name;
  }
  return "INTERNAL";
}

WireCode WireCodeFromName(std::string_view name) {
  for (const CodeName& c : kCodeNames) {
    if (name == c.name) return c.code;
  }
  return WireCode::kInternal;
}

WireCode WireCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return WireCode::kOk;
    case Status::Code::kInvalidArgument:
      return WireCode::kBadRequest;
    case Status::Code::kNotFound:
      return WireCode::kNotFound;
    case Status::Code::kNotSupported:
      return WireCode::kNotSupported;
    case Status::Code::kCorruption:
      return WireCode::kCorruption;
    case Status::Code::kOutOfRange:
      return WireCode::kBudgetExceeded;
    case Status::Code::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case Status::Code::kResourceExhausted:
      return WireCode::kQuotaExceeded;
    case Status::Code::kInternal:
      return WireCode::kInternal;
  }
  return WireCode::kInternal;
}

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  uint32_t n = static_cast<uint32_t>(payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.append(payload);
  return out;
}

Result<bool> FrameReader::Next(std::string* payload) {
  if (buf_.size() < 4) return false;
  uint32_t n = (static_cast<uint32_t>(static_cast<uint8_t>(buf_[0])) << 24) |
               (static_cast<uint32_t>(static_cast<uint8_t>(buf_[1])) << 16) |
               (static_cast<uint32_t>(static_cast<uint8_t>(buf_[2])) << 8) |
               static_cast<uint32_t>(static_cast<uint8_t>(buf_[3]));
  if (n > max_) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(n) + " bytes exceeds the " +
        std::to_string(max_) + "-byte ceiling");
  }
  if (buf_.size() < 4 + static_cast<size_t>(n)) return false;
  payload->assign(buf_, 4, n);
  buf_.erase(0, 4 + static_cast<size_t>(n));
  return true;
}

const std::string* Request::Find(std::string_view key) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : args) {
    if (k == key) found = &v;
  }
  return found;
}

Result<Request> ParseRequest(std::string_view payload) {
  Request req;
  std::istringstream in{std::string(payload)};
  std::string token;
  if (!(in >> token)) {
    return Status::InvalidArgument("empty request");
  }
  req.verb = token;
  std::transform(req.verb.begin(), req.verb.end(), req.verb.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed argument '" + token +
                                     "' (expected key=value)");
    }
    req.args.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return req;
}

Response Response::Error(WireCode code, std::string message) {
  Response r;
  r.code = code;
  // The status line is line-oriented: embedded newlines would desync the
  // client's parse, so flatten them.
  std::replace(message.begin(), message.end(), '\n', ' ');
  r.message = std::move(message);
  return r;
}

Response Response::FromStatus(const Status& status) {
  if (status.ok()) return Ok();
  return Error(WireCodeFromStatus(status), status.message());
}

std::string Response::Encode() const {
  std::string out;
  if (ok()) {
    out = "OK";
  } else {
    out = "ERR ";
    out += WireCodeName(code);
    out += ' ';
    out += message;
  }
  for (const std::string& line : lines) {
    out += '\n';
    out += line;
  }
  return out;
}

Result<Response> Response::Parse(std::string_view payload) {
  Response r;
  std::vector<std::string_view> lines = SplitOn(payload, '\n');
  if (lines.empty() || lines[0].empty()) {
    return Status::Corruption("response frame has no status line");
  }
  std::string_view head = lines[0];
  if (head == "OK" || head.substr(0, 3) == "OK ") {
    r.code = WireCode::kOk;
  } else if (head.substr(0, 4) == "ERR ") {
    std::string_view rest = head.substr(4);
    size_t sp = rest.find(' ');
    std::string_view name = sp == std::string_view::npos ? rest
                                                         : rest.substr(0, sp);
    r.code = WireCodeFromName(name);
    if (r.code == WireCode::kOk) {
      return Status::Corruption("ERR status line with OK code");
    }
    if (sp != std::string_view::npos) r.message = std::string(rest.substr(sp + 1));
  } else {
    return Status::Corruption("unrecognized status line '" +
                              std::string(head) + "'");
  }
  for (size_t i = 1; i < lines.size(); ++i) r.lines.emplace_back(lines[i]);
  return r;
}

Result<uint64_t> ParseU64Arg(const std::string& value, std::string_view key) {
  if (value.empty()) {
    return Status::InvalidArgument(std::string(key) + " is empty");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() || value[0] == '-') {
    return Status::InvalidArgument("cannot parse " + std::string(key) + "='" +
                                   value + "' as an unsigned integer");
  }
  return static_cast<uint64_t>(v);
}

Result<std::vector<double>> ParseDoubleList(std::string_view text) {
  std::vector<double> out;
  for (std::string_view part : SplitOn(text, ',')) {
    std::string s(part);
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (s.empty() || errno != 0 || end != s.c_str() + s.size()) {
      return Status::InvalidArgument("cannot parse '" + s + "' as a number");
    }
    out.push_back(v);
  }
  return out;
}

Result<std::vector<int32_t>> ParseInt32List(std::string_view text) {
  std::vector<int32_t> out;
  for (std::string_view part : SplitOn(text, ',')) {
    std::string s(part);
    errno = 0;
    char* end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || errno != 0 || end != s.c_str() + s.size() ||
        v < INT32_MIN || v > INT32_MAX) {
      return Status::InvalidArgument("cannot parse '" + s +
                                     "' as a 32-bit integer");
    }
    out.push_back(static_cast<int32_t>(v));
  }
  return out;
}

Result<TopKQuery> ParseWireQuery(const Request& request,
                                 const TableSchema& schema) {
  TopKQuery query;

  if (const std::string* k = request.Find("k")) {
    auto v = ParseU64Arg(*k, "k");
    if (!v.ok()) return v.status();
    if (v.value() == 0 || v.value() > 1000000) {
      return Status::InvalidArgument("k=" + *k + " out of range");
    }
    query.k = static_cast<int>(v.value());
  }

  const std::string* order = request.Find("order");
  if (order == nullptr) {
    return Status::InvalidArgument("QUERY requires order=<fn>");
  }
  size_t colon = order->find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("order needs kind:weights, got '" + *order +
                                   "'");
  }
  std::string kind = order->substr(0, colon);
  std::string_view spec = std::string_view(*order).substr(colon + 1);
  size_t at = spec.find('@');
  auto weights = ParseDoubleList(spec.substr(0, at));
  if (!weights.ok()) return weights.status();
  std::vector<double> targets;
  if (at != std::string_view::npos) {
    auto t = ParseDoubleList(spec.substr(at + 1));
    if (!t.ok()) return t.status();
    targets = std::move(t).value();
  }
  if (kind == "linear") {
    query.function = std::make_shared<LinearFunction>(std::move(weights).value());
  } else if (kind == "sqlinear") {
    query.function = std::make_shared<SquaredLinear>(std::move(weights).value());
  } else if (kind == "l1" || kind == "dist") {
    if (targets.size() != weights.value().size()) {
      return Status::InvalidArgument(
          "order kind '" + kind + "' needs one target per weight ('w0,w1@t0,t1')");
    }
    if (kind == "l1") {
      query.function = std::make_shared<L1Distance>(std::move(weights).value(),
                                                    std::move(targets));
    } else {
      query.function = std::make_shared<QuadraticDistance>(
          std::move(weights).value(), std::move(targets));
    }
  } else {
    return Status::InvalidArgument("unknown order kind '" + kind +
                                   "' (linear|l1|dist|sqlinear)");
  }

  if (const std::string* where = request.Find("where")) {
    for (std::string_view part : SplitOn(*where, ',')) {
      if (part.empty()) continue;
      size_t c = part.find(':');
      if (c == std::string_view::npos) {
        return Status::InvalidArgument("where needs dim:value pairs, got '" +
                                       std::string(part) + "'");
      }
      auto dims = ParseInt32List(part.substr(0, c));
      auto vals = ParseInt32List(part.substr(c + 1));
      if (!dims.ok()) return dims.status();
      if (!vals.ok()) return vals.status();
      if (dims.value().size() != 1 || vals.value().size() != 1) {
        return Status::InvalidArgument("where needs dim:value pairs, got '" +
                                       std::string(part) + "'");
      }
      query.predicates.push_back({dims.value()[0], vals.value()[0]});
    }
  }

  RC_RETURN_IF_ERROR(ValidateQuery(query, schema));
  return query;
}

}  // namespace rankcube
