#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

namespace rankcube {

std::string WireQuerySpec::ToArgs() const {
  std::string args = "k=" + std::to_string(k) + " order=" + order;
  if (!where.empty()) {
    args += " where=";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) args += ',';
      args += std::to_string(where[i].first) + ":" +
              std::to_string(where[i].second);
    }
  }
  if (budget > 0) args += " budget=" + std::to_string(budget);
  if (deadline_ms > 0) args += " deadline_ms=" + std::to_string(deadline_ms);
  if (!engine.empty()) args += " engine=" + engine;
  return args;
}

namespace {

/// Dials host:port; returns the connected fd.
Result<int> Dial(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' as an IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal("connect(" + host + ":" +
                                std::to_string(port) +
                                "): " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<RankCubeClient> RankCubeClient::Connect(const std::string& host,
                                               uint16_t port) {
  auto fd = Dial(host, port);
  if (!fd.ok()) return fd.status();
  return RankCubeClient(fd.value(), host, port);
}

RankCubeClient& RankCubeClient::operator=(RankCubeClient&& o) noexcept {
  if (this != &o) {
    CloseAbruptly();
    fd_ = o.fd_;
    o.fd_ = -1;
    host_ = std::move(o.host_);
    port_ = o.port_;
    tenant_ = std::move(o.tenant_);
    policy_ = o.policy_;
    reconnects_ = o.reconnects_;
    rng_ = o.rng_;
  }
  return *this;
}

RankCubeClient::~RankCubeClient() { CloseAbruptly(); }

void RankCubeClient::CloseAbruptly() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status RankCubeClient::Send(std::string_view payload) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  std::string wire = EncodeFrame(payload);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      CloseAbruptly();
      return Status::Internal(std::string("send(): ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Response> RankCubeClient::Call(std::string_view payload) {
  RC_RETURN_IF_ERROR(Send(payload));

  FrameReader reader;
  char buf[4096];
  std::string frame;
  while (true) {
    Result<bool> has = reader.Next(&frame);
    if (!has.ok()) {
      CloseAbruptly();
      return has.status();
    }
    if (has.value()) break;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      CloseAbruptly();
      return Status::Internal(n == 0 ? "connection closed by server"
                                     : std::string("recv(): ") +
                                           std::strerror(errno));
    }
    reader.Feed(buf, static_cast<size_t>(n));
  }
  return Response::Parse(frame);
}

uint32_t RankCubeClient::BackoffMs(int attempt) {
  uint64_t delay = policy_.base_delay_ms;
  for (int i = 1; i < attempt && delay < policy_.max_delay_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<uint64_t>(delay, policy_.max_delay_ms);
  // Jitter the upper half (xorshift64) so a herd of clients that lost the
  // same server doesn't redial in lockstep.
  if (rng_ == 0) rng_ = policy_.jitter_seed | 1;
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  uint64_t half = delay / 2;
  return static_cast<uint32_t>(half + (half > 0 ? rng_ % (half + 1) : 0));
}

Status RankCubeClient::Reconnect() {
  CloseAbruptly();
  auto fd = Dial(host_, port_);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  if (!tenant_.empty()) {
    // Rebind the tenant on the raw path — CallIdempotent would recurse.
    auto hello = Call("HELLO tenant=" + tenant_);
    if (!hello.ok()) return hello.status();
    if (!hello.value().ok()) {
      return Status::Internal("HELLO replay rejected: " +
                              hello.value().message);
    }
  }
  ++reconnects_;
  return Status::OK();
}

Result<Response> RankCubeClient::CallIdempotent(const std::string& payload) {
  Result<Response> resp = Call(payload);
  if (resp.ok() || !policy_.enabled || port_ == 0) return resp;
  // Transport failure (typed server errors arrive as ok() Responses): the
  // request is read-only, so redial and resend until the policy runs out.
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs(attempt)));
    if (!Reconnect().ok()) continue;
    resp = Call(payload);
    if (resp.ok()) return resp;
  }
  return resp;
}

Result<Response> RankCubeClient::Insert(const std::vector<int32_t>& sel,
                                        const std::vector<double>& rank) {
  std::string payload = "INSERT sel=";
  for (size_t i = 0; i < sel.size(); ++i) {
    if (i > 0) payload += ',';
    payload += std::to_string(sel[i]);
  }
  payload += " rank=";
  char buf[64];
  for (size_t i = 0; i < rank.size(); ++i) {
    if (i > 0) payload += ',';
    std::snprintf(buf, sizeof(buf), "%.17g", rank[i]);
    payload += buf;
  }
  return Call(payload);
}

Result<std::vector<ScoredTuple>> RankCubeClient::QueryTuples(
    const WireQuerySpec& spec) {
  Result<Response> resp = Query(spec);
  if (!resp.ok()) return resp.status();
  const Response& r = resp.value();
  if (!r.ok()) {
    return Status::Internal(std::string(WireCodeName(r.code)) + ": " +
                            r.message);
  }
  std::vector<ScoredTuple> tuples;
  // First payload line is the summary; the rest are "<tid> <score>" with an
  // optional trailing "<partition>" token on partitioned servers.
  for (size_t i = 1; i < r.lines.size(); ++i) {
    const std::string& line = r.lines[i];
    size_t sp = line.find(' ');
    if (sp == std::string::npos) {
      return Status::Corruption("malformed result line '" + line + "'");
    }
    Result<uint64_t> tid = ParseU64Arg(line.substr(0, sp), "tid");
    if (!tid.ok()) return tid.status();
    size_t end = line.find(' ', sp + 1);
    size_t len = end == std::string::npos ? std::string::npos : end - (sp + 1);
    Result<std::vector<double>> score =
        ParseDoubleList(line.substr(sp + 1, len));
    if (!score.ok() || score.value().size() != 1) {
      return Status::Corruption("malformed result line '" + line + "'");
    }
    tuples.push_back({static_cast<uint32_t>(tid.value()), score.value()[0]});
  }
  return tuples;
}

}  // namespace rankcube
