// Multi-tenant admission control for the serving layer.
//
// Every QUERY carries a tenant (set by HELLO); the controller enforces that
// tenant's quota *before* the query touches the planner or a page:
//
//  * max_inflight — concurrent admitted queries. An over-quota query is
//    rejected immediately with Status::ResourceExhausted (the wire's
//    QUOTA_EXCEEDED), never queued: under overload a bounded system must
//    shed load at the edge, not build an unbounded backlog whose entries
//    will all miss their deadlines anyway.
//  * page_budget — per-query physical-page cap, clamped onto the request
//    and enforced by RankingEngine::Execute (deterministically, because
//    charged pages are metered per session — see io_session.h).
//  * deadline_ms — per-query wall-clock cap, clamped likewise and enforced
//    with the distinct Status::DeadlineExceeded.
//
// Clamping (rather than rejecting) a request that asks for more than its
// cap keeps the failure typed and at the enforcement point: the query runs
// under the tenant's ceiling and fails with BUDGET/DEADLINE if it needed
// more, which is the verdict an over-entitled request deserves.
//
// The controller is engine-agnostic and usable without the server: wrap any
// RankCubeDb call between Admit() and the returned ticket's destruction.
#ifndef RANKCUBE_SERVER_ADMISSION_H_
#define RANKCUBE_SERVER_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace rankcube {

/// Per-tenant serving limits; 0 always means "no limit".
struct TenantQuota {
  uint32_t max_inflight = 0;  ///< concurrent admitted queries
  uint64_t page_budget = 0;   ///< per-query charged-page cap
  uint64_t deadline_ms = 0;   ///< per-query wall-clock cap
};

/// What a tenant has done so far (returned by the STATS verb).
struct TenantCounters {
  uint32_t inflight = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;   ///< quota rejections (typed, never queued)
  uint64_t completed = 0;  ///< admitted queries finished OK
  uint64_t failed = 0;     ///< admitted queries that failed (incl.
                           ///< budget/deadline overruns)
};

class AdmissionController {
 public:
  /// `default_quota` applies to tenants without an explicit SetQuota.
  explicit AdmissionController(TenantQuota default_quota = TenantQuota())
      : default_quota_(default_quota) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  void SetQuota(const std::string& tenant, TenantQuota quota);
  TenantQuota QuotaFor(const std::string& tenant) const;

  /// RAII in-flight slot: releases the tenant's slot on destruction and
  /// records the query's outcome (call set_ok(true) on success; the default
  /// records a failure).
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept { *this = std::move(o); }
    Ticket& operator=(Ticket&& o) noexcept {
      Release();
      controller_ = o.controller_;
      tenant_ = std::move(o.tenant_);
      ok_ = o.ok_;
      o.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void set_ok(bool ok) { ok_ = ok; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, std::string tenant)
        : controller_(controller), tenant_(std::move(tenant)) {}
    void Release();

    AdmissionController* controller_ = nullptr;
    std::string tenant_;
    bool ok_ = false;
  };

  /// Admits one query for `tenant` or rejects it with ResourceExhausted —
  /// immediately, never queued. The returned ticket holds the in-flight
  /// slot until it is destroyed.
  Result<Ticket> Admit(const std::string& tenant);

  /// The effective per-query limits for a request that asked for
  /// (`requested_budget`, `requested_deadline_ms`): the request's values
  /// clamped to the tenant's caps (0 = unlimited on either side).
  std::pair<uint64_t, uint64_t> Clamp(const std::string& tenant,
                                      uint64_t requested_budget,
                                      uint64_t requested_deadline_ms) const;

  /// Counter snapshot for every tenant seen so far.
  std::map<std::string, TenantCounters> Snapshot() const;

 private:
  struct Tenant {
    TenantQuota quota;
    TenantCounters counters;
  };

  /// Must hold mu_. Creates the tenant under the default quota on first use.
  Tenant& TenantLocked(const std::string& name) const;

  void Finish(const std::string& tenant, bool ok);

  mutable std::mutex mu_;
  TenantQuota default_quota_;
  mutable std::map<std::string, Tenant> tenants_;
};

}  // namespace rankcube

#endif  // RANKCUBE_SERVER_ADMISSION_H_
