// Per-connection serving state.
//
// One ServerSession lives for the lifetime of one TCP connection. It is the
// bridge between the connection and the per-query machinery underneath:
// every QUERY the connection submits runs in its own IoSession/ExecContext
// (built fresh by RankCubeDb::Query), while the ServerSession carries the
// state that outlives individual queries — the tenant identity admission
// control charges (set once via HELLO, "default" until then) and the
// connection-scoped counters STATS reports.
#ifndef RANKCUBE_SERVER_SESSION_H_
#define RANKCUBE_SERVER_SESSION_H_

#include <cstdint>
#include <string>

namespace rankcube {

struct ServerSession {
  uint64_t id = 0;                 ///< server-assigned connection id
  std::string tenant = "default";  ///< admission identity (HELLO tenant=...)
  uint64_t requests = 0;           ///< frames dispatched on this connection
  uint64_t errors = 0;             ///< of those, answered with ERR
};

}  // namespace rankcube

#endif  // RANKCUBE_SERVER_SESSION_H_
