// Minimal blocking client for the rankcubed wire protocol.
//
//   auto client = RankCubeClient::Connect("127.0.0.1", port);
//   RC_RETURN_IF_ERROR(client.value().Hello("tenant-a").status());
//   WireQuerySpec spec;
//   spec.k = 10;
//   spec.order = "linear:1,2";
//   spec.where = {{0, 3}};
//   auto tuples = client.value().QueryTuples(spec);
//
// One request in flight per connection (the protocol is strictly
// request/response); concurrency comes from opening one client per worker,
// which is exactly how bench_serve and the server tests drive load. Every
// call surfaces the server's typed wire code through Response::code, and
// transport-level failures (connection reset, truncated frame) come back as
// error Statuses — the two are deliberately distinct.
#ifndef RANKCUBE_SERVER_CLIENT_H_
#define RANKCUBE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "func/query.h"  // ScoredTuple
#include "server/protocol.h"

namespace rankcube {

/// A QUERY/EXPLAIN request in wire terms (the client never needs the
/// engine-side TopKQuery types).
struct WireQuerySpec {
  int k = 10;
  std::string order;  ///< "kind:w0,w1[@t0,t1]" — see protocol.h grammar
  std::vector<std::pair<int32_t, int32_t>> where;  ///< (dim, value) pairs
  uint64_t budget = 0;       ///< requested page budget (0 = tenant default)
  uint64_t deadline_ms = 0;  ///< requested deadline (0 = tenant default)
  std::string engine;        ///< force a specific structure (tests/benches)

  /// The wire argument string ("k=10 order=linear:1,2 where=0:3 ...").
  std::string ToArgs() const;
};

class RankCubeClient {
 public:
  /// Opens a blocking TCP connection (IPv4).
  static Result<RankCubeClient> Connect(const std::string& host,
                                        uint16_t port);

  RankCubeClient(RankCubeClient&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  RankCubeClient& operator=(RankCubeClient&& o) noexcept;
  RankCubeClient(const RankCubeClient&) = delete;
  RankCubeClient& operator=(const RankCubeClient&) = delete;
  ~RankCubeClient();

  bool connected() const { return fd_ >= 0; }

  /// Sends one request payload and reads one response frame. Transport
  /// failures return an error Status; server-side failures return a
  /// Response whose code is the typed wire error.
  Result<Response> Call(std::string_view payload);

  /// Sends one request frame WITHOUT waiting for the response — the
  /// fire-and-vanish half of the disconnect tests (follow with
  /// CloseAbruptly() to leave the server holding an orphaned query).
  Status Send(std::string_view payload);

  // --- verb helpers --------------------------------------------------------
  Result<Response> Ping() { return Call("PING"); }
  Result<Response> Hello(const std::string& tenant) {
    return Call("HELLO tenant=" + tenant);
  }
  Result<Response> Query(const WireQuerySpec& spec) {
    return Call("QUERY " + spec.ToArgs());
  }
  Result<Response> Explain(const WireQuerySpec& spec) {
    return Call("EXPLAIN " + spec.ToArgs());
  }
  Result<Response> Insert(const std::vector<int32_t>& sel,
                          const std::vector<double>& rank);
  Result<Response> Delete(uint32_t tid) {
    return Call("DELETE tid=" + std::to_string(tid));
  }
  Result<Response> Compact() { return Call("COMPACT"); }
  Result<Response> Stats() { return Call("STATS"); }

  /// Query() plus result decoding; a server-side error becomes an error
  /// Status carrying "<CODE>: <message>".
  Result<std::vector<ScoredTuple>> QueryTuples(const WireQuerySpec& spec);

  /// Severs the connection without protocol shutdown — simulates a client
  /// crashing mid-conversation (the disconnect-survival tests).
  void CloseAbruptly();

 private:
  explicit RankCubeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace rankcube

#endif  // RANKCUBE_SERVER_CLIENT_H_
