// Minimal blocking client for the rankcubed wire protocol.
//
//   auto client = RankCubeClient::Connect("127.0.0.1", port);
//   RC_RETURN_IF_ERROR(client.value().Hello("tenant-a").status());
//   WireQuerySpec spec;
//   spec.k = 10;
//   spec.order = "linear:1,2";
//   spec.where = {{0, 3}};
//   auto tuples = client.value().QueryTuples(spec);
//
// One request in flight per connection (the protocol is strictly
// request/response); concurrency comes from opening one client per worker,
// which is exactly how bench_serve and the server tests drive load. Every
// call surfaces the server's typed wire code through Response::code, and
// transport-level failures (connection reset, truncated frame) come back as
// error Statuses — the two are deliberately distinct.
#ifndef RANKCUBE_SERVER_CLIENT_H_
#define RANKCUBE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "func/query.h"  // ScoredTuple
#include "server/protocol.h"

namespace rankcube {

/// A QUERY/EXPLAIN request in wire terms (the client never needs the
/// engine-side TopKQuery types).
struct WireQuerySpec {
  int k = 10;
  std::string order;  ///< "kind:w0,w1[@t0,t1]" — see protocol.h grammar
  std::vector<std::pair<int32_t, int32_t>> where;  ///< (dim, value) pairs
  uint64_t budget = 0;       ///< requested page budget (0 = tenant default)
  uint64_t deadline_ms = 0;  ///< requested deadline (0 = tenant default)
  std::string engine;        ///< force a specific structure (tests/benches)

  /// The wire argument string ("k=10 order=linear:1,2 where=0:3 ...").
  std::string ToArgs() const;
};

/// Automatic-reconnect knobs. On a TRANSPORT failure (reset, refused,
/// truncated frame — never a typed server error) of an IDEMPOTENT verb, the
/// client redials with bounded exponential backoff + jitter, replays its
/// HELLO so the tenant binding survives, and retries the request.
/// Non-idempotent verbs (INSERT/DELETE/COMPACT) are NEVER auto-retried: the
/// original request may have committed before the connection died, and a
/// blind resend would double-apply it. They fail fast; the caller decides.
struct ReconnectPolicy {
  bool enabled = true;
  int max_attempts = 5;          ///< redial attempts per failed call
  uint32_t base_delay_ms = 10;   ///< first backoff step
  uint32_t max_delay_ms = 1000;  ///< backoff ceiling
  uint64_t jitter_seed = 1;      ///< deterministic jitter stream (tests)
};

class RankCubeClient {
 public:
  /// Opens a blocking TCP connection (IPv4). The host/port are remembered
  /// for automatic reconnects (see ReconnectPolicy).
  static Result<RankCubeClient> Connect(const std::string& host,
                                        uint16_t port);

  RankCubeClient(RankCubeClient&& o) noexcept
      : fd_(o.fd_),
        host_(std::move(o.host_)),
        port_(o.port_),
        tenant_(std::move(o.tenant_)),
        policy_(o.policy_),
        reconnects_(o.reconnects_),
        rng_(o.rng_) {
    o.fd_ = -1;
  }
  RankCubeClient& operator=(RankCubeClient&& o) noexcept;
  RankCubeClient(const RankCubeClient&) = delete;
  RankCubeClient& operator=(const RankCubeClient&) = delete;
  ~RankCubeClient();

  bool connected() const { return fd_ >= 0; }

  void set_reconnect_policy(ReconnectPolicy policy) { policy_ = policy; }
  const ReconnectPolicy& reconnect_policy() const { return policy_; }
  /// Successful automatic reconnects performed so far.
  uint64_t reconnects() const { return reconnects_; }

  /// Sends one request payload and reads one response frame. Transport
  /// failures return an error Status; server-side failures return a
  /// Response whose code is the typed wire error.
  Result<Response> Call(std::string_view payload);

  /// Sends one request frame WITHOUT waiting for the response — the
  /// fire-and-vanish half of the disconnect tests (follow with
  /// CloseAbruptly() to leave the server holding an orphaned query).
  Status Send(std::string_view payload);

  // --- verb helpers --------------------------------------------------------
  // Read-only verbs go through the reconnecting path; mutating verbs
  // (INSERT/DELETE/COMPACT) deliberately do not (see ReconnectPolicy).
  Result<Response> Ping() { return CallIdempotent("PING"); }
  /// Binds the connection's tenant; remembered so reconnects re-bind it.
  Result<Response> Hello(const std::string& tenant) {
    tenant_ = tenant;
    return CallIdempotent("HELLO tenant=" + tenant);
  }
  Result<Response> Query(const WireQuerySpec& spec) {
    return CallIdempotent("QUERY " + spec.ToArgs());
  }
  Result<Response> Explain(const WireQuerySpec& spec) {
    return CallIdempotent("EXPLAIN " + spec.ToArgs());
  }
  Result<Response> Insert(const std::vector<int32_t>& sel,
                          const std::vector<double>& rank);
  Result<Response> Delete(uint32_t tid) {
    return Call("DELETE tid=" + std::to_string(tid));
  }
  Result<Response> Compact() { return Call("COMPACT"); }
  Result<Response> Stats() { return CallIdempotent("STATS"); }

  // --- result cache --------------------------------------------------------
  // A server started with --cache_mb=0 answers these with the typed
  // NOT_SUPPORTED wire code (Response::code), not a transport error.
  /// "key=value" counter lines: hits, reuse_hits, misses, entries, bytes...
  Result<Response> CacheStats() { return CallIdempotent("CACHE op=stats"); }
  /// Drops every cached entry (idempotent, but mutates serving state — no
  /// auto-retry, matching the other mutating verbs).
  Result<Response> CacheClear() { return Call("CACHE op=clear"); }
  /// Adjusts the byte budget at runtime (0 disables; a resize can also
  /// re-enable a cache started at 0).
  Result<Response> CacheResize(uint64_t bytes) {
    return Call("CACHE op=resize bytes=" + std::to_string(bytes));
  }

  // --- partitioned servers (PARTITION_* verbs) -----------------------------
  // Create/Drop mutate and are never auto-retried; List/Stats reconnect.
  Result<Response> PartitionCreate(const std::string& name, int32_t lo,
                                   int32_t hi) {
    return Call("PARTITION_CREATE name=" + name + " lo=" + std::to_string(lo) +
                " hi=" + std::to_string(hi));
  }
  Result<Response> PartitionDrop(const std::string& name) {
    return Call("PARTITION_DROP name=" + name);
  }
  Result<Response> PartitionList() { return CallIdempotent("PARTITION_LIST"); }
  Result<Response> PartitionStats(const std::string& name) {
    return CallIdempotent("STATS partition=" + name);
  }
  /// Partitioned DELETE: tids are dense per partition.
  Result<Response> DeleteIn(const std::string& partition, uint32_t tid) {
    return Call("DELETE tid=" + std::to_string(tid) +
                " partition=" + partition);
  }

  /// Query() plus result decoding; a server-side error becomes an error
  /// Status carrying "<CODE>: <message>".
  Result<std::vector<ScoredTuple>> QueryTuples(const WireQuerySpec& spec);

  /// Severs the connection without protocol shutdown — simulates a client
  /// crashing mid-conversation (the disconnect-survival tests).
  void CloseAbruptly();

 private:
  RankCubeClient(int fd, std::string host, uint16_t port)
      : fd_(fd), host_(std::move(host)), port_(port) {}

  /// Call() with transport-failure retry: redial (+ HELLO replay) under the
  /// backoff policy, then resend. Only safe for idempotent payloads.
  Result<Response> CallIdempotent(const std::string& payload);
  /// Redials host_:port_ and replays HELLO; used by CallIdempotent.
  Status Reconnect();
  /// Backoff for redial `attempt` (1-based): exponential from base_delay_ms
  /// capped at max_delay_ms, with the upper half jittered.
  uint32_t BackoffMs(int attempt);

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  std::string tenant_;  ///< last HELLO, replayed after reconnect
  ReconnectPolicy policy_;
  uint64_t reconnects_ = 0;
  uint64_t rng_ = 0;  ///< jitter stream state (lazily seeded)
};

}  // namespace rankcube

#endif  // RANKCUBE_SERVER_CLIENT_H_
