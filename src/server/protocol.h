// Wire protocol of rankcubed: length-prefixed text frames.
//
// Every message — request or response — is one frame: a 4-byte big-endian
// payload length followed by that many bytes of UTF-8 text. Inside a
// request frame, the first whitespace-separated token is the verb and the
// remaining tokens are key=value arguments:
//
//   HELLO   tenant=<name>
//   PING
//   QUERY   k=<n> order=<fn> [where=<d>:<v>[,<d>:<v>]...]
//           [budget=<pages>] [deadline_ms=<ms>] [engine=<key>]
//   EXPLAIN <same arguments as QUERY>
//   INSERT  sel=<v0,v1,...> rank=<r0,r1,...>
//   DELETE  tid=<n> [partition=<name>]
//   COMPACT
//   STATS   [partition=<name>]
//   CACHE   [op=stats|clear|resize] [bytes=<n>]
//
// CACHE defaults to op=stats (result-cache counter lines); op=clear drops
// every entry and op=resize sets the byte budget (bytes= required, 0
// disables). On a server started with --cache_mb=0 every CACHE op except
// resize answers NOT_SUPPORTED.
//
// Partitioned servers (rankcubed --partition=...) add three verbs and bend
// the shapes above:
//
//   PARTITION_CREATE name=<name> lo=<n> hi=<n>   (half-open [lo, hi))
//   PARTITION_DROP   name=<name>
//   PARTITION_LIST
//
// QUERY result lines gain the home partition as a third token
// ("<tid> <score> <partition>" — tids are dense PER PARTITION), DELETE
// requires partition=<name>, INSERT answers with the routed partition, and
// STATS partition=<name> returns one partition's counters. PARTITION_LIST
// answers one "partition=<name> range=[lo,hi) rows=... live_rows=...
// epoch=... read_only=..." line per partition in creation order. On an
// unpartitioned server the PARTITION_* verbs fail with NOT_SUPPORTED.
//
// with the ranking-function grammar
//
//   order = kind ':' w0 ',' w1 [',' ...] ['@' t0 ',' t1 [',' ...]]
//   kind  = "linear" | "l1" | "dist" | "sqlinear"
//
// (one weight per ranking dimension, zero = uninvolved; l1/dist require
// targets after '@'). A response frame's first line is the status —
// `OK` or `ERR <CODE> <message>` — and any further lines are the payload
// (result tuples, plan text, stats key=value lines). The typed error codes
// are the admission-control contract: a client can tell a malformed request
// (BAD_REQUEST) from a query that was too expensive (BUDGET_EXCEEDED), too
// slow (DEADLINE_EXCEEDED), or rejected up front by a tenant quota
// (QUOTA_EXCEEDED, never queued).
#ifndef RANKCUBE_SERVER_PROTOCOL_H_
#define RANKCUBE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "func/query.h"

namespace rankcube {

/// Hard ceiling on one frame's payload; a peer announcing a larger frame is
/// answered with TOO_LARGE and disconnected (the length header cannot be
/// trusted as a buffer-size request).
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Typed wire-level result codes (the protocol's mirror of Status::Code
/// plus the server-side rejections that never reach the engine).
enum class WireCode : int {
  kOk = 0,
  kBadRequest,        ///< unparsable frame/verb/argument, invalid query
  kTooLarge,          ///< frame exceeds the size ceiling
  kNotFound,          ///< unknown engine / tid
  kNotSupported,      ///< engine cannot answer this query shape
  kBudgetExceeded,    ///< page budget overrun (Status::kOutOfRange)
  kDeadlineExceeded,  ///< wall-clock deadline overrun
  kQuotaExceeded,     ///< tenant admission rejection (never queued)
  kCorruption,
  kInternal,          ///< anything else; the message says what
};

/// Stable wire spelling ("BUDGET_EXCEEDED", ...).
const char* WireCodeName(WireCode code);
/// Inverse of WireCodeName; kInternal for unknown spellings.
WireCode WireCodeFromName(std::string_view name);
/// Maps a library Status onto the wire (kOutOfRange -> BUDGET_EXCEEDED,
/// kDeadlineExceeded -> DEADLINE_EXCEEDED, kResourceExhausted ->
/// QUOTA_EXCEEDED, ...).
WireCode WireCodeFromStatus(const Status& status);

/// Frames `payload` (4-byte big-endian length + bytes).
std::string EncodeFrame(std::string_view payload);

/// Incremental frame decoder: feed raw socket bytes, pull complete payloads.
/// Tolerates any fragmentation (one byte at a time, many frames per chunk).
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame into `payload`. Returns true when one
  /// was extracted, false when more bytes are needed, and an error Status
  /// when the stream announced a frame larger than the ceiling — the
  /// connection is unrecoverable then (the decoder cannot resync).
  Result<bool> Next(std::string* payload);

  size_t buffered_bytes() const { return buf_.size(); }

 private:
  size_t max_;
  std::string buf_;
};

/// A parsed request: verb plus key=value arguments in wire order.
struct Request {
  std::string verb;  ///< uppercased
  std::vector<std::pair<std::string, std::string>> args;

  /// Last value for `key`, or nullptr.
  const std::string* Find(std::string_view key) const;
};

/// Splits a request payload into verb + arguments. Fails (BAD_REQUEST
/// territory) on an empty payload or an argument without '='.
Result<Request> ParseRequest(std::string_view payload);

/// A response: status line plus payload lines.
struct Response {
  WireCode code = WireCode::kOk;
  std::string message;             ///< single-line error text when not ok
  std::vector<std::string> lines;  ///< payload lines after the status line

  bool ok() const { return code == WireCode::kOk; }

  static Response Ok() { return Response{}; }
  static Response Error(WireCode code, std::string message);
  /// From a failed library Status (code mapped via WireCodeFromStatus).
  static Response FromStatus(const Status& status);

  /// Serializes to the unframed wire text ("OK\n..." / "ERR CODE msg\n...").
  std::string Encode() const;
  /// Parses wire text back (the client half).
  static Result<Response> Parse(std::string_view payload);
};

/// Builds the TopKQuery of a QUERY/EXPLAIN request (k, order, where) and
/// validates it against `schema` — the same ValidateQuery every engine
/// runs, but failing before any planning or admission cost. budget /
/// deadline_ms / engine are execution options, not part of the query; the
/// server reads them separately.
Result<TopKQuery> ParseWireQuery(const Request& request,
                                 const TableSchema& schema);

/// Parses an unsigned integer argument; fails with a message naming `key`.
Result<uint64_t> ParseU64Arg(const std::string& value, std::string_view key);
/// Parses a comma-separated list of doubles ("0.5,1,2e-3").
Result<std::vector<double>> ParseDoubleList(std::string_view text);
/// Parses a comma-separated list of int32 values.
Result<std::vector<int32_t>> ParseInt32List(std::string_view text);

}  // namespace rankcube

#endif  // RANKCUBE_SERVER_PROTOCOL_H_
