// rankcubed: the ranking-cube network daemon.
//
// Loads (or generates) a relation, builds a RankCubeDb over it, and serves
// the wire protocol (server/protocol.h) until SIGINT/SIGTERM. All state is
// in-memory — the binary exists to put the full read/write stack (planner
// routing, lazy builds, delta maintenance, admission control) behind a
// socket, so multiple tenants can drive one database concurrently.
//
// Usage:
//   rankcubed [--host=127.0.0.1] [--port=0]
//             [--rows=N] [--sel_dims=S] [--cardinality=C] [--rank_dims=R]
//             [--zipf=THETA] [--seed=N]
//             [--cache_pages=N] [--latency_us=N] [--cache_mb=N]
//             [--max_inflight=N] [--page_budget=N] [--deadline_ms=N]
//             [--tenant=name:inflight:budget:deadline_ms]...
//             [--data_dir=PATH] [--fsync=always|batch|off]
//             [--partition_dim=D] [--partition=name:lo:hi]...
//
// --port=0 picks an ephemeral port; the daemon always prints
// "rankcubed listening on HOST:PORT" once it serves (scripts wait for that
// line). The quota flags set the default tenant quota; each --tenant flag
// overrides it for one named tenant (0 fields mean "no limit").
//
// --cache_mb sizes the workload-aware result cache (default 64 MiB;
// 0 disables it, and the CACHE verb then answers NOT_SUPPORTED). The
// cache serves repeated and near-duplicate queries without touching the
// engines and invalidates itself on every write via table epochs.
//
// Any --partition flag switches the daemon to PARTITIONED serving: the
// generated relation is split by selection dimension --partition_dim into
// the named half-open ranges [lo, hi), each partition gets its own engines
// and (with --data_dir) its own WAL/checkpoint subdirectory, and the wire
// protocol gains the PARTITION_CREATE/PARTITION_DROP/PARTITION_LIST verbs.
// Rows whose partition-dim value no range covers are dropped with a
// warning. On a durable restart the recovered manifest wins and the
// --partition flags are ignored, exactly like the generator flags; a
// data_dir holding a PARTITIONS manifest always reboots partitioned,
// even with no --partition flags on the command line.
//
// With --data_dir the database is DURABLE: the first boot seeds the
// directory from the generated relation (checkpoint + WAL), later boots
// recover it — replaying the WAL — and ignore the generator flags. --fsync
// picks the commit policy (always = no acked write can be lost; batch =
// group commit; off = benchmark mode). SIGTERM/SIGINT stop the listener,
// flush the WAL and take a clean checkpoint before exiting, so a graceful
// restart replays nothing.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore.h>
#include <string>
#include <utility>
#include <vector>

#include "gen/synthetic.h"
#include "partition/partitioned_db.h"
#include "planner/rank_cube_db.h"
#include "server/server.h"
#include "storage/fs.h"

namespace rankcube {
namespace {

struct Flags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t rows = 20000;
  int sel_dims = 3;
  int32_t cardinality = 20;
  int rank_dims = 2;
  double zipf = 0.0;
  uint64_t seed = 42;
  size_t cache_pages = 4096;
  uint32_t latency_us = 100;
  uint64_t cache_mb = 64;  ///< result cache budget; 0 disables caching
  TenantQuota default_quota{/*max_inflight=*/8, /*page_budget=*/0,
                            /*deadline_ms=*/0};
  std::map<std::string, TenantQuota> tenant_quotas;
  std::string data_dir;  ///< empty = ephemeral (historical behavior)
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  int partition_dim = 0;
  /// (name, [lo, hi)) per --partition flag; non-empty = partitioned mode.
  std::vector<std::pair<std::string, PartitionRange>> partitions;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

/// "name:inflight:budget:deadline_ms" (missing trailing fields = 0).
bool ParseTenantFlag(const std::string& v, std::string* name,
                     TenantQuota* quota) {
  size_t c1 = v.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  *name = v.substr(0, c1);
  *quota = TenantQuota{};
  const char* p = v.c_str() + c1 + 1;
  char* end = nullptr;
  quota->max_inflight = static_cast<uint32_t>(std::strtoul(p, &end, 10));
  if (*end == ':') {
    quota->page_budget = std::strtoull(end + 1, &end, 10);
    if (*end == ':') quota->deadline_ms = std::strtoull(end + 1, &end, 10);
  }
  return *end == '\0';
}

/// "name:lo:hi" — a half-open partition range on the partition dimension.
bool ParsePartitionFlag(const std::string& v, std::string* name,
                        PartitionRange* range) {
  size_t c1 = v.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  *name = v.substr(0, c1);
  const char* p = v.c_str() + c1 + 1;
  char* end = nullptr;
  long lo = std::strtol(p, &end, 10);
  if (end == p || *end != ':') return false;
  p = end + 1;
  long hi = std::strtol(p, &end, 10);
  if (end == p || *end != '\0') return false;
  range->lo = static_cast<int32_t>(lo);
  range->hi = static_cast<int32_t>(hi);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host=H] [--port=P] [--rows=N] [--sel_dims=S] "
               "[--cardinality=C] [--rank_dims=R] [--zipf=T] [--seed=N] "
               "[--cache_pages=N] [--latency_us=N] [--cache_mb=N] "
               "[--max_inflight=N] "
               "[--page_budget=N] [--deadline_ms=N] "
               "[--tenant=name:inflight:budget:deadline_ms]... "
               "[--data_dir=PATH] [--fsync=always|batch|off] "
               "[--partition_dim=D] [--partition=name:lo:hi]...\n",
               argv0);
  return 2;
}

sem_t g_shutdown;

void HandleSignal(int) { sem_post(&g_shutdown); }

int Main(int argc, char** argv) {
  Flags f;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--host=", &v)) {
      f.host = v;
    } else if (ParseFlag(argv[i], "--port=", &v)) {
      f.port = static_cast<uint16_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--rows=", &v)) {
      f.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--sel_dims=", &v)) {
      f.sel_dims = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--cardinality=", &v)) {
      f.cardinality = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--rank_dims=", &v)) {
      f.rank_dims = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--zipf=", &v)) {
      f.zipf = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--cache_pages=", &v)) {
      f.cache_pages = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--latency_us=", &v)) {
      f.latency_us = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--cache_mb=", &v)) {
      f.cache_mb = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max_inflight=", &v)) {
      f.default_quota.max_inflight =
          static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--page_budget=", &v)) {
      f.default_quota.page_budget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--deadline_ms=", &v)) {
      f.default_quota.deadline_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--data_dir=", &v)) {
      f.data_dir = v;
    } else if (ParseFlag(argv[i], "--fsync=", &v)) {
      auto policy = ParseFsyncPolicy(v);
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
        return Usage(argv[0]);
      }
      f.fsync = policy.value();
    } else if (ParseFlag(argv[i], "--partition_dim=", &v)) {
      f.partition_dim = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--partition=", &v)) {
      std::string name;
      PartitionRange range;
      if (!ParsePartitionFlag(v, &name, &range)) {
        std::fprintf(stderr, "bad --partition spec '%s'\n", v.c_str());
        return Usage(argv[0]);
      }
      f.partitions.emplace_back(name, range);
    } else if (ParseFlag(argv[i], "--tenant=", &v)) {
      std::string name;
      TenantQuota quota;
      if (!ParseTenantFlag(v, &name, &quota)) {
        std::fprintf(stderr, "bad --tenant spec '%s'\n", v.c_str());
        return Usage(argv[0]);
      }
      f.tenant_quotas[name] = quota;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  SyntheticSpec spec;
  spec.num_rows = f.rows;
  spec.num_sel_dims = f.sel_dims;
  spec.cardinality = f.cardinality;
  spec.num_rank_dims = f.rank_dims;
  spec.sel_zipf_theta = f.zipf;
  spec.seed = f.seed;

  std::fprintf(stderr,
               "rankcubed: generating %llu rows (S=%d C=%d R=%d seed=%llu)\n",
               static_cast<unsigned long long>(f.rows), f.sel_dims,
               f.cardinality, f.rank_dims,
               static_cast<unsigned long long>(f.seed));

  RankCubeDb::Options db_options;
  db_options.store.cache_pages = f.cache_pages;
  db_options.store.read_latency_us = f.latency_us;
  db_options.cache.max_bytes = static_cast<size_t>(f.cache_mb) << 20;

  // A data_dir that already holds a partition manifest must reboot through
  // the partitioned path even if no --partition flags were given — opening
  // it as a plain durable db would lay a second, unpartitioned database
  // over the partitioned layout.
  bool recovering_partitioned = false;
  if (!f.data_dir.empty()) {
    auto exists = Fs::Posix()->FileExists(f.data_dir + "/" +
                                          PartitionManifestFileName());
    recovering_partitioned = exists.ok() && exists.value();
  }

  std::unique_ptr<RankCubeDb> db;
  std::unique_ptr<PartitionedDb> pdb;
  if (!f.partitions.empty() || recovering_partitioned) {
    Table base = GenerateSynthetic(spec);
    if (f.partition_dim < 0 || f.partition_dim >= base.num_sel_dims()) {
      std::fprintf(stderr, "rankcubed: --partition_dim=%d out of range [0,%d)\n",
                   f.partition_dim, base.num_sel_dims());
      return 1;
    }
    PartitionedDb::Options popts;
    popts.schema = base.schema();
    popts.partition_dim = f.partition_dim;
    popts.db = db_options;
    // Partitioned serving caches merged results at the scatter-gather
    // layer (per-partition epoch tags); per-partition caches would only
    // duplicate the same entries.
    popts.db.cache.max_bytes = 0;
    popts.cache.max_bytes = static_cast<size_t>(f.cache_mb) << 20;
    popts.data_dir = f.data_dir;
    popts.fsync = f.fsync;
    auto opened = PartitionedDb::Open(std::move(popts));
    if (!opened.ok()) {
      std::fprintf(stderr, "rankcubed: open partitioned %s: %s\n",
                   f.data_dir.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    pdb = std::move(opened).value();
    if (pdb->ListPartitions().empty()) {
      // Fresh instance: materialize the flag partitions, each seeded with
      // its slice of the generated relation.
      uint64_t covered = 0;
      std::vector<int32_t> sel(base.num_sel_dims());
      std::vector<double> rank(base.num_rank_dims());
      for (const auto& [name, range] : f.partitions) {
        Table seed(base.schema());
        for (Tid row = 0; row < static_cast<Tid>(base.num_rows()); ++row) {
          if (!range.Contains(base.sel(row, f.partition_dim))) continue;
          for (int d = 0; d < base.num_sel_dims(); ++d)
            sel[d] = base.sel(row, d);
          for (int d = 0; d < base.num_rank_dims(); ++d)
            rank[d] = base.rank(row, d);
          Status add = seed.AddRow(sel, rank);
          if (!add.ok()) {
            std::fprintf(stderr, "rankcubed: seed row: %s\n",
                         add.ToString().c_str());
            return 1;
          }
          ++covered;
        }
        std::fprintf(stderr, "rankcubed: partition %s %s: %zu rows\n",
                     name.c_str(), range.ToString().c_str(), seed.num_rows());
        Status created = pdb->CreatePartition(name, range, std::move(seed));
        if (!created.ok()) {
          std::fprintf(stderr, "rankcubed: create partition %s: %s\n",
                       name.c_str(), created.ToString().c_str());
          return 1;
        }
      }
      if (covered < base.num_rows()) {
        std::fprintf(stderr,
                     "rankcubed: warning: %llu rows outside every partition "
                     "range were dropped\n",
                     static_cast<unsigned long long>(base.num_rows() - covered));
      }
    } else {
      std::fprintf(stderr,
                   "rankcubed: recovered %zu partitions from %s "
                   "(--partition flags ignored)\n",
                   pdb->ListPartitions().size(), f.data_dir.c_str());
    }
  } else if (f.data_dir.empty()) {
    db = std::make_unique<RankCubeDb>(GenerateSynthetic(spec), db_options);
  } else {
    db_options.durability.data_dir = f.data_dir;
    db_options.durability.fsync = f.fsync;
    auto opened = RankCubeDb::Open(GenerateSynthetic(spec), db_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "rankcubed: open %s: %s\n", f.data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
    const RecoveryInfo& r = db->recovery();
    std::fprintf(stderr,
                 "rankcubed: %s %s (fsync=%s, checkpoint_epoch=%llu, "
                 "replayed=%llu, %.1f ms)%s%s\n",
                 r.created ? "created" : "recovered", f.data_dir.c_str(),
                 FsyncPolicyName(f.fsync),
                 static_cast<unsigned long long>(r.checkpoint_epoch),
                 static_cast<unsigned long long>(r.replayed), r.recovery_ms,
                 r.read_only ? " READ-ONLY: " : "",
                 r.read_only ? r.degraded_reason.c_str() : "");
  }

  RankCubeServer::Options server_options;
  server_options.host = f.host;
  server_options.port = f.port;
  server_options.default_quota = f.default_quota;
  server_options.tenant_quotas = f.tenant_quotas;
  std::unique_ptr<RankCubeServer> server;
  if (pdb != nullptr) {
    server = std::make_unique<RankCubeServer>(pdb.get(), server_options);
  } else {
    server = std::make_unique<RankCubeServer>(db.get(), server_options);
  }

  Status s = server->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "rankcubed: %s\n", s.ToString().c_str());
    return 1;
  }
  // stdout + flush: scripts block on this exact line to learn the port.
  std::printf("rankcubed listening on %s:%u\n", f.host.c_str(),
              static_cast<unsigned>(server->port()));
  std::fflush(stdout);

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "rankcubed: shutting down\n");
  server->Stop();
  if (pdb != nullptr) {
    bool read_only = false;
    for (const PartitionInfo& info : pdb->ListPartitions()) {
      read_only = read_only || info.read_only;
    }
    if (pdb->durable() && !read_only) {
      Status ckpt = pdb->Checkpoint();
      if (!ckpt.ok()) {
        std::fprintf(stderr, "rankcubed: shutdown checkpoint: %s\n",
                     ckpt.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "rankcubed: checkpointed %zu partitions\n",
                   pdb->ListPartitions().size());
    }
  } else if (db->durable() && !db->read_only()) {
    // Listener drained: flush the WAL and leave a clean checkpoint so the
    // next boot replays nothing.
    Status ckpt = db->Checkpoint();
    if (!ckpt.ok()) {
      std::fprintf(stderr, "rankcubed: shutdown checkpoint: %s\n",
                   ckpt.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "rankcubed: checkpointed at epoch %llu\n",
                 static_cast<unsigned long long>(db->table().epoch()));
  }
  return 0;
}

}  // namespace
}  // namespace rankcube

int main(int argc, char** argv) { return rankcube::Main(argc, argv); }
