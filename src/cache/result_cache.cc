#include "cache/result_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace rankcube {

size_t CachedResult::ApproxBytes() const {
  size_t b = sizeof(CachedResult);
  b += tuples.capacity() * sizeof(ScoredTuple);
  for (const std::string& p : partitions) b += p.size() + sizeof(std::string);
  return b;
}

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(options), max_bytes_(options.max_bytes) {
  size_t n = options_.shards == 0 ? 1 : options_.shards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& sibling_key) {
  return *shards_[std::hash<std::string>{}(sibling_key) % shards_.size()];
}

void ResultCache::EraseLocked(Shard& shard, std::list<Node>::iterator it) {
  auto sib = shard.siblings.find(it->sibling_key);
  if (sib != shard.siblings.end()) {
    sib->second.erase(it->full_key);
    if (sib->second.empty()) shard.siblings.erase(sib);
  }
  shard.by_key.erase(it->full_key);
  shard.bytes -= it->bytes;
  shard.lru.erase(it);
}

void ResultCache::EvictLocked(Shard& shard, size_t budget) {
  while (shard.bytes > budget && !shard.lru.empty()) {
    EraseLocked(shard, std::prev(shard.lru.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<CachedResult> ResultCache::Lookup(const CanonicalQuery& key,
                                                const std::string& epoch_tag) {
  if (!enabled() || !key.cacheable) return std::nullopt;
  Shard& shard = ShardFor(key.sibling_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key.full_key);
  if (it == shard.by_key.end()) return std::nullopt;
  if (it->second->epoch_tag != epoch_tag) {
    // Lazy exact invalidation: the table (or a relevant partition) mutated
    // since this entry was computed.
    EraseLocked(shard, it->second);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

std::vector<CachedResult> ResultCache::FindSiblings(
    const CanonicalQuery& key, const std::string& epoch_tag,
    size_t max_candidates) {
  std::vector<CachedResult> out;
  if (!enabled() || !key.cacheable) return out;
  Shard& shard = ShardFor(key.sibling_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto sib = shard.siblings.find(key.sibling_key);
  if (sib == shard.siblings.end()) return out;
  // Walk the LRU list (short — only this shard) instead of the unordered
  // key set, collecting every current-tag sibling; stale ones are erased
  // in passing.
  std::vector<const CachedResult*> found;
  for (auto it = shard.lru.begin(); it != shard.lru.end();) {
    if (it->sibling_key != key.sibling_key || it->full_key == key.full_key) {
      ++it;
      continue;
    }
    if (it->epoch_tag != epoch_tag) {
      auto dead = it++;
      EraseLocked(shard, dead);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    found.push_back(&it->value);
    ++it;
  }
  // Biggest candidate set first: a deep overfetched prefix has bound
  // headroom to certify; a reuse-derived entry (k tuples, bound = its own
  // k-th score) almost never does. The stable sort keeps MRU order within
  // a size class.
  std::stable_sort(found.begin(), found.end(),
                   [](const CachedResult* a, const CachedResult* b) {
                     return a->tuples.size() > b->tuples.size();
                   });
  if (found.size() > max_candidates) found.resize(max_candidates);
  out.reserve(found.size());
  for (const CachedResult* r : found) out.push_back(*r);
  return out;
}

bool ResultCache::FamilySeen(const CanonicalQuery& key) {
  if (!enabled() || !key.cacheable) return false;
  Shard& shard = ShardFor(key.sibling_key);
  uint64_t h = std::hash<std::string>{}(key.sibling_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.families_seen.count(h) != 0;
}

void ResultCache::Insert(const CanonicalQuery& key,
                         const std::string& epoch_tag, CachedResult value) {
  if (!enabled() || !key.cacheable) return;
  Node node;
  node.full_key = key.full_key;
  node.sibling_key = key.sibling_key;
  node.epoch_tag = epoch_tag;
  node.value = std::move(value);
  node.bytes = node.value.ApproxBytes() + node.full_key.size() +
               node.sibling_key.size() + node.epoch_tag.size() + 128;
  size_t budget = ShardBudget();
  if (node.bytes > budget) return;

  Shard& shard = ShardFor(key.sibling_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Bounded family history: dropping it on overflow only costs one plain-k
  // miss per family before the deep prefix comes back.
  if (shard.families_seen.size() >= 1u << 16) shard.families_seen.clear();
  shard.families_seen.insert(std::hash<std::string>{}(key.sibling_key));
  auto it = shard.by_key.find(node.full_key);
  if (it != shard.by_key.end()) EraseLocked(shard, it->second);
  shard.lru.push_front(std::move(node));
  shard.by_key[shard.lru.front().full_key] = shard.lru.begin();
  shard.siblings[shard.lru.front().sibling_key].insert(
      shard.lru.front().full_key);
  shard.bytes += shard.lru.front().bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  EvictLocked(shard, budget);
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->by_key.clear();
    shard->siblings.clear();
    shard->families_seen.clear();
    shard->bytes = 0;
  }
}

void ResultCache::Resize(size_t max_bytes) {
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  size_t budget = max_bytes / shards_.size();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    EvictLocked(*shard, budget);
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.reuse_hits = reuse_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.max_bytes = max_bytes_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
    s.bytes += shard->bytes;
  }
  return s;
}

}  // namespace rankcube
