// Sharded, byte-budgeted LRU cache of top-k results, keyed on
// (canonical query, epoch tag).
//
// The epoch tag is the invalidation mechanism, and it is exact and free:
// every mutation bumps the owning table's epoch (storage/delta_store.h),
// tids are never reused, and compaction preserves the epoch — so an entry
// whose tag equals the current tag was computed against byte-identical
// table state and its tuples are still the exact answer. No write-path
// hook exists at all; a stale entry is detected (tag mismatch) and erased
// lazily at the next lookup under its key. Callers choose the tag:
// RankCubeDb uses the single table epoch, PartitionedDb folds the
// (seq:epoch) pairs of every partition the query could possibly read —
// giving per-partition invalidation precision for free (a write to a
// partition the key's predicates exclude never changes the tag).
//
// Entries may hold MORE than the k tuples their key asked for (overfetch):
// the first k are served on an exact hit, and the full prefix plus the
// recorded exclusion bound form the candidate set for the certified
// near-duplicate-function reuse implemented in rank_cube_db.cc. Shards are
// selected by the SIBLING key, so all entries eligible to serve as
// candidates for one query live in one shard and FindSibling is a single
// lock acquisition.
//
// Thread-safety: per-shard mutexes; safe for concurrent Lookup/Insert from
// many reader threads (the cache is populated on the READ path — under
// RankCubeDb's shared reader gate — so readers race each other, never a
// writer: writers hold the gate exclusively and merely advance the epoch).
#ifndef RANKCUBE_CACHE_RESULT_CACHE_H_
#define RANKCUBE_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/query_key.h"
#include "engine/structure_info.h"
#include "func/query.h"
#include "func/ranking_function.h"

namespace rankcube {

struct ResultCacheOptions {
  /// Total byte budget across shards; 0 disables the cache entirely (the
  /// library default — existing callers keep deterministic page accounting
  /// unless they opt in).
  size_t max_bytes = 0;
  /// Shard count (power of two); fixed at construction.
  size_t shards = 16;
  /// On a cacheable miss the query executes with k' = overfetch * k and
  /// caches the deeper prefix, so near-duplicate functions have a
  /// candidate set worth re-ranking. 1.0 = no overfetch. 1.5x already buys
  /// the certification headroom near-duplicate reuse needs (the bound gap
  /// F_k' - F_k dwarfs the tiny perturbation deltas worth certifying)
  /// while keeping the miss penalty — the deeper execution — small;
  /// deeper overfetch pays more per miss than the extra reuse recovers.
  double overfetch = 1.5;
};

/// One cached answer: the top-k' prefix (ascending score) of the matching
/// rows plus everything the certified-reuse check needs.
struct CachedResult {
  std::vector<ScoredTuple> tuples;
  /// Per-tuple home partition (parallel to `tuples`); empty for
  /// single-table entries.
  std::vector<std::string> partitions;
  /// Every matching live row NOT in `tuples` scores >= this under the
  /// entry's own function (+inf when `complete`).
  double exclusion_bound = kInfScore;
  /// True when `tuples` holds ALL matching rows (the heap never filled).
  bool complete = false;
  /// The entry's ranking-function tree, for the reuse delta bound.
  ScoreExprPtr expr;
  /// The plan that produced the entry; served back on hits.
  std::shared_ptr<const PlanInfo> plan;

  size_t ApproxBytes() const;
};

struct ResultCacheStats {
  uint64_t hits = 0;        ///< exact full-key hits
  uint64_t reuse_hits = 0;  ///< certified near-duplicate reuses
  uint64_t misses = 0;      ///< cacheable queries that executed in full
  uint64_t insertions = 0;
  uint64_t invalidations = 0;  ///< stale entries erased on lookup
  uint64_t evictions = 0;      ///< entries dropped by the byte budget
  uint64_t entries = 0;        ///< current
  uint64_t bytes = 0;          ///< current
  uint64_t max_bytes = 0;      ///< configured budget (0 = disabled)
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = ResultCacheOptions());

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const {
    return max_bytes_.load(std::memory_order_relaxed) > 0;
  }
  double overfetch() const { return options_.overfetch; }

  /// Exact hit: full key + identical epoch tag. Counts a hit and refreshes
  /// LRU on success; erases (and counts an invalidation for) a same-key
  /// entry with a stale tag. Does NOT count a miss — the caller decides
  /// between RecordReuseHit and RecordMiss after trying sibling reuse.
  std::optional<CachedResult> Lookup(const CanonicalQuery& key,
                                     const std::string& epoch_tag);

  /// Current-tag entries under the same sibling key with a DIFFERENT
  /// function, to serve as reuse candidate sets. One sibling key can hold
  /// several distinct functions (everything sharing predicates and k), so
  /// the caller tries each in turn: ordered by candidate-set size
  /// descending (deep overfetched prefixes certify near-duplicates;
  /// reuse-derived k-tuple entries rarely can), capped at
  /// `max_candidates`. Stale siblings encountered are erased.
  std::vector<CachedResult> FindSiblings(const CanonicalQuery& key,
                                         const std::string& epoch_tag,
                                         size_t max_candidates = 8);

  /// True when some entry under this sibling key has EVER been inserted
  /// (even if since evicted or invalidated). Drives adaptive overfetch:
  /// deep prefixes only pay off for query families that recur, so the
  /// first sighting of a family — and every one-off query — executes at
  /// plain k, and the re-cache after a repeat/write overfetches.
  bool FamilySeen(const CanonicalQuery& key);

  /// Inserts/replaces the entry under the key's full key. Entries larger
  /// than a shard's budget are not cached.
  void Insert(const CanonicalQuery& key, const std::string& epoch_tag,
              CachedResult value);

  void RecordReuseHit() {
    reuse_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  void Clear();
  /// Adjusts the byte budget (0 disables); evicts immediately if shrunk.
  void Resize(size_t max_bytes);

  ResultCacheStats Stats() const;

 private:
  struct Node {
    std::string full_key;
    std::string sibling_key;
    std::string epoch_tag;
    CachedResult value;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Node> lru;
    std::unordered_map<std::string, std::list<Node>::iterator> by_key;
    /// sibling key -> full keys currently cached under it.
    std::unordered_map<std::string, std::set<std::string>> siblings;
    /// Hashes of every sibling key ever inserted (bounded; heuristic only
    /// — a false "seen" merely overfetches one miss, a false "unseen"
    /// merely delays the deep prefix by one occurrence).
    std::unordered_set<uint64_t> families_seen;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& sibling_key);
  size_t ShardBudget() const {
    return max_bytes_.load(std::memory_order_relaxed) / shards_.size();
  }
  /// Must hold shard.mu. Erases the node at `it`.
  void EraseLocked(Shard& shard, std::list<Node>::iterator it);
  /// Must hold shard.mu. Evicts LRU tail until the shard fits `budget`.
  void EvictLocked(Shard& shard, size_t budget);

  ResultCacheOptions options_;
  std::atomic<size_t> max_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> reuse_hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace rankcube

#endif  // RANKCUBE_CACHE_RESULT_CACHE_H_
