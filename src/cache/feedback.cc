#include "cache/feedback.h"

#include <algorithm>
#include <cmath>

namespace rankcube {

std::string CostFeedback::Family(const std::string& engine) {
  if (engine == "grid" || engine == "fragments") return "grid";
  if (engine == "signature" || engine == "signature_lossy") return "signature";
  return engine;
}

double CostFeedback::Correction(const std::string& engine) const {
  if (!enabled()) return 1.0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(Family(engine));
  if (it == state_.end()) return 1.0;
  return std::clamp(std::exp(it->second.first), options_.min_factor,
                    options_.max_factor);
}

void CostFeedback::Observe(const std::string& engine, double estimated_pages,
                           double measured_pages) {
  if (!enabled()) return;
  double residual = std::log(std::max(measured_pages, 1.0) /
                             std::max(estimated_pages, 1.0));
  std::lock_guard<std::mutex> lock(mu_);
  auto& [log_c, count] = state_[Family(engine)];
  log_c += options_.alpha * residual;
  log_c = std::clamp(log_c, std::log(options_.min_factor),
                     std::log(options_.max_factor));
  ++count;
}

std::map<std::string, CostFeedback::FamilyState> CostFeedback::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, FamilyState> out;
  for (const auto& [family, state] : state_) {
    out[family] = {std::clamp(std::exp(state.first), options_.min_factor,
                              options_.max_factor),
                   state.second};
  }
  return out;
}

void CostFeedback::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  state_.clear();
}

}  // namespace rankcube
