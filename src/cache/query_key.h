// Canonical cache keys for logical top-k queries.
//
// Two queries share a full key exactly when the uncached execution path is
// guaranteed to produce bit-identical answers for them: same k, same
// predicate set (order-insensitive — conjunction is commutative and
// ValidateQuery rejects duplicate dimensions, so sorting by dimension is a
// total order), and ranking functions whose ScoreExpr trees are
// Eval-identical under the one rewrite that is bit-exact by construction:
// flattening a nested Add/Mul out of the FIRST child position. Eval folds
// Add from 0.0 and Mul from children[0] strictly left to right, so
// Add[Add[a,b],c] computes ((0+a)+b)+c — the very doubles Add[a,b,c]
// computes — while Add[c,Add[a,b]] does not and is deliberately NOT
// coalesced. No reordering, constant folding or algebraic identity is
// applied: a weaker key only costs a cache miss, a stronger one would cost
// a wrong answer.
//
// The sibling key drops the function: entries under the same sibling key
// answer the same selection at the same k and differ only in ranking
// function — the candidate set for the certified near-duplicate reuse in
// rank_cube_db.cc.
//
// Functions without a ScoreExpr tree (RankingFunction::Expr() == nullptr)
// are not canonicalizable — structural identity cannot be proven — and such
// queries bypass the cache entirely.
#ifndef RANKCUBE_CACHE_QUERY_KEY_H_
#define RANKCUBE_CACHE_QUERY_KEY_H_

#include <string>

#include "func/query.h"
#include "func/score_expr.h"

namespace rankcube {

/// A query's cache identity. `cacheable` is false when the ranking function
/// exposes no expression tree; the other fields are empty then.
struct CanonicalQuery {
  bool cacheable = false;
  /// "k=<k>|p=<dim>:<val>,..." — predicates sorted by dimension.
  std::string sibling_key;
  /// Canonical rendering of the ScoreExpr tree (first-child-flattened).
  std::string function_key;
  /// sibling_key + "|f=" + function_key; the exact-hit key.
  std::string full_key;
};

/// Canonical rendering of one expression tree (exposed for tests).
std::string CanonicalExprKey(const ScoreExpr& expr);

CanonicalQuery CanonicalizeQuery(const TopKQuery& query);

}  // namespace rankcube

#endif  // RANKCUBE_CACHE_QUERY_KEY_H_
