#include "cache/query_key.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace rankcube {

namespace {

/// %.17g round-trips every double, so two constants render equal iff they
/// are the same double (modulo -0.0/0.0, which Eval treats identically in
/// every fold position the algebra allows).
std::string RenderDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splices a same-kind subtree out of the first child position, recursively:
/// the only n-ary rewrite whose fold order — and therefore every
/// intermediate double — is unchanged (see file comment in query_key.h).
void FlattenFirstChild(const ScoreExpr& e, ExprKind kind,
                       std::vector<const ScoreExpr*>* out) {
  const auto& children = e.children();
  for (size_t i = 0; i < children.size(); ++i) {
    if (i == 0 && children[i]->kind() == kind) {
      FlattenFirstChild(*children[i], kind, out);
    } else {
      out->push_back(children[i].get());
    }
  }
}

void Render(const ScoreExpr& e, std::string* out) {
  switch (e.kind()) {
    case ExprKind::kConst:
      *out += RenderDouble(e.value());
      return;
    case ExprKind::kVar:
      *out += "N" + std::to_string(e.dim());
      return;
    case ExprKind::kAdd:
    case ExprKind::kMul: {
      std::vector<const ScoreExpr*> flat;
      FlattenFirstChild(e, e.kind(), &flat);
      *out += e.kind() == ExprKind::kAdd ? "add(" : "mul(";
      for (size_t i = 0; i < flat.size(); ++i) {
        if (i) *out += ",";
        Render(*flat[i], out);
      }
      *out += ")";
      return;
    }
    case ExprKind::kSub:
      *out += "sub(";
      Render(*e.children()[0], out);
      *out += ",";
      Render(*e.children()[1], out);
      *out += ")";
      return;
    case ExprKind::kAbs:
      *out += "abs(";
      Render(*e.children()[0], out);
      *out += ")";
      return;
    case ExprKind::kSquare:
      *out += "sq(";
      Render(*e.children()[0], out);
      *out += ")";
      return;
    case ExprKind::kGate:
      *out += "gate[N" + std::to_string(e.dim()) + "," +
              RenderDouble(e.band_lo()) + "," + RenderDouble(e.band_hi()) +
              "](";
      Render(*e.children()[0], out);
      *out += ")";
      return;
  }
}

}  // namespace

std::string CanonicalExprKey(const ScoreExpr& expr) {
  std::string out;
  Render(expr, &out);
  return out;
}

CanonicalQuery CanonicalizeQuery(const TopKQuery& query) {
  CanonicalQuery out;
  if (!query.function) return out;
  ScoreExprPtr expr = query.function->Expr();
  if (expr == nullptr) return out;

  std::vector<Predicate> preds = query.predicates;
  std::sort(preds.begin(), preds.end(),
            [](const Predicate& a, const Predicate& b) {
              return a.dim < b.dim;
            });
  out.sibling_key = "k=" + std::to_string(query.k) + "|p=";
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) out.sibling_key += ",";
    out.sibling_key +=
        std::to_string(preds[i].dim) + ":" + std::to_string(preds[i].value);
  }
  out.function_key = CanonicalExprKey(*expr);
  out.full_key = out.sibling_key + "|f=" + out.function_key;
  out.cacheable = true;
  return out;
}

}  // namespace rankcube
