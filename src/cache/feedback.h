// True-cost planner feedback: per-engine-family multiplicative correction
// factors learned from measured query I/O.
//
// The analytic cost model (planner/cost_model.h) is parameterized on table
// geometry and selectivity, and BENCH_planner showed its estimates off by
// ~1.4x geomean — fine for picking the cheapest of widely separated
// candidates, too coarse for admission page-budgets and partition scatter
// ordering. This class closes the loop: after every planner-routed (or
// forced) execution, RankCubeDb feeds (estimated pages, measured pages)
// back, and the planner multiplies later estimates of the same engine
// family by the learned correction.
//
// The correction is an EWMA in log space:
//
//   log_c  +=  alpha * log(measured / corrected_estimate)
//
// where corrected_estimate already includes the current correction — the
// observed plan estimate IS corrected, so the update drives the *residual*
// error to zero: at the fixed point, corrected estimates equal the measured
// geometric mean of the recent workload. Log space makes the factor
// symmetric (2x over and 2x under cancel) and matches the geomean metric
// BENCH_planner reports. Factors are clamped to [min_factor, max_factor] so
// one wild observation (a cold cache, a pathological query) cannot poison
// routing.
//
// Families, not engines: grid and fragments share one cuboid cost shape,
// the two signature variants share another — pooling their observations
// converges faster and matches how the cost model's errors actually
// cluster. Everything else corrects under its own key.
//
// Thread-safety: internally synchronized (one mutex); Observe runs on the
// query path outside RankCubeDb's planning lock, Correction inside it.
#ifndef RANKCUBE_CACHE_FEEDBACK_H_
#define RANKCUBE_CACHE_FEEDBACK_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rankcube {

struct CostFeedbackOptions {
  /// Master switch; false = Correction() is identically 1 and Observe() is
  /// a no-op (the planner behaves exactly as before this subsystem).
  bool enabled = true;
  /// EWMA smoothing weight in log space; higher adapts faster, lower
  /// resists noise.
  double alpha = 0.25;
  /// Clamp range of the multiplicative correction factor.
  double min_factor = 0.1;
  double max_factor = 10.0;
};

class CostFeedback {
 public:
  explicit CostFeedback(CostFeedbackOptions options = CostFeedbackOptions())
      : options_(options), enabled_(options.enabled) {}

  /// The correction family an engine key pools its observations under.
  static std::string Family(const std::string& engine);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Runtime kill switch: while false, Correction() is 1 and Observe() is a
  /// no-op; the learned state is kept and resumes on re-enable (benches use
  /// this to measure the uncorrected cost model on a live db).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Current multiplicative correction for `engine`'s family (1.0 when no
  /// observation exists or feedback is disabled).
  double Correction(const std::string& engine) const;

  /// Feeds one execution back. `estimated_pages` is the plan's estimate
  /// (already corrected), `measured_pages` the session's physical reads.
  /// Non-positive values clamp to 1 page, mirroring the geomean metric.
  void Observe(const std::string& engine, double estimated_pages,
               double measured_pages);

  struct FamilyState {
    double correction = 1.0;
    uint64_t observations = 0;
  };
  /// Snapshot per family, for STATS and tests.
  std::map<std::string, FamilyState> Snapshot() const;

  void Reset();

 private:
  CostFeedbackOptions options_;
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  /// family -> (log correction, observation count); guarded by mu_.
  std::map<std::string, std::pair<double, uint64_t>> state_;
};

}  // namespace rankcube

#endif  // RANKCUBE_CACHE_FEEDBACK_H_
