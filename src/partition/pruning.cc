#include "partition/pruning.h"

#include <algorithm>

namespace rankcube {

ScatterPlan BuildScatterPlan(const TopKQuery& query, int partition_dim,
                             const std::vector<PartitionView>& parts) {
  ScatterPlan plan;
  // An equality predicate on the partitioning dimension, if any. Duplicate
  // predicates are rejected by ValidateQuery, so the first match is the
  // only one.
  const Predicate* key_pred = nullptr;
  for (const Predicate& p : query.predicates) {
    if (p.dim == partition_dim) {
      key_pred = &p;
      break;
    }
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    const PartitionView& v = parts[i];
    if (key_pred != nullptr && !v.range.Contains(key_pred->value)) {
      ++plan.pruned_by_predicate;
      continue;
    }
    if (!v.has_rows) {
      ++plan.skipped_empty;
      continue;
    }
    plan.candidates.push_back({i, query.function->LowerBound(*v.rank_box)});
  }
  std::sort(plan.candidates.begin(), plan.candidates.end(),
            [](const PartitionCandidate& a, const PartitionCandidate& b) {
              if (a.bound != b.bound) return a.bound < b.bound;
              return a.index < b.index;
            });
  return plan;
}

}  // namespace rankcube
