#include "partition/partition_manifest.h"

#include <cstdlib>
#include <cstring>

#include "common/crc32.h"

namespace rankcube {

namespace {

constexpr char kHeaderLine[] = "rankcube-partitions v1\n";

/// Returns the value of "key=..." at line `pos` (advancing past it), or
/// false on any mismatch (pos is still advanced past the line only on
/// success).
bool TakeLine(const std::string& text, size_t* pos, const std::string& key,
              std::string* value) {
  size_t eol = text.find('\n', *pos);
  if (eol == std::string::npos) return false;
  std::string line = text.substr(*pos, eol - *pos);
  if (line.compare(0, key.size() + 1, key + "=") != 0) return false;
  *pos = eol + 1;
  *value = line.substr(key.size() + 1);
  return true;
}

bool ParseI32(const std::string& s, int32_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (*end != '\0') return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

}  // namespace

bool IsValidPartitionName(const std::string& name) {
  if (name.empty() || name.size() > 128 || name[0] == '.') return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Status StorePartitionManifest(Fs* fs, const std::string& dir,
                              const PartitionManifest& manifest) {
  std::string body = kHeaderLine;
  body += "dim=" + std::to_string(manifest.partition_dim) + "\n";
  for (const PartitionManifestEntry& e : manifest.partitions) {
    if (!IsValidPartitionName(e.name)) {
      return Status::InvalidArgument("bad partition name '" + e.name + "'");
    }
    body += "partition=" + e.name + " " + std::to_string(e.range.lo) + " " +
            std::to_string(e.range.hi) + "\n";
  }
  std::string text = body + "crc=" + std::to_string(StoredCrc32c(body)) + "\n";
  return WriteFileAtomic(fs, dir, PartitionManifestFileName(), text);
}

Result<PartitionManifest> LoadPartitionManifest(Fs* fs,
                                                const std::string& dir) {
  const std::string path = JoinPath(dir, PartitionManifestFileName());
  auto exists = fs->FileExists(path);
  if (!exists.ok()) return exists.status();
  if (!exists.value()) {
    return Status::NotFound("no partition manifest in " + dir);
  }

  auto text = fs->ReadFileToString(path);
  if (!text.ok()) return text.status();
  const std::string& data = text.value();

  auto corrupt = [&](const char* what) {
    return Status::Corruption(std::string("partition manifest '") + path +
                              "': " + what);
  };
  if (data.compare(0, std::strlen(kHeaderLine), kHeaderLine) != 0) {
    return corrupt("bad header");
  }
  size_t pos = std::strlen(kHeaderLine);
  PartitionManifest m;
  std::string value;
  if (!TakeLine(data, &pos, "dim", &value)) return corrupt("missing dim line");
  int32_t dim = 0;
  if (!ParseI32(value, &dim) || dim < 0) return corrupt("bad dim value");
  m.partition_dim = dim;
  while (TakeLine(data, &pos, "partition", &value)) {
    // "name lo hi"
    size_t s1 = value.find(' ');
    size_t s2 = s1 == std::string::npos ? s1 : value.find(' ', s1 + 1);
    if (s2 == std::string::npos) return corrupt("bad partition line");
    PartitionManifestEntry e;
    e.name = value.substr(0, s1);
    if (!IsValidPartitionName(e.name)) return corrupt("bad partition name");
    if (!ParseI32(value.substr(s1 + 1, s2 - s1 - 1), &e.range.lo) ||
        !ParseI32(value.substr(s2 + 1), &e.range.hi) || e.range.empty()) {
      return corrupt("bad partition range");
    }
    for (const PartitionManifestEntry& prev : m.partitions) {
      if (prev.name == e.name) return corrupt("duplicate partition name");
      if (prev.range.Overlaps(e.range)) {
        return corrupt("overlapping partition ranges");
      }
    }
    m.partitions.push_back(std::move(e));
  }
  const std::string body = data.substr(0, pos);
  if (!TakeLine(data, &pos, "crc", &value)) return corrupt("missing crc line");
  char* end = nullptr;
  uint32_t crc = static_cast<uint32_t>(std::strtoul(value.c_str(), &end, 10));
  if (*end != '\0' || StoredCrc32c(body) != crc) {
    return corrupt("checksum mismatch");
  }
  if (pos != data.size()) return corrupt("trailing bytes");
  return m;
}

}  // namespace rankcube
