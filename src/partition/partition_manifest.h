// The partition manifest is the single source of truth for which partitions
// constitute a partitioned database: an ordered list of (name, key range)
// entries plus the selection dimension the ranges cover. Like the storage
// manifest it is a tiny CRC'd text file replaced atomically
// (WriteFileAtomic), which is what makes DropPartition an O(1) commit: the
// drop is durable the instant the rename lands, and the partition's files
// become garbage to collect at leisure.
//
// Format (trailing crc line covers everything before it):
//   rankcube-partitions v1
//   dim=0
//   partition=hot 0 4
//   partition=warm 4 12
//   crc=3735928559
//
// Entry order is creation order and is preserved across store/load cycles —
// the scatter-gather merge uses it as the deterministic tie-break between
// equal scores from different partitions.
#ifndef RANKCUBE_PARTITION_PARTITION_MANIFEST_H_
#define RANKCUBE_PARTITION_PARTITION_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/fs.h"

namespace rankcube {

/// Half-open key range [lo, hi) over the partitioning selection dimension.
/// Time-window partitions are ranges over a time-like dimension (one window
/// id per value, or a span of them).
struct PartitionRange {
  int32_t lo = 0;
  int32_t hi = 0;  ///< exclusive

  bool Contains(int32_t v) const { return lo <= v && v < hi; }
  bool Overlaps(const PartitionRange& o) const {
    return lo < o.hi && o.lo < hi;
  }
  bool empty() const { return hi <= lo; }
  std::string ToString() const {
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + ")";
  }
  bool operator==(const PartitionRange&) const = default;
};

struct PartitionManifestEntry {
  std::string name;  ///< also the partition's subdirectory name
  PartitionRange range;
  bool operator==(const PartitionManifestEntry&) const = default;
};

struct PartitionManifest {
  int partition_dim = 0;  ///< selection dimension the ranges cover
  std::vector<PartitionManifestEntry> partitions;  ///< creation order
};

/// Name of the manifest file inside the root data dir.
inline const char* PartitionManifestFileName() { return "PARTITIONS"; }

/// Partition names double as directory names and manifest tokens, so they
/// are restricted to [A-Za-z0-9_.-], non-empty, not starting with '.'.
bool IsValidPartitionName(const std::string& name);

/// Atomically replaces `dir`/PARTITIONS.
Status StorePartitionManifest(Fs* fs, const std::string& dir,
                              const PartitionManifest& manifest);

/// Loads + validates `dir`/PARTITIONS. kNotFound when missing (fresh dir);
/// kCorruption when present but damaged — a hard stop, same contract as
/// the storage manifest: guessing could resurrect dropped partitions.
Result<PartitionManifest> LoadPartitionManifest(Fs* fs,
                                                const std::string& dir);

}  // namespace rankcube

#endif  // RANKCUBE_PARTITION_PARTITION_MANIFEST_H_
