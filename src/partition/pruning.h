// Partition pruning + the scatter plan for cross-partition top-k.
//
// Two pruning mechanisms, applied in order:
//
//  1. Predicate pruning (static, before any I/O): an equality predicate on
//     the partitioning dimension `A_p = v` eliminates every partition whose
//     key range does not contain v — predicate ∩ partition bounds, the
//     cube-algebra containment test. Queries without a predicate on A_p
//     touch every partition and rely on (2).
//
//  2. Score-bound pruning (dynamic, during the gather): each partition
//     maintains a conservative bounding Box over its live rows' ranking
//     coordinates, so f->LowerBound(box) is a best-possible score for any
//     tuple it could contribute (smaller = better throughout the repo).
//     Candidates execute in ascending bound order; once the merged global
//     top-k holds k tuples with S_k (the k-th best score) strictly below
//     the next candidate's bound, every remaining partition is provably
//     unable to improve the answer — the paper's S_k threshold lifted from
//     tuples within a cube to whole partitions. The inequality is strict:
//     a partition whose bound EQUALS S_k may still hold an equal-score
//     tuple that wins the deterministic (score, partition, tid) tie-break,
//     so it must run.
//
// BuildScatterPlan computes (1) and the bound ordering for (2); the
// executor in partitioned_db.cc applies the threshold test between waves.
#ifndef RANKCUBE_PARTITION_PRUNING_H_
#define RANKCUBE_PARTITION_PRUNING_H_

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "func/query.h"
#include "partition/partition_manifest.h"

namespace rankcube {

/// Read-only snapshot of one partition, as the pruner sees it. `rank_box`
/// is meaningful only when `has_rows` (EmptyFor boxes have inverted
/// intervals and must not reach LowerBound).
struct PartitionView {
  PartitionRange range;
  const Box* rank_box = nullptr;
  bool has_rows = false;
};

/// One partition that survived static pruning, with its best-possible
/// score. `index` refers into the PartitionView vector handed to
/// BuildScatterPlan (== the partition snapshot order).
struct PartitionCandidate {
  size_t index = 0;
  double bound = 0.0;  ///< f->LowerBound(rank_box): no tuple scores below
};

struct ScatterPlan {
  /// Survivors in ascending (bound, index) order — the gather order.
  std::vector<PartitionCandidate> candidates;
  size_t pruned_by_predicate = 0;  ///< key range excluded by a predicate
  size_t skipped_empty = 0;        ///< no live rows ever; nothing to ask
};

/// Static half of the scatter: predicate pruning + bound ordering.
/// `partition_dim` is the selection dimension the ranges cover; the query
/// is assumed already validated against the schema.
ScatterPlan BuildScatterPlan(const TopKQuery& query, int partition_dim,
                             const std::vector<PartitionView>& parts);

}  // namespace rankcube

#endif  // RANKCUBE_PARTITION_PRUNING_H_
