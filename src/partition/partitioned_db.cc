#include "partition/partitioned_db.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/stopwatch.h"

namespace rankcube {

namespace {

/// The merge's internal tuple: carries the creation sequence so the sort is
/// the deterministic (score, partition creation order, tid) total order.
struct MergeTuple {
  double score = 0.0;
  uint64_t seq = 0;
  Tid tid = 0;
  size_t part_index = 0;  ///< into the partitions_ snapshot

  bool operator<(const MergeTuple& o) const {
    if (score != o.score) return score < o.score;
    if (seq != o.seq) return seq < o.seq;
    return tid < o.tid;
  }
};

/// Re-raises `s` with a "partition '<name>': " prefix, preserving the code
/// (the Status ctor taking a code is private to the factories).
Status PartitionError(const std::string& name, const Status& s) {
  const std::string msg = "partition '" + name + "': " + s.message();
  switch (s.code()) {
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case Status::Code::kNotFound:
      return Status::NotFound(msg);
    case Status::Code::kNotSupported:
      return Status::NotSupported(msg);
    case Status::Code::kCorruption:
      return Status::Corruption(msg);
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(msg);
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(msg);
    default:
      return Status::Internal(msg);
  }
}

}  // namespace

std::string PartitionedDbStats::ToString() const {
  std::string out;
  out += "partitions=" + std::to_string(partitions) + "\n";
  out += "rows=" + std::to_string(rows) + "\n";
  out += "live_rows=" + std::to_string(live_rows) + "\n";
  out += std::string("durable=") + (durable ? "1" : "0") + "\n";
  out += "scatter.queries_executed=" + std::to_string(queries_executed) + "\n";
  out += "scatter.query_failures=" + std::to_string(query_failures) + "\n";
  out +=
      "scatter.partitions_queried=" + std::to_string(partitions_queried) + "\n";
  out +=
      "scatter.partitions_pruned=" + std::to_string(partitions_pruned) + "\n";
  out += "cache_hits=" + std::to_string(cache_hits) + "\n";
  out += "cache_misses=" + std::to_string(cache_misses) + "\n";
  out += "cache_entries=" + std::to_string(cache_entries) + "\n";
  out += "cache_bytes=" + std::to_string(cache_bytes) + "\n";
  out += "cache_max_bytes=" + std::to_string(cache_max_bytes) + "\n";
  out += "cache_evictions=" + std::to_string(cache_evictions) + "\n";
  out += "cache_invalidations=" + std::to_string(cache_invalidations) + "\n";
  for (const auto& [name, stats] : per_partition) {
    const std::string prefix = "partition." + name + ".";
    auto range = ranges.find(name);
    if (range != ranges.end()) {
      out += prefix + "range=" + range->second.ToString() + "\n";
    }
    const std::string flat = stats.ToString();
    size_t start = 0;
    while (start < flat.size()) {
      size_t eol = flat.find('\n', start);
      if (eol == std::string::npos) eol = flat.size();
      if (eol > start) out += prefix + flat.substr(start, eol - start) + "\n";
      start = eol + 1;
    }
  }
  return out;
}

PartitionedDb::PartitionedDb(Options options)
    : options_(std::move(options)), cache_(options_.cache) {
  if (durable()) {
    fs_ = options_.fs != nullptr ? options_.fs : Fs::Posix();
  }
}

Result<std::unique_ptr<PartitionedDb>> PartitionedDb::Open(Options options) {
  if (options.schema.num_sel_dims() == 0 ||
      options.schema.num_rank_dims <= 0) {
    return Status::InvalidArgument(
        "partitioned db needs at least one selection and one rank dimension");
  }
  if (options.partition_dim < 0 ||
      options.partition_dim >= options.schema.num_sel_dims()) {
    return Status::InvalidArgument(
        "partition_dim A" + std::to_string(options.partition_dim) +
        " out of range for the schema");
  }
  std::unique_ptr<PartitionedDb> db(new PartitionedDb(std::move(options)));
  if (!db->durable()) return db;

  Fs* fs = db->fs_;
  const std::string& dir = db->options_.data_dir;
  RC_RETURN_IF_ERROR(fs->CreateDir(dir));
  auto manifest = LoadPartitionManifest(fs, dir);
  if (!manifest.ok()) {
    if (manifest.status().code() != Status::Code::kNotFound) {
      return manifest.status();
    }
    // Fresh root: commit an empty manifest so the directory is
    // self-describing from the first instant.
    PartitionManifest fresh;
    fresh.partition_dim = db->options_.partition_dim;
    RC_RETURN_IF_ERROR(StorePartitionManifest(fs, dir, fresh));
    return db;
  }
  const PartitionManifest& m = manifest.value();
  if (m.partition_dim != db->options_.partition_dim) {
    return Status::InvalidArgument(
        "data_dir is partitioned on A" + std::to_string(m.partition_dim) +
        " but options ask for A" + std::to_string(db->options_.partition_dim));
  }
  for (const PartitionManifestEntry& e : m.partitions) {
    RankCubeDb::Options popts = db->options_.db;
    popts.durability = DurabilityOptions{};
    popts.durability.data_dir = JoinPath(dir, e.name);
    popts.durability.fsync = db->options_.fsync;
    popts.durability.wal_batch_bytes = db->options_.wal_batch_bytes;
    popts.durability.page_size = popts.store.page_size;
    popts.durability.fs = fs;
    auto opened =
        RankCubeDb::Open(Table(db->options_.schema), std::move(popts));
    if (!opened.ok()) return PartitionError(e.name, opened.status());
    auto part = std::make_unique<Part>();
    part->name = e.name;
    part->range = e.range;
    part->seq = db->next_seq_++;
    part->db = std::move(opened).value();
    RecomputeRankBox(part.get());
    db->partitions_.push_back(std::move(part));
  }
  // GC orphan partition directories: present on disk, absent from the
  // manifest (a crash between directory seeding and the manifest commit,
  // or between a drop's commit and its file GC). ListDir on a plain file
  // fails, which conveniently skips the manifest itself.
  auto names = fs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      bool listed = false;
      for (const PartitionManifestEntry& e : m.partitions) {
        if (e.name == name) {
          listed = true;
          break;
        }
      }
      if (listed) continue;
      auto sub = fs->ListDir(JoinPath(dir, name));
      if (!sub.ok()) continue;  // a file (e.g. PARTITIONS), not a directory
      for (const std::string& f : sub.value()) {
        (void)fs->RemoveFile(JoinPath(JoinPath(dir, name), f));
      }
    }
  }
  return db;
}

const PartitionedDb::Part* PartitionedDb::FindLocked(
    const std::string& name) const {
  for (const auto& part : partitions_) {
    if (part->name == name) return part.get();
  }
  return nullptr;
}

void PartitionedDb::RecomputeRankBox(Part* part) {
  const Table& table = part->db->table();
  const int r = table.num_rank_dims();
  part->rank_box = Box::EmptyFor(static_cast<size_t>(r));
  part->has_rows = false;
  std::vector<double> point(static_cast<size_t>(r));
  for (Tid t = 0; t < table.num_rows(); ++t) {
    if (!table.is_live(t)) continue;
    table.CopyRankRow(t, point.data());
    part->rank_box.ExpandToInclude(point);
    part->has_rows = true;
  }
}

Status PartitionedDb::CommitManifestLocked() {
  PartitionManifest m;
  m.partition_dim = options_.partition_dim;
  for (const auto& part : partitions_) {
    m.partitions.push_back({part->name, part->range});
  }
  return StorePartitionManifest(fs_, options_.data_dir, m);
}

void PartitionedDb::GcPartitionDir(const std::string& name) {
  const std::string sub = JoinPath(options_.data_dir, name);
  auto files = fs_->ListDir(sub);
  if (!files.ok()) return;
  for (const std::string& f : files.value()) {
    (void)fs_->RemoveFile(JoinPath(sub, f));
  }
}

Status PartitionedDb::CreatePartition(const std::string& name,
                                      PartitionRange range) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CreatePartitionLocked(name, range, Table(options_.schema));
}

Status PartitionedDb::CreatePartition(const std::string& name,
                                      PartitionRange range, Table seed) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CreatePartitionLocked(name, range, std::move(seed));
}

Status PartitionedDb::CreatePartitionLocked(const std::string& name,
                                            PartitionRange range, Table seed) {
  if (!IsValidPartitionName(name)) {
    return Status::InvalidArgument("bad partition name '" + name + "'");
  }
  const int dim = options_.partition_dim;
  const int32_t domain = options_.schema.sel_cardinality[dim];
  if (range.empty() || range.lo < 0 || range.hi > domain) {
    return Status::InvalidArgument(
        "partition range " + range.ToString() + " invalid for A" +
        std::to_string(dim) + " domain [0," + std::to_string(domain) + ")");
  }
  for (const auto& part : partitions_) {
    if (part->name == name) {
      return Status::InvalidArgument("partition '" + name +
                                     "' already exists");
    }
    if (part->range.Overlaps(range)) {
      return Status::InvalidArgument(
          "partition range " + range.ToString() + " overlaps '" + part->name +
          "' " + part->range.ToString());
    }
  }
  if (seed.schema().sel_cardinality != options_.schema.sel_cardinality ||
      seed.schema().num_rank_dims != options_.schema.num_rank_dims) {
    return Status::InvalidArgument("seed table schema differs from the db's");
  }
  for (Tid t = 0; t < seed.num_rows(); ++t) {
    if (!range.Contains(seed.sel(t, dim))) {
      return Status::InvalidArgument(
          "seed row " + std::to_string(t) + " has A" + std::to_string(dim) +
          "=" + std::to_string(seed.sel(t, dim)) + " outside " +
          range.ToString());
    }
  }

  auto part = std::make_unique<Part>();
  part->name = name;
  part->range = range;
  RankCubeDb::Options popts = options_.db;
  popts.durability = DurabilityOptions{};
  if (durable()) {
    const std::string sub = JoinPath(options_.data_dir, name);
    RC_RETURN_IF_ERROR(fs_->CreateDir(sub));
    // Wipe whatever a crashed earlier create left here: recovering stale
    // rows into a partition the manifest never acknowledged would
    // resurrect data the caller believes gone.
    GcPartitionDir(name);
    popts.durability.data_dir = sub;
    popts.durability.fsync = options_.fsync;
    popts.durability.wal_batch_bytes = options_.wal_batch_bytes;
    popts.durability.page_size = popts.store.page_size;
    popts.durability.fs = fs_;
    auto opened = RankCubeDb::Open(std::move(seed), std::move(popts));
    if (!opened.ok()) return opened.status();
    part->db = std::move(opened).value();
  } else {
    part->db = std::make_unique<RankCubeDb>(std::move(seed), popts);
  }
  part->seq = next_seq_++;
  RecomputeRankBox(part.get());
  partitions_.push_back(std::move(part));
  if (durable()) {
    Status s = CommitManifestLocked();
    if (!s.ok()) {
      // Not committed: roll back the in-memory state; the seeded directory
      // is an orphan the next Open (or re-create) collects.
      partitions_.pop_back();
      return s;
    }
  }
  return Status::OK();
}

Status PartitionedDb::DropPartition(const std::string& name) {
  std::unique_ptr<Part> removed;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    size_t index = partitions_.size();
    for (size_t i = 0; i < partitions_.size(); ++i) {
      if (partitions_[i]->name == name) {
        index = i;
        break;
      }
    }
    if (index == partitions_.size()) {
      return Status::NotFound("no partition '" + name + "'");
    }
    removed = std::move(partitions_[index]);
    partitions_.erase(partitions_.begin() + static_cast<long>(index));
    if (durable()) {
      Status s = CommitManifestLocked();
      if (!s.ok()) {
        // Commit failed: the drop did not happen.
        partitions_.insert(partitions_.begin() + static_cast<long>(index),
                           std::move(removed));
        return s;
      }
    }
  }
  // Past the commit point: queries admitted from here on cannot see the
  // partition. Close it (releases the checkpoint file handle), then GC its
  // files — deferred, O(files), no page reads.
  removed->db.reset();
  if (durable()) GcPartitionDir(name);
  return Status::OK();
}

std::vector<PartitionInfo> PartitionedDb::ListPartitions() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<PartitionInfo> out;
  out.reserve(partitions_.size());
  for (const auto& part : partitions_) {
    PartitionInfo info;
    info.name = part->name;
    info.range = part->range;
    info.rows = part->db->table().num_rows();
    info.live_rows = part->db->table().num_live();
    info.epoch = part->db->table().epoch();
    info.read_only = part->db->read_only();
    out.push_back(std::move(info));
  }
  return out;
}

Result<PartitionedRowRef> PartitionedDb::Insert(
    const std::vector<int32_t>& sel, const std::vector<double>& rank) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int dim = options_.partition_dim;
  if (sel.size() != static_cast<size_t>(options_.schema.num_sel_dims())) {
    return Status::InvalidArgument(
        "row has " + std::to_string(sel.size()) + " selection values, want " +
        std::to_string(options_.schema.num_sel_dims()));
  }
  Part* target = nullptr;
  for (const auto& part : partitions_) {
    if (part->range.Contains(sel[dim])) {
      target = part.get();
      break;
    }
  }
  if (target == nullptr) {
    return Status::NotFound("no partition covers A" + std::to_string(dim) +
                            "=" + std::to_string(sel[dim]));
  }
  auto tid = target->db->Insert(sel, rank);
  if (!tid.ok()) return tid.status();
  target->rank_box.ExpandToInclude(rank);
  target->has_rows = true;
  return PartitionedRowRef{target->name, tid.value()};
}

Status PartitionedDb::Delete(const std::string& partition, Tid tid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const Part* part = FindLocked(partition);
  if (part == nullptr) return Status::NotFound("no partition '" + partition + "'");
  // The rank box stays as-is: it is conservative, and Compact() retightens.
  return part->db->Delete(tid);
}

Result<CompactionReport> PartitionedDb::Compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CompactionReport total;
  for (const auto& part : partitions_) {
    if (part->db->read_only()) continue;
    auto report = part->db->Compact();
    if (!report.ok()) return PartitionError(part->name, report.status());
    const CompactionReport& r = report.value();
    total.epoch = std::max(total.epoch, r.epoch);
    total.absorbed_inserts += r.absorbed_inserts;
    total.absorbed_deletes += r.absorbed_deletes;
    total.maintained += r.maintained;
    total.rebuilt += r.rebuilt;
    total.pages += r.pages;
    RecomputeRankBox(part.get());
  }
  return total;
}

Status PartitionedDb::Checkpoint() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& part : partitions_) {
    if (!part->db->durable() || part->db->read_only()) continue;
    Status s = part->db->Checkpoint();
    if (!s.ok()) return PartitionError(part->name, s);
  }
  return Status::OK();
}

std::string PartitionedDb::EpochTagLocked(const TopKQuery& query) const {
  bool pinned = false;
  int32_t pin_value = 0;
  for (const Predicate& p : query.predicates) {
    if (p.dim == options_.partition_dim) {
      pinned = true;
      pin_value = p.value;
      break;
    }
  }
  std::string tag;
  for (const auto& part : partitions_) {
    // Statically excluded partitions (the same test BuildScatterPlan's
    // predicate pruning applies) can never contribute to the answer, so
    // their epochs stay out of the tag. Bound-pruned and empty partitions
    // stay IN: a write there can change the answer.
    if (pinned && !part->range.Contains(pin_value)) continue;
    tag += std::to_string(part->seq) + ":" +
           std::to_string(part->db->table().epoch()) + ";";
  }
  return tag;
}

Result<PartitionedTopK> PartitionedDb::Query(const TopKQuery& query,
                                             const QueryOptions& opts) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Status valid = ValidateQuery(query, options_.schema);
  if (!valid.ok()) {
    std::lock_guard<std::mutex> t(traffic_mu_);
    ++query_failures_;
    return valid;
  }
  // Scatter-level cache: exact hits only (no overfetch, no sibling reuse —
  // the per-partition exclusion bounds don't compose across the merge).
  CanonicalQuery cache_key;
  std::string epoch_tag;
  bool cacheable = false;
  if (cache_.enabled() && opts.force_engine.empty()) {
    cache_key = CanonicalizeQuery(query);
    if (cache_key.cacheable) {
      cacheable = true;
      epoch_tag = EpochTagLocked(query);
      if (std::optional<CachedResult> hit =
              cache_.Lookup(cache_key, epoch_tag)) {
        PartitionedTopK out;
        out.scatter.partitions = partitions_.size();
        out.tuples.reserve(hit->tuples.size());
        for (size_t i = 0; i < hit->tuples.size(); ++i) {
          out.tuples.push_back(
              {hit->partitions[i], hit->tuples[i].tid, hit->tuples[i].score});
        }
        std::lock_guard<std::mutex> t(traffic_mu_);
        ++queries_executed_;
        return out;
      }
    }
  }
  Stopwatch watch;
  std::vector<PartitionView> views;
  views.reserve(partitions_.size());
  for (const auto& part : partitions_) {
    views.push_back({part->range, &part->rank_box, part->has_rows});
  }
  ScatterPlan plan = BuildScatterPlan(query, options_.partition_dim, views);

  PartitionedTopK out;
  out.scatter.partitions = partitions_.size();
  out.scatter.pruned_by_predicate = plan.pruned_by_predicate;
  out.scatter.skipped_empty = plan.skipped_empty;

  const size_t k = static_cast<size_t>(query.k);
  const size_t wave_max =
      static_cast<size_t>(std::max(1, options_.scatter_threads));
  std::vector<MergeTuple> merged;
  size_t cursor = 0;
  Status failure = Status::OK();
  while (cursor < plan.candidates.size() && failure.ok()) {
    const double s_k = merged.size() >= k ? merged[k - 1].score
                                          : kInfScore;
    // Form the next wave: candidates are bound-ascending, so the first one
    // the full heap's S_k strictly beats ends both the wave and the query —
    // every later candidate is at least as hopeless.
    size_t end = cursor;
    while (end < plan.candidates.size() && end - cursor < wave_max &&
           !(merged.size() >= k && plan.candidates[end].bound > s_k)) {
      ++end;
    }
    if (end == cursor) break;

    std::vector<Result<TopKResult>> results;
    results.reserve(end - cursor);
    for (size_t i = cursor; i < end; ++i) {
      results.emplace_back(Status::Internal("not executed"));
    }
    auto run_one = [&](size_t slot) {
      const Part& part = *partitions_[plan.candidates[cursor + slot].index];
      results[slot] = part.db->Query(query, opts);
    };
    if (end - cursor == 1) {
      run_one(0);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(end - cursor);
      for (size_t slot = 0; slot < end - cursor; ++slot) {
        workers.emplace_back(run_one, slot);
      }
      for (auto& w : workers) w.join();
    }
    for (size_t slot = 0; slot < end - cursor; ++slot) {
      const size_t part_index = plan.candidates[cursor + slot].index;
      const Part& part = *partitions_[part_index];
      if (!results[slot].ok()) {
        if (failure.ok()) {
          failure = PartitionError(part.name, results[slot].status());
        }
        continue;
      }
      const TopKResult& r = results[slot].value();
      // Sum the per-partition counters; wall time is measured around the
      // whole scatter instead (waves overlap).
      double wall = out.stats.time_ms;
      out.stats += r.stats;
      out.stats.time_ms = wall;
      for (const ScoredTuple& t : r.tuples) {
        merged.push_back({t.score, part.seq, t.tid, part_index});
      }
    }
    std::sort(merged.begin(), merged.end());
    if (merged.size() > k) merged.resize(k);
    out.scatter.queried += end - cursor;
    cursor = end;
  }
  out.scatter.pruned_by_bound = plan.candidates.size() - cursor;
  out.stats.time_ms = watch.ElapsedMs();

  {
    std::lock_guard<std::mutex> t(traffic_mu_);
    ++queries_executed_;
    if (!failure.ok()) ++query_failures_;
    partitions_queried_ += out.scatter.queried;
    partitions_pruned_ += out.scatter.pruned_by_predicate +
                          out.scatter.pruned_by_bound;
  }
  if (!failure.ok()) return failure;

  out.tuples.reserve(merged.size());
  for (const MergeTuple& t : merged) {
    out.tuples.push_back(
        {partitions_[t.part_index]->name, t.tid, t.score});
  }
  if (cacheable) {
    cache_.RecordMiss();
    CachedResult entry;
    entry.tuples.reserve(out.tuples.size());
    entry.partitions.reserve(out.tuples.size());
    for (const PartitionedTuple& t : out.tuples) {
      entry.tuples.push_back({t.tid, t.score});
      entry.partitions.push_back(t.partition);
    }
    cache_.Insert(cache_key, epoch_tag, std::move(entry));
  }
  return out;
}

Result<std::string> PartitionedDb::ExplainScatter(
    const TopKQuery& query, const QueryOptions& opts) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  RC_RETURN_IF_ERROR(ValidateQuery(query, options_.schema));
  std::vector<PartitionView> views;
  views.reserve(partitions_.size());
  for (const auto& part : partitions_) {
    views.push_back({part->range, &part->rank_box, part->has_rows});
  }
  ScatterPlan plan = BuildScatterPlan(query, options_.partition_dim, views);

  // Candidate order index per partition (SIZE_MAX = not a candidate).
  std::vector<size_t> order(partitions_.size(), SIZE_MAX);
  std::vector<double> bound(partitions_.size(), 0.0);
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    order[plan.candidates[i].index] = i;
    bound[plan.candidates[i].index] = plan.candidates[i].bound;
  }

  std::string out = "scatter partitions=" + std::to_string(partitions_.size()) +
                    " candidates=" + std::to_string(plan.candidates.size()) +
                    " pruned_by_predicate=" +
                    std::to_string(plan.pruned_by_predicate) +
                    " skipped_empty=" + std::to_string(plan.skipped_empty) +
                    "\n";
  for (size_t i = 0; i < partitions_.size(); ++i) {
    const Part& part = *partitions_[i];
    out += "partition=" + part.name + " range=" + part.range.ToString();
    if (order[i] == SIZE_MAX) {
      out += part.has_rows ? " pruned=predicate" : " skipped=empty";
      out += "\n";
      continue;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), " order=%zu bound=%.6g", order[i],
                  bound[i]);
    out += buf;
    auto explain = part.db->Explain(query, opts);
    if (explain.ok()) {
      std::snprintf(buf, sizeof(buf), " engine=%s est_pages=%.1f",
                    explain.value().chosen_engine.c_str(),
                    explain.value().estimated_pages);
      out += buf;
    } else {
      out += " engine=<" + std::string(explain.status().message()) + ">";
    }
    out += "\n";
  }
  return out;
}

PartitionedDbStats PartitionedDb::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PartitionedDbStats out;
  out.partitions = partitions_.size();
  out.durable = durable();
  for (const auto& part : partitions_) {
    DbStats stats = part->db->Stats();
    out.rows += stats.rows;
    out.live_rows += stats.live_rows;
    out.ranges[part->name] = part->range;
    out.per_partition.emplace_back(part->name, std::move(stats));
  }
  ResultCacheStats cs = cache_.Stats();
  out.cache_hits = cs.hits;
  out.cache_misses = cs.misses;
  out.cache_entries = cs.entries;
  out.cache_bytes = cs.bytes;
  out.cache_max_bytes = cs.max_bytes;
  out.cache_evictions = cs.evictions;
  out.cache_invalidations = cs.invalidations;
  std::lock_guard<std::mutex> t(traffic_mu_);
  out.queries_executed = queries_executed_;
  out.query_failures = query_failures_;
  out.partitions_queried = partitions_queried_;
  out.partitions_pruned = partitions_pruned_;
  return out;
}

Result<DbStats> PartitionedDb::PartitionStats(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Part* part = FindLocked(name);
  if (part == nullptr) return Status::NotFound("no partition '" + name + "'");
  return part->db->Stats();
}

Result<const RankCubeDb*> PartitionedDb::Partition(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Part* part = FindLocked(name);
  if (part == nullptr) return Status::NotFound("no partition '" + name + "'");
  return const_cast<const RankCubeDb*>(part->db.get());
}

}  // namespace rankcube
