// PartitionedDb: a ranking-cube database whose unit of management is the
// named partition — a key range (or time window) over one selection
// dimension. Each partition is a full, independent RankCubeDb: its own
// Table epoch and DeltaStore, its own lazily built engines through the
// shared registry, and — in durable mode — its own subdirectory with its
// own WAL and checkpoint generation. Nothing engine-specific lives here:
// partitioning composes the existing stack.
//
//   PartitionedDb::Options opts;
//   opts.schema = schema;          // shared by every partition
//   opts.partition_dim = 0;        // e.g. the time-window dimension
//   auto db = PartitionedDb::Open(std::move(opts)).value();
//   db->CreatePartition("w0", {0, 4});
//   db->CreatePartition("w1", {4, 8});
//   ...
//   auto top = db->Query(query);   // scatter-gather with pruning
//   db->DropPartition("w0");       // O(1) retention: manifest commit + GC
//
// Query path: predicate ∩ partition bounds drops whole partitions before
// any planning (pruning.h), survivors execute their own planner-routed
// top-k in parallel waves ordered by best-possible score, and the merge
// early-terminates once the global S_k strictly beats every remaining
// partition's bound. Results are tuple-identical to running the same query
// over one unpartitioned table holding the union of the rows (the
// partition_test oracle), with the deterministic tie-break
// (score, partition creation order, tid).
//
// Retention: DropPartition removes the entry from the root PARTITIONS
// manifest — one atomic file replace, no I/O proportional to partition
// size — then garbage-collects the partition's files after the commit
// point. A crash between the two leaves orphan files that the next Open
// (or a re-create under the same name) cleans up; the manifest alone
// decides what exists.
//
// Concurrency: one shared_mutex. Queries, Stats and Checkpoint hold it
// shared; Insert/Delete (which also maintain the per-partition rank
// bounding boxes), CreatePartition, DropPartition and Compact hold it
// exclusively. A drop therefore drains in-flight queries first, so a query
// sees every partition it started with in full or not at all — never half
// of one.
#ifndef RANKCUBE_PARTITION_PARTITIONED_DB_H_
#define RANKCUBE_PARTITION_PARTITIONED_DB_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "partition/partition_manifest.h"
#include "partition/pruning.h"
#include "planner/rank_cube_db.h"

namespace rankcube {

/// A row's address in a partitioned db: tids are dense PER PARTITION (a
/// global id could not survive per-partition WAL recovery), so the pair is
/// the stable identity.
struct PartitionedRowRef {
  std::string partition;
  Tid tid = 0;
};

/// One ranked answer with its home partition.
struct PartitionedTuple {
  std::string partition;
  Tid tid = 0;
  double score = 0.0;
  bool operator==(const PartitionedTuple&) const = default;
};

/// What the scatter did for one query.
struct ScatterStats {
  size_t partitions = 0;            ///< live partitions at plan time
  size_t pruned_by_predicate = 0;   ///< key range excluded the partition
  size_t skipped_empty = 0;
  size_t pruned_by_bound = 0;  ///< S_k beat the partition's best possible
  size_t queried = 0;          ///< partitions that actually executed
};

struct PartitionedTopK {
  std::vector<PartitionedTuple> tuples;  ///< ascending (score, seq, tid)
  /// Aggregated over the queried partitions (pages et al. sum); time_ms is
  /// the scatter's wall time, not the sum of per-partition times.
  ExecStats stats;
  ScatterStats scatter;
};

/// Point-in-time snapshot of one partition (ListPartitions).
struct PartitionInfo {
  std::string name;
  PartitionRange range;
  uint64_t rows = 0;
  uint64_t live_rows = 0;
  uint64_t epoch = 0;
  bool read_only = false;
};

/// Stats() payload: aggregate + per-partition DbStats (each carrying the
/// partition's own durability counters — WAL records since its last
/// checkpoint, checkpoint generation, backing reads).
struct PartitionedDbStats {
  size_t partitions = 0;
  uint64_t rows = 0;
  uint64_t live_rows = 0;
  bool durable = false;
  // -- scatter traffic since construction --
  uint64_t queries_executed = 0;
  uint64_t query_failures = 0;
  uint64_t partitions_queried = 0;
  uint64_t partitions_pruned = 0;  ///< predicate + bound, cumulative
  // -- scatter result cache (all zero when Options::cache.max_bytes == 0) --
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_max_bytes = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  std::vector<std::pair<std::string, DbStats>> per_partition;  ///< seq order
  std::map<std::string, PartitionRange> ranges;

  /// "key=value" lines; per-partition stats flattened under
  /// "partition.<name>." — the partitioned STATS wire payload.
  std::string ToString() const;
};

class PartitionedDb {
 public:
  struct Options {
    /// Row schema shared by every partition.
    TableSchema schema;
    /// Selection dimension whose values route rows to partitions.
    int partition_dim = 0;
    /// Per-partition database template (store geometry, engine set,
    /// planner knobs). `db.durability` is ignored — durable layout is
    /// governed by `data_dir` below.
    RankCubeDb::Options db;
    /// Root directory for durable mode; empty = ephemeral. Each partition
    /// lives in `data_dir`/<name>/ with its own manifest + WAL +
    /// checkpoints; `data_dir`/PARTITIONS is the root manifest.
    std::string data_dir;
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    size_t wal_batch_bytes = 1 << 16;
    Fs* fs = nullptr;  ///< nullptr = Fs::Posix() (FaultFs injectable)
    /// Parallelism of the gather: candidates run in waves of this many
    /// threads (1 = sequential, fully utilizing the bound-order early
    /// termination; results are identical either way).
    int scatter_threads = 4;
    /// Scatter-level result cache (exact hits only; disabled by default).
    /// The epoch tag folds the (seq, epoch) of every partition the query's
    /// predicates could touch, so a write to one partition invalidates
    /// only the entries whose answer could have read it. Inner
    /// per-partition caches stay governed by `db.cache`.
    ResultCacheOptions cache;
  };

  /// Creates an empty partitioned db (ephemeral), or opens `data_dir`:
  /// loads the PARTITIONS manifest, recovers every listed partition
  /// through RankCubeDb::Open (per-partition WAL replay), GCs orphan
  /// partition directories a crashed create/drop left behind, and rebuilds
  /// the per-partition rank bounding boxes. A fresh durable dir commits an
  /// empty manifest. Fails on a corrupt root manifest or a
  /// partition_dim/schema mismatch with the recovered state.
  static Result<std::unique_ptr<PartitionedDb>> Open(Options options);

  PartitionedDb(const PartitionedDb&) = delete;
  PartitionedDb& operator=(const PartitionedDb&) = delete;

  const TableSchema& schema() const { return options_.schema; }
  int partition_dim() const { return options_.partition_dim; }
  bool durable() const { return !options_.data_dir.empty(); }

  // --- partition management ------------------------------------------------

  /// Creates an empty partition covering `range`. Fails (kInvalidArgument)
  /// on a bad name, an empty or out-of-domain range, or overlap with an
  /// existing partition; (kAlreadyExists) on a duplicate name. Durable
  /// mode: the partition directory is seeded (checkpoint + empty WAL)
  /// before the root manifest commit makes it visible — a crash in between
  /// leaves only an orphan directory.
  Status CreatePartition(const std::string& name, PartitionRange range);

  /// Same, seeded with `seed` as the partition's initial bulk-loaded state
  /// (every row's partition-dim value must lie inside `range`).
  Status CreatePartition(const std::string& name, PartitionRange range,
                         Table seed);

  /// Drops the partition: O(1) — removes the manifest entry (atomic
  /// replace, the commit point), then deletes the partition's files. No
  /// page I/O proportional to partition size. Blocks until in-flight
  /// queries drain; queries started after see the partition gone entirely.
  Status DropPartition(const std::string& name);

  /// Live partitions in creation (merge tie-break) order.
  std::vector<PartitionInfo> ListPartitions() const;

  // --- write path ----------------------------------------------------------

  /// Routes the row to the partition whose range contains
  /// sel[partition_dim]; kNotFound when no partition covers it.
  Result<PartitionedRowRef> Insert(const std::vector<int32_t>& sel,
                                   const std::vector<double>& rank);

  Status Delete(const std::string& partition, Tid tid);

  /// Compacts every partition (absorb delta, refresh structures,
  /// checkpoint when durable) and recomputes its exact rank bounding box —
  /// the boxes only ever grow between compactions, so this also restores
  /// tight score bounds for pruning.
  Result<CompactionReport> Compact();  ///< aggregated over partitions

  /// Durable-shutdown barrier: Checkpoint() on every partition.
  Status Checkpoint();

  // --- read path -----------------------------------------------------------

  /// Scatter-gather top-k over the live partitions (see file comment).
  /// QueryOptions apply per partition (force_engine, page_budget — each
  /// queried partition gets the full budget — deadline).
  Result<PartitionedTopK> Query(const TopKQuery& query,
                                const QueryOptions& opts = QueryOptions());

  /// The scatter plan without executing: per partition, the pruning
  /// decision, the score bound, and the engine its planner would choose.
  Result<std::string> ExplainScatter(
      const TopKQuery& query, const QueryOptions& opts = QueryOptions()) const;

  PartitionedDbStats Stats() const;
  Result<DbStats> PartitionStats(const std::string& name) const;

  // --- scatter result cache ------------------------------------------------

  bool cache_enabled() const { return cache_.enabled(); }
  ResultCacheStats CacheStats() const { return cache_.Stats(); }
  void ClearCache() { cache_.Clear(); }
  void ResizeCache(size_t max_bytes) { cache_.Resize(max_bytes); }

  /// The partition's database, for tests and read-only inspection; valid
  /// until the partition is dropped.
  Result<const RankCubeDb*> Partition(const std::string& name) const;

 private:
  struct Part {
    std::string name;
    PartitionRange range;
    uint64_t seq = 0;  ///< creation order: the merge tie-break
    std::unique_ptr<RankCubeDb> db;
    /// Conservative bounding box over live rows' rank coordinates; grows
    /// on Insert, recomputed exactly by Compact and at Open. Meaningful
    /// only when has_rows.
    Box rank_box;
    bool has_rows = false;
  };

  explicit PartitionedDb(Options options);

  /// Must hold mu_ exclusively. Shared tail of the CreatePartition
  /// overloads.
  Status CreatePartitionLocked(const std::string& name, PartitionRange range,
                               Table seed);
  /// Rewrites the root PARTITIONS manifest from partitions_ (durable mode
  /// only). Must hold mu_ exclusively.
  Status CommitManifestLocked();
  /// Recomputes part->rank_box/has_rows from its table's live rows.
  static void RecomputeRankBox(Part* part);
  /// Best-effort removal of every file under `data_dir`/`name`.
  void GcPartitionDir(const std::string& name);

  const Part* FindLocked(const std::string& name) const;

  /// Must hold mu_ (shared suffices). The cache epoch tag for `query`:
  /// "seq:epoch;" of every partition whose range a predicate on the
  /// partition dimension does not statically exclude — membership changes
  /// (create/drop, seqs never reused) and relevant writes both change the
  /// tag, writes to excluded partitions do not.
  std::string EpochTagLocked(const TopKQuery& query) const;

  Options options_;
  /// Internally synchronized; populated under the shared read gate.
  ResultCache cache_;
  Fs* fs_ = nullptr;  ///< resolved (Posix when options_.fs is null)
  uint64_t next_seq_ = 0;

  /// Queries/Stats/Checkpoint shared; Insert/Delete/Compact/Create/Drop
  /// exclusive (see file comment).
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Part>> partitions_;  ///< creation order

  /// Cumulative scatter counters behind Stats(); guarded by traffic_mu_
  /// (queries hold mu_ only shared).
  mutable std::mutex traffic_mu_;
  uint64_t queries_executed_ = 0;
  uint64_t query_failures_ = 0;
  uint64_t partitions_queried_ = 0;
  uint64_t partitions_pruned_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_PARTITION_PARTITIONED_DB_H_
