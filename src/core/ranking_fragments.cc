#include "core/ranking_fragments.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "cube/fragments.h"

namespace rankcube {

RankingFragments::RankingFragments(const Table& table, IoSession& io,
                                   FragmentsOptions options)
    : table_(table),
      grid_(table, {.block_size = options.block_size, .min_bins = 1}),
      base_blocks_(table, grid_),
      block_size_(options.block_size),
      built_epoch_(table.epoch()) {
  Stopwatch watch;
  uint64_t pages_before = io.TotalPhysical();
  groups_ = options.groups.empty()
                ? GroupDimensions(table.num_sel_dims(), options.fragment_size)
                : options.groups;
  for (const auto& group : groups_) {
    for (auto& dims : AllSubsets(group)) {
      cuboid_dims_.push_back(dims);
      cuboids_.push_back(
          BuildGridCuboid(table, grid_, base_blocks_, std::move(dims)));
      ChargeCuboidBuild(table, io, cuboids_.back(), cuboids_.size() - 1);
      exact_cover_.emplace(cuboids_.back().dims, cuboids_.size() - 1);
    }
  }
  construction_pages_ = io.TotalPhysical() - pages_before;
  construction_ms_ = watch.ElapsedMs();
}

Status RankingFragments::ApplyDelta(const DeltaStore& delta, IoSession* io) {
  return ApplyGridDelta(table_, delta, grid_, &base_blocks_, &cuboids_,
                        &built_epoch_, io);
}

std::vector<int> RankingFragments::Covering(
    const std::vector<int>& query_dims) const {
  // Fast path: one materialized cuboid covers the query exactly.
  auto it = exact_cover_.find(query_dims);
  if (it != exact_cover_.end()) return {static_cast<int>(it->second)};
  return SelectCoveringCuboids(cuboid_dims_, query_dims);
}

int RankingFragments::CoveringCuboidCount(const TopKQuery& query) const {
  std::vector<int> qdims;
  for (const auto& p : query.predicates) qdims.push_back(p.dim);
  std::sort(qdims.begin(), qdims.end());
  if (qdims.empty()) return 0;
  return static_cast<int>(Covering(qdims).size());
}

Result<std::vector<ScoredTuple>> RankingFragments::TopK(
    const TopKQuery& query, IoSession* io, ExecStats* stats) const {
  if (!query.function) {
    return Status::InvalidArgument("query has no ranking function");
  }
  std::vector<int> qdims;
  for (const auto& p : query.predicates) qdims.push_back(p.dim);
  std::sort(qdims.begin(), qdims.end());

  if (qdims.empty()) {
    AllTidSource source(&base_blocks_);
    return GridNeighborhoodTopK(table_, grid_, base_blocks_, query, &source,
                                io, stats);
  }
  std::vector<int> cover = Covering(qdims);
  if (cover.empty()) {
    return Status::NotFound("query dimensions not covered by any fragment");
  }
  std::vector<std::unique_ptr<CuboidTidSource>> sources;
  for (int ci : cover) {
    std::vector<int32_t> values;
    ProjectPredicates(query.predicates, cuboids_[ci].dims, &values);
    sources.push_back(std::make_unique<CuboidTidSource>(&cuboids_[ci], &grid_,
                                                        std::move(values)));
  }
  if (sources.size() == 1) {
    return GridNeighborhoodTopK(table_, grid_, base_blocks_, query,
                                sources.front().get(), io, stats);
  }
  IntersectTidSource source(std::move(sources));
  return GridNeighborhoodTopK(table_, grid_, base_blocks_, query, &source,
                              io, stats);
}

size_t RankingFragments::SizeBytes() const {
  size_t bytes = base_blocks_.SizeBytes();
  for (const auto& c : cuboids_) bytes += c.SizeBytes();
  return bytes;
}

}  // namespace rankcube
