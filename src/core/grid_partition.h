// Equi-depth grid partition of the ranking dimensions into base blocks
// (§3.2.2) plus the base block table. The number of bins per dimension is
// b = (T/P)^(1/R); bin boundaries are data quantiles kept as the cube's meta
// information and used to compute per-block ranking lower bounds.
#ifndef RANKCUBE_CORE_GRID_PARTITION_H_
#define RANKCUBE_CORE_GRID_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {

using Bid = uint32_t;  ///< base block id

struct GridOptions {
  int block_size = 300;  ///< P: expected tuples per base block (§3.5.1)
  int min_bins = 1;
};

class EquiDepthGrid {
 public:
  explicit EquiDepthGrid(const Table& table, GridOptions options = GridOptions());

  int num_dims() const { return dims_; }
  int bins_per_dim() const { return bins_; }
  uint32_t num_blocks() const;

  /// Bin of `value` along `dim` (equi-depth boundaries; last bin closed).
  int BinOf(int dim, double value) const;

  /// Block containing `point` (R-dimensional).
  Bid BidOfPoint(const double* point) const;

  /// Bin coordinates <-> bid (row-major, matching Example 3's layout).
  std::vector<int> CoordsOfBid(Bid bid) const;
  Bid BidOfCoords(const std::vector<int>& coords) const;

  /// Geometric region covered by a block, from the bin boundaries.
  Box BoxOfBid(Bid bid) const;

  /// Blocks differing by +-1 in exactly one bin coordinate (Lemma 1's
  /// neighborhood relation).
  std::vector<Bid> Neighbors(Bid bid) const;

  /// Bin boundaries of `dim`: bins_per_dim()+1 ascending values in [0,1].
  const std::vector<double>& boundaries(int dim) const {
    return boundaries_[dim];
  }

 private:
  int dims_;
  int bins_;
  std::vector<std::vector<double>> boundaries_;
};

/// The base block table T of the ranking cube triple <T, C, M> (§3.2.3):
/// bid -> tuples with their ranking values. Accessed with get_base_block.
class BaseBlockTable {
 public:
  BaseBlockTable(const Table& table, const EquiDepthGrid& grid);

  /// Tuples of one block; charges the block's pages (category kBaseBlock).
  const std::vector<Tid>& GetBaseBlock(Bid bid, IoSession* io) const;

  /// Membership view without I/O accounting (for in-memory enumeration).
  const std::vector<Tid>& GetBaseBlockNoCharge(Bid bid) const {
    return blocks_[bid];
  }

  /// Block id of every tuple (the new dimension B of §3.2.2).
  Bid BidOfTuple(Tid tid) const { return tuple_bid_[tid]; }

  /// Incremental maintenance: places an appended tuple in block `bid` /
  /// removes a deleted tuple from its block. Bin boundaries are part of the
  /// cube's frozen meta information, so the grid itself never changes.
  void AddTuple(Tid tid, Bid bid);
  void RemoveTuple(Tid tid);

  size_t SizeBytes() const;

 private:
  const Table& table_;
  std::vector<std::vector<Tid>> blocks_;
  std::vector<Bid> tuple_bid_;
  size_t row_bytes_;
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_GRID_PARTITION_H_
