// Glue between the batch scoring API (RankingFunction::EvaluateBatch) and
// the top-k bookkeeping (TopKHeap::OfferBatch). Every evaluate loop in the
// repository funnels through one of the two helpers here, so no Execute path
// gathers a per-tuple point vector or pays a virtual Evaluate call per tuple
// anymore: scoring costs one EvaluateBatch + one OfferBatch per block.
#ifndef RANKCUBE_CORE_BATCH_SCORER_H_
#define RANKCUBE_CORE_BATCH_SCORER_H_

#include <vector>

#include "core/topk_query.h"
#include "func/ranking_function.h"
#include "storage/table.h"

namespace rankcube {

/// Scores one block of tuples column-direct and offers the results,
/// reusing the caller's scratch buffer across blocks. For call sites that
/// already have their tuples blocked (grid base blocks, merged index
/// leaves, a rank-mapping candidate list).
inline void ScoreBlockAndOffer(const Table& table, const RankingFunction& f,
                               const Tid* tids, size_t n,
                               std::vector<double>* scratch, TopKHeap* topk,
                               ExecStats* stats) {
  if (n == 0) return;
  scratch->resize(n);
  f.EvaluateBatch(table, tids, n, scratch->data());
  topk->OfferBatch(tids, scratch->data(), n);
  stats->tuples_evaluated += n;
}

/// Accumulating variant for scan-style loops that discover qualifying
/// tuples one at a time: Add() buffers tids and flushes a full block
/// through ScoreBlockAndOffer; call Flush() once after the loop.
class BatchScorer {
 public:
  /// Tuples scored per EvaluateBatch call. Large enough to amortize the
  /// virtual dispatch, small enough that tids + scores stay in L1.
  static constexpr size_t kBlock = 1024;

  BatchScorer(const Table& table, const RankingFunction& f, TopKHeap* topk,
              ExecStats* stats)
      : table_(table), f_(f), topk_(topk), stats_(stats) {
    tids_.reserve(kBlock);
  }

  void Add(Tid tid) {
    tids_.push_back(tid);
    if (tids_.size() >= kBlock) Flush();
  }

  void Flush() {
    ScoreBlockAndOffer(table_, f_, tids_.data(), tids_.size(), &scores_,
                       topk_, stats_);
    tids_.clear();
  }

 private:
  const Table& table_;
  const RankingFunction& f_;
  TopKHeap* topk_;
  ExecStats* stats_;
  std::vector<Tid> tids_;
  std::vector<double> scores_;
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_BATCH_SCORER_H_
