// Signature-as-measure ranking cube (Ch4): an R-tree partition shared as
// template, per-cell signatures (by default one atomic cuboid per boolean
// dimension, §4.2.4/§4.3.3), node-level compression + partial-signature
// decomposition, incremental maintenance (Algorithm 2), and Algorithm 3's
// branch-and-bound query with simultaneous ranking and boolean pruning.
#ifndef RANKCUBE_CORE_SIGNATURE_CUBE_H_
#define RANKCUBE_CORE_SIGNATURE_CUBE_H_

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "bitmap/bloom.h"
#include "core/rtree_search.h"
#include "core/signature.h"
#include "core/topk_query.h"
#include "cube/cell.h"
#include "index/rtree.h"
#include "storage/table.h"

namespace rankcube {

struct SignatureCubeOptions {
  /// Cuboids to materialize; empty = all atomic (single-dimension) cuboids.
  std::vector<std::vector<int>> cuboid_dim_sets;
  bool bulk_load = true;      ///< STR; false = tuple-at-a-time R-tree build
  int rtree_max_entries = 0;  ///< 0 = derive from page size
  double alpha = 0.5;         ///< partial-signature fill target (§4.2.3)

  /// §4.5 lossy compression: additionally build one bloom filter per cell
  /// over the signature's set SIDs. Querying with blooms admits false
  /// positives, so candidate tuples are verified against the base table
  /// (random accesses, charged) — trading space for extra verifications.
  bool lossy_bloom = false;
  double bloom_bits_per_entry = 10.0;  ///< ~1% false-positive rate
};

/// One cuboid's signatures: cell values -> signature (logical + stored).
struct SignatureCuboid {
  std::vector<int> dims;
  std::unordered_map<CellKey, Signature, CellKeyHash> sigs;
  std::unordered_map<CellKey, StoredSignature, CellKeyHash> stored;
  std::unordered_map<CellKey, BloomFilter, CellKeyHash> blooms;  ///< §4.5
};

class SignatureCube {
 public:
  SignatureCube(const Table& table, IoSession& io,
                SignatureCubeOptions options = SignatureCubeOptions());

  /// Algorithm 3 with signature boolean pruning.
  Result<std::vector<ScoredTuple>> TopK(const TopKQuery& query, IoSession* io,
                                        ExecStats* stats) const;

  /// Builds the boolean pruner for a conjunction of predicates: one
  /// exactly-matching materialized cell when available, otherwise the
  /// online assembly over atomic cuboids (§4.3.3). Returns:
  ///  * ok(nullptr)  - no predicates: caller should use a NullPruner;
  ///  * ok(pruner)   - signature-backed pruner (empty-cell => prune-all);
  ///  * error        - a queried dimension has no cuboid.
  Result<std::unique_ptr<BooleanPruner>> MakePruner(
      const std::vector<Predicate>& predicates) const;

  /// Incremental maintenance (Algorithm 2) for tuples already appended to
  /// the table; updates the R-tree and all affected cell signatures.
  void InsertBatch(const std::vector<Tid>& tids, IoSession* io);

  /// Absorbs the table mutations after built_epoch(): inserts through the
  /// R-tree + signature path (Algorithm 2), deletes through lazy R-tree
  /// removal with §4.2.5 bit clearing. Empty delta is a no-op.
  Status ApplyDelta(const DeltaStore& delta, IoSession* io);
  /// Table epoch this cube's contents reflect.
  uint64_t built_epoch() const { return built_epoch_; }

  const RTree& rtree() const { return *rtree_; }

  /// All materialized signature cuboids (dimension sets + cell counts) —
  /// the statistics the planner's cost model reads.
  const std::vector<SignatureCuboid>& cuboids() const { return cuboids_; }

  /// Signature of one cell (nullptr = no tuple has this value).
  const Signature* CellSignature(const std::vector<int>& dims,
                                 const CellKey& key) const;

  double construction_ms() const { return construction_ms_; }
  double rtree_build_ms() const { return rtree_build_ms_; }
  /// Physical pages the construction pass charged (scan + tree + sigs).
  uint64_t construction_pages() const { return construction_pages_; }
  size_t CompressedBytes() const;
  size_t BaselineBytes() const;
  /// Total bytes of the §4.5 lossy bloom signatures (0 unless enabled).
  size_t LossyBloomBytes() const;

  /// Query with the lossy bloom signatures (§4.5): bloom pruning plus
  /// per-candidate table verification. Requires lossy_bloom at build.
  Result<std::vector<ScoredTuple>> TopKLossy(const TopKQuery& query,
                                             IoSession* io,
                                             ExecStats* stats) const;

 private:
  friend class SignaturePruner;
  const SignatureCuboid* FindCuboid(const std::vector<int>& dims) const;
  void RebuildStored(SignatureCuboid* cuboid, const CellKey& key);
  /// Applies R-tree path updates to every affected cell signature, one
  /// grouped pass per cuboid (shared by InsertBatch and ApplyDelta).
  void ApplyPathUpdates(const std::vector<PathUpdate>& updates, IoSession* io);

  const Table& table_;
  size_t page_size_;
  double alpha_;
  bool lossy_bloom_ = false;
  double bloom_bits_per_entry_ = 10.0;
  uint64_t built_epoch_ = 0;
  std::unique_ptr<RTree> rtree_;
  std::vector<SignatureCuboid> cuboids_;
  /// sorted dims -> index into cuboids_; O(1) FindCuboid per pruner source
  /// instead of a linear scan over the cuboid list.
  std::unordered_map<std::vector<int>, size_t, DimSetHash> cuboid_index_;
  double construction_ms_ = 0.0;
  double rtree_build_ms_ = 0.0;
  uint64_t construction_pages_ = 0;
};

/// Boolean pruner backed by one or more cell signatures (assembled online
/// for multi-predicate queries, §4.3.3). Charges partial-signature loads.
class SignaturePruner : public BooleanPruner {
 public:
  /// Each element: (signature, stored form). All must pass for a path.
  struct Source {
    const Signature* sig;
    const StoredSignature* stored;
  };

  explicit SignaturePruner(std::vector<Source> sources)
      : sources_(std::move(sources)) {}

  bool MayContain(const std::vector<int>& node_path, IoSession* io,
                  ExecStats* stats) override;
  bool Qualifies(Tid tid, const std::vector<int>& tuple_path, IoSession* io,
                 ExecStats* stats) override;

 private:
  void EnsureLoaded(size_t src, const std::vector<int>& path, size_t len,
                    IoSession* io, ExecStats* stats);

  std::vector<Source> sources_;
  std::set<std::pair<size_t, size_t>> loaded_;  ///< (source, partial) pairs
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_SIGNATURE_CUBE_H_
