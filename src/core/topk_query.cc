#include "core/topk_query.h"

namespace rankcube {}  // namespace rankcube
