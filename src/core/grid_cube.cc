#include "core/grid_cube.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "bitmap/tidlist.h"
#include "common/stopwatch.h"
#include "func/kernels/kernels.h"
#include "cube/fragments.h"

namespace rankcube {

uint32_t GridCuboid::PidOfBid(const EquiDepthGrid& grid, Bid bid) const {
  // Decodes the row-major bin coordinates in place (most significant
  // first), folding each into the pseudo-block id as it appears — this runs
  // per tuple at build time and per bid at query time, so it must not
  // allocate a coords vector the way grid.CoordsOfBid(bid) does.
  const Bid bins = static_cast<Bid>(grid.bins_per_dim());
  Bid div = 1;
  for (int d = 1; d < grid.num_dims(); ++d) div *= bins;
  uint32_t pid = 0;
  for (int d = 0; d < grid.num_dims(); ++d, div /= bins) {
    const uint32_t c = static_cast<uint32_t>(bid / div % bins);
    pid = pid * static_cast<uint32_t>(pseudo_bins) + c / scale_factor;
  }
  return pid;
}

size_t GridCuboid::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, list] : cells) {
    bytes += 16 + 4 * key.values.size() + list.size() * 8;  // bid+tid pairs
  }
  return bytes;
}

size_t GridCuboid::CompressedSizeBytes() const {
  size_t bytes = 0;
  std::vector<Tid> run;
  for (const auto& [key, list] : cells) {
    bytes += 16 + 4 * key.values.size();
    size_t i = 0;
    while (i < list.size()) {
      Bid bid = list[i].first;
      run.clear();
      for (; i < list.size() && list[i].first == bid; ++i) {
        run.push_back(list[i].second);
      }
      bytes += 4 + TidListEncodedSize(run);  // bid marker + coded run
    }
  }
  return bytes;
}

GridCuboid BuildGridCuboid(const Table& table, const EquiDepthGrid& grid,
                           const BaseBlockTable& base_blocks,
                           std::vector<int> dims) {
  GridCuboid cuboid;
  cuboid.dims = std::move(dims);
  std::sort(cuboid.dims.begin(), cuboid.dims.end());

  // sf = floor((prod c_j)^(1/R)): merging sf bins per ranking dimension
  // multiplies the expected tuples per cell by prod(c_j), restoring one
  // page per cell (§3.2.3).
  double prod = 1.0;
  for (int d : cuboid.dims) {
    prod *= static_cast<double>(table.schema().sel_cardinality[d]);
  }
  int sf = static_cast<int>(std::floor(
      std::pow(prod, 1.0 / std::max(1, grid.num_dims()))));
  cuboid.scale_factor = std::max(1, std::min(sf, grid.bins_per_dim()));
  cuboid.pseudo_bins =
      (grid.bins_per_dim() + cuboid.scale_factor - 1) / cuboid.scale_factor;

  CellKey key;
  key.values.resize(cuboid.dims.size());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (!table.is_live(t)) continue;
    Bid bid = base_blocks.BidOfTuple(t);
    for (size_t i = 0; i < cuboid.dims.size(); ++i) {
      key.values[i] = table.sel(t, cuboid.dims[i]);
    }
    key.pid = cuboid.PidOfBid(grid, bid);
    cuboid.cells[key].emplace_back(bid, t);
  }
  for (auto& [k, list] : cuboid.cells) {
    (void)k;
    std::sort(list.begin(), list.end());
  }
  return cuboid;
}

void GridCuboid::CellKeyOfTuple(const Table& table, const EquiDepthGrid& grid,
                                Tid tid, Bid bid, CellKey* key) const {
  key->values.resize(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    key->values[i] = table.sel(tid, dims[i]);
  }
  key->pid = PidOfBid(grid, bid);
}

void GridCuboid::AddTuple(const Table& table, const EquiDepthGrid& grid,
                          Tid tid, Bid bid, CellKey* key) {
  CellKeyOfTuple(table, grid, tid, bid, key);
  auto& list = cells[*key];
  // Keep the (bid, tid) order BuildGridCuboid sorts into, so per-bid runs
  // stay ascending for the retrieve step's binary search.
  list.insert(std::upper_bound(list.begin(), list.end(),
                               std::make_pair(bid, tid)),
              {bid, tid});
}

void GridCuboid::RemoveTuple(const Table& table, const EquiDepthGrid& grid,
                             Tid tid, Bid bid, CellKey* key) {
  CellKeyOfTuple(table, grid, tid, bid, key);
  auto cell = cells.find(*key);
  if (cell == cells.end()) return;
  auto& list = cell->second;
  auto it = std::lower_bound(list.begin(), list.end(),
                             std::make_pair(bid, tid));
  if (it != list.end() && it->first == bid && it->second == tid) {
    list.erase(it);
  }
  if (list.empty()) cells.erase(cell);
}

CuboidTidSource::CuboidTidSource(const GridCuboid* cuboid,
                                 const EquiDepthGrid* grid,
                                 std::vector<int32_t> cell_values)
    : cuboid_(cuboid), grid_(grid), cell_values_(std::move(cell_values)) {}

void CuboidTidSource::GetTids(Bid bid, IoSession* io, ExecStats* stats,
                              std::vector<Tid>* out) {
  out->clear();
  uint32_t pid = cuboid_->PidOfBid(*grid_, bid);
  auto it = buffered_.find(pid);
  if (it == buffered_.end()) {
    // get_pseudo_block: one (or more) cuboid page reads, then buffered so a
    // bid mapping to a previously retrieved pid costs nothing (§3.3.2).
    CellKey key{cell_values_, pid};
    auto cell = cuboid_->cells.find(key);
    const std::vector<std::pair<Bid, Tid>>* list =
        cell == cuboid_->cells.end() ? nullptr : &cell->second;
    uint64_t bytes = list ? list->size() * 8 + 16 : 16;
    uint64_t pages =
        std::max<uint64_t>(1, (bytes + io->page_size() - 1) /
                                  io->page_size());
    io->Access(IoCategory::kCuboid,
                  (static_cast<uint64_t>(CellKeyHash{}(key)) << 8), pages);
    it = buffered_.emplace(pid, list).first;
  }
  const auto* list = it->second;
  if (list == nullptr) return;
  auto lo = std::lower_bound(
      list->begin(), list->end(), std::make_pair(bid, Tid{0}));
  for (auto e = lo; e != list->end() && e->first == bid; ++e) {
    out->push_back(e->second);
  }
  (void)stats;
}

namespace {

/// Intersects two ascending tid runs into `out` with a galloping merge:
/// the shorter run drives, binary-searching forward in the longer one.
/// Degenerates to the linear two-pointer merge when the runs are of
/// comparable length.
void GallopingIntersect(const std::vector<Tid>& a, const std::vector<Tid>& b,
                        std::vector<Tid>* out) {
  out->clear();
  const std::vector<Tid>& small = a.size() <= b.size() ? a : b;
  const std::vector<Tid>& large = a.size() <= b.size() ? b : a;
  auto it = large.begin();
  for (Tid v : small) {
    // Gallop: double the step until the probe reaches v, then binary
    // search inside the last bracket.
    size_t step = 1;
    auto hi = it;
    while (hi != large.end() && *hi < v) {
      it = hi;
      if (static_cast<size_t>(large.end() - hi) <= step) {
        hi = large.end();
        break;
      }
      hi += step;
      step *= 2;
    }
    it = std::lower_bound(it, hi, v);
    if (it == large.end()) break;
    if (*it == v) {
      out->push_back(v);
      ++it;
    }
  }
}

}  // namespace

void IntersectTidSource::GetTids(Bid bid, IoSession* io, ExecStats* stats,
                                 std::vector<Tid>* out) {
  out->clear();
  std::vector<Tid> current, next, tmp;
  for (size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->GetTids(bid, io, stats, &tmp);
    // Cuboid lists are stored sorted by (bid, tid), so the per-bid run each
    // source emits is already ascending — no re-sort needed.
    assert(std::is_sorted(tmp.begin(), tmp.end()));
    if (i == 0) {
      current = tmp;
    } else {
      GallopingIntersect(current, tmp, &next);
      current.swap(next);
    }
    if (current.empty()) break;
  }
  *out = std::move(current);
}

void AllTidSource::GetTids(Bid bid, IoSession* io, ExecStats* stats,
                           std::vector<Tid>* out) {
  (void)io;
  (void)stats;
  // No cuboid involved: the block table itself is consulted during the
  // evaluate step; here we only enumerate membership.
  *out = blocks_->GetBaseBlockNoCharge(bid);
}

std::vector<ScoredTuple> GridNeighborhoodTopK(
    const Table& table, const EquiDepthGrid& grid,
    const BaseBlockTable& base_blocks, const TopKQuery& query,
    BlockTidSource* source, IoSession* io, ExecStats* stats) {
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();
  const RankingFunction& f = *query.function;
  TopKHeap topk(query.k);

  // Search state: candidate blocks ordered by f(bid) (H list of §3.3.2).
  using Cand = std::pair<double, Bid>;
  std::priority_queue<Cand, std::vector<Cand>, std::greater<>> h;
  std::unordered_set<Bid> inserted;

  std::vector<double> start = f.Minimizer(Box::Unit(grid.num_dims()));
  Bid first = grid.BidOfPoint(start.data());
  h.push({f.LowerBound(grid.BoxOfBid(first)), first});
  inserted.insert(first);

  std::vector<Tid> tids;
  kernels::FusedScorer scorer(table, f, &topk, stats);
  while (!h.empty()) {
    auto [lb, bid] = h.top();
    h.pop();
    // Stop condition: S_k <= S_unseen (lb of the best remaining block).
    if (topk.Full() && topk.KthScore() <= lb) break;

    // Retrieve + evaluate: the block's tuples go through the fused kernel
    // in one shot (§3.3.2 hands us tuples per block, so the batch boundary
    // is free).
    source->GetTids(bid, io, stats, &tids);
    if (!tids.empty()) {
      base_blocks.GetBaseBlock(bid, io);  // fetch ranking values
      scorer.ScoreBlock(tids.data(), tids.size());
    }
    // Expand neighborhood (Lemma 1).
    for (Bid nb : grid.Neighbors(bid)) {
      if (inserted.insert(nb).second) {
        h.push({f.LowerBound(grid.BoxOfBid(nb)), nb});
      }
    }
    stats->MergeMax(h.size());
  }

  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return topk.Sorted();
}

void ChargeCuboidBuild(const Table& table, IoSession& io,
                       const GridCuboid& cuboid, size_t index) {
  // Building a cuboid scans the relation once and writes the cuboid's
  // pseudo-block pages; the seed's constructors dropped this cost on the
  // floor ((void)pager), making construction_ms the only honest figure.
  table.ChargeFullScan(&io);
  uint64_t pages = std::max<uint64_t>(
      1, (cuboid.SizeBytes() + io.page_size() - 1) / io.page_size());
  io.Access(IoCategory::kCuboid, static_cast<uint64_t>(index) << 40, pages);
}

GridRankingCube::GridRankingCube(const Table& table, IoSession& io,
                                 GridCubeOptions options)
    : table_(table),
      grid_(table, {.block_size = options.block_size, .min_bins = 1}),
      base_blocks_(table, grid_),
      block_size_(options.block_size),
      built_epoch_(table.epoch()) {
  Stopwatch watch;
  uint64_t pages_before = io.TotalPhysical();
  std::vector<std::vector<int>> sets = options.cuboid_dim_sets;
  if (sets.empty()) {
    std::vector<int> all(table.num_sel_dims());
    for (int d = 0; d < table.num_sel_dims(); ++d) all[d] = d;
    sets = AllSubsets(all);
  }
  cuboids_.reserve(sets.size());
  for (auto& dims : sets) {
    cuboids_.push_back(BuildGridCuboid(table, grid_, base_blocks_, dims));
    ChargeCuboidBuild(table, io, cuboids_.back(), cuboids_.size() - 1);
    cuboid_index_.emplace(cuboids_.back().dims, cuboids_.size() - 1);
  }
  construction_pages_ = io.TotalPhysical() - pages_before;
  construction_ms_ = watch.ElapsedMs();
}

Status ApplyGridDelta(const Table& table, const DeltaStore& delta,
                      const EquiDepthGrid& grid, BaseBlockTable* base_blocks,
                      std::vector<GridCuboid>* cuboids, uint64_t* built_epoch,
                      IoSession* io) {
  if (*built_epoch >= delta.epoch()) return Status::OK();  // empty: no-op
  std::vector<Tid> inserted, deleted;
  delta.ChangesSince(*built_epoch, &inserted, &deleted);

  // Apply inserts before deletes: same-tid order in the log is always
  // insert-then-delete, and distinct tids commute.
  std::unordered_set<Bid> touched_blocks;
  std::vector<std::unordered_set<CellKey, CellKeyHash>> touched_cells(
      cuboids->size());
  CellKey key;
  std::vector<double> point(table.num_rank_dims());
  for (Tid t : inserted) {
    table.CopyRankRow(t, point.data());
    Bid bid = grid.BidOfPoint(point.data());
    base_blocks->AddTuple(t, bid);
    touched_blocks.insert(bid);
    for (size_t c = 0; c < cuboids->size(); ++c) {
      (*cuboids)[c].AddTuple(table, grid, t, bid, &key);
      touched_cells[c].insert(key);
    }
  }
  for (Tid t : deleted) {
    Bid bid = base_blocks->BidOfTuple(t);
    base_blocks->RemoveTuple(t);
    touched_blocks.insert(bid);
    for (size_t c = 0; c < cuboids->size(); ++c) {
      (*cuboids)[c].RemoveTuple(table, grid, t, bid, &key);
      touched_cells[c].insert(key);
    }
  }

  // Honest maintenance I/O: the batch reads the delta rows from the heap
  // tail, then pays a read + write-back per distinct touched block/cell —
  // not the per-cuboid relation scans of a rebuild.
  if (io != nullptr) {
    if (!inserted.empty()) table.ChargeTailScan(io, inserted.front());
    for (Bid bid : touched_blocks) {
      io->Access(IoCategory::kBaseBlock, bid, 2);
    }
    for (size_t c = 0; c < cuboids->size(); ++c) {
      for (const CellKey& cell : touched_cells[c]) {
        io->Access(IoCategory::kCuboid,
                   static_cast<uint64_t>(CellKeyHash{}(cell)) << 8, 2);
      }
    }
  }
  *built_epoch = delta.epoch();
  return Status::OK();
}

Status GridRankingCube::ApplyDelta(const DeltaStore& delta, IoSession* io) {
  return ApplyGridDelta(table_, delta, grid_, &base_blocks_, &cuboids_,
                        &built_epoch_, io);
}

const GridCuboid* GridRankingCube::FindCuboid(
    const std::vector<int>& dims) const {
  std::vector<int> sorted = dims;
  std::sort(sorted.begin(), sorted.end());
  auto it = cuboid_index_.find(sorted);
  return it == cuboid_index_.end() ? nullptr : &cuboids_[it->second];
}

Result<std::vector<ScoredTuple>> GridRankingCube::TopK(const TopKQuery& query,
                                                       IoSession* io,
                                                       ExecStats* stats) const {
  if (!query.function) {
    return Status::InvalidArgument("query has no ranking function");
  }
  std::vector<int> qdims;
  for (const auto& p : query.predicates) qdims.push_back(p.dim);
  std::sort(qdims.begin(), qdims.end());

  if (qdims.empty()) {
    AllTidSource source(&base_blocks_);
    return GridNeighborhoodTopK(table_, grid_, base_blocks_, query, &source,
                                io, stats);
  }
  const GridCuboid* cuboid = FindCuboid(qdims);
  if (cuboid == nullptr) {
    return Status::NotFound(
        "no materialized cuboid matches the query dimensions; use "
        "RankingFragments for partially materialized cubes");
  }
  std::vector<int32_t> values;
  ProjectPredicates(query.predicates, cuboid->dims, &values);
  CuboidTidSource source(cuboid, &grid_, std::move(values));
  return GridNeighborhoodTopK(table_, grid_, base_blocks_, query, &source,
                              io, stats);
}

size_t GridRankingCube::SizeBytes() const {
  size_t bytes = base_blocks_.SizeBytes();
  for (const auto& c : cuboids_) bytes += c.SizeBytes();
  return bytes;
}

}  // namespace rankcube
