// Branch-and-bound top-k search over an R-tree (Algorithm 3, §4.3): a
// candidate heap ordered by the ranking function's lower bound over node
// MBRs, with a pluggable boolean pruner. Used by:
//  * the signature ranking cube (pruner = signature tests),
//  * the ranking-first baseline (node pruner = accept-all; tuples verified
//    against the base table with random accesses),
//  * Ch6's rank-aware selection (progressive variant in join/).
#ifndef RANKCUBE_CORE_RTREE_SEARCH_H_
#define RANKCUBE_CORE_RTREE_SEARCH_H_

#include <vector>

#include "core/topk_query.h"
#include "func/kernels/kernels.h"
#include "index/rtree.h"

namespace rankcube {

/// Boolean-pruning hook for Algorithm 3. Paths are 1-based entry positions;
/// tuple paths include the leaf entry position.
class BooleanPruner {
 public:
  virtual ~BooleanPruner() = default;

  /// May the subtree rooted at `path` contain a qualifying tuple?
  /// (false => prune; must never produce false negatives).
  virtual bool MayContain(const std::vector<int>& node_path, IoSession* io,
                          ExecStats* stats) = 0;

  /// Does the tuple at `tuple_path` qualify? Exact.
  virtual bool Qualifies(Tid tid, const std::vector<int>& tuple_path,
                         IoSession* io, ExecStats* stats) = 0;
};

/// Accept-all pruner (no boolean predicates).
class NullPruner : public BooleanPruner {
 public:
  bool MayContain(const std::vector<int>&, IoSession*, ExecStats*) override {
    return true;
  }
  bool Qualifies(Tid, const std::vector<int>&, IoSession*, ExecStats*) override {
    return true;
  }
};

/// Scores every entry of an R-tree leaf through a per-query fused
/// BlockEvaluator (entries are exact copies of the table's ranking rows, so
/// the evaluator reads the columns directly), filling the parallel
/// tids/scores arrays and charging stats->tuples_evaluated. Shared by the
/// branch-and-bound search and the progressive ranked stream so the two
/// leaf paths cannot diverge. The evaluator is resolved once per query, not
/// per leaf.
inline void ScoreLeafEntries(const kernels::BlockEvaluator& eval,
                             const RTreeNode& node, std::vector<Tid>* tids,
                             std::vector<double>* scores, ExecStats* stats) {
  tids->resize(node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    (*tids)[i] = node.entries[i].tid;
  }
  scores->resize(tids->size());
  if (!tids->empty()) eval.Score(tids->data(), tids->size(), scores->data());
  stats->tuples_evaluated += tids->size();
}

/// Algorithm 3: progressive best-first search; halts when the k-th result
/// score is no worse than the best possible unseen score. `table` is the
/// relation the R-tree indexes: leaf entries are exact copies of its
/// ranking rows, so a whole leaf is scored with one column-direct
/// RankingFunction::EvaluateBatch call instead of a scalar Evaluate per
/// entry.
std::vector<ScoredTuple> RTreeBranchAndBoundTopK(const Table& table,
                                                 const RTree& rtree,
                                                 const TopKQuery& query,
                                                 BooleanPruner* pruner,
                                                 IoSession* io,
                                                 ExecStats* stats);

}  // namespace rankcube

#endif  // RANKCUBE_CORE_RTREE_SEARCH_H_
