// Shared query-execution statistics and top-k result bookkeeping.
#ifndef RANKCUBE_CORE_TOPK_QUERY_H_
#define RANKCUBE_CORE_TOPK_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "func/query.h"  // ScoredTuple, TopKHeap, BruteForceTopK
#include "storage/table.h"
#include "storage/io_session.h"

namespace rankcube {

/// Counters every engine in the repository reports; the benchmark harnesses
/// print these as the paper's series (time, #disk accesses, #states, peak
/// heap size).
struct ExecStats {
  double time_ms = 0.0;
  uint64_t pages_read = 0;        ///< physical page accesses during the query
  uint64_t tuples_evaluated = 0;  ///< exact scores computed
  uint64_t states_generated = 0;  ///< Ch5: joint states created
  uint64_t states_examined = 0;   ///< Ch5: joint states popped
  uint64_t peak_heap = 0;         ///< max candidate-heap entries
  uint64_t signature_pages = 0;   ///< signature/join-signature accesses
  double signature_ms = 0.0;      ///< time spent loading signatures (Fig 7.12)

  void MergeMax(uint64_t heap_size) {
    peak_heap = std::max(peak_heap, heap_size);
  }

  /// Accumulates another query's counters. Every field adds, including
  /// peak_heap: across a workload the sum divided by the query count is the
  /// average peak (the series the benchmarks report); within one query use
  /// MergeMax. BatchExecutor and the bench harness aggregate through this.
  ExecStats& operator+=(const ExecStats& o) {
    time_ms += o.time_ms;
    pages_read += o.pages_read;
    tuples_evaluated += o.tuples_evaluated;
    states_generated += o.states_generated;
    states_examined += o.states_examined;
    peak_heap += o.peak_heap;
    signature_pages += o.signature_pages;
    signature_ms += o.signature_ms;
    return *this;
  }
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_TOPK_QUERY_H_
