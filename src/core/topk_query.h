// Shared query-execution statistics and top-k result bookkeeping.
#ifndef RANKCUBE_CORE_TOPK_QUERY_H_
#define RANKCUBE_CORE_TOPK_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "func/query.h"
#include "storage/table.h"
#include "storage/io_session.h"

namespace rankcube {

/// Counters every engine in the repository reports; the benchmark harnesses
/// print these as the paper's series (time, #disk accesses, #states, peak
/// heap size).
struct ExecStats {
  double time_ms = 0.0;
  uint64_t pages_read = 0;        ///< physical page accesses during the query
  uint64_t tuples_evaluated = 0;  ///< exact scores computed
  uint64_t states_generated = 0;  ///< Ch5: joint states created
  uint64_t states_examined = 0;   ///< Ch5: joint states popped
  uint64_t peak_heap = 0;         ///< max candidate-heap entries
  uint64_t signature_pages = 0;   ///< signature/join-signature accesses
  double signature_ms = 0.0;      ///< time spent loading signatures (Fig 7.12)

  void MergeMax(uint64_t heap_size) {
    peak_heap = std::max(peak_heap, heap_size);
  }

  /// Accumulates another query's counters. Every field adds, including
  /// peak_heap: across a workload the sum divided by the query count is the
  /// average peak (the series the benchmarks report); within one query use
  /// MergeMax. BatchExecutor and the bench harness aggregate through this.
  ExecStats& operator+=(const ExecStats& o) {
    time_ms += o.time_ms;
    pages_read += o.pages_read;
    tuples_evaluated += o.tuples_evaluated;
    states_generated += o.states_generated;
    states_examined += o.states_examined;
    peak_heap += o.peak_heap;
    signature_pages += o.signature_pages;
    signature_ms += o.signature_ms;
    return *this;
  }
};

/// Bounded max-heap over scores: keeps the k smallest-scoring tuples seen;
/// `KthScore()` is the current S_k bound used by every stop condition.
class TopKHeap {
 public:
  explicit TopKHeap(int k) : k_(k) {}

  void Offer(Tid tid, double score) {
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.push_back({tid, score});
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    } else if (!heap_.empty() && score < heap_.front().score) {
      std::pop_heap(heap_.begin(), heap_.end(), Worse);
      heap_.back() = {tid, score};
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    }
  }

  /// Offers a block of scored tuples, filtering against the current S_k
  /// bound before touching the heap: a block whose tuples all score worse
  /// than KthScore() costs n compares and zero heap operations. Produces
  /// exactly the same heap state as n repeated Offer() calls.
  void OfferBatch(const Tid* tids, const double* scores, size_t n) {
    if (k_ <= 0) return;
    size_t i = 0;
    // Fill phase: until k results exist every tuple enters the heap.
    for (; i < n && static_cast<int>(heap_.size()) < k_; ++i) {
      Offer(tids[i], scores[i]);
    }
    for (; i < n; ++i) {
      if (scores[i] < heap_.front().score) Offer(tids[i], scores[i]);
    }
  }

  bool Full() const { return static_cast<int>(heap_.size()) >= k_; }

  /// S_k: the k-th best score so far, +inf until k results exist.
  double KthScore() const {
    return Full() && k_ > 0 ? heap_.front().score : kInfScore;
  }

  /// Results in ascending score order.
  std::vector<ScoredTuple> Sorted() const {
    std::vector<ScoredTuple> v = heap_;
    std::sort(v.begin(), v.end());
    return v;
  }

  size_t size() const { return heap_.size(); }

 private:
  static bool Worse(const ScoredTuple& a, const ScoredTuple& b) {
    return a.score < b.score;  // max-heap on score
  }

  int k_;
  std::vector<ScoredTuple> heap_;
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_TOPK_QUERY_H_
