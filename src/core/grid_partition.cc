#include "core/grid_partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace rankcube {

EquiDepthGrid::EquiDepthGrid(const Table& table, GridOptions options)
    : dims_(table.num_rank_dims()) {
  const double t = static_cast<double>(std::max<size_t>(1, table.num_rows()));
  const double p = static_cast<double>(std::max(1, options.block_size));
  bins_ = std::max(options.min_bins,
                   static_cast<int>(std::round(std::pow(t / p, 1.0 / dims_))));
  bins_ = std::max(1, bins_);

  boundaries_.resize(dims_);
  for (int d = 0; d < dims_; ++d) {
    std::vector<double> col(table.rank_col(d),
                            table.rank_col(d) + table.num_rows());
    std::sort(col.begin(), col.end());
    auto& b = boundaries_[d];
    b.resize(bins_ + 1);
    b[0] = 0.0;
    b[bins_] = 1.0;
    for (int i = 1; i < bins_; ++i) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(col.size()) * i / bins_);
      idx = std::min(idx, col.empty() ? 0 : col.size() - 1);
      b[i] = col.empty() ? static_cast<double>(i) / bins_ : col[idx];
      b[i] = std::max(b[i], b[i - 1]);  // keep monotone under duplicates
    }
  }
}

uint32_t EquiDepthGrid::num_blocks() const {
  uint32_t n = 1;
  for (int d = 0; d < dims_; ++d) n *= static_cast<uint32_t>(bins_);
  return n;
}

int EquiDepthGrid::BinOf(int dim, double value) const {
  const auto& b = boundaries_[dim];
  // Bin i covers [b[i], b[i+1]); the last bin is closed at 1.
  int bin = static_cast<int>(
      std::upper_bound(b.begin() + 1, b.end() - 1, value) - (b.begin() + 1));
  return std::min(bin, bins_ - 1);
}

Bid EquiDepthGrid::BidOfPoint(const double* point) const {
  Bid bid = 0;
  for (int d = 0; d < dims_; ++d) {
    bid = bid * static_cast<Bid>(bins_) + static_cast<Bid>(BinOf(d, point[d]));
  }
  return bid;
}

std::vector<int> EquiDepthGrid::CoordsOfBid(Bid bid) const {
  std::vector<int> coords(dims_);
  for (int d = dims_ - 1; d >= 0; --d) {
    coords[d] = static_cast<int>(bid % static_cast<Bid>(bins_));
    bid /= static_cast<Bid>(bins_);
  }
  return coords;
}

Bid EquiDepthGrid::BidOfCoords(const std::vector<int>& coords) const {
  Bid bid = 0;
  for (int d = 0; d < dims_; ++d) {
    bid = bid * static_cast<Bid>(bins_) + static_cast<Bid>(coords[d]);
  }
  return bid;
}

Box EquiDepthGrid::BoxOfBid(Bid bid) const {
  std::vector<int> coords = CoordsOfBid(bid);
  Box box(dims_);
  for (int d = 0; d < dims_; ++d) {
    box[d] = {boundaries_[d][coords[d]], boundaries_[d][coords[d] + 1]};
  }
  return box;
}

std::vector<Bid> EquiDepthGrid::Neighbors(Bid bid) const {
  std::vector<Bid> out;
  std::vector<int> coords = CoordsOfBid(bid);
  for (int d = 0; d < dims_; ++d) {
    for (int delta : {-1, +1}) {
      int v = coords[d] + delta;
      if (v < 0 || v >= bins_) continue;
      std::vector<int> c = coords;
      c[d] = v;
      out.push_back(BidOfCoords(c));
    }
  }
  return out;
}

BaseBlockTable::BaseBlockTable(const Table& table, const EquiDepthGrid& grid)
    : table_(table), row_bytes_(8 + 8 * table.num_rank_dims()) {
  blocks_.resize(grid.num_blocks());
  // Column-direct bid assignment: one pass per ranking dimension over its
  // contiguous column, folding each tuple's bin into the row-major bid —
  // no per-tuple point gather. Agrees with BidOfPoint because both go
  // through EquiDepthGrid::BinOf.
  tuple_bid_.assign(table.num_rows(), 0);
  for (int d = 0; d < table.num_rank_dims(); ++d) {
    const double* col = table.rank_col(d);
    const Bid bins = static_cast<Bid>(grid.bins_per_dim());
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      tuple_bid_[t] =
          tuple_bid_[t] * bins + static_cast<Bid>(grid.BinOf(d, col[t]));
    }
  }
  // tuple_bid_ covers every heap row (deletes after the build look their
  // block up here), but only live rows enter the block lists.
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    if (!table.is_live(t)) continue;
    blocks_[tuple_bid_[t]].push_back(t);
  }
}

void BaseBlockTable::AddTuple(Tid tid, Bid bid) {
  if (tuple_bid_.size() <= tid) tuple_bid_.resize(tid + 1, 0);
  tuple_bid_[tid] = bid;
  // Appended tids exceed every existing member, so the block list stays
  // tid-ascending (the order the intersection merge asserts).
  blocks_[bid].push_back(tid);
}

void BaseBlockTable::RemoveTuple(Tid tid) {
  auto& block = blocks_[tuple_bid_[tid]];
  auto it = std::find(block.begin(), block.end(), tid);
  if (it != block.end()) block.erase(it);
}

const std::vector<Tid>& BaseBlockTable::GetBaseBlock(Bid bid,
                                                     IoSession* io) const {
  const auto& block = blocks_[bid];
  uint64_t pages =
      std::max<uint64_t>(1, (block.size() * row_bytes_ + io->page_size() -
                             1) /
                                io->page_size());
  io->Access(IoCategory::kBaseBlock, bid, pages);
  return block;
}

size_t BaseBlockTable::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& b : blocks_) bytes += 16 + b.size() * row_bytes_;
  return bytes;
}

}  // namespace rankcube
