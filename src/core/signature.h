// The signature measure (Ch4): for one cuboid cell, a tree of bit arrays
// mirroring the R-tree partition — bit b of node n is 1 iff the b-th child
// subtree (or leaf entry) contains a tuple of the cell. Nodes are addressed
// by SID: the path <p0..p_{l-1}> maps to sum p_i (M+1)^(l-1-i) (§4.2.1).
//
// `Signature` is the logical tree (query testing, union/intersection,
// incremental bit maintenance). `StoredSignature` is the physical form:
// node-level adaptively compressed bit arrays decomposed into page-sized
// partial signatures referenced by subtree-root SIDs (§4.2.2-§4.2.3).
#ifndef RANKCUBE_CORE_SIGNATURE_H_
#define RANKCUBE_CORE_SIGNATURE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bitmap/bitvector.h"
#include "common/status.h"

namespace rankcube {

using Sid = uint64_t;

/// SID of a node path (1-based positions); the empty path (root) is 0.
Sid SidOfPath(const std::vector<int>& path, size_t len, int M);

/// Logical signature tree.
class Signature {
 public:
  explicit Signature(int M = 2) : m_(M) {}

  int M() const { return m_; }
  bool empty() const { return nodes_.empty(); }
  size_t num_nodes() const { return nodes_.size(); }

  /// Builds from tuple paths (leaf entry position included).
  static Signature FromPaths(const std::vector<std::vector<int>>& paths,
                             int M);

  /// Sets every bit along `path` (creating nodes as needed).
  void SetPath(const std::vector<int>& path);

  /// Clears the leaf bit of `path`; recursively clears parent bits whose
  /// child node became all-zero (§4.2.5).
  void ClearPath(const std::vector<int>& path);

  /// True iff every bit along `path` is set (i.e. the addressed node/tuple
  /// may contain / is a qualifying tuple).
  bool TestPath(const std::vector<int>& path, size_t len) const;
  bool TestPath(const std::vector<int>& path) const {
    return TestPath(path, path.size());
  }

  /// Bit array of one node (nullptr when absent, i.e. all-zero).
  const BitVector* Node(Sid sid) const;

  /// OR / recursive-AND of two signatures over the same partition (§4.3.3).
  static Signature Union(const Signature& a, const Signature& b);
  static Signature Intersect(const Signature& a, const Signature& b);

  /// Total bits of the uncompressed (baseline BL) string form.
  size_t BaselineBits() const;

  const std::unordered_map<Sid, BitVector>& nodes() const { return nodes_; }

 private:
  friend class StoredSignature;
  static bool IntersectRec(const Signature& a, const Signature& b, Sid sid,
                           Signature* out);

  int m_;
  std::unordered_map<Sid, BitVector> nodes_;
};

/// Physical form: compressed + decomposed into partial signatures.
class StoredSignature {
 public:
  struct Partial {
    Sid ref_sid = 0;              ///< subtree root referencing this partial
    std::vector<Sid> node_sids;   ///< nodes encoded, BFS order
    size_t bits = 0;              ///< compressed size
  };

  StoredSignature() = default;

  /// Compresses and decomposes `sig`; each partial targets alpha*page_size
  /// bytes (§4.2.3).
  static StoredSignature Compress(const Signature& sig, size_t page_size,
                                  double alpha = 0.5);

  const std::vector<Partial>& partials() const { return partials_; }
  /// Partial holding `sid` (SIZE_MAX when the node is absent ≡ zero).
  size_t PartialOf(Sid sid) const;

  size_t CompressedBytes() const;
  size_t BaselineBytes() const { return (baseline_bits_ + 7) / 8; }

 private:
  std::vector<Partial> partials_;
  std::unordered_map<Sid, size_t> owner_;
  size_t baseline_bits_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_SIGNATURE_H_
