#include "core/rtree_search.h"

#include <queue>

#include "common/stopwatch.h"

namespace rankcube {

namespace {

/// Heap entry: an R-tree node or a fully-scored data object.
struct HeapEntry {
  double score;  ///< lower bound (node) or exact score (tuple)
  bool is_tuple;
  uint32_t node_id;  ///< node entries
  Tid tid;           ///< tuple entries
  std::vector<int> path;

  bool operator>(const HeapEntry& o) const { return score > o.score; }
};

}  // namespace

std::vector<ScoredTuple> RTreeBranchAndBoundTopK(const Table& table,
                                                 const RTree& rtree,
                                                 const TopKQuery& query,
                                                 BooleanPruner* pruner,
                                                 IoSession* io,
                                                 ExecStats* stats) {
  Stopwatch watch;
  uint64_t pages_before = io->TotalPhysical();
  const RankingFunction& f = *query.function;
  TopKHeap topk(query.k);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push({f.LowerBound(rtree.node(rtree.root()).mbr), false, rtree.root(),
             0,
             {}});

  std::vector<Tid> leaf_tids;
  std::vector<double> leaf_scores;
  kernels::BlockEvaluator eval(table, f);
  while (!heap.empty()) {
    HeapEntry e = heap.top();
    // Stop: f(topk.root) <= f(c_heap.root) (§4.3.2).
    if (topk.Full() && topk.KthScore() <= e.score) break;
    heap.pop();

    if (e.is_tuple) {
      if (pruner->Qualifies(e.tid, e.path, io, stats)) {
        topk.Offer(e.tid, e.score);
      }
      continue;
    }
    // Boolean pruning on the node before expansion (line 5 of Algorithm 3).
    if (!pruner->MayContain(e.path, io, stats)) continue;

    const RTreeNode& node = rtree.node(e.node_id);
    rtree.ChargeNodeAccess(io, e.node_id);
    if (node.is_leaf) {
      // The whole leaf is scored column-direct in one batch call; the
      // exact scores then enter the candidate heap (tuples stay lazy:
      // they are offered to the top-k only when popped, after boolean
      // verification).
      ScoreLeafEntries(eval, node, &leaf_tids, &leaf_scores, stats);
      for (size_t i = 0; i < node.entries.size(); ++i) {
        HeapEntry t;
        t.score = leaf_scores[i];
        t.is_tuple = true;
        t.tid = leaf_tids[i];
        t.path = e.path;
        t.path.push_back(static_cast<int>(i) + 1);
        heap.push(std::move(t));
      }
    } else {
      for (size_t i = 0; i < node.children.size(); ++i) {
        HeapEntry c;
        c.score = f.LowerBound(rtree.node(node.children[i]).mbr);
        c.is_tuple = false;
        c.node_id = node.children[i];
        c.path = e.path;
        c.path.push_back(static_cast<int>(i) + 1);
        heap.push(std::move(c));
      }
    }
    stats->MergeMax(heap.size());
  }

  stats->time_ms += watch.ElapsedMs();
  stats->pages_read += io->TotalPhysical() - pages_before;
  return topk.Sorted();
}

}  // namespace rankcube
