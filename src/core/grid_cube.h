// Ranking cube with grid partition and neighborhood search (Ch3).
//
// Materialization: selection dimensions are cubed; the measure of a cell is
// the tid list of tuples in that cell, organized by base block id and packed
// into pseudo blocks so each cell-block fills a disk page (§3.2.3). Query
// processing is the four-step pre-process / search / retrieve / evaluate
// algorithm of §3.3 with Lemma 1's neighborhood expansion (convex f).
#ifndef RANKCUBE_CORE_GRID_CUBE_H_
#define RANKCUBE_CORE_GRID_CUBE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/grid_partition.h"
#include "core/topk_query.h"
#include "cube/cell.h"
#include "storage/table.h"

namespace rankcube {

/// One materialized cuboid A'_1..A'_s _N_1..N_R: cells keyed by selection
/// values + pseudo-block id, holding (bid, tid) pairs sorted by bid.
struct GridCuboid {
  std::vector<int> dims;  ///< selection dims, ascending
  int scale_factor = 1;   ///< sf = floor((prod c_j)^(1/R)) (§3.2.3)
  int pseudo_bins = 1;    ///< bins per dim after merging sf bins
  std::unordered_map<CellKey, std::vector<std::pair<Bid, Tid>>, CellKeyHash>
      cells;

  /// Pseudo-block id covering base block `bid`.
  uint32_t PidOfBid(const EquiDepthGrid& grid, Bid bid) const;

  /// Incremental maintenance of one cell: the tuple's (bid, tid) pair is
  /// inserted into / removed from the cell addressed by its selection
  /// values + pseudo-block id. `key` is caller scratch (reused across
  /// cuboids); it holds the touched cell on return.
  void AddTuple(const Table& table, const EquiDepthGrid& grid, Tid tid,
                Bid bid, CellKey* key);
  void RemoveTuple(const Table& table, const EquiDepthGrid& grid, Tid tid,
                   Bid bid, CellKey* key);

  size_t SizeBytes() const;

  /// Footprint under §3.6.3 ID-list compression (delta-varint coded tid
  /// runs per base block).
  size_t CompressedSizeBytes() const;

 private:
  void CellKeyOfTuple(const Table& table, const EquiDepthGrid& grid, Tid tid,
                      Bid bid, CellKey* key) const;
};

/// Builds one cuboid over `dims` (§3.2.3 pseudo blocking).
GridCuboid BuildGridCuboid(const Table& table, const EquiDepthGrid& grid,
                           const BaseBlockTable& base_blocks,
                           std::vector<int> dims);

/// Charges the construction I/O of one built cuboid to `io`: a full
/// relation scan (the build reads every tuple) plus the cuboid's pages
/// written (category kCuboid, keyed by `index`). Shared by the full cube
/// and the fragments so their cost models cannot diverge.
void ChargeCuboidBuild(const Table& table, IoSession& io,
                       const GridCuboid& cuboid, size_t index);

/// Shared incremental-maintenance pass for the grid family (full cube and
/// fragments share the cuboid representation): absorbs the mutations after
/// `*built_epoch` into the base blocks and every cuboid, charges a read +
/// write-back per distinct touched block/cell to `io` (nullptr = uncharged),
/// and advances `*built_epoch` to the delta's epoch. The equi-depth
/// partition is frozen meta information — new tuples fall into existing
/// bins — so maintenance is local to the touched cells (the §3.2 locality
/// this whole PR leans on).
Status ApplyGridDelta(const Table& table, const DeltaStore& delta,
                      const EquiDepthGrid& grid, BaseBlockTable* base_blocks,
                      std::vector<GridCuboid>* cuboids, uint64_t* built_epoch,
                      IoSession* io);

/// Source of "which tuples of base block b satisfy the selection" — the
/// retrieve step. Implementations wrap one cuboid (full cube) or an
/// intersection of cuboids (ranking fragments, §3.4.2), buffering retrieved
/// pseudo blocks (§3.3.2).
class BlockTidSource {
 public:
  virtual ~BlockTidSource() = default;
  virtual void GetTids(Bid bid, IoSession* io, ExecStats* stats,
                       std::vector<Tid>* out) = 0;
};

/// Retrieve step against a single materialized cuboid cell.
class CuboidTidSource : public BlockTidSource {
 public:
  CuboidTidSource(const GridCuboid* cuboid, const EquiDepthGrid* grid,
                  std::vector<int32_t> cell_values);
  void GetTids(Bid bid, IoSession* io, ExecStats* stats,
               std::vector<Tid>* out) override;

 private:
  const GridCuboid* cuboid_;
  const EquiDepthGrid* grid_;
  std::vector<int32_t> cell_values_;
  // pid -> pointer to the cell's (bid, tid) list (nullptr = empty cell).
  std::unordered_map<uint32_t, const std::vector<std::pair<Bid, Tid>>*>
      buffered_;
};

/// Intersects several cuboid sources (online cuboid-cell assembly, §3.4.2).
class IntersectTidSource : public BlockTidSource {
 public:
  explicit IntersectTidSource(std::vector<std::unique_ptr<CuboidTidSource>>
                                  sources)
      : sources_(std::move(sources)) {}
  void GetTids(Bid bid, IoSession* io, ExecStats* stats,
               std::vector<Tid>* out) override;

 private:
  std::vector<std::unique_ptr<CuboidTidSource>> sources_;
};

/// Unfiltered source for queries with no predicates.
class AllTidSource : public BlockTidSource {
 public:
  explicit AllTidSource(const BaseBlockTable* blocks) : blocks_(blocks) {}
  void GetTids(Bid bid, IoSession* io, ExecStats* stats,
               std::vector<Tid>* out) override;

 private:
  const BaseBlockTable* blocks_;
};

/// The §3.3 query algorithm: progressive neighborhood search over base
/// blocks, retrieving tids through `source` and evaluating scores against
/// `table` (charging get_base_block reads).
std::vector<ScoredTuple> GridNeighborhoodTopK(
    const Table& table, const EquiDepthGrid& grid,
    const BaseBlockTable& base_blocks, const TopKQuery& query,
    BlockTidSource* source, IoSession* io, ExecStats* stats);

/// Full ranking cube: all 2^S - 1 cuboids over the selection dimensions
/// (or a caller-selected subset).
struct GridCubeOptions {
  int block_size = 300;  ///< B (default per §3.5.1)
  /// Cuboids to materialize; empty = every non-empty subset of the
  /// selection dimensions.
  std::vector<std::vector<int>> cuboid_dim_sets;
};

class GridRankingCube {
 public:
  /// Builds the cube, charging construction I/O (one relation scan per
  /// cuboid plus the cuboid pages written) to `io`.
  GridRankingCube(const Table& table, IoSession& io,
                  GridCubeOptions options = GridCubeOptions());

  /// Answers `query`; requires a materialized cuboid matching the query's
  /// predicate dimensions (the full cube always has one).
  Result<std::vector<ScoredTuple>> TopK(const TopKQuery& query, IoSession* io,
                                        ExecStats* stats) const;

  /// Absorbs the table mutations after built_epoch(): inserted tuples land
  /// in their base block + one cell per cuboid, deleted tuples leave
  /// theirs. Empty delta is a no-op. See ApplyGridDelta for I/O charging.
  Status ApplyDelta(const DeltaStore& delta, IoSession* io);
  /// Table epoch this cube's contents reflect.
  uint64_t built_epoch() const { return built_epoch_; }

  const EquiDepthGrid& grid() const { return grid_; }
  const BaseBlockTable& base_blocks() const { return base_blocks_; }
  /// All materialized cuboids (dimension sets, pseudo-block geometry, cell
  /// counts) — the statistics the planner's cost model reads.
  const std::vector<GridCuboid>& cuboids() const { return cuboids_; }
  /// The block-size target P the equi-depth partition was built for.
  int block_size() const { return block_size_; }
  /// Hashed lookup keyed on the sorted dimension set; O(1) per query
  /// instead of a linear scan over 2^S - 1 cuboids.
  const GridCuboid* FindCuboid(const std::vector<int>& dims) const;

  double construction_ms() const { return construction_ms_; }
  /// Physical pages the construction pass charged (scan + cuboid writes).
  uint64_t construction_pages() const { return construction_pages_; }
  size_t SizeBytes() const;

 private:
  const Table& table_;
  EquiDepthGrid grid_;
  BaseBlockTable base_blocks_;
  int block_size_ = 0;
  uint64_t built_epoch_ = 0;
  std::vector<GridCuboid> cuboids_;
  /// sorted dims -> index into cuboids_.
  std::unordered_map<std::vector<int>, size_t, DimSetHash> cuboid_index_;
  double construction_ms_ = 0.0;
  uint64_t construction_pages_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_GRID_CUBE_H_
