// Ranking fragments (§3.4): semi-materialization for high boolean
// dimensionality. Selection dimensions are partitioned into fragments of
// size F; each fragment's cuboids are fully materialized over the *shared*
// equi-depth partition, so any query can be answered online by intersecting
// tid lists from a covering set of cuboids. Space grows linearly with the
// number of selection dimensions (Lemma 2).
#ifndef RANKCUBE_CORE_RANKING_FRAGMENTS_H_
#define RANKCUBE_CORE_RANKING_FRAGMENTS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/grid_cube.h"

namespace rankcube {

struct FragmentsOptions {
  int block_size = 300;   ///< B
  int fragment_size = 2;  ///< F (default per §3.5.1)
  /// Explicit grouping override (empty = even grouping in dim order).
  std::vector<std::vector<int>> groups;
};

class RankingFragments {
 public:
  /// Builds all fragments' cuboids, charging construction I/O (one relation
  /// scan per cuboid plus the cuboid pages written) to `io`.
  RankingFragments(const Table& table, IoSession& io,
                   FragmentsOptions options = FragmentsOptions());

  /// Answers `query`: covered by one cuboid when possible, otherwise by the
  /// minimum covering set with online tid-list intersection (§3.4.2).
  Result<std::vector<ScoredTuple>> TopK(const TopKQuery& query, IoSession* io,
                                        ExecStats* stats) const;

  /// Absorbs the table mutations after built_epoch() into every fragment's
  /// cuboids (shared ApplyGridDelta pass; empty delta is a no-op).
  Status ApplyDelta(const DeltaStore& delta, IoSession* io);
  /// Table epoch these fragments' contents reflect.
  uint64_t built_epoch() const { return built_epoch_; }

  /// Number of cuboids a given query needs (1 = directly covered).
  int CoveringCuboidCount(const TopKQuery& query) const;

  const std::vector<std::vector<int>>& groups() const { return groups_; }
  const EquiDepthGrid& grid() const { return grid_; }
  /// All fragments' cuboids (statistics for the planner's cost model).
  const std::vector<GridCuboid>& cuboids() const { return cuboids_; }
  /// The block-size target P the shared equi-depth partition uses.
  int block_size() const { return block_size_; }
  double construction_ms() const { return construction_ms_; }
  /// Physical pages the construction pass charged (scan + cuboid writes).
  uint64_t construction_pages() const { return construction_pages_; }
  size_t SizeBytes() const;

 private:
  std::vector<int> Covering(const std::vector<int>& query_dims) const;

  const Table& table_;
  EquiDepthGrid grid_;
  BaseBlockTable base_blocks_;
  int block_size_ = 0;
  uint64_t built_epoch_ = 0;
  std::vector<std::vector<int>> groups_;
  std::vector<GridCuboid> cuboids_;          ///< all fragments' cuboids
  std::vector<std::vector<int>> cuboid_dims_;
  /// sorted dims -> cuboid index; resolves directly-covered queries (the
  /// common case: all predicate dims inside one fragment) without running
  /// greedy set cover.
  std::unordered_map<std::vector<int>, size_t, DimSetHash> exact_cover_;
  double construction_ms_ = 0.0;
  uint64_t construction_pages_ = 0;
};

}  // namespace rankcube

#endif  // RANKCUBE_CORE_RANKING_FRAGMENTS_H_
