#include "core/signature_cube.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace rankcube {

SignatureCube::SignatureCube(const Table& table, IoSession& io,
                             SignatureCubeOptions options)
    : table_(table),
      page_size_(io.page_size()),
      alpha_(options.alpha),
      lossy_bloom_(options.lossy_bloom),
      bloom_bits_per_entry_(options.bloom_bits_per_entry),
      built_epoch_(table.epoch()) {
  Stopwatch total;
  uint64_t pages_before = io.TotalPhysical();

  // 1. Partition by R-tree over the ranking dimensions (Algorithm 1 line 1).
  Stopwatch rtree_watch;
  RTreeOptions ropt;
  ropt.max_entries = options.rtree_max_entries;
  rtree_ = std::make_unique<RTree>(table.num_rank_dims(), io, ropt);
  if (options.bulk_load) {
    rtree_->BulkLoadSTR(table);
  } else {
    std::vector<double> point(table.num_rank_dims());
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      if (!table.is_live(t)) continue;
      table.CopyRankRow(t, point.data());
      rtree_->Insert(t, point, /*track_updates=*/false);
    }
  }
  rtree_->ChargeBuild(table, io);
  rtree_build_ms_ = rtree_watch.ElapsedMs();

  // 2. Paths for all tuples (Algorithm 1 line 2).
  Stopwatch cube_watch;
  std::vector<std::vector<int>> paths = rtree_->AllTuplePaths();

  // 3. Per-cuboid, per-cell signature generation (lines 3-8). The default
  //    set is the atomic cuboids: one per boolean dimension (§4.3.3).
  std::vector<std::vector<int>> sets = options.cuboid_dim_sets;
  if (sets.empty()) {
    for (int d = 0; d < table.num_sel_dims(); ++d) sets.push_back({d});
  }
  const int M = rtree_->max_entries();
  for (auto& dims : sets) {
    SignatureCuboid cuboid;
    cuboid.dims = dims;
    std::sort(cuboid.dims.begin(), cuboid.dims.end());
    CellKey key;
    key.values.resize(cuboid.dims.size());
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      if (!table.is_live(t)) continue;
      for (size_t i = 0; i < cuboid.dims.size(); ++i) {
        key.values[i] = table.sel(t, cuboid.dims[i]);
      }
      auto [it, inserted] = cuboid.sigs.try_emplace(key, Signature(M));
      (void)inserted;
      it->second.SetPath(paths[t]);
    }
    for (const auto& [cell, sig] : cuboid.sigs) {
      cuboid.stored[cell] = StoredSignature::Compress(sig, page_size_, alpha_);
      if (options.lossy_bloom) {
        // §4.5: bloom over the SIDs whose bits are set. A set bit b of node
        // `sid` corresponds to the child SID sid*(M+1)+b+1.
        std::vector<Sid> present;
        for (const auto& [sid, bits] : sig.nodes()) {
          for (size_t b = 0; b < bits.size(); ++b) {
            if (bits.Get(b)) {
              present.push_back(sid * static_cast<Sid>(M + 1) +
                                static_cast<Sid>(b + 1));
            }
          }
        }
        size_t bits = std::max<size_t>(
            64, static_cast<size_t>(options.bloom_bits_per_entry *
                                    present.size()));
        BloomFilter bloom(bits,
                          BloomFilter::OptimalHashes(bits, present.size()));
        for (Sid s : present) bloom.Insert(s);
        cuboid.blooms.emplace(cell, std::move(bloom));
      }
    }
    cuboids_.push_back(std::move(cuboid));
    cuboid_index_.emplace(cuboids_.back().dims, cuboids_.size() - 1);
  }
  // Honest construction I/O for the signature pass: one relation scan plus
  // the compressed signatures written (the R-tree part is charged above),
  // mirroring ChargeCuboidBuild for the grid family.
  table.ChargeFullScan(&io);
  uint64_t sig_pages = std::max<uint64_t>(
      1, (CompressedBytes() + page_size_ - 1) / page_size_);
  io.Access(IoCategory::kSignature, uint64_t{1} << 56, sig_pages);
  construction_pages_ = io.TotalPhysical() - pages_before;
  construction_ms_ = cube_watch.ElapsedMs();
  (void)total;
}

const SignatureCuboid* SignatureCube::FindCuboid(
    const std::vector<int>& dims) const {
  std::vector<int> sorted = dims;
  std::sort(sorted.begin(), sorted.end());
  auto it = cuboid_index_.find(sorted);
  return it == cuboid_index_.end() ? nullptr : &cuboids_[it->second];
}

const Signature* SignatureCube::CellSignature(const std::vector<int>& dims,
                                              const CellKey& key) const {
  const SignatureCuboid* c = FindCuboid(dims);
  if (c == nullptr) return nullptr;
  auto it = c->sigs.find(key);
  return it == c->sigs.end() ? nullptr : &it->second;
}

namespace {

/// Pruner for a provably-empty cell: rejects everything.
class EmptyCellPruner : public BooleanPruner {
 public:
  bool MayContain(const std::vector<int>&, IoSession*, ExecStats*) override {
    return false;
  }
  bool Qualifies(Tid, const std::vector<int>&, IoSession*, ExecStats*) override {
    return false;
  }
};

}  // namespace

Result<std::unique_ptr<BooleanPruner>> SignatureCube::MakePruner(
    const std::vector<Predicate>& predicates) const {
  if (predicates.empty()) {
    return std::unique_ptr<BooleanPruner>(nullptr);
  }
  std::vector<SignaturePruner::Source> sources;
  std::vector<int> qdims;
  for (const auto& p : predicates) qdims.push_back(p.dim);
  std::sort(qdims.begin(), qdims.end());

  // Prefer one exactly-matching materialized cuboid; otherwise assemble from
  // the atomic cuboids online (§4.3.3).
  const SignatureCuboid* exact = FindCuboid(qdims);
  if (exact != nullptr) {
    std::vector<int32_t> values;
    ProjectPredicates(predicates, exact->dims, &values);
    CellKey key{values, 0};
    auto it = exact->sigs.find(key);
    if (it == exact->sigs.end()) {
      return std::unique_ptr<BooleanPruner>(new EmptyCellPruner());
    }
    sources.push_back({&it->second, &exact->stored.at(key)});
  } else {
    for (const auto& p : predicates) {
      const SignatureCuboid* atomic = FindCuboid({p.dim});
      if (atomic == nullptr) {
        return Status::NotFound("no atomic cuboid for queried dimension");
      }
      CellKey key{{p.value}, 0};
      auto it = atomic->sigs.find(key);
      if (it == atomic->sigs.end()) {
        return std::unique_ptr<BooleanPruner>(new EmptyCellPruner());
      }
      sources.push_back({&it->second, &atomic->stored.at(key)});
    }
  }
  return std::unique_ptr<BooleanPruner>(
      new SignaturePruner(std::move(sources)));
}

Result<std::vector<ScoredTuple>> SignatureCube::TopK(const TopKQuery& query,
                                                     IoSession* io,
                                                     ExecStats* stats) const {
  if (!query.function) {
    return Status::InvalidArgument("query has no ranking function");
  }
  auto pruner = MakePruner(query.predicates);
  if (!pruner.ok()) return pruner.status();
  if (pruner.value() == nullptr) {
    NullPruner null_pruner;
    return RTreeBranchAndBoundTopK(table_, *rtree_, query, &null_pruner, io,
                                   stats);
  }
  return RTreeBranchAndBoundTopK(table_, *rtree_, query,
                                 pruner.value().get(), io, stats);
}

void SignatureCube::RebuildStored(SignatureCuboid* cuboid,
                                  const CellKey& key) {
  auto it = cuboid->sigs.find(key);
  if (it == cuboid->sigs.end() || it->second.empty()) {
    cuboid->sigs.erase(key);
    cuboid->stored.erase(key);
    return;
  }
  cuboid->stored[key] =
      StoredSignature::Compress(it->second, page_size_, alpha_);
}

void SignatureCube::InsertBatch(const std::vector<Tid>& tids, IoSession* io) {
  // Algorithm 2. Batch variant: collect R-tree path updates for all inserted
  // tuples first, then touch each affected cell signature once.
  std::vector<PathUpdate> updates;
  std::vector<double> point(table_.num_rank_dims());
  for (Tid t : tids) {
    table_.CopyRankRow(t, point.data());
    auto u = rtree_->Insert(t, point, /*track_updates=*/true);
    updates.insert(updates.end(), std::make_move_iterator(u.begin()),
                   std::make_move_iterator(u.end()));
  }
  ApplyPathUpdates(updates, io);
}

void SignatureCube::ApplyPathUpdates(const std::vector<PathUpdate>& updates,
                                     IoSession* io) {
  // Net each tuple's moves across the batch first: a split shifts the
  // stay-behind entries down while the movers' OLD positions alias the
  // stayers' NEW ones, so applying clear/set per update in batch order can
  // clear a bit another tuple just set (and a tuple touched by several
  // operations must not materialize its intermediate positions). Chain
  // per-tid to (first old -> last new), drop no-ops, and below apply every
  // clear before any set.
  std::vector<PathUpdate> net;
  {
    std::unordered_map<Tid, size_t> slot;
    for (const auto& u : updates) {
      auto [it, fresh] = slot.try_emplace(u.tid, net.size());
      if (fresh) {
        net.push_back(u);
      } else {
        net[it->second].new_path = u.new_path;
      }
    }
    net.erase(std::remove_if(net.begin(), net.end(),
                             [](const PathUpdate& u) {
                               return u.old_path == u.new_path;
                             }),
              net.end());
  }
  for (auto& cuboid : cuboids_) {
    // Group updates by cell (lines 2-4 of Algorithm 2).
    std::unordered_map<CellKey, std::vector<const PathUpdate*>, CellKeyHash>
        by_cell;
    CellKey key;
    key.values.resize(cuboid.dims.size());
    for (const auto& u : net) {
      for (size_t i = 0; i < cuboid.dims.size(); ++i) {
        key.values[i] = table_.sel(u.tid, cuboid.dims[i]);
      }
      by_cell[key].push_back(&u);
    }
    for (auto& [cell, cell_updates] : by_cell) {
      auto sig_it = cuboid.sigs.find(cell);
      if (sig_it == cuboid.sigs.end()) {
        sig_it =
            cuboid.sigs.try_emplace(cell, Signature(rtree_->max_entries()))
                .first;
      }
      // Charge read of the cell's partial signatures + write-back
      // (io == nullptr = uncharged maintenance, as in ApplyGridDelta).
      if (io != nullptr) {
        auto stored_it = cuboid.stored.find(cell);
        uint64_t sig_pages = 1;
        if (stored_it != cuboid.stored.end()) {
          sig_pages = std::max<uint64_t>(
              1, (stored_it->second.CompressedBytes() + page_size_ - 1) /
                     page_size_);
        }
        io->Access(IoCategory::kSignature, CellKeyHash{}(cell),
                   2 * sig_pages);  // read + write back
      }
      // Two phases: every clear before any set (see the netting above).
      for (const PathUpdate* u : cell_updates) {
        if (!u->old_path.empty()) sig_it->second.ClearPath(u->old_path);
      }
      for (const PathUpdate* u : cell_updates) {
        if (!u->new_path.empty()) sig_it->second.SetPath(u->new_path);
      }
      RebuildStored(&cuboid, cell);
      if (lossy_bloom_) {
        // The §4.5 blooms must never go false-negative: every SID along a
        // set path enters the cell's bloom. Cleared paths stay as stale
        // bits — lossy queries verify candidates against the table, so
        // extra positives only cost verifications.
        auto bloom_it = cuboid.blooms.find(cell);
        if (bloom_it == cuboid.blooms.end()) {
          size_t bits = std::max<size_t>(
              64, static_cast<size_t>(bloom_bits_per_entry_ * 64));
          bloom_it = cuboid.blooms
                         .emplace(cell, BloomFilter(
                                            bits, BloomFilter::OptimalHashes(
                                                      bits, 64)))
                         .first;
        }
        const int M = rtree_->max_entries();
        for (const PathUpdate* u : cell_updates) {
          for (size_t l = 1; l <= u->new_path.size(); ++l) {
            bloom_it->second.Insert(SidOfPath(u->new_path, l, M));
          }
        }
      }
    }
  }
}

Status SignatureCube::ApplyDelta(const DeltaStore& delta, IoSession* io) {
  if (built_epoch_ >= delta.epoch()) return Status::OK();  // empty: no-op
  // Algorithm 2 both ways: the shared R-tree pass (inserts, lazy deletes,
  // leaf-level I/O charging) collects the path-update sets — clear-only
  // for removed tuples — and one grouped pass updates every affected cell
  // signature.
  std::vector<PathUpdate> updates;
  ApplyRTreeDelta(rtree_.get(), table_, delta, &built_epoch_, &updates, io);
  ApplyPathUpdates(updates, io);
  return Status::OK();
}

namespace {

/// §4.5 pruner: bloom tests on node paths (one-sided), exact verification
/// of candidate tuples against the base table.
class LossyBloomPruner : public BooleanPruner {
 public:
  LossyBloomPruner(const Table& table, std::vector<Predicate> preds,
                   std::vector<const BloomFilter*> blooms, int M)
      : table_(table), preds_(std::move(preds)), blooms_(std::move(blooms)),
        m_(M) {}

  bool MayContain(const std::vector<int>& path, IoSession*, ExecStats*) override {
    if (path.empty()) return true;
    Sid sid = SidOfPath(path, path.size(), m_);
    for (const auto* bloom : blooms_) {
      if (!bloom->MayContain(sid)) return false;
    }
    return true;
  }

  bool Qualifies(Tid tid, const std::vector<int>& path, IoSession* io,
                 ExecStats* stats) override {
    if (!MayContain(path, io, stats)) return false;
    // Bloom false positives make tuple-level bits unreliable; verify.
    table_.ChargeRowFetch(io, tid);
    for (const auto& p : preds_) {
      if (table_.sel(tid, p.dim) != p.value) return false;
    }
    return true;
  }

 private:
  const Table& table_;
  std::vector<Predicate> preds_;
  std::vector<const BloomFilter*> blooms_;
  int m_;
};

}  // namespace

Result<std::vector<ScoredTuple>> SignatureCube::TopKLossy(
    const TopKQuery& query, IoSession* io, ExecStats* stats) const {
  if (!query.function) {
    return Status::InvalidArgument("query has no ranking function");
  }
  std::vector<const BloomFilter*> blooms;
  for (const auto& p : query.predicates) {
    const SignatureCuboid* atomic = FindCuboid({p.dim});
    if (atomic == nullptr) {
      return Status::NotFound("no atomic cuboid for queried dimension");
    }
    auto it = atomic->blooms.find(CellKey{{p.value}, 0});
    if (it == atomic->blooms.end()) {
      return std::vector<ScoredTuple>{};  // value absent: empty result
    }
    blooms.push_back(&it->second);
  }
  if (blooms.empty()) {
    NullPruner pruner;
    return RTreeBranchAndBoundTopK(table_, *rtree_, query, &pruner, io, stats);
  }
  LossyBloomPruner pruner(table_, query.predicates, std::move(blooms),
                          rtree_->max_entries());
  return RTreeBranchAndBoundTopK(table_, *rtree_, query, &pruner, io, stats);
}

size_t SignatureCube::LossyBloomBytes() const {
  size_t bytes = 0;
  for (const auto& c : cuboids_) {
    for (const auto& [cell, bloom] : c.blooms) {
      (void)cell;
      bytes += bloom.SizeBytes();
    }
  }
  return bytes;
}

size_t SignatureCube::CompressedBytes() const {
  size_t bytes = 0;
  for (const auto& c : cuboids_) {
    for (const auto& [cell, stored] : c.stored) {
      (void)cell;
      bytes += stored.CompressedBytes();
    }
  }
  return bytes;
}

size_t SignatureCube::BaselineBytes() const {
  size_t bytes = 0;
  for (const auto& c : cuboids_) {
    for (const auto& [cell, stored] : c.stored) {
      (void)cell;
      bytes += stored.BaselineBytes();
    }
  }
  return bytes;
}

// ------------------------------------------------------ SignaturePruner --

void SignaturePruner::EnsureLoaded(size_t src, const std::vector<int>& path,
                                   size_t len, IoSession* io,
                                   ExecStats* stats) {
  const StoredSignature* stored = sources_[src].stored;
  if (stored == nullptr) return;
  Stopwatch watch;
  const int M = sources_[src].sig->M();
  for (size_t l = 0; l <= len; ++l) {
    Sid sid = SidOfPath(path, l, M);
    size_t partial = stored->PartialOf(sid);
    if (partial == SIZE_MAX) continue;
    auto key = std::make_pair(src, partial);
    if (loaded_.insert(key).second) {
      io->Access(IoCategory::kSignature,
                    (static_cast<uint64_t>(src) << 48) ^ partial);
      ++stats->signature_pages;
    }
  }
  stats->signature_ms += watch.ElapsedMs();
}

bool SignaturePruner::MayContain(const std::vector<int>& node_path,
                                 IoSession* io, ExecStats* stats) {
  for (size_t s = 0; s < sources_.size(); ++s) {
    EnsureLoaded(s, node_path, node_path.size(), io, stats);
    if (!sources_[s].sig->TestPath(node_path)) return false;
  }
  return true;
}

bool SignaturePruner::Qualifies(Tid tid, const std::vector<int>& tuple_path,
                                IoSession* io, ExecStats* stats) {
  (void)tid;
  // Leaf-entry bits are per-tuple, so the AND over sources is exact here.
  return MayContain(tuple_path, io, stats);
}

}  // namespace rankcube
