#include "core/signature.h"

#include <algorithm>
#include <deque>

#include "bitmap/codec.h"

namespace rankcube {

Sid SidOfPath(const std::vector<int>& path, size_t len, int M) {
  Sid sid = 0;
  for (size_t i = 0; i < len; ++i) {
    sid = sid * static_cast<Sid>(M + 1) + static_cast<Sid>(path[i]);
  }
  return sid;
}

Signature Signature::FromPaths(const std::vector<std::vector<int>>& paths,
                               int M) {
  Signature sig(M);
  for (const auto& p : paths) sig.SetPath(p);
  return sig;
}

void Signature::SetPath(const std::vector<int>& path) {
  Sid sid = 0;
  for (size_t l = 0; l < path.size(); ++l) {
    BitVector& node = nodes_[sid];
    size_t bit = static_cast<size_t>(path[l] - 1);
    while (node.size() <= bit) node.PushBit(false);
    node.Set(bit, true);
    sid = sid * static_cast<Sid>(m_ + 1) + static_cast<Sid>(path[l]);
  }
}

void Signature::ClearPath(const std::vector<int>& path) {
  if (path.empty()) return;
  // Clear the deepest bit, then propagate emptiness upward (§4.2.5).
  for (size_t len = path.size(); len > 0; --len) {
    Sid sid = SidOfPath(path, len - 1, m_);
    auto it = nodes_.find(sid);
    if (it == nodes_.end()) return;
    size_t bit = static_cast<size_t>(path[len - 1] - 1);
    if (bit < it->second.size()) it->second.Set(bit, false);
    if (it->second.PopCount() > 0) return;  // still non-empty: stop
    nodes_.erase(it);
  }
}

bool Signature::TestPath(const std::vector<int>& path, size_t len) const {
  Sid sid = 0;
  for (size_t l = 0; l < len; ++l) {
    auto it = nodes_.find(sid);
    if (it == nodes_.end()) return false;
    size_t bit = static_cast<size_t>(path[l] - 1);
    if (bit >= it->second.size() || !it->second.Get(bit)) return false;
    sid = sid * static_cast<Sid>(m_ + 1) + static_cast<Sid>(path[l]);
  }
  return true;
}

const BitVector* Signature::Node(Sid sid) const {
  auto it = nodes_.find(sid);
  return it == nodes_.end() ? nullptr : &it->second;
}

Signature Signature::Union(const Signature& a, const Signature& b) {
  Signature out(a.m_);
  out.nodes_ = a.nodes_;
  for (const auto& [sid, bits] : b.nodes_) {
    BitVector& dst = out.nodes_[sid];
    while (dst.size() < bits.size()) dst.PushBit(false);
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits.Get(i)) dst.Set(i, true);
    }
  }
  return out;
}

// Recursive intersection (§4.3.3): a bit survives only if both inputs have
// it and, when a child node exists beneath it, the child intersection is
// non-empty.
bool Signature::IntersectRec(const Signature& a, const Signature& b, Sid sid,
                             Signature* out) {
  const int M = a.m_;
  const BitVector* na = a.Node(sid);
  const BitVector* nb = b.Node(sid);
  if (na == nullptr || nb == nullptr) return false;
  size_t len = std::min(na->size(), nb->size());
  BitVector bits(len, false);
  bool any = false;
  for (size_t i = 0; i < len; ++i) {
    if (!na->Get(i) || !nb->Get(i)) continue;
    Sid child = sid * static_cast<Sid>(M + 1) + static_cast<Sid>(i + 1);
    bool a_has = a.Node(child) != nullptr;
    bool b_has = b.Node(child) != nullptr;
    if (a_has || b_has) {
      if (!IntersectRec(a, b, child, out)) continue;  // empty child
    }
    bits.Set(i, true);
    any = true;
  }
  if (!any) return false;
  out->nodes_[sid] = std::move(bits);
  return true;
}

Signature Signature::Intersect(const Signature& a, const Signature& b) {
  Signature out(a.m_);
  IntersectRec(a, b, /*sid=*/0, &out);
  return out;
}

size_t Signature::BaselineBits() const {
  // BL string coding (§4.2.1): ceil(log2 M) length bits + the array bits.
  size_t bits = 0;
  size_t lb = static_cast<size_t>(Log2Ceil(static_cast<uint64_t>(m_)));
  for (const auto& [sid, node] : nodes_) {
    (void)sid;
    bits += lb + node.size();
  }
  return bits;
}

StoredSignature StoredSignature::Compress(const Signature& sig,
                                          size_t page_size, double alpha) {
  StoredSignature out;
  out.baseline_bits_ = sig.BaselineBits();
  if (sig.empty()) return out;

  const size_t budget_bits =
      std::max<size_t>(64, static_cast<size_t>(alpha * page_size * 8));
  const int M = sig.M();

  // BFS from the root, honoring child (bit) order.
  std::deque<Sid> queue{0};
  Partial current;
  current.ref_sid = 0;
  BitVector blob;
  while (!queue.empty()) {
    Sid sid = queue.front();
    queue.pop_front();
    const BitVector* node = sig.Node(sid);
    if (node == nullptr) continue;
    size_t added = EncodeNodeAdaptive(*node, M, &blob);
    current.node_sids.push_back(sid);
    out.owner_[sid] = out.partials_.size();
    current.bits += added;
    for (size_t i = 0; i < node->size(); ++i) {
      if (!node->Get(i)) continue;
      Sid child = sid * static_cast<Sid>(M + 1) + static_cast<Sid>(i + 1);
      if (sig.Node(child) != nullptr) queue.push_back(child);
    }
    if (current.bits >= budget_bits) {
      out.partials_.push_back(std::move(current));
      current = Partial();
      current.ref_sid = queue.empty() ? 0 : queue.front();
      blob = BitVector();
    }
  }
  if (!current.node_sids.empty()) out.partials_.push_back(std::move(current));
  return out;
}

size_t StoredSignature::PartialOf(Sid sid) const {
  auto it = owner_.find(sid);
  return it == owner_.end() ? SIZE_MAX : it->second;
}

size_t StoredSignature::CompressedBytes() const {
  size_t bits = 0;
  for (const auto& p : partials_) bits += p.bits;
  return (bits + 7) / 8;
}

}  // namespace rankcube
