#include "planner/planner.h"

#include <algorithm>

namespace rankcube {

/// One costed candidate row under the requested objective (shared by the
/// forced and cost-based paths so their cost fields stay in the same
/// units).
PlanCandidate Planner::MakeCandidate(const std::string& engine,
                                     const CostEstimate& est,
                                     const QueryOptions& opts) const {
  PlanCandidate cand;
  cand.engine = engine;
  cand.feasible = est.feasible;
  cand.est_pages = est.pages;
  cand.reason = est.reason;
  cand.est_cost =
      opts.optimize_for == OptimizeFor::kPages
          ? est.pages
          : est.pages * options_.cost.page_cost_us +
                est.tuples * options_.cost.tuple_cost_us;
  return cand;
}

Result<PlanInfo> Planner::Plan(const TopKQuery& query,
                               const TableStats& stats,
                               const Catalog& catalog,
                               const QueryOptions& opts,
                               const CostFeedback* feedback) const {
  if (catalog.size() == 0) {
    return Status::NotFound("planner catalog is empty");
  }

  // Learned per-family correction, applied to the analytic page estimate
  // before costing so the objective (and the reported estimated_pages)
  // reflect measured I/O, not just the model.
  auto correct = [feedback](const std::string& engine, CostEstimate est) {
    if (feedback != nullptr && est.feasible) {
      est.pages *= feedback->Correction(engine);
    }
    return est;
  };

  if (!opts.force_engine.empty()) {
    const AccessStructureInfo* info = catalog.Find(opts.force_engine);
    if (info == nullptr) {
      std::string keys;
      for (const std::string& key : catalog.Keys()) {
        if (!keys.empty()) keys += ", ";
        keys += key;
      }
      return Status::NotFound("force_engine '" + opts.force_engine +
                              "' is not in the catalog; cataloged engines: " +
                              keys);
    }
    PlanInfo plan;
    plan.forced = true;
    plan.chosen_engine = opts.force_engine;
    CostEstimate est =
        correct(info->engine, EstimateCost(*info, query, stats, options_.cost));
    plan.estimated_pages = est.feasible ? est.pages : 0.0;
    plan.candidates.push_back(MakeCandidate(info->engine, est, opts));
    return plan;
  }

  PlanInfo plan;
  for (const auto& info : catalog.entries()) {
    plan.candidates.push_back(MakeCandidate(
        info.engine,
        correct(info.engine, EstimateCost(info, query, stats, options_.cost)),
        opts));
  }

  // Feasible candidates first, each group by ascending objective; ties
  // break on the engine key so plans are deterministic across runs.
  std::sort(plan.candidates.begin(), plan.candidates.end(),
            [](const PlanCandidate& a, const PlanCandidate& b) {
              if (a.feasible != b.feasible) return a.feasible;
              if (a.est_cost != b.est_cost) return a.est_cost < b.est_cost;
              return a.engine < b.engine;
            });

  if (plan.candidates.empty() || !plan.candidates.front().feasible) {
    std::string reasons;
    for (const auto& c : plan.candidates) {
      reasons += "\n  " + c.engine + ": " + c.reason;
    }
    return Status::NotFound("no access structure can answer " +
                            query.ToString() + reasons);
  }
  plan.chosen_engine = plan.candidates.front().engine;
  plan.estimated_pages = plan.candidates.front().est_pages;
  return plan;
}

}  // namespace rankcube
