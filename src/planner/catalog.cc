#include "planner/catalog.h"

#include <algorithm>
#include <utility>

namespace rankcube {

TableStats TableStats::Compute(const Table& table, size_t page_size) {
  TableStats ts;
  ts.num_rows = table.num_live();
  ts.num_sel_dims = table.num_sel_dims();
  ts.num_rank_dims = table.num_rank_dims();
  ts.page_size = page_size;
  ts.row_bytes = table.RowBytes();
  ts.rows_per_page = table.RowsPerPage(page_size);
  ts.table_pages = table.NumPages(page_size);

  ts.epoch = table.epoch();
  ts.delta = &table.delta();
  std::vector<Tid> inserted, deleted;
  table.delta().ChangesSince(table.delta().compacted_epoch(), &inserted,
                             &deleted);
  ts.delta_rows = inserted.size();
  ts.deleted_since_compact = deleted.size();
  if (!inserted.empty()) {
    ts.delta_first_row = inserted.front();
    ts.delta_pages = table.TailPages(ts.delta_first_row, page_size);
  }

  ts.value_counts.resize(ts.num_sel_dims);
  for (int d = 0; d < ts.num_sel_dims; ++d) {
    ts.value_counts[d].assign(table.schema().sel_cardinality[d], 0);
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      if (!table.is_live(t)) continue;
      ++ts.value_counts[d][table.sel(t, d)];
    }
  }
  return ts;
}

void TableStats::ApplyInsert(const Table& table, Tid tid) {
  ++num_rows;
  for (int d = 0; d < num_sel_dims; ++d) ++value_counts[d][table.sel(tid, d)];
  table_pages = table.NumPages(page_size);
  if (delta_rows == 0) delta_first_row = tid;
  ++delta_rows;
  delta_pages = table.TailPages(delta_first_row, page_size);
  epoch = table.epoch();
}

void TableStats::ApplyDelete(const Table& table, Tid tid) {
  --num_rows;
  for (int d = 0; d < num_sel_dims; ++d) --value_counts[d][table.sel(tid, d)];
  ++deleted_since_compact;
  epoch = table.epoch();
}

double TableStats::PredicateSelectivity(const Predicate& p) const {
  if (num_rows == 0) return 0.0;
  if (p.dim < 0 || p.dim >= num_sel_dims) return 0.0;
  const auto& counts = value_counts[p.dim];
  if (p.value < 0 || static_cast<size_t>(p.value) >= counts.size()) return 0.0;
  return static_cast<double>(counts[p.value]) /
         static_cast<double>(num_rows);
}

double TableStats::Selectivity(
    const std::vector<Predicate>& predicates) const {
  double sel = 1.0;
  for (const auto& p : predicates) sel *= PredicateSelectivity(p);
  return sel;
}

void Catalog::Put(AccessStructureInfo info) {
  for (auto& entry : entries_) {
    if (entry.engine == info.engine) {
      entry = std::move(info);
      return;
    }
  }
  entries_.push_back(std::move(info));
}

const AccessStructureInfo* Catalog::Find(const std::string& engine) const {
  for (const auto& entry : entries_) {
    if (entry.engine == engine) return &entry;
  }
  return nullptr;
}

std::vector<std::string> Catalog::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& entry : entries_) keys.push_back(entry.engine);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace rankcube
