#include "planner/catalog.h"

#include <utility>

namespace rankcube {

TableStats TableStats::Compute(const Table& table, size_t page_size) {
  TableStats ts;
  ts.num_rows = table.num_rows();
  ts.num_sel_dims = table.num_sel_dims();
  ts.num_rank_dims = table.num_rank_dims();
  ts.page_size = page_size;
  ts.row_bytes = table.RowBytes();
  ts.rows_per_page = table.RowsPerPage(page_size);
  ts.table_pages = table.NumPages(page_size);

  ts.value_counts.resize(ts.num_sel_dims);
  for (int d = 0; d < ts.num_sel_dims; ++d) {
    ts.value_counts[d].assign(table.schema().sel_cardinality[d], 0);
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      ++ts.value_counts[d][table.sel(t, d)];
    }
  }
  return ts;
}

double TableStats::PredicateSelectivity(const Predicate& p) const {
  if (num_rows == 0) return 0.0;
  if (p.dim < 0 || p.dim >= num_sel_dims) return 0.0;
  const auto& counts = value_counts[p.dim];
  if (p.value < 0 || static_cast<size_t>(p.value) >= counts.size()) return 0.0;
  return static_cast<double>(counts[p.value]) /
         static_cast<double>(num_rows);
}

double TableStats::Selectivity(
    const std::vector<Predicate>& predicates) const {
  double sel = 1.0;
  for (const auto& p : predicates) sel *= PredicateSelectivity(p);
  return sel;
}

void Catalog::Put(AccessStructureInfo info) {
  for (auto& entry : entries_) {
    if (entry.engine == info.engine) {
      entry = std::move(info);
      return;
    }
  }
  entries_.push_back(std::move(info));
}

const AccessStructureInfo* Catalog::Find(const std::string& engine) const {
  for (const auto& entry : entries_) {
    if (entry.engine == engine) return &entry;
  }
  return nullptr;
}

}  // namespace rankcube
