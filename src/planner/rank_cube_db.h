// RankCubeDb: the primary public API of this repository.
//
// A RankCubeDb owns a relation, its simulated block device, and a catalog
// of every registered physical access structure (grid ranking cube,
// fragments, signature cube, R-tree, boolean-first indexes, table scan,
// index-merge, ...). Callers submit logical top-k queries —
//
//   RankCubeDb db(std::move(table));
//   auto result = db.Query(QueryBuilder()
//                              .Where(0, red).Where(2, sedan)
//                              .OrderByLinear({1.0, 2.0})
//                              .Limit(10)
//                              .Build());
//
// — and never name an engine: a cost-based Planner estimates the page
// reads of every cataloged structure (the paper's block-access analysis)
// and routes the query to the cheapest feasible one. Structures are built
// lazily, the first time a plan chooses them; their exact statistics then
// replace the catalog's analytic predictions. The decision is returned in
// TopKResult::plan, and Explain() exposes it without executing anything.
//
// force_engine in QueryOptions pins a specific structure (every engine
// remains individually reachable, e.g. for the parity tests and figure
// benches); optimize_for switches the cost objective between raw pages
// and device-weighted latency.
#ifndef RANKCUBE_PLANNER_RANK_CUBE_DB_H_
#define RANKCUBE_PLANNER_RANK_CUBE_DB_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/registry.h"
#include "planner/planner.h"
#include "storage/page_store.h"
#include "storage/table.h"

namespace rankcube {

class RankCubeDb {
 public:
  struct Options {
    /// Block-device geometry shared by the table and every structure.
    PageStore::Options store;
    /// Per-family construction knobs handed to the engine factories.
    EngineBuildOptions build;
    /// Registry keys to catalog; empty = every registered engine. Keys
    /// outside this list are not plannable and not forceable on this db.
    std::vector<std::string> engines;
    PlannerOptions planner;
  };

  /// Takes ownership of `table`; computes TableStats (one in-memory pass)
  /// and catalogs predicted AccessStructureInfo for every engine. Builds
  /// nothing.
  explicit RankCubeDb(Table table, Options options = Options());

  RankCubeDb(const RankCubeDb&) = delete;
  RankCubeDb& operator=(const RankCubeDb&) = delete;

  const Table& table() const { return table_; }
  const PageStore& store() const { return store_; }
  const TableStats& table_stats() const { return stats_; }

  /// Plans + executes one query in a fresh I/O session. The result carries
  /// the chosen plan (TopKResult::plan) next to the measured ExecStats.
  Result<TopKResult> Query(const TopKQuery& query,
                           const QueryOptions& opts = QueryOptions());

  /// The plan Query() would run, without building or executing anything.
  Result<PlanInfo> Explain(const TopKQuery& query,
                           const QueryOptions& opts = QueryOptions()) const;

  /// Sequential workload execution, one fresh session per query; each
  /// query is planned individually (a mixed workload may split across
  /// engines). Per-query failures are tallied in the report.
  Result<BatchReport> QueryAll(const std::vector<TopKQuery>& workload,
                               const QueryOptions& opts = QueryOptions(),
                               BatchOptions batch = BatchOptions());

  /// Parallel workload execution on `num_threads` workers; same routing,
  /// deterministic workload-order report (BatchExecutor::ExecuteParallel).
  Result<BatchReport> QueryParallel(const std::vector<TopKQuery>& workload,
                                    int num_threads,
                                    const QueryOptions& opts = QueryOptions(),
                                    BatchOptions batch = BatchOptions());

  /// The engine under `name`, built on first use (thread-safe; build I/O
  /// is charged to the db's construction session). The pointer stays valid
  /// for the db's lifetime.
  Result<const RankingEngine*> Engine(const std::string& name);

  /// Catalog snapshot: predicted entries, upgraded in place to exact
  /// Describe() output for structures that have been built.
  std::vector<AccessStructureInfo> CatalogEntries() const;

  /// Registry keys this db catalogs (sorted).
  std::vector<std::string> EngineNames() const;

  /// Physical pages charged by all lazy structure builds so far.
  uint64_t construction_pages() const;

 private:
  /// Plans `query` and returns the built engine + plan (the router body).
  Result<RoutedEngine> Route(const TopKQuery& query,
                             const QueryOptions& opts);

  /// Must hold mu_. Builds `name` if needed and returns it.
  Result<const RankingEngine*> EngineLocked(const std::string& name);

  Table table_;
  PageStore store_;
  TableStats stats_;
  Options options_;
  Planner planner_;

  /// Guards catalog_, engines_ and build_io_: planning is a pure in-memory
  /// computation and builds are rare, so one coarse lock suffices; query
  /// execution itself runs outside the lock on per-query sessions.
  mutable std::mutex mu_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<RankingEngine>> engines_;
  IoSession build_io_;
};

}  // namespace rankcube

#endif  // RANKCUBE_PLANNER_RANK_CUBE_DB_H_
