// RankCubeDb: the primary public API of this repository.
//
// A RankCubeDb owns a relation, its simulated block device, and a catalog
// of every registered physical access structure (grid ranking cube,
// fragments, signature cube, R-tree, boolean-first indexes, table scan,
// index-merge, ...). Callers submit logical top-k queries —
//
//   RankCubeDb db(std::move(table));
//   auto result = db.Query(QueryBuilder()
//                              .Where(0, red).Where(2, sedan)
//                              .OrderByLinear({1.0, 2.0})
//                              .Limit(10)
//                              .Build());
//
// — and never name an engine: a cost-based Planner estimates the page
// reads of every cataloged structure (the paper's block-access analysis)
// and routes the query to the cheapest feasible one. Structures are built
// lazily, the first time a plan chooses them; their exact statistics then
// replace the catalog's analytic predictions. The decision is returned in
// TopKResult::plan, and Explain() exposes it without executing anything.
//
// The db is also the write path. Insert/Delete mutate the owned table and
// its delta store; every query stays exact immediately (stale structures
// overlay the delta, see engine/engine.h), and the planner prices that
// overlay — a structure that drifted far enough loses to a scan until
// Compact() brings every built structure back to the current epoch
// (incrementally where the structure supports it, by rebuild otherwise)
// and refreshes the statistics.
//
// Concurrency: reads (Query/QueryAll/QueryParallel/Explain/Engine) share
// the db; writes (Insert/Delete/Compact) take it exclusively — the
// standard single-writer/many-readers contract, enforced internally with a
// shared mutex, so mixed workloads need no external locking.
//
// force_engine in QueryOptions pins a specific structure (every engine
// remains individually reachable, e.g. for the parity tests and figure
// benches); optimize_for switches the cost objective between raw pages
// and device-weighted latency.
#ifndef RANKCUBE_PLANNER_RANK_CUBE_DB_H_
#define RANKCUBE_PLANNER_RANK_CUBE_DB_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cache/feedback.h"
#include "cache/query_key.h"
#include "cache/result_cache.h"
#include "engine/batch_executor.h"
#include "engine/registry.h"
#include "planner/planner.h"
#include "storage/durability.h"
#include "storage/page_store.h"
#include "storage/table.h"

namespace rankcube {

/// Consistent point-in-time snapshot of the db: relation size, delta
/// drift, per-structure freshness, and the cumulative query-traffic
/// counters (the payload of the server's STATS verb). Taken under the
/// same reader gate queries hold, so the fields are mutually consistent —
/// rows/epoch/freshness all reflect one instant.
struct DbStats {
  // -- relation --
  uint64_t rows = 0;       ///< heap rows incl. tombstones
  uint64_t live_rows = 0;  ///< rows minus tombstones
  uint64_t epoch = 0;
  uint64_t compacted_epoch = 0;
  uint64_t pending_inserts = 0;  ///< log entries since the last compaction
  uint64_t pending_deletes = 0;  ///< (the delta drift every stale structure
                                 ///< pays for at query time)
  // -- structures --
  size_t engines_cataloged = 0;
  size_t engines_built = 0;
  std::map<std::string, FreshnessInfo> freshness;  ///< built engines only
  uint64_t construction_pages = 0;
  // -- query traffic since construction --
  uint64_t queries_executed = 0;
  uint64_t query_failures = 0;  ///< incl. budget/deadline rejections
  uint64_t pages_logical = 0;
  uint64_t pages_charged = 0;  ///< deterministic per-query accounting
  uint64_t pages_device = 0;   ///< actual simulated device reads
  /// Shared-buffer-cache hit rate over all query I/O so far
  /// (1 - device/logical); 0 when no pages were read yet.
  double cache_hit_rate = 0.0;
  // -- result cache (all zero when Options::cache.max_bytes == 0) --
  uint64_t cache_hits = 0;        ///< exact (query, epoch) hits
  uint64_t cache_reuse_hits = 0;  ///< certified near-duplicate reuses
  uint64_t cache_misses = 0;      ///< cacheable queries executed in full
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_max_bytes = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  // -- durability (all zero for an ephemeral db) --
  bool durable = false;    ///< opened with a data_dir (WAL + checkpoints)
  bool read_only = false;  ///< degraded: serving last good state, writes
                           ///< refused with kNotSupported
  std::string degraded_reason;     ///< set iff read_only
  uint64_t checkpoint_epoch = 0;   ///< epoch of the live checkpoint file
  /// Checkpoints committed over the data dir's lifetime (1 = seed);
  /// advances on every Checkpoint()/Compact() even when the epoch did not.
  uint64_t checkpoint_generation = 0;
  uint64_t wal_records = 0;  ///< records in the live WAL segment — i.e.
                             ///< since the last checkpoint (the recovery
                             ///< exposure an operator watches)
  uint64_t wal_bytes = 0;
  uint64_t backing_reads = 0;         ///< verified checkpoint preads
  uint64_t backing_corruptions = 0;   ///< CRC failures on those reads
  uint64_t recovered_records = 0;     ///< WAL records replayed at open
  double recovery_ms = 0.0;

  /// "key=value" lines, one per field (freshness flattened per engine);
  /// the STATS wire payload and a debugging aid.
  std::string ToString() const;
};

/// What one Compact() call did.
struct CompactionReport {
  uint64_t epoch = 0;            ///< epoch every structure now reflects
  uint64_t absorbed_inserts = 0; ///< log entries folded in
  uint64_t absorbed_deletes = 0;
  size_t maintained = 0;  ///< structures incrementally maintained
  size_t rebuilt = 0;     ///< structures rebuilt from scratch
  uint64_t pages = 0;     ///< physical maintenance + rebuild I/O
};

class RankCubeDb {
 public:
  struct Options {
    /// Block-device geometry shared by the table and every structure.
    PageStore::Options store;
    /// Per-family construction knobs handed to the engine factories.
    EngineBuildOptions build;
    /// Registry keys to catalog; empty = every registered engine. Keys
    /// outside this list are not plannable and not forceable on this db.
    std::vector<std::string> engines;
    PlannerOptions planner;
    /// Durable-storage knobs; used only by Open() (data_dir must be set
    /// there). The plain constructor ignores this and stays ephemeral.
    DurabilityOptions durability;
    /// Workload-aware result cache (cache/result_cache.h). Disabled by
    /// default (max_bytes == 0): existing callers keep the exact page
    /// accounting of the uncached path; rankcubed opts in via --cache_mb.
    ResultCacheOptions cache;
    /// True-cost planner feedback (cache/feedback.h); on by default —
    /// corrections start at 1.0, so routing is unchanged until measured
    /// I/O says otherwise.
    CostFeedbackOptions feedback;
  };

  /// Takes ownership of `table`; computes TableStats (one in-memory pass)
  /// and catalogs predicted AccessStructureInfo for every engine. Builds
  /// nothing. The db is EPHEMERAL: no WAL, no checkpoints — the historical
  /// in-memory behavior every existing caller gets unchanged.
  explicit RankCubeDb(Table table, Options options = Options());

  /// Opens a DURABLE db against options.durability.data_dir, running the
  /// crash-recovery state machine (storage/durability.h). A fresh directory
  /// is seeded from `seed` (checkpoint + empty WAL); an existing one
  /// recovers its own state and ignores `seed`. After unrecoverable WAL
  /// damage the db comes up read-only at the last consistent state —
  /// Stats().read_only / degraded_reason carry the typed flag, and every
  /// write returns kNotSupported. Hard-fails (kCorruption) only when the
  /// manifest or checkpoint is too damaged to serve anything.
  static Result<std::unique_ptr<RankCubeDb>> Open(Table seed, Options options);

  RankCubeDb(const RankCubeDb&) = delete;
  RankCubeDb& operator=(const RankCubeDb&) = delete;

  const Table& table() const { return table_; }
  const PageStore& store() const { return store_; }
  const TableStats& table_stats() const { return stats_; }

  // --- write path ---------------------------------------------------------

  /// Appends a row (validated like Table::AddRow); returns its tid. Every
  /// built structure becomes stale by one mutation; queries remain exact
  /// through the delta overlay, and the exact statistics the planner reads
  /// are adjusted in place.
  Result<Tid> Insert(const std::vector<int32_t>& sel,
                     const std::vector<double>& rank);

  /// Tombstones a live row. Same staleness/overlay story as Insert.
  Status Delete(Tid tid);

  /// Folds the whole mutation log into every built structure — calling
  /// RankingEngine::Maintain where supported (grid, fragments, signature,
  /// ranking_first), rebuilding from scratch otherwise — then truncates
  /// the log, recomputes TableStats and upgrades every catalog entry to
  /// the maintained structure's exact Describe(). After Compact, queries
  /// pay no delta overlay until the next write. Rebuilds invalidate
  /// pointers previously returned by Engine() for the rebuilt keys.
  Result<CompactionReport> Compact();

  // --- read path ----------------------------------------------------------

  /// Plans + executes one query in a fresh I/O session. The result carries
  /// the chosen plan (TopKResult::plan) next to the measured ExecStats.
  Result<TopKResult> Query(const TopKQuery& query,
                           const QueryOptions& opts = QueryOptions());

  /// The plan Query() would run, without building or executing anything.
  Result<PlanInfo> Explain(const TopKQuery& query,
                           const QueryOptions& opts = QueryOptions()) const;

  /// Sequential workload execution, one fresh session per query; each
  /// query is planned individually (a mixed workload may split across
  /// engines). Per-query failures are tallied in the report.
  Result<BatchReport> QueryAll(const std::vector<TopKQuery>& workload,
                               const QueryOptions& opts = QueryOptions(),
                               BatchOptions batch = BatchOptions());

  /// Parallel workload execution on `num_threads` workers; same routing,
  /// deterministic workload-order report (BatchExecutor::ExecuteParallel).
  Result<BatchReport> QueryParallel(const std::vector<TopKQuery>& workload,
                                    int num_threads,
                                    const QueryOptions& opts = QueryOptions(),
                                    BatchOptions batch = BatchOptions());

  /// The engine under `name`, built on first use (thread-safe; build I/O
  /// is charged to the db's construction session). The pointer stays valid
  /// until the db dies or Compact() rebuilds that engine.
  Result<const RankingEngine*> Engine(const std::string& name);

  /// Catalog snapshot: predicted entries, upgraded in place to exact
  /// Describe() output for structures that have been built.
  std::vector<AccessStructureInfo> CatalogEntries() const;

  /// Registry keys this db catalogs (sorted) — the supported way to
  /// enumerate the candidates Explain() costs, without probing the
  /// NotFound path.
  std::vector<std::string> Keys() const;
  /// Alias of Keys(), kept for existing call sites.
  std::vector<std::string> EngineNames() const { return Keys(); }

  /// Per-structure freshness snapshot for every *built* engine.
  std::map<std::string, FreshnessInfo> FreshnessByEngine() const;

  /// Consistent snapshot of relation size, delta drift, per-engine
  /// freshness and cumulative query-traffic counters (see DbStats).
  /// Excludes writers for the duration of the snapshot.
  DbStats Stats() const;

  // --- result cache + planner feedback ------------------------------------

  bool cache_enabled() const { return cache_.enabled(); }
  ResultCacheStats CacheStats() const { return cache_.Stats(); }
  void ClearCache() { cache_.Clear(); }
  /// Adjusts the cache byte budget at runtime (0 disables).
  void ResizeCache(size_t max_bytes) { cache_.Resize(max_bytes); }

  /// Learned per-engine-family cost corrections (empty until queries ran).
  std::map<std::string, CostFeedback::FamilyState> FeedbackSnapshot() const {
    return feedback_.Snapshot();
  }
  void ResetFeedback() { feedback_.Reset(); }
  /// Runtime feedback toggle (benches measure the raw cost model with it
  /// off, then re-enable to learn).
  void SetFeedbackEnabled(bool on) { feedback_.set_enabled(on); }

  // --- durability ---------------------------------------------------------

  bool durable() const { return durability_ != nullptr; }
  /// Degraded mode: serving the last consistent state, writes refused.
  bool read_only() const;
  /// What Open() found and did (default-constructed for ephemeral dbs).
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Durable-shutdown barrier: forces the WAL to stable storage and takes
  /// a checkpoint at the current epoch, WITHOUT touching the delta log —
  /// built engines still need their ChangesSince suffix, so this is safe
  /// to call at any point (rankcubed runs it on SIGTERM). Compact() also
  /// checkpoints, after it truncates the log.
  Status Checkpoint();

  /// Physical pages charged by all lazy structure builds so far.
  uint64_t construction_pages() const;

 private:
  /// Plans `query` and returns the built engine + plan (the router body).
  Result<RoutedEngine> Route(const TopKQuery& query,
                             const QueryOptions& opts);

  /// The full read pipeline for one query — cache lookup, certified
  /// sibling reuse, planner-routed execution with overfetch, cache insert,
  /// feedback observation — inside `ctx`. Caller must hold ddl_mu_ shared
  /// and own ctx.io (fresh per query). Query() and QueryParallel's workers
  /// both funnel through here, so cached and parallel paths cannot drift.
  Result<TopKResult> ExecuteQueryLocked(const TopKQuery& query,
                                        const QueryOptions& opts,
                                        ExecContext& ctx);

  /// Attempts to answer `query` exactly from a cached sibling entry (same
  /// predicates and k, different ranking function) by re-ranking its
  /// candidate set and certifying with the interval bound on |g - f|.
  /// nullopt = certification failed; caller falls back to full execution.
  std::optional<TopKResult> TryReuseLocked(const TopKQuery& query,
                                           const CanonicalQuery& key,
                                           const std::string& epoch_tag,
                                           const CachedResult& entry,
                                           ExecContext& ctx);

  /// Must hold mu_. Builds `name` if needed and returns it.
  Result<const RankingEngine*> EngineLocked(const std::string& name);

  /// Must hold ddl_mu_ exclusively. Latches degraded read-only mode after
  /// a WAL failure (the mutation was never applied, so memory and disk
  /// stay consistent — we just refuse to diverge further).
  void DegradeLocked(const std::string& reason);

  Table table_;
  PageStore store_;
  TableStats stats_;
  Options options_;
  Planner planner_;
  /// Both internally synchronized; populated on the read path under the
  /// shared ddl gate (readers race each other, never a writer).
  ResultCache cache_;
  CostFeedback feedback_;

  /// Set only by Open(); null = ephemeral. Mutated (Log*/Checkpoint) under
  /// ddl_mu_ exclusive; read-side getters take ddl_mu_ shared.
  std::unique_ptr<DurabilityManager> durability_;
  RecoveryInfo recovery_;
  /// Guarded by ddl_mu_ (written under exclusive, read under shared).
  bool read_only_ = false;

  /// Read/write gate: queries and Explain hold it shared for their whole
  /// duration (QueryParallel's workers run under the caller's shared
  /// hold), Insert/Delete/Compact hold it exclusively — appending to the
  /// column vectors or maintaining a structure must never race a reader's
  /// rank_col() view. Acquired before mu_ everywhere.
  mutable std::shared_mutex ddl_mu_;

  /// Guards catalog_, engines_, stats_ and build_io_: planning is a pure
  /// in-memory computation and builds are rare, so one coarse lock
  /// suffices; query execution itself runs outside the lock on per-query
  /// sessions.
  mutable std::mutex mu_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<RankingEngine>> engines_;
  IoSession build_io_;

  /// Cumulative query-traffic counters behind Stats(); guarded by mu_
  /// (bumped once per query / once per batch, never on the page path).
  struct TrafficCounters {
    uint64_t queries_executed = 0;
    uint64_t query_failures = 0;
    uint64_t pages_logical = 0;
    uint64_t pages_charged = 0;
    uint64_t pages_device = 0;
  };
  TrafficCounters traffic_;
};

}  // namespace rankcube

#endif  // RANKCUBE_PLANNER_RANK_CUBE_DB_H_
