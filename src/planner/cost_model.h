// Block-access cost model for the built-in access structures, following the
// paper's analysis: an execution's cost is the number of disk-block reads
// it performs, estimated per structure from the catalog statistics.
//
//  * table_scan      exact: the relation's heap pages.
//  * grid/fragments  §3.3/§3.5 neighborhood search: blocks visited until k
//                    matches accumulate (k / (P * sel), with an expansion
//                    overshoot), each paying its base-block pages plus the
//                    covering cuboids' pseudo-block pages.
//  * boolean_first   near-exact: min(scan, posting pages + one random heap
//                    access per posting entry) — the histogram gives the
//                    exact posting length.
//  * ranking_first   R-tree branch-and-bound: leaves supplying the popped
//                    candidates plus one verification row-fetch per
//                    candidate (candidates ~ k / sel under predicates).
//  * signature       branch-and-bound restricted to match-bearing subtrees
//                    (§4.3), plus partial-signature loads per tested node.
//  * index_merge     Ch5 progressive merge: per-tree descent plus the leaf
//                    frontier required to pass the k-th threshold.
//
// PredictStructureInfo produces a catalog entry for a structure that has
// not been built yet, by running the build-geometry formulas (§3.2.3 grid
// sizing, §4.2.2 R-tree fanout) on TableStats — so the planner can cost all
// alternatives without paying any construction.
#ifndef RANKCUBE_PLANNER_COST_MODEL_H_
#define RANKCUBE_PLANNER_COST_MODEL_H_

#include <string>

#include "engine/registry.h"
#include "engine/structure_info.h"
#include "planner/catalog.h"

namespace rankcube {

/// Tunables of the cost model. The defaults were calibrated against
/// measured ExecStats::pages_read on the bench_planner mixed workload;
/// they are deliberately few — every other quantity comes from TableStats
/// or the structure's AccessStructureInfo.
struct CostModelOptions {
  /// Neighborhood/branch-and-bound overshoot: blocks (leaves) examined
  /// beyond the ideal k-supplying set before the S_k bound closes.
  double search_overshoot = 2.0;
  /// Partial-signature pages charged per predicate source over a whole
  /// query (the pruner caches partials after first touch, and §4.2.3's
  /// decomposition keeps one cell's signature to a few alpha-page
  /// partials).
  double signature_pages_per_source = 2.0;
  /// index_merge: leaf-frontier multiplier covering joint-state expansion
  /// beyond the per-tree ideal frontier.
  double merge_frontier_factor = 3.0;
  /// kLatency objective: device cost per physical page (us) and CPU cost
  /// per exact tuple evaluation (us). The page cost matches the repo's
  /// 0.1 ms/page disk-weighted convention (bench_common, bench_parallel).
  double page_cost_us = 100.0;
  double tuple_cost_us = 0.05;
};

/// One candidate's estimate. `pages` and `tuples` are meaningful only when
/// `feasible`; `reason` explains infeasibility otherwise.
struct CostEstimate {
  bool feasible = false;
  double pages = 0.0;   ///< estimated physical page reads
  double tuples = 0.0;  ///< estimated exact score evaluations (CPU term)
  std::string reason;
};

/// Estimates the cost of answering `query` with the structure described by
/// `info`, including the capability checks (predicate support, convexity,
/// cuboid coverage). Works on predicted and built entries alike.
CostEstimate EstimateCost(const AccessStructureInfo& info,
                          const TopKQuery& query, const TableStats& stats,
                          const CostModelOptions& options);

/// Predicted AccessStructureInfo for a not-yet-built structure under
/// `build` options. Unknown engine keys (externally registered backends)
/// get a generic entry with no cost model — plannable only via
/// force_engine.
AccessStructureInfo PredictStructureInfo(const std::string& engine,
                                         const TableStats& stats,
                                         const EngineBuildOptions& build);

}  // namespace rankcube

#endif  // RANKCUBE_PLANNER_COST_MODEL_H_
