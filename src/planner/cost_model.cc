#include "planner/cost_model.h"

#include <algorithm>
#include <cmath>

#include "cube/fragments.h"

namespace rankcube {
namespace {

constexpr double kEps = 1e-12;

double Ceil1(double x) { return std::max(1.0, std::ceil(x)); }

std::vector<int> SortedQueryDims(const TopKQuery& query) {
  std::vector<int> dims;
  dims.reserve(query.predicates.size());
  for (const auto& p : query.predicates) dims.push_back(p.dim);
  std::sort(dims.begin(), dims.end());
  return dims;
}

bool HasExactSet(const AccessStructureInfo& info,
                 const std::vector<int>& dims) {
  for (const auto& set : info.covered_dim_sets) {
    if (set == dims) return true;
  }
  return false;
}

bool HasAtomicCuboid(const AccessStructureInfo& info, int dim) {
  for (const auto& set : info.covered_dim_sets) {
    if (set.size() == 1 && set[0] == dim) return true;
  }
  return false;
}

/// Common query-shape quantities every estimator reads.
struct QueryShape {
  int s = 0;          ///< #predicates
  double sel = 1.0;   ///< estimated matching fraction
  double matches = 0; ///< expected matching rows
  double kk = 0;      ///< results actually obtainable: min(k, matches)
};

QueryShape ShapeOf(const TopKQuery& query, const TableStats& ts) {
  QueryShape q;
  q.s = static_cast<int>(query.predicates.size());
  q.sel = ts.Selectivity(query.predicates);
  q.matches = static_cast<double>(ts.num_rows) * q.sel;
  q.kk = std::min(static_cast<double>(query.k), std::max(q.matches, 0.0));
  return q;
}

/// Pseudo-blocking geometry of one cuboid (mirrors BuildGridCuboid §3.2.3):
/// sf bins merge per ranking dimension, so one cell spans sf^R base blocks
/// and the cell's tids spread over pseudo_bins^R pseudo blocks.
struct PseudoGeometry {
  double pids = 1.0;      ///< pseudo blocks per cell
  double bids_per_pid = 1; ///< base blocks one pseudo block covers
};

PseudoGeometry PseudoOf(const TableStats& ts, int grid_bins,
                        const std::vector<int>& cuboid_dims) {
  double prod = 1.0;
  for (int d : cuboid_dims) {
    prod *= static_cast<double>(
        std::max<size_t>(1, ts.value_counts[d].size()));
  }
  int sf = static_cast<int>(
      std::floor(std::pow(prod, 1.0 / std::max(1, ts.num_rank_dims))));
  sf = std::max(1, std::min(sf, grid_bins));
  int pseudo_bins = (grid_bins + sf - 1) / sf;
  PseudoGeometry g;
  g.pids = std::pow(static_cast<double>(pseudo_bins), ts.num_rank_dims);
  g.bids_per_pid = std::pow(static_cast<double>(sf), ts.num_rank_dims);
  return g;
}

/// §3.3/§3.5 neighborhood-search cost, shared by grid and fragments: the
/// search pops base blocks in lower-bound order until k matches close the
/// S_k bound; each popped block with matches pays its base-block pages and
/// each covering cuboid pays pseudo-block pages for newly touched pids.
CostEstimate GridFamilyCost(const AccessStructureInfo& info,
                            const TopKQuery& query, const TableStats& ts,
                            const CostModelOptions& opt,
                            const std::vector<std::vector<int>>& covering) {
  QueryShape q = ShapeOf(query, ts);
  CostEstimate est;
  est.feasible = true;

  const double blocks =
      std::max(1.0, static_cast<double>(info.grid_blocks));
  const double tuples_per_block =
      static_cast<double>(ts.num_rows) / blocks;
  const double match_per_block = tuples_per_block * q.sel;

  // Blocks visited: enough to accumulate kk matches, inflated by the
  // expansion overshoot, capped at the whole grid.
  double visited =
      q.kk > 0
          ? opt.search_overshoot * Ceil1(q.kk / std::max(match_per_block,
                                                         kEps))
          : 1.0;
  visited = std::min(visited, blocks);

  // Base-block reads: only blocks holding at least one match trigger
  // GetBaseBlock; Poisson-approximate the hit fraction.
  const double hit_frac = 1.0 - std::exp(-match_per_block);
  const size_t base_row_bytes = 8 + 8 * ts.num_rank_dims;
  const double base_pages_per_block =
      Ceil1(tuples_per_block * static_cast<double>(base_row_bytes) /
            static_cast<double>(ts.page_size));
  est.pages = visited * hit_frac * base_pages_per_block;
  est.tuples = visited * match_per_block;

  // Cuboid pseudo-block reads per covering cuboid: the cell holds
  // N * sel_i tids spread over its pids; visiting `visited` base blocks
  // touches about visited / bids_per_pid distinct pids.
  for (const auto& dims : covering) {
    std::vector<Predicate> sub;
    for (const auto& p : query.predicates) {
      if (std::find(dims.begin(), dims.end(), p.dim) != dims.end()) {
        sub.push_back(p);
      }
    }
    const double cell_tids =
        static_cast<double>(ts.num_rows) * ts.Selectivity(sub);
    PseudoGeometry g = PseudoOf(ts, std::max(1, info.grid_bins), dims);
    const double tids_per_pid = cell_tids / std::max(g.pids, 1.0);
    const double pages_per_pid =
        Ceil1((8.0 * tids_per_pid + 16.0) /
              static_cast<double>(ts.page_size));
    const double touched_pids =
        std::min(g.pids, Ceil1(visited / std::max(g.bids_per_pid, 1.0)));
    est.pages += touched_pids * pages_per_pid;
  }
  return est;
}

CostEstimate GridCost(const AccessStructureInfo& info, const TopKQuery& query,
                      const TableStats& ts, const CostModelOptions& opt) {
  std::vector<int> dims = SortedQueryDims(query);
  if (!dims.empty() && !HasExactSet(info, dims)) {
    CostEstimate est;
    est.reason = "no materialized cuboid matches the predicate dimensions";
    return est;
  }
  std::vector<std::vector<int>> covering;
  if (!dims.empty()) covering.push_back(dims);
  return GridFamilyCost(info, query, ts, opt, covering);
}

CostEstimate FragmentsCost(const AccessStructureInfo& info,
                           const TopKQuery& query, const TableStats& ts,
                           const CostModelOptions& opt) {
  std::vector<int> dims = SortedQueryDims(query);
  // Covering set: the query dims of each fragment group form one cuboid
  // (exact-match when a single group holds them all, §3.4.2).
  std::vector<std::vector<int>> covering;
  for (const auto& group : info.fragment_groups) {
    std::vector<int> in_group;
    for (int d : dims) {
      if (std::find(group.begin(), group.end(), d) != group.end()) {
        in_group.push_back(d);
      }
    }
    if (!in_group.empty()) covering.push_back(std::move(in_group));
  }
  size_t covered = 0;
  for (const auto& c : covering) covered += c.size();
  if (covered != dims.size()) {
    CostEstimate est;
    est.reason = "predicate dimensions not covered by the fragment groups";
    return est;
  }
  return GridFamilyCost(info, query, ts, opt, covering);
}

CostEstimate TableScanCost(const TableStats& ts, const TopKQuery& query) {
  CostEstimate est;
  est.feasible = true;
  est.pages = static_cast<double>(ts.table_pages);
  est.tuples = ShapeOf(query, ts).matches;
  return est;
}

CostEstimate BooleanFirstCost(const TopKQuery& query, const TableStats& ts) {
  QueryShape q = ShapeOf(query, ts);
  CostEstimate est;
  est.feasible = true;
  if (q.s == 0) {
    est.pages = static_cast<double>(ts.table_pages);
    est.tuples = static_cast<double>(ts.num_rows);
    return est;
  }
  // The engine itself cost-picks the most selective posting list vs a scan;
  // the histogram gives the exact posting length, so this is near-exact.
  double best_len = static_cast<double>(ts.num_rows);
  for (const auto& p : query.predicates) {
    best_len = std::min(best_len, ts.PredicateSelectivity(p) *
                                      static_cast<double>(ts.num_rows));
  }
  const double index_pages =
      1.0 + std::floor(best_len * 4.0 / static_cast<double>(ts.page_size)) +
      best_len;  // posting pages + one random heap access per candidate
  est.pages = std::min(static_cast<double>(ts.table_pages), index_pages);
  est.tuples = q.matches;  // predicates filter before scoring on both paths
  return est;
}

/// Branch-and-bound tree shape shared by ranking_first and signature.
struct TreeShape {
  double leaves = 1.0;
  double entries_per_leaf = 1.0;
  double fanout = 2.0;
  double depth = 1.0;
};

TreeShape TreeOf(const AccessStructureInfo& info, const TableStats& ts) {
  TreeShape t;
  t.leaves = std::max(1.0, static_cast<double>(info.tree_leaves));
  t.entries_per_leaf = static_cast<double>(ts.num_rows) / t.leaves;
  t.fanout = std::max(2.0, static_cast<double>(info.tree_fanout));
  t.depth = std::max(1.0, static_cast<double>(info.tree_depth));
  return t;
}

CostEstimate RankingFirstCost(const AccessStructureInfo& info,
                              const TopKQuery& query, const TableStats& ts,
                              const CostModelOptions& opt) {
  QueryShape q = ShapeOf(query, ts);
  TreeShape t = TreeOf(info, ts);
  CostEstimate est;
  est.feasible = true;
  // Candidates are popped in score order until kk of them verify, and
  // *every* pop pays one random heap access (§4.4.1 "Ranking" verifies
  // boolean predicates against the base table; with no predicates the
  // verification is vacuous but the fetch is still charged). With
  // predicates, 1/sel pops are expected per verified result.
  const double candidates =
      q.s > 0 ? q.kk / std::max(q.sel, kEps) : q.kk;
  double leaves_read = std::min(
      t.leaves,
      opt.search_overshoot * Ceil1(candidates / t.entries_per_leaf));
  const double internal = t.depth + leaves_read / t.fanout;
  est.pages = internal + leaves_read + candidates;
  est.tuples = leaves_read * t.entries_per_leaf;
  return est;
}

CostEstimate SignatureCost(const AccessStructureInfo& info,
                           const TopKQuery& query, const TableStats& ts,
                           const CostModelOptions& opt, bool lossy) {
  std::vector<int> dims = SortedQueryDims(query);
  if (!dims.empty() && !HasExactSet(info, dims)) {
    for (int d : dims) {
      if (!HasAtomicCuboid(info, d)) {
        CostEstimate est;
        est.reason = "predicate dimension A" + std::to_string(d) +
                     " has no signature cuboid";
        return est;
      }
    }
  }
  QueryShape q = ShapeOf(query, ts);
  TreeShape t = TreeOf(info, ts);
  CostEstimate est;
  est.feasible = true;
  // Signature pruning skips subtrees with no matching tuple — but the test
  // is per predicate source (§4.3.3 online assembly ANDs independent
  // signatures), so a leaf passes when it holds a match of *each*
  // predicate separately, not necessarily a joint match: the passing
  // fraction is the product of per-predicate leaf-hit fractions.
  double pass_frac = 1.0;
  for (const auto& p : query.predicates) {
    pass_frac *=
        1.0 - std::exp(-t.entries_per_leaf * ts.PredicateSelectivity(p));
  }
  const double passing_leaves = std::max(1.0, t.leaves * pass_frac);
  // Reading the passing leaves in score order, kk joint matches arrive
  // after kk/matches of them; with fewer matches than k the bound never
  // closes and the search exhausts every passing leaf.
  double leaves_read = std::min(
      passing_leaves,
      opt.search_overshoot *
          Ceil1(q.kk * passing_leaves / std::max(q.matches, kEps)));
  const double internal = t.depth + leaves_read / t.fanout;
  // Partial-signature loads are nearly free: the pruner caches each
  // partial after its first touch, and one cell's stored signature spans
  // only a few alpha-page partials.
  const double sig_pages = q.s * opt.signature_pages_per_source;
  est.pages = internal + leaves_read + sig_pages;
  est.tuples = leaves_read * t.entries_per_leaf;
  if (lossy) {
    // §4.5: bloom pruning admits false positives; every popped candidate
    // that passes the bloom is verified with a random heap access.
    est.pages += q.kk + 0.01 * est.tuples;
  }
  return est;
}

CostEstimate IndexMergeCost(const AccessStructureInfo& info,
                            const TopKQuery& query, const TableStats& ts,
                            const CostModelOptions& opt) {
  if (!query.predicates.empty()) {
    CostEstimate est;
    est.reason = "index_merge evaluates no boolean predicates (§5.1.1)";
    return est;
  }
  QueryShape q = ShapeOf(query, ts);
  CostEstimate est;
  est.feasible = true;
  const int r = std::max(1, ts.num_rank_dims);
  const double fanout = std::max(
      2.0, static_cast<double>(info.tree_fanout > 0 ? info.tree_fanout
                                                    : 204));
  const double leaves_per_tree =
      Ceil1(static_cast<double>(ts.num_rows) / fanout);
  const double depth = Ceil1(std::log(std::max(
                           leaves_per_tree, 2.0)) /
                           std::log(fanout)) + 1.0;
  // Progressive merge scans each tree's frontier until the joint threshold
  // passes the k-th score: about the (kk/N)^(1/r) quantile of each tree.
  const double frac = std::pow(
      std::max(q.kk, 1.0) / static_cast<double>(std::max<uint64_t>(
                                ts.num_rows, 1)),
      1.0 / static_cast<double>(r));
  const double frontier_leaves =
      opt.merge_frontier_factor * Ceil1(frac * leaves_per_tree);
  est.pages = static_cast<double>(r) *
              (depth + std::min(frontier_leaves, leaves_per_tree));
  est.tuples = static_cast<double>(r) *
               std::min(frontier_leaves, leaves_per_tree) * fanout;
  return est;
}

}  // namespace

namespace {

CostEstimate DispatchCost(const AccessStructureInfo& info,
                          const TopKQuery& query, const TableStats& ts,
                          const CostModelOptions& options) {
  CostEstimate est;
  if (info.engine == "table_scan") return TableScanCost(ts, query);
  if (info.engine == "grid") return GridCost(info, query, ts, options);
  if (info.engine == "fragments") {
    return FragmentsCost(info, query, ts, options);
  }
  if (info.engine == "signature" || info.engine == "signature_lossy") {
    return SignatureCost(info, query, ts, options,
                         info.engine == "signature_lossy");
  }
  if (info.engine == "boolean_first") return BooleanFirstCost(query, ts);
  if (info.engine == "ranking_first") {
    return RankingFirstCost(info, query, ts, options);
  }
  if (info.engine == "index_merge") {
    return IndexMergeCost(info, query, ts, options);
  }
  est.reason = "no cost model for engine '" + info.engine +
               "' (force_engine only)";
  return est;
}

}  // namespace

CostEstimate EstimateCost(const AccessStructureInfo& info,
                          const TopKQuery& query, const TableStats& ts,
                          const CostModelOptions& options) {
  CostEstimate est;
  if (!query.predicates.empty() && !info.supports_predicates) {
    est.reason = "engine does not evaluate boolean predicates";
    return est;
  }
  if (info.requires_convex && query.function && !query.function->convex()) {
    est.reason = "search algorithm requires a convex ranking function";
    return est;
  }
  if (info.needs_external_bound) {
    est.reason = "requires an oracle k-th-score bound (force_engine only)";
    return est;
  }

  // Staleness pricing: a built structure lagging the table pays the delta
  // overlay on top of its own search — the exact sequential scan of the
  // appended heap tail, plus a deeper (k + pending-deletes) inner search so
  // tombstone filtering cannot starve the result. An unbuilt structure
  // would be constructed at the current epoch, and a table scan reads live
  // data by definition; neither overlays. This is the term that makes the
  // planner route drifted structures to a scan until compaction.
  //
  // What a structure owes is the log suffix after its *own* built_epoch —
  // one built (or maintained) mid-log must not be billed everything since
  // compaction. Exact when the stats carry the live log; the
  // since-compaction aggregates are the (conservative) fallback.
  const bool stale = info.built && info.engine != "table_scan" &&
                     ts.epoch > info.built_epoch;
  if (!stale) return DispatchCost(info, query, ts, options);

  uint64_t pending_inserts = ts.delta_rows;
  uint64_t pending_deletes = ts.deleted_since_compact;
  double overlay_pages = static_cast<double>(ts.delta_pages);
  if (ts.delta != nullptr) {
    DeltaStore::PendingSummary pending = ts.delta->Pending(info.built_epoch);
    pending_inserts = pending.inserts;
    pending_deletes = pending.deletes;
    overlay_pages =
        pending.has_insert
            ? static_cast<double>(
                  ts.table_pages -
                  pending.first_insert / std::max<size_t>(1, ts.rows_per_page))
            : 0.0;
  }
  if (pending_inserts == 0 && pending_deletes == 0) {
    return DispatchCost(info, query, ts, options);
  }

  TopKQuery effective = query;
  effective.k = query.k + static_cast<int>(
                              std::min<uint64_t>(pending_deletes, 1u << 20));
  est = DispatchCost(info, effective, ts, options);
  if (!est.feasible) return est;
  est.pages += overlay_pages;
  est.tuples += static_cast<double>(pending_inserts);
  return est;
}

AccessStructureInfo PredictStructureInfo(const std::string& engine,
                                         const TableStats& ts,
                                         const EngineBuildOptions& build) {
  AccessStructureInfo info;
  info.engine = engine;
  info.built = false;

  auto all_dims = [&ts] {
    std::vector<int> dims(ts.num_sel_dims);
    for (int d = 0; d < ts.num_sel_dims; ++d) dims[d] = d;
    return dims;
  };
  // Mirrors EquiDepthGrid's sizing: b = round((T/P)^(1/R)).
  auto grid_bins = [&ts](int block_size) {
    const double t =
        static_cast<double>(std::max<uint64_t>(1, ts.num_rows));
    const double p = static_cast<double>(std::max(1, block_size));
    return std::max(
        1, static_cast<int>(std::round(
               std::pow(t / p, 1.0 / std::max(1, ts.num_rank_dims)))));
  };
  // Mirrors RTree's sizing: M = page / (8d + 4), STR leaves packed full.
  auto rtree_shape = [&ts](AccessStructureInfo* out) {
    const int fanout = std::max(
        4, static_cast<int>(ts.page_size /
                            (8 * std::max(1, ts.num_rank_dims) + 4)));
    out->tree_fanout = fanout;
    double level = Ceil1(static_cast<double>(std::max<uint64_t>(
                             1, ts.num_rows)) /
                         fanout);
    out->tree_leaves = static_cast<uint64_t>(level);
    int depth = 1;
    while (level > 1.0) {
      level = Ceil1(level / fanout);
      ++depth;
    }
    out->tree_depth = depth;
  };

  if (engine == "grid") {
    info.requires_convex = true;
    info.coverage = AccessStructureInfo::DimCoverage::kExactSets;
    info.covered_dim_sets = build.grid.cuboid_dim_sets.empty()
                                ? AllSubsets(all_dims())
                                : build.grid.cuboid_dim_sets;
    for (auto& set : info.covered_dim_sets) {
      std::sort(set.begin(), set.end());
    }
    info.num_cuboids = static_cast<int>(info.covered_dim_sets.size());
    info.block_size = build.grid.block_size;
    info.grid_bins = grid_bins(build.grid.block_size);
    info.grid_blocks = static_cast<uint64_t>(
        std::pow(info.grid_bins, std::max(1, ts.num_rank_dims)));
  } else if (engine == "fragments") {
    info.requires_convex = true;
    info.coverage = AccessStructureInfo::DimCoverage::kAnySubset;
    info.fragment_groups =
        build.fragments.groups.empty()
            ? GroupDimensions(ts.num_sel_dims, build.fragments.fragment_size)
            : build.fragments.groups;
    for (const auto& group : info.fragment_groups) {
      for (auto& set : AllSubsets(group)) {
        info.covered_dim_sets.push_back(std::move(set));
      }
    }
    info.num_cuboids = static_cast<int>(info.covered_dim_sets.size());
    info.block_size = build.fragments.block_size;
    info.grid_bins = grid_bins(build.fragments.block_size);
    info.grid_blocks = static_cast<uint64_t>(
        std::pow(info.grid_bins, std::max(1, ts.num_rank_dims)));
  } else if (engine == "signature" || engine == "signature_lossy") {
    info.coverage = AccessStructureInfo::DimCoverage::kAtomicAssembly;
    if (build.signature.cuboid_dim_sets.empty()) {
      for (int d = 0; d < ts.num_sel_dims; ++d) {
        info.covered_dim_sets.push_back({d});
      }
    } else {
      info.covered_dim_sets = build.signature.cuboid_dim_sets;
      for (auto& set : info.covered_dim_sets) {
        std::sort(set.begin(), set.end());
      }
    }
    info.num_cuboids = static_cast<int>(info.covered_dim_sets.size());
    rtree_shape(&info);
  } else if (engine == "ranking_first") {
    rtree_shape(&info);
  } else if (engine == "table_scan" || engine == "boolean_first") {
    // Catalog statistics (histograms, heap geometry) fully describe both.
  } else if (engine == "rank_mapping") {
    info.needs_external_bound = true;
  } else if (engine == "index_merge") {
    info.supports_predicates = false;
    info.coverage = AccessStructureInfo::DimCoverage::kNone;
    info.num_cuboids = std::max(1, ts.num_rank_dims);
    info.tree_fanout =
        build.merge_btree_fanout > 0
            ? build.merge_btree_fanout
            : std::max(4, static_cast<int>(ts.page_size / 20));
  }
  // Anything else: an externally registered backend; keep the generic
  // entry (no cost model => force_engine only).
  return info;
}

}  // namespace rankcube
