// The planner's knowledge base: table-level statistics plus one
// AccessStructureInfo per physical access structure.
//
// TableStats is computed once per relation (a single in-memory pass) and
// gives the cost model the quantities the paper's block-access analysis is
// parameterized on: heap-page geometry and exact per-dimension value
// frequencies, i.e. the selectivity of any equality predicate. Catalog
// entries start as analytic predictions (cost_model.h) so queries can be
// planned before any structure is built, and are replaced by the exact
// RankingEngine::Describe() output once a structure exists.
#ifndef RANKCUBE_PLANNER_CATALOG_H_
#define RANKCUBE_PLANNER_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/structure_info.h"
#include "func/query.h"
#include "storage/table.h"

namespace rankcube {

/// Relation-level statistics for cost estimation. Exact, not sampled: the
/// value-frequency histograms are one pass over the in-memory selection
/// columns (the same concession every structure's build already gets).
struct TableStats {
  uint64_t num_rows = 0;
  int num_sel_dims = 0;
  int num_rank_dims = 0;
  size_t page_size = 4096;
  size_t row_bytes = 0;
  size_t rows_per_page = 0;
  uint64_t table_pages = 0;  ///< heap pages of a full sequential scan

  /// value_counts[dim][value] = number of rows with sel(dim) == value.
  std::vector<std::vector<uint64_t>> value_counts;

  static TableStats Compute(const Table& table, size_t page_size);

  /// Fraction of rows satisfying `p` (exact, from the histogram).
  double PredicateSelectivity(const Predicate& p) const;

  /// Fraction of rows satisfying the conjunction, under the independence
  /// assumption (per-predicate factors are exact, their product is not).
  double Selectivity(const std::vector<Predicate>& predicates) const;

  /// Expected number of matching rows for the conjunction.
  double MatchEstimate(const std::vector<Predicate>& predicates) const {
    return static_cast<double>(num_rows) * Selectivity(predicates);
  }
};

/// Keyed set of AccessStructureInfo entries (a handful of engines; linear
/// lookup). Put() replaces an existing entry with the same engine key —
/// how predictions get upgraded to exact post-build descriptions.
class Catalog {
 public:
  void Put(AccessStructureInfo info);

  /// Entry for `engine`, or nullptr. The pointer is invalidated by Put().
  const AccessStructureInfo* Find(const std::string& engine) const;

  const std::vector<AccessStructureInfo>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<AccessStructureInfo> entries_;
};

}  // namespace rankcube

#endif  // RANKCUBE_PLANNER_CATALOG_H_
