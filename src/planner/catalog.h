// The planner's knowledge base: table-level statistics plus one
// AccessStructureInfo per physical access structure.
//
// TableStats is computed once per relation (a single in-memory pass) and
// gives the cost model the quantities the paper's block-access analysis is
// parameterized on: heap-page geometry and exact per-dimension value
// frequencies, i.e. the selectivity of any equality predicate. Catalog
// entries start as analytic predictions (cost_model.h) so queries can be
// planned before any structure is built, and are replaced by the exact
// RankingEngine::Describe() output once a structure exists.
#ifndef RANKCUBE_PLANNER_CATALOG_H_
#define RANKCUBE_PLANNER_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/structure_info.h"
#include "func/query.h"
#include "storage/table.h"

namespace rankcube {

/// Relation-level statistics for cost estimation. Exact, not sampled: the
/// value-frequency histograms are one pass over the in-memory selection
/// columns (the same concession every structure's build already gets), and
/// RankCubeDb keeps them exact under writes (Insert/Delete adjust the
/// touched counters; Compact recomputes everything).
struct TableStats {
  uint64_t num_rows = 0;  ///< live rows (tombstones excluded)
  int num_sel_dims = 0;
  int num_rank_dims = 0;
  size_t page_size = 4096;
  size_t row_bytes = 0;
  size_t rows_per_page = 0;
  /// Heap pages of a full sequential scan. Includes tombstoned rows: the
  /// heap keeps them, so a scan still reads them.
  uint64_t table_pages = 0;

  // --- delta state (drives the planner's staleness pricing) --------------
  uint64_t epoch = 0;        ///< table epoch at this snapshot
  uint64_t delta_rows = 0;   ///< rows appended since the last compaction
  uint64_t delta_pages = 0;  ///< heap pages of that appended tail
  uint64_t deleted_since_compact = 0;  ///< tombstones since last compaction
  Tid delta_first_row = 0;   ///< tail start; meaningful when delta_rows > 0
  /// The table's live mutation log, for pricing staleness *per structure*
  /// (a structure built or maintained mid-log owes only the suffix after
  /// its own built_epoch, not everything since compaction). Not owned;
  /// valid while the source Table is alive and unmoved — RankCubeDb owns
  /// both and recomputes stats on compaction. Null for a stats value
  /// detached from its table; the cost model then falls back to the
  /// since-compaction aggregates above.
  const DeltaStore* delta = nullptr;

  /// value_counts[dim][value] = number of live rows with sel(dim) == value.
  std::vector<std::vector<uint64_t>> value_counts;

  static TableStats Compute(const Table& table, size_t page_size);

  /// Fraction of live rows satisfying `p` (exact, from the histogram).
  double PredicateSelectivity(const Predicate& p) const;

  /// Fraction of rows satisfying the conjunction, under the independence
  /// assumption (per-predicate factors are exact, their product is not).
  double Selectivity(const std::vector<Predicate>& predicates) const;

  /// Expected number of matching rows for the conjunction.
  double MatchEstimate(const std::vector<Predicate>& predicates) const {
    return static_cast<double>(num_rows) * Selectivity(predicates);
  }

  /// Exact incremental adjustments for one mutation (RankCubeDb's write
  /// path; the heap geometry and delta tail are re-derived from the table).
  void ApplyInsert(const Table& table, Tid tid);
  void ApplyDelete(const Table& table, Tid tid);
};

/// Keyed set of AccessStructureInfo entries (a handful of engines; linear
/// lookup). Put() replaces an existing entry with the same engine key —
/// how predictions get upgraded to exact post-build descriptions.
class Catalog {
 public:
  void Put(AccessStructureInfo info);

  /// Entry for `engine`, or nullptr. The pointer is invalidated by Put().
  const AccessStructureInfo* Find(const std::string& engine) const;

  /// Cataloged engine keys, sorted — the enumeration the planner's error
  /// paths and RankCubeDb::Keys() report.
  std::vector<std::string> Keys() const;

  const std::vector<AccessStructureInfo>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<AccessStructureInfo> entries_;
};

}  // namespace rankcube

#endif  // RANKCUBE_PLANNER_CATALOG_H_
