#include "planner/rank_cube_db.h"

#include <algorithm>
#include <utility>

#include "planner/cost_model.h"

namespace rankcube {

RankCubeDb::RankCubeDb(Table table, Options options)
    : table_(std::move(table)),
      store_(options.store),
      stats_(TableStats::Compute(table_, store_.page_size())),
      options_(std::move(options)),
      planner_(options_.planner),
      build_io_(&store_) {
  std::vector<std::string> names = options_.engines.empty()
                                       ? EngineRegistry::Global().Keys()
                                       : options_.engines;
  for (const std::string& name : names) {
    catalog_.Put(PredictStructureInfo(name, stats_, options_.build));
  }
}

Result<const RankingEngine*> RankCubeDb::EngineLocked(
    const std::string& name) {
  auto it = engines_.find(name);
  if (it != engines_.end()) return it->second.get();
  if (catalog_.Find(name) == nullptr) {
    return Status::NotFound("engine '" + name +
                            "' is not cataloged on this db");
  }
  auto built = EngineRegistry::Global().Create(name, table_, build_io_,
                                               options_.build);
  if (!built.ok()) return built.status();
  const RankingEngine* engine = built.value().get();
  engines_.emplace(name, std::move(built).value());
  // The structure now exists: its exact statistics replace the analytic
  // prediction for every later plan.
  catalog_.Put(engine->Describe());
  return engine;
}

Result<const RankingEngine*> RankCubeDb::Engine(const std::string& name) {
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  return EngineLocked(name);
}

Result<Tid> RankCubeDb::Insert(const std::vector<int32_t>& sel,
                               const std::vector<double>& rank) {
  std::unique_lock<std::shared_mutex> write(ddl_mu_);
  Result<Tid> tid = table_.Insert(sel, rank);
  if (!tid.ok()) return tid;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.ApplyInsert(table_, tid.value());
  return tid;
}

Status RankCubeDb::Delete(Tid tid) {
  std::unique_lock<std::shared_mutex> write(ddl_mu_);
  RC_RETURN_IF_ERROR(table_.Delete(tid));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.ApplyDelete(table_, tid);
  return Status::OK();
}

Result<CompactionReport> RankCubeDb::Compact() {
  std::unique_lock<std::shared_mutex> write(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);

  CompactionReport report;
  const DeltaStore& delta = table_.delta();
  report.absorbed_inserts = delta.InsertsSince(delta.compacted_epoch());
  report.absorbed_deletes = delta.DeletesSince(delta.compacted_epoch());
  uint64_t pages_before = build_io_.TotalPhysical();

  for (auto& [name, engine] : engines_) {
    if (engine->Freshness().fresh()) continue;
    if (engine->SupportsMaintenance()) {
      RC_RETURN_IF_ERROR(engine->Maintain(&build_io_));
      ++report.maintained;
    } else {
      // No incremental path (boolean_first postings, rank_mapping
      // composites, index_merge B+-trees): rebuild over the live table.
      auto rebuilt = EngineRegistry::Global().Create(name, table_, build_io_,
                                                     options_.build);
      if (!rebuilt.ok()) return rebuilt.status();
      engine = std::move(rebuilt).value();
      ++report.rebuilt;
    }
  }
  // Every built structure is at the current epoch: the log can go, and the
  // catalog's entries refresh to the maintained structures' exact stats.
  // Never-built entries get their analytic predictions re-derived from the
  // post-compaction statistics — geometry frozen at construction time
  // would misprice them arbitrarily as the relation grows.
  table_.MarkCompacted();
  stats_ = TableStats::Compute(table_, store_.page_size());
  for (const std::string& name : catalog_.Keys()) {
    if (engines_.count(name) == 0) {
      catalog_.Put(PredictStructureInfo(name, stats_, options_.build));
    }
  }
  for (const auto& [name, engine] : engines_) {
    (void)name;
    catalog_.Put(engine->Describe());
  }
  report.epoch = table_.epoch();
  report.pages = build_io_.TotalPhysical() - pages_before;
  return report;
}

Result<RoutedEngine> RankCubeDb::Route(const TopKQuery& query,
                                       const QueryOptions& opts) {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
  RoutedEngine routed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto plan = planner_.Plan(query, stats_, catalog_, opts);
    if (!plan.ok()) return plan.status();
    auto engine = EngineLocked(plan.value().chosen_engine);
    if (!engine.ok()) return engine.status();
    routed.engine = engine.value();
    routed.plan = std::make_shared<const PlanInfo>(std::move(plan).value());
  }
  // Outside the lock: a hook that calls back into the db must not
  // self-deadlock, and parallel workers must not serialize planning
  // behind user hook latency.
  if (opts.trace) opts.trace(routed.plan->ToString());
  return routed;
}

Result<TopKResult> RankCubeDb::Query(const TopKQuery& query,
                                     const QueryOptions& opts) {
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  auto routed = Route(query, opts);
  if (!routed.ok()) return routed.status();

  IoSession io(&store_);
  ExecContext ctx;
  ctx.io = &io;
  ctx.page_budget = opts.page_budget;
  ctx.trace = opts.trace;
  Result<TopKResult> result = routed.value().engine->Execute(query, ctx);
  if (result.ok()) result.value().plan = routed.value().plan;
  return result;
}

Result<PlanInfo> RankCubeDb::Explain(const TopKQuery& query,
                                     const QueryOptions& opts) const {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  return planner_.Plan(query, stats_, catalog_, opts);
}

Result<BatchReport> RankCubeDb::QueryAll(
    const std::vector<TopKQuery>& workload, const QueryOptions& opts,
    BatchOptions batch) {
  return QueryParallel(workload, 1, opts, batch);
}

Result<BatchReport> RankCubeDb::QueryParallel(
    const std::vector<TopKQuery>& workload, int num_threads,
    const QueryOptions& opts, BatchOptions batch) {
  // Held shared for the whole batch: workers read the table concurrently,
  // writers wait for the batch to drain.
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  if (batch.page_budget == 0) batch.page_budget = opts.page_budget;
  BatchExecutor executor(
      [this, opts](const TopKQuery& query) { return Route(query, opts); },
      batch);
  return executor.ExecuteParallel(workload, store_, num_threads);
}

std::vector<AccessStructureInfo> RankCubeDb::CatalogEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.entries();
}

std::vector<std::string> RankCubeDb::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.Keys();
}

std::map<std::string, FreshnessInfo> RankCubeDb::FreshnessByEngine() const {
  // Freshness reads the table's delta store, so exclude writers too.
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, FreshnessInfo> out;
  for (const auto& [name, engine] : engines_) {
    out.emplace(name, engine->Freshness());
  }
  return out;
}

uint64_t RankCubeDb::construction_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return build_io_.TotalPhysical();
}

}  // namespace rankcube
